"""Atomic operations (grid/block scope serialisation of memory access)."""

from .ops import ATOMIC_OP_NAMES, AtomicDomain

__all__ = ["AtomicDomain", "ATOMIC_OP_NAMES"]
