"""Atomic operations on global and shared memory.

The paper (footnote 10): *"Alpaka allows for atomic operations that
serialize thread access to global memory."*  Kernels reach these through
the accelerator (``acc.atomic_add(arr, idx, v)``); CUDA semantics apply:
the operation is performed read-modify-write under mutual exclusion and
the **old** value is returned.

Implementation: striped locks.  Python's GIL alone does not make
``arr[i] += v`` atomic (the read and the write are separate bytecodes
with arbitrary thread switches in between), so each (array, index) pair
hashes onto one of a fixed set of locks.  Striping bounds memory while
keeping contention low for disjoint indices — the same trade-off real
lock-based atomics on pre-Kepler GPUs made.
"""

from __future__ import annotations

import threading
from typing import Callable, Tuple, Union

import numpy as np

__all__ = ["AtomicDomain", "ATOMIC_OP_NAMES"]

Index = Union[int, Tuple[int, ...]]

ATOMIC_OP_NAMES = (
    "add",
    "sub",
    "min",
    "max",
    "exch",
    "inc",
    "dec",
    "cas",
    "and_",
    "or_",
    "xor",
)


class AtomicDomain:
    """A set of striped locks serialising atomic access within one
    hierarchy scope (one grid, one block, ...).

    Every kernel launch gets a grid-scope domain; block-scope atomics on
    shared memory reuse the same domain (correct, merely slightly more
    conservative than necessary).
    """

    def __init__(self, stripes: int = 64):
        if stripes < 1:
            raise ValueError("need at least one lock stripe")
        self._locks = tuple(threading.Lock() for _ in range(stripes))

    def _lock_for(self, arr: np.ndarray, idx: Index) -> threading.Lock:
        if isinstance(idx, (tuple, list)):
            key = hash((id(arr),) + tuple(int(i) for i in idx))
        else:
            key = hash((id(arr), int(idx)))
        return self._locks[key % len(self._locks)]

    def _rmw(
        self, arr: np.ndarray, idx: Index, update: Callable[[np.generic], object]
    ):
        """Generic read-modify-write; returns the old value.

        A sanitizer shadow array exposes ``__alpaka_atomic_ctx__``; the
        read and write below run inside that context so its access
        recorder marks them atomic (two atomics never race, paper
        footnote 10's serialisation guarantee).
        """
        if isinstance(idx, list):
            idx = tuple(idx)
        atomic_ctx = getattr(arr, "__alpaka_atomic_ctx__", None)
        with self._lock_for(arr, idx):
            if atomic_ctx is None:
                old = arr[idx]
                arr[idx] = update(old)
                return old
            with atomic_ctx():
                old = arr[idx]
                arr[idx] = update(old)
                return old

    # -- CUDA-style atomic set ------------------------------------------

    def atomic_add(self, arr, idx: Index, value):
        return self._rmw(arr, idx, lambda old: old + value)

    def atomic_sub(self, arr, idx: Index, value):
        return self._rmw(arr, idx, lambda old: old - value)

    def atomic_min(self, arr, idx: Index, value):
        return self._rmw(arr, idx, lambda old: min(old, value))

    def atomic_max(self, arr, idx: Index, value):
        return self._rmw(arr, idx, lambda old: max(old, value))

    def atomic_exch(self, arr, idx: Index, value):
        return self._rmw(arr, idx, lambda old: value)

    def atomic_inc(self, arr, idx: Index, limit):
        """CUDA ``atomicInc``: old >= limit wraps to 0."""
        return self._rmw(arr, idx, lambda old: 0 if old >= limit else old + 1)

    def atomic_dec(self, arr, idx: Index, limit):
        """CUDA ``atomicDec``: old == 0 or old > limit wraps to limit."""
        return self._rmw(
            arr, idx, lambda old: limit if (old == 0 or old > limit) else old - 1
        )

    def atomic_cas(self, arr, idx: Index, compare, value):
        return self._rmw(
            arr, idx, lambda old: value if old == compare else old
        )

    def atomic_and_(self, arr, idx: Index, value):
        return self._rmw(arr, idx, lambda old: old & value)

    def atomic_or_(self, arr, idx: Index, value):
        return self._rmw(arr, idx, lambda old: old | value)

    def atomic_xor(self, arr, idx: Index, value):
        return self._rmw(arr, idx, lambda old: old ^ value)
