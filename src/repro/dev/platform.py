"""Platforms: families of devices an accelerator can target.

Two platform kinds exist in the reproduction, matching the two memory
spaces of the paper's offloading model:

* :class:`PlatformCpu` — the host.  One device per machine model (the
  real host by default), host-accessible memory.
* :class:`PlatformCudaSim` — the simulated CUDA platform.  One device
  per GPU die of the modeled machine (a K80 exposes two, exactly as the
  paper's Table 3 counts it), with an isolated memory space.

Platforms are cheap value-like objects; two ``PlatformCpu()`` instances
expose the *same* devices (devices are cached per (kind, machine key))
so buffers allocated through either compare resident-equal.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

from ..core.errors import DeviceError
from ..hardware.registry import host_machine, machine
from ..hardware.specs import HardwareSpec
from .device import Device

__all__ = ["Platform", "PlatformCpu", "PlatformCudaSim"]

_cache_lock = threading.Lock()
_device_cache: Dict[Tuple[str, str], List[Device]] = {}


class Platform:
    """Base class; concrete platforms fix ``kind`` and device creation."""

    kind: str = "abstract"

    def __init__(self, spec: HardwareSpec, accessible_from_host: bool):
        self.spec = spec
        self._accessible_from_host = accessible_from_host

    @property
    def devices(self) -> List[Device]:
        key = (self.kind, self.spec.key)
        with _cache_lock:
            devs = _device_cache.get(key)
            if devs is None:
                devs = [
                    Device(self, self.spec, i, self._accessible_from_host)
                    for i in range(self.spec.device_count)
                ]
                _device_cache[key] = devs
            return devs

    @property
    def device_count(self) -> int:
        return self.spec.device_count

    def get_dev_by_idx(self, idx: int) -> Device:
        devs = self.devices
        if not 0 <= idx < len(devs):
            raise DeviceError(
                f"device index {idx} out of range; platform {self.kind} "
                f"({self.spec.key}) has {len(devs)} device(s)"
            )
        return devs[idx]

    def __repr__(self) -> str:
        return f"<Platform {self.kind} on {self.spec.key}>"


class PlatformCpu(Platform):
    """The host platform.

    ``machine_key`` selects a modeled machine from the hardware registry
    (used by the performance model to stand in for the paper's CPUs);
    by default the actual host is used.
    """

    kind = "cpu"

    def __init__(self, machine_key: str | None = None):
        spec = machine(machine_key) if machine_key else host_machine()
        if spec.kind != "cpu":
            raise DeviceError(f"{spec.key} is not a CPU machine")
        super().__init__(spec, accessible_from_host=True)


class PlatformCudaSim(Platform):
    """The simulated CUDA platform.

    Devices have isolated memory (host access raises) and a simulated
    clock driven by the performance model.  Default machine is the K80
    used for most of the paper's GPU measurements.
    """

    kind = "cuda-sim"

    def __init__(self, machine_key: str = "nvidia-k80"):
        spec = machine(machine_key)
        if spec.kind != "gpu":
            raise DeviceError(f"{spec.key} is not a GPU machine")
        super().__init__(spec, accessible_from_host=False)


def _reset_device_cache() -> None:
    """Test hook: forget all cached devices (invalidates buffers)."""
    with _cache_lock:
        _device_cache.clear()
