"""Devices: the concrete hardware a level hierarchy is mapped onto.

A :class:`Device` owns memory (with capacity accounting), queues and —
for the simulated GPU — a simulated clock that accumulates modeled
execution time.  Devices are handed out by platforms
(:mod:`repro.dev.platform`); user code obtains them through
:func:`repro.dev.manager.get_dev_by_idx`, mirroring paper Listing 5's
``dev::DevMan<Acc>::getDevByIdx(0)``.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING, Optional

from ..core.errors import DeviceError, MemorySpaceError
from ..hardware.specs import HardwareSpec

if TYPE_CHECKING:  # pragma: no cover
    from .platform import Platform

__all__ = ["Device", "MemorySpace"]

_device_ids = itertools.count()


class MemorySpace:
    """Accounting for one device's global memory.

    All bytes physically live in host RAM; the space tracks logical
    residency so the library can enforce the paper's explicit-deep-copy
    memory model and reject over-allocation against the modeled
    device's capacity.
    """

    def __init__(self, capacity_bytes: int):
        self.capacity_bytes = capacity_bytes
        self.allocated_bytes = 0
        self._lock = threading.Lock()

    def reserve(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        with self._lock:
            if self.allocated_bytes + nbytes > self.capacity_bytes:
                raise MemoryError(
                    f"device memory exhausted: requested {nbytes} B, "
                    f"{self.capacity_bytes - self.allocated_bytes} B free "
                    f"of {self.capacity_bytes} B"
                )
            self.allocated_bytes += nbytes

    def release(self, nbytes: int) -> None:
        with self._lock:
            self.allocated_bytes = max(0, self.allocated_bytes - nbytes)

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.allocated_bytes


class Device:
    """One execution device of a platform.

    Attributes
    ----------
    platform:
        The owning :class:`~repro.dev.platform.Platform`.
    spec:
        Hardware model (core counts, clocks, caches) of the machine this
        device belongs to.
    idx:
        Index within the platform (``getDevByIdx`` argument).
    accessible_from_host:
        True for CPU devices: host numpy views of buffers are legal.
        False for the simulated GPU: host access without an explicit
        copy raises :class:`~repro.core.errors.MemorySpaceError`,
        enforcing the paper's memory model.
    """

    def __init__(
        self,
        platform: "Platform",
        spec: HardwareSpec,
        idx: int,
        accessible_from_host: bool,
    ):
        self.platform = platform
        self.spec = spec
        self.idx = idx
        self.accessible_from_host = accessible_from_host
        self.uid = next(_device_ids)
        self.mem = MemorySpace(
            spec.global_mem_bytes // max(1, spec.device_count)
        )
        # Simulated wall clock, advanced by executors that model time
        # (the CUDA-sim back-end); CPU back-ends measure real time.
        # Kept as integer femtoseconds so accumulation is exact: a
        # float running sum would make `t1 - t0` deltas depend on the
        # clock's magnitude (the same modeled launch measuring a
        # last-bit-different time late in a long process).
        self._sim_time_fs = 0
        self._sim_lock = threading.Lock()
        self.kernel_launch_count = 0

    # -- identity -------------------------------------------------------

    @property
    def name(self) -> str:
        return f"{self.spec.architecture} #{self.idx} ({self.platform.kind})"

    def __repr__(self) -> str:
        return f"<Device {self.name}>"

    # -- simulated time ---------------------------------------------------

    def advance_sim_time(self, seconds: float) -> None:
        if seconds < 0:
            raise DeviceError("cannot advance simulated time backwards")
        with self._sim_lock:
            self._sim_time_fs += round(seconds * 1e15)

    @property
    def sim_time_s(self) -> float:
        return self._sim_time_fs * 1e-15

    @property
    def sim_time_fs(self) -> int:
        """The clock in integer femtoseconds — subtract two readings
        for an exact interval (``sim_time_s`` floats lose the last bit
        once the clock is large)."""
        return self._sim_time_fs

    def reset_sim_time(self) -> None:
        with self._sim_lock:
            self._sim_time_fs = 0

    # -- bookkeeping ------------------------------------------------------

    def note_kernel_launch(self) -> None:
        # Many threads launch on one device concurrently (the serving
        # gateway's lanes, user threads sharing a device); a bare += is
        # a lost-update race under free threading.
        with self._sim_lock:
            self.kernel_launch_count += 1

    def require_resident(self, buf) -> None:
        """Assert that ``buf`` lives on this device (kernel-argument
        residency check; alpaka would dereference a wild pointer
        here)."""
        if buf.dev is not self:
            raise MemorySpaceError(
                f"buffer resides on {buf.dev!r}, kernel runs on {self!r}; "
                "copy it first (mem.copy)"
            )
