"""Device manager: ``DevMan<Acc>::getDevByIdx`` (paper Listing 5).

Ties accelerator types to their platforms so host code can select a
device knowing only the accelerator type — the one line that changes
when retargeting an application.
"""

from __future__ import annotations

from typing import Type

from ..core.errors import DeviceError
from .device import Device
from .platform import Platform

__all__ = [
    "get_dev_by_idx",
    "get_dev_count",
    "platform_of",
    "device_workers",
    "shutdown_device_workers",
]


def platform_of(acc_type) -> Platform:
    """The platform an accelerator type executes on.

    Accelerator types expose a ``platform()`` classmethod; this wrapper
    exists so host code (and tests) do not depend on that classmethod
    directly.
    """
    plat = getattr(acc_type, "platform", None)
    if plat is None:
        raise DeviceError(f"{acc_type!r} is not an accelerator type")
    return plat()


def get_dev_by_idx(acc_type, idx: int = 0) -> Device:
    """Select the ``idx``-th device the accelerator can run on."""
    return platform_of(acc_type).get_dev_by_idx(idx)


def get_dev_count(acc_type) -> int:
    return platform_of(acc_type).device_count


# ---------------------------------------------------------------------------
# Block-worker lifecycle
# ---------------------------------------------------------------------------
#
# Worker pools (threads and spawned processes) belong to devices — one
# pool per (device, schedule) — but live in the runtime layer.  These
# wrappers give host code a device-centric view of that lifecycle
# without importing runtime internals.


def device_workers() -> dict:
    """Live block-worker pools: ``{(device_uid, schedule): workers}``.

    Reflects pools already created by launches; a device that has only
    run sequentially (or not at all) has no entry.
    """
    from ..runtime.scheduler import _schedulers

    return {key: sched.worker_count for key, sched in _schedulers.items()}


def shutdown_device_workers() -> None:
    """Tear down every device's block-worker pools (threads and worker
    processes).  Safe to call at any time — the next launch lazily
    recreates what it needs — and implied at interpreter exit."""
    from ..runtime.scheduler import shutdown_schedulers

    shutdown_schedulers()
