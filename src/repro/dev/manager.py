"""Device manager: ``DevMan<Acc>::getDevByIdx`` (paper Listing 5).

Ties accelerator types to their platforms so host code can select a
device knowing only the accelerator type — the one line that changes
when retargeting an application.
"""

from __future__ import annotations

from typing import Type

from ..core.errors import DeviceError
from .device import Device
from .platform import Platform

__all__ = ["get_dev_by_idx", "get_dev_count", "platform_of"]


def platform_of(acc_type) -> Platform:
    """The platform an accelerator type executes on.

    Accelerator types expose a ``platform()`` classmethod; this wrapper
    exists so host code (and tests) do not depend on that classmethod
    directly.
    """
    plat = getattr(acc_type, "platform", None)
    if plat is None:
        raise DeviceError(f"{acc_type!r} is not an accelerator type")
    return plat()


def get_dev_by_idx(acc_type, idx: int = 0) -> Device:
    """Select the ``idx``-th device the accelerator can run on."""
    return platform_of(acc_type).get_dev_by_idx(idx)


def get_dev_count(acc_type) -> int:
    return platform_of(acc_type).device_count
