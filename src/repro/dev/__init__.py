"""Devices, platforms and the device manager (offloading model)."""

from .device import Device, MemorySpace
from .manager import get_dev_by_idx, get_dev_count, platform_of
from .platform import Platform, PlatformCpu, PlatformCudaSim

__all__ = [
    "Device",
    "MemorySpace",
    "Platform",
    "PlatformCpu",
    "PlatformCudaSim",
    "get_dev_by_idx",
    "get_dev_count",
    "platform_of",
]
