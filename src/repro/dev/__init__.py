"""Devices, platforms and the device manager (offloading model)."""

from .device import Device, MemorySpace
from .manager import (
    device_workers,
    get_dev_by_idx,
    get_dev_count,
    platform_of,
    shutdown_device_workers,
)
from .platform import Platform, PlatformCpu, PlatformCudaSim

__all__ = [
    "Device",
    "MemorySpace",
    "Platform",
    "PlatformCpu",
    "PlatformCudaSim",
    "device_workers",
    "get_dev_by_idx",
    "get_dev_count",
    "platform_of",
    "shutdown_device_workers",
]
