"""Accelerator math (``alpaka::math``).

Alpaka kernels call ``math::sqrt(acc, x)`` instead of ``std::sqrt`` so
each back-end can supply its native implementation (CUDA intrinsics vs
libm).  Here every back-end shares the numpy implementation — the
point preserved is the *dispatch seam*: kernels depend only on the
accelerator, and a back-end (or a test) can substitute its own math
table, e.g. reduced-precision GPU intrinsics.

All functions accept scalars *and* numpy arrays, so the same kernel
source works on the scalar path and on the vectorised element-level
path (paper Sec. 3.2.4).
"""

from __future__ import annotations

import numpy as np

__all__ = ["MathOps", "DEFAULT_MATH"]


class MathOps:
    """A back-end's math table; override entries by subclassing."""

    # Unary
    @staticmethod
    def sqrt(x):
        return np.sqrt(x)

    @staticmethod
    def rsqrt(x):
        return 1.0 / np.sqrt(x)

    @staticmethod
    def exp(x):
        return np.exp(x)

    @staticmethod
    def log(x):
        return np.log(x)

    @staticmethod
    def sin(x):
        return np.sin(x)

    @staticmethod
    def cos(x):
        return np.cos(x)

    @staticmethod
    def tan(x):
        return np.tan(x)

    @staticmethod
    def abs(x):
        return np.abs(x)

    @staticmethod
    def floor(x):
        return np.floor(x)

    @staticmethod
    def ceil(x):
        return np.ceil(x)

    @staticmethod
    def erf(x):
        try:
            from scipy.special import erf as _erf
            return _erf(x)
        except ImportError:  # pragma: no cover
            return np.vectorize(np.math.erf)(x)

    # Binary
    @staticmethod
    def pow(x, y):
        return np.power(x, y)

    @staticmethod
    def atan2(y, x):
        return np.arctan2(y, x)

    @staticmethod
    def min(x, y):
        return np.minimum(x, y)

    @staticmethod
    def max(x, y):
        return np.maximum(x, y)

    @staticmethod
    def fmod(x, y):
        return np.fmod(x, y)

    # Ternary
    @staticmethod
    def fma(x, y, z):
        """Fused multiply-add.  numpy has no true FMA; the contract kept
        is arithmetic (x*y+z), not the single-rounding guarantee."""
        return x * y + z

    @staticmethod
    def clamp(x, lo, hi):
        return np.minimum(np.maximum(x, lo), hi)


#: Shared default math table.
DEFAULT_MATH = MathOps()
