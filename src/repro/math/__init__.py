"""Accelerator-dispatched math operations."""

from .ops import DEFAULT_MATH, MathOps

__all__ = ["MathOps", "DEFAULT_MATH"]
