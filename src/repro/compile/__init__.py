"""repro.compile — the trace-driven vectorizer.

The paper's central claim is zero-overhead abstraction: an alpaka
kernel compiles to the same machine code a native kernel would
(Fig. 4).  This reproduction's interpreter runs every thread of every
block in Python bytecode — faithful, observable, and orders of
magnitude from that claim.  :mod:`repro.compile` closes part of the
gap without leaving pure numpy:

* :mod:`~repro.compile.tracer` runs the kernel **once** per
  (kernel, work-division, argument-shape) configuration with batched
  symbolic thread coordinates (reusing the ``trace_get_idx`` hook the
  PTX tracer introduced) and records a lane dataflow;
* :mod:`~repro.compile.exprs` is that dataflow's IR and evaluator;
* :mod:`~repro.compile.replay` replays the whole grid as fused numpy
  array operations — AXPY becomes ``y[:n] = a * x[:n] + y[:n]`` — with
  the closure cached on the :class:`~repro.runtime.plan.LaunchPlan`;
* kernels the vectorizer cannot soundly represent (divergent control
  flow, barriers, atomics, shared memory, per-thread RNG) fall back to
  interpretation transparently, with the reason classified, logged
  once, counted (:mod:`~repro.compile.metrics`) and flight-recorded.

Select it like any other block schedule: ``REPRO_SCHEDULER=compiled``,
``tune_schedule=True``, or the fleet's evolve genome.  Set
``REPRO_COMPILE_CROSSCHECK=1`` to make every compiled launch also run
interpreted and assert bit-identity.
"""

from __future__ import annotations

from .exprs import describe_expr
from .metrics import compile_stats, reset_compile_stats
from .replay import (
    CROSSCHECK_ENV,
    CompiledReplay,
    crosscheck_active,
    execute_compiled,
    replay_for,
)
from .tracer import CompileAcc, CompileFallback, trace_kernel

__all__ = [
    "CompileAcc",
    "CompileFallback",
    "CompiledReplay",
    "trace_kernel",
    "replay_for",
    "execute_compiled",
    "crosscheck_active",
    "CROSSCHECK_ENV",
    "compile_stats",
    "reset_compile_stats",
    "describe_expr",
]
