"""The compile tracer: run a kernel once with batched symbolic threads.

A :class:`CompileAcc` stands in for the accelerator while the kernel
executes a single time.  Index queries (via the same ``trace_get_idx``
hook the PTX tracer uses) return :class:`SymValue` operands carrying a
:class:`~repro.compile.exprs.LaneIndex` expression instead of a number;
arithmetic, comparisons and numpy ufuncs on them grow a dataflow graph;
array accesses record :class:`Load`/:class:`Store` nodes.  The recorded
trace replays the *whole grid* as fused numpy operations.

What is representable, and what falls back:

* straight-line code — always;
* **thread-uniform branches** (``if alpha != 0:``): the predicate is
  evaluated concretely against the live arguments and recorded as a
  guard; replay re-checks it and re-traces on a flip;
* the **canonical bounds guard** ``if i < n:`` (a thread-derived
  integer strictly/weakly below a uniform bound) — lowered to a lane
  mask applied to every subsequent store.  Only this comparison shape
  is maskable; any other lane-dependent truth test (``min``/``max``
  idioms, inverted guards, data-dependent branches) raises
  :class:`CompileFallback` so the launch transparently falls back to
  interpretation;
* **grid-strided element spans** (:func:`repro.core.element.
  grid_strided_spans`): the per-thread clipped spans of all threads
  tile ``[0, extent)`` exactly once, so the whole loop collapses into
  one :class:`SpanLoad`/:class:`SpanStore` over the flat extent;
* barriers, atomics, shared memory, per-thread RNG, lane-dependent
  ``int()``/``range()`` and loads that alias an earlier store under a
  different index — classified fallbacks, never silent wrong answers.

:class:`CompileFallback` derives from ``BaseException`` on purpose: a
kernel's own ``except Exception`` must not swallow the classifier.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.index import Origin, Unit
from ..core.vec import Vec
from ..math.ops import DEFAULT_MATH
from .exprs import (
    Arg,
    Const,
    Expr,
    LaneIndex,
    Load,
    SpanLoad,
    SpanStore,
    Store,
    Ufunc,
)

__all__ = [
    "CompileFallback",
    "CompileAcc",
    "SymValue",
    "TraceState",
    "trace_kernel",
    "TraceResult",
    "MAX_TRACE_NODES",
    "MAX_MASK_GUARDS",
]

#: Upper bound on expression nodes per trace; a kernel unrolling past
#: this (large concrete loops) falls back rather than compiling into a
#: graph slower to evaluate than interpretation.
MAX_TRACE_NODES = 20000

#: Upper bound on stacked bounds-guard masks; a symbolic ``while`` loop
#: re-testing its lane condition hits this cap instead of spinning.
MAX_MASK_GUARDS = 8


class CompileFallback(BaseException):
    """Trace abandoned for a classified reason.

    ``reason`` is a short slug (the metrics/flight label); ``detail``
    the human explanation logged once per (kernel, reason).
    """

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(detail or reason)
        self.reason = reason
        self.detail = detail or reason


class TraceState:
    """Shared mutable state of one kernel trace."""

    def __init__(self, work_div, args: tuple):
        self.work_div = work_div
        self.args = args
        self.nodes = 0
        #: Canonical bounds guards, in trace order: (op, lane, bound).
        self.masks: List[Tuple[str, Expr, Expr]] = []
        #: Uniform guards: (expr, expected concrete value).
        self.guards: List[Tuple[Expr, object]] = []
        #: Recorded stores, in program order.
        self.stores: list = []
        #: (pos, index-node ids) -> SymValue last stored there, for
        #: exact read-after-write forwarding.
        self.forwarded = {}
        #: Array positions written so far (alias analysis is identity
        #: of index expressions; anything else is a fallback).
        self.stored_positions = set()

    def count(self, n: int = 1) -> None:
        self.nodes += n
        if self.nodes > MAX_TRACE_NODES:
            raise CompileFallback(
                "trace-too-large",
                f"trace exceeded {MAX_TRACE_NODES} expression nodes "
                f"(a concretely unrolled loop?)",
            )

    def add_mask(self, op: str, lane: Expr, bound: Expr) -> None:
        if len(self.masks) >= MAX_MASK_GUARDS:
            raise CompileFallback(
                "divergent-control-flow",
                f"more than {MAX_MASK_GUARDS} lane-dependent bounds "
                f"guards (symbolic loop condition?)",
            )
        self.masks.append((op, lane, bound))

    def add_uniform_guard(self, expr: Expr, expected) -> None:
        self.guards.append((expr, expected))

    def add_store(self, store) -> None:
        self.stores.append(store)


def _sample(fn, values):
    """Concrete sample value of a uniform op, or None if unavailable."""
    if any(v is None for v in values):
        return None
    try:
        with np.errstate(all="ignore"):
            return fn(*values)
    except Exception:
        return None


class SymValue:
    """A traced operand: one value per thread of the grid.

    ``lane=False`` marks a *uniform* value (same in every thread); its
    ``value`` is the concrete sample computed from the live arguments,
    which is what uniform branches and ``int()`` conversions consume.
    """

    __slots__ = ("st", "expr", "value", "lane", "cmp")

    def __init__(self, st: TraceState, expr: Expr, value=None,
                 lane: bool = False, cmp: Optional[tuple] = None):
        self.st = st
        self.expr = expr
        self.value = value
        self.lane = lane
        self.cmp = cmp

    # -- helpers --------------------------------------------------------

    def _coerce(self, other) -> "SymValue":
        if isinstance(other, SymValue):
            return other
        if isinstance(other, (bool, int, float, np.bool_, np.integer,
                              np.floating)):
            self.st.count()
            return SymValue(self.st, Const(other), value=other, lane=False)
        raise CompileFallback(
            "unsupported-op",
            f"operand of unsupported type {type(other).__name__!r} in "
            f"traced arithmetic",
        )

    def _apply(self, fn, *operands, cmp=None) -> "SymValue":
        syms = [self._coerce(o) for o in operands]
        self.st.count()
        expr = Ufunc(fn, tuple(s.expr for s in syms))
        lane = any(s.lane for s in syms)
        value = None if lane else _sample(fn, [s.value for s in syms])
        return SymValue(self.st, expr, value=value, lane=lane, cmp=cmp)

    # -- arithmetic -----------------------------------------------------

    def __add__(self, other):
        return self._apply(np.add, self, other)

    def __radd__(self, other):
        return self._apply(np.add, other, self)

    def __sub__(self, other):
        return self._apply(np.subtract, self, other)

    def __rsub__(self, other):
        return self._apply(np.subtract, other, self)

    def __mul__(self, other):
        return self._apply(np.multiply, self, other)

    def __rmul__(self, other):
        return self._apply(np.multiply, other, self)

    def __truediv__(self, other):
        return self._apply(np.true_divide, self, other)

    def __rtruediv__(self, other):
        return self._apply(np.true_divide, other, self)

    def __floordiv__(self, other):
        return self._apply(np.floor_divide, self, other)

    def __rfloordiv__(self, other):
        return self._apply(np.floor_divide, other, self)

    def __mod__(self, other):
        return self._apply(np.mod, self, other)

    def __rmod__(self, other):
        return self._apply(np.mod, other, self)

    def __pow__(self, other):
        return self._apply(np.power, self, other)

    def __rpow__(self, other):
        return self._apply(np.power, other, self)

    def __neg__(self):
        return self._apply(np.negative, self)

    def __pos__(self):
        return self

    def __abs__(self):
        return self._apply(np.abs, self)

    # -- bitwise / logical ---------------------------------------------

    def __and__(self, other):
        return self._apply(np.bitwise_and, self, other)

    __rand__ = __and__

    def __or__(self, other):
        return self._apply(np.bitwise_or, self, other)

    __ror__ = __or__

    def __xor__(self, other):
        return self._apply(np.bitwise_xor, self, other)

    __rxor__ = __xor__

    def __invert__(self):
        return self._apply(np.invert, self)

    def __lshift__(self, other):
        return self._apply(np.left_shift, self, other)

    def __rshift__(self, other):
        return self._apply(np.right_shift, self, other)

    # -- comparisons ----------------------------------------------------

    def _compare(self, fn, op, other):
        o = self._coerce(other)
        return self._apply(fn, self, o, cmp=(op, self, o))

    def __lt__(self, other):
        return self._compare(np.less, "lt", other)

    def __le__(self, other):
        return self._compare(np.less_equal, "le", other)

    def __gt__(self, other):
        return self._compare(np.greater, "gt", other)

    def __ge__(self, other):
        return self._compare(np.greater_equal, "ge", other)

    def __eq__(self, other):  # noqa: D105
        return self._compare(np.equal, "eq", other)

    def __ne__(self, other):
        return self._compare(np.not_equal, "ne", other)

    __hash__ = object.__hash__

    # -- truthiness & conversions --------------------------------------

    def __bool__(self) -> bool:
        if not self.lane:
            # Thread-uniform branch: take the concrete path and guard
            # the predicate so a flipped argument re-traces.
            val = bool(self.value)
            self.st.add_uniform_guard(self.expr, val)
            return val
        cmp = self.cmp
        if cmp is not None:
            op, lhs, rhs = cmp
            if op in ("lt", "le") and lhs.lane and not rhs.lane:
                # The canonical bounds guard `if i < n:` — the taken
                # path is traced with the mask applied to every
                # subsequent store.  No other comparison shape is
                # maskable: builtin min()/max() evaluate the uniform
                # operand on the *left*, which lands here as
                # uniform-vs-lane and must divert, not mask.
                self.st.add_mask(op, lhs.expr, rhs.expr)
                return True
        raise CompileFallback(
            "divergent-control-flow",
            "lane-dependent branch is not the canonical `if i < n:` "
            "bounds guard",
        )

    def _concrete(self, kind):
        if self.lane:
            raise CompileFallback(
                "divergent-control-flow",
                f"lane-dependent value used as a concrete {kind} "
                f"(range()/len()/index arithmetic on thread indices?)",
            )
        if self.value is None:  # pragma: no cover - uniforms are sampled
            raise CompileFallback(
                "unsupported-op", f"uniform {kind} without a sample value"
            )
        return self.value

    def __index__(self) -> int:
        v = int(self._concrete("integer"))
        self.st.add_uniform_guard(self.expr, v)
        return v

    __int__ = __index__

    def __float__(self) -> float:
        v = float(self._concrete("float"))
        self.st.add_uniform_guard(self.expr, v)
        return v

    # -- numpy interception --------------------------------------------

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        if method != "__call__" or kwargs.get("out") is not None:
            raise CompileFallback(
                "unsupported-op",
                f"numpy ufunc method {ufunc.__name__}.{method} on traced "
                f"values",
            )
        kwargs.pop("out", None)
        if kwargs:
            raise CompileFallback(
                "unsupported-op",
                f"numpy ufunc {ufunc.__name__} with keyword arguments on "
                f"traced values",
            )
        return self._apply(ufunc, *inputs)

    def __repr__(self):
        kind = "lane" if self.lane else f"uniform={self.value!r}"
        return f"SymValue({kind})"


class _SymSpan:
    """The collapsed grid-strided element span ``[0, extent)``.

    Deliberately attribute-free beyond identity: kernels that poke at
    ``span.start`` (e.g. iota-style index generation) raise
    ``AttributeError`` and fall back to interpretation.
    """

    __slots__ = ("extent",)

    def __init__(self, extent: SymValue):
        self.extent = extent


class SymArrayArg:
    """A global-memory array argument during tracing.

    Metadata (`dtype`, `ndim`, `shape`) is concrete — the compile cache
    keys on it — while element accesses grow the dataflow.
    """

    __slots__ = ("st", "pos", "arr")

    def __init__(self, st: TraceState, pos: int, arr: np.ndarray):
        self.st = st
        self.pos = pos
        self.arr = arr

    @property
    def dtype(self):
        return self.arr.dtype

    @property
    def ndim(self):
        return self.arr.ndim

    @property
    def shape(self):
        return self.arr.shape

    def __len__(self):
        return len(self.arr)

    def _index_exprs(self, idx) -> Tuple[Tuple[Expr, ...], bool, tuple]:
        """(index exprs, any-lane?, concrete sample index or None)."""
        items = idx if isinstance(idx, tuple) else (idx,)
        exprs = []
        lane = False
        sample: Optional[list] = []
        for it in items:
            if isinstance(it, SymValue):
                exprs.append(it.expr)
                lane = lane or it.lane
                if sample is not None and not it.lane:
                    sample.append(it.value)
                else:
                    sample = None
            elif isinstance(it, (int, np.integer)):
                self.st.count()
                exprs.append(Const(int(it)))
                if sample is not None:
                    sample.append(int(it))
            else:
                raise CompileFallback(
                    "unsupported-op",
                    f"array indexed with {type(it).__name__!r} while "
                    f"tracing (slices and boolean masks do not compile)",
                )
        return tuple(exprs), lane, (None if lane or sample is None
                                    else tuple(sample))

    def _forward_key(self, exprs: Tuple[Expr, ...]):
        return (self.pos,) + tuple(id(e) for e in exprs)

    def __getitem__(self, idx):
        if isinstance(idx, _SymSpan):
            key = ("span", self.pos, id(idx.extent.expr))
            fwd = self.st.forwarded.get(key)
            if fwd is not None:
                return fwd
            if self.pos in self.st.stored_positions:
                raise CompileFallback(
                    "load-after-store",
                    "span load from an array already written under a "
                    "different index",
                )
            self.st.count()
            return SymValue(
                self.st, SpanLoad(self.pos, idx.extent.expr), lane=True
            )
        exprs, lane, sample = self._index_exprs(idx)
        key = self._forward_key(exprs)
        fwd = self.st.forwarded.get(key)
        if fwd is not None:
            return fwd
        if self.pos in self.st.stored_positions:
            raise CompileFallback(
                "load-after-store",
                "load from an array already written under a different "
                "index (cannot prove the accesses disjoint)",
            )
        self.st.count()
        node = Load(self.pos, exprs)
        if not lane:
            value = None
            if sample is not None:
                try:
                    value = self.arr[
                        sample[0] if len(sample) == 1 else sample
                    ]
                except Exception:
                    value = None
            return SymValue(self.st, node, value=value, lane=False)
        return SymValue(self.st, node, lane=True)

    def _coerce_value(self, value) -> SymValue:
        if isinstance(value, SymValue):
            return value
        if isinstance(value, (bool, int, float, np.bool_, np.integer,
                              np.floating)):
            self.st.count()
            return SymValue(self.st, Const(value), value=value, lane=False)
        raise CompileFallback(
            "unsupported-op",
            f"store of unsupported value type {type(value).__name__!r}",
        )

    def __setitem__(self, idx, value) -> None:
        val = self._coerce_value(value)
        if isinstance(idx, _SymSpan):
            self.st.count()
            self.st.add_store(SpanStore(
                self.pos, idx.extent.expr, val.expr, len(self.st.masks)
            ))
            self.st.stored_positions.add(self.pos)
            self.st.forwarded[("span", self.pos, id(idx.extent.expr))] = val
            return
        exprs, _lane, _sample = self._index_exprs(idx)
        self.st.count()
        self.st.add_store(Store(self.pos, exprs, val.expr, len(self.st.masks)))
        self.st.stored_positions.add(self.pos)
        self.st.forwarded[self._forward_key(exprs)] = val

    def __repr__(self):
        return f"SymArrayArg(arg{self.pos}, {self.arr.dtype}, " \
               f"shape={self.arr.shape})"


class _CompileVec:
    """Vec look-alike over symbolic per-axis components."""

    def __init__(self, components):
        self._c = list(components)

    def __getitem__(self, i):
        return self._c[i]

    def __iter__(self):
        return iter(self._c)

    def __len__(self):
        return len(self._c)

    @property
    def dim(self):
        return len(self._c)


class CompileAcc:
    """The accelerator stand-in a kernel sees while being compile-traced.

    Geometry queries answer *concretely* (the work division is part of
    the plan identity, so extents are compile-time constants); index
    queries answer symbolically.  Synchronisation, shared memory,
    atomics and RNG are classified fallbacks — per-thread interpretation
    remains their only sound execution.
    """

    def __init__(self, st: TraceState, props):
        self.st = st
        self.props = props
        self.math = DEFAULT_MATH
        self._idx_cache = {}

    # -- geometry (concrete) -------------------------------------------

    @property
    def work_div(self):
        return self.st.work_div

    @property
    def warp_size(self) -> int:
        return self.props.warp_size

    def trace_get_work_div(self, origin: Origin, unit: Unit) -> Vec:
        from ..core.index import get_work_div

        return get_work_div(self.st.work_div, origin, unit)

    # -- index queries (symbolic) --------------------------------------

    def trace_get_idx(self, origin: Origin, unit: Unit) -> _CompileVec:
        key = (origin, unit)
        vec = self._idx_cache.get(key)
        if vec is None:
            vec = self._compute_idx(origin, unit)
            self._idx_cache[key] = vec
        return vec

    def _lane(self, kind: str, axis: int) -> SymValue:
        key = ("lane", kind, axis)
        sym = self._idx_cache.get(key)
        if sym is None:
            self.st.count()
            sym = SymValue(self.st, LaneIndex(kind, axis), lane=True)
            self._idx_cache[key] = sym
        return sym

    def _compute_idx(self, origin: Origin, unit: Unit) -> _CompileVec:
        wd = self.st.work_div
        dim = wd.dim
        comps = []
        for axis in range(dim):
            if origin is Origin.GRID and unit is Unit.BLOCKS:
                comps.append(self._lane("block", axis))
            elif origin is Origin.BLOCK and unit is Unit.THREADS:
                comps.append(self._lane("thread", axis))
            elif origin is Origin.GRID and unit is Unit.THREADS:
                comps.append(self._lane("grid_thread", axis))
            elif origin is Origin.GRID and unit is Unit.ELEMS:
                gt = self._lane("grid_thread", axis)
                comps.append(gt * int(wd.thread_elem_extent[axis]))
            elif origin is Origin.BLOCK and unit is Unit.ELEMS:
                t = self._lane("thread", axis)
                comps.append(t * int(wd.thread_elem_extent[axis]))
            else:
                raise CompileFallback(
                    "unsupported-op",
                    f"index query {origin}/{unit} while compile-tracing",
                )
        return _CompileVec(comps)

    # -- element spans --------------------------------------------------

    def trace_elem_spans(self, extent):
        """Hook consumed by :func:`repro.core.element.grid_strided_spans`:
        the per-thread clipped spans of the whole grid tile
        ``[0, extent)`` exactly once, so the loop collapses to a single
        symbolic span."""
        if isinstance(extent, SymValue):
            if extent.lane:
                raise CompileFallback(
                    "divergent-control-flow",
                    "grid-strided span extent is lane-dependent",
                )
            ext = extent
        else:
            self.st.count()
            ext = SymValue(
                self.st, Const(int(extent)), value=int(extent), lane=False
            )
        yield _SymSpan(ext)

    # -- classified fallbacks ------------------------------------------

    def sync_block_threads(self) -> None:
        raise CompileFallback(
            "barrier", "kernel uses sync_block_threads (block barrier)"
        )

    def shared_mem(self, name, shape, dtype=np.float64):
        raise CompileFallback(
            "shared-memory", f"kernel allocates shared memory {name!r}"
        )

    def shared_var(self, name, dtype=np.float64):
        raise CompileFallback(
            "shared-memory", f"kernel allocates shared variable {name!r}"
        )

    def shared_mem_dyn(self, dtype=np.float64):
        raise CompileFallback(
            "shared-memory", "kernel uses dynamic shared memory"
        )

    def rng(self, seed):
        raise CompileFallback(
            "rng", "kernel draws from a per-thread random stream"
        )

    def _atomic(self, name):
        raise CompileFallback(
            "atomics",
            f"kernel performs {name} (atomics may contend across threads)",
        )

    def atomic_add(self, arr, idx, value):
        self._atomic("atomic_add")

    def atomic_sub(self, arr, idx, value):
        self._atomic("atomic_sub")

    def atomic_min(self, arr, idx, value):
        self._atomic("atomic_min")

    def atomic_max(self, arr, idx, value):
        self._atomic("atomic_max")

    def atomic_exch(self, arr, idx, value):
        self._atomic("atomic_exch")

    def atomic_cas(self, arr, idx, compare, value):
        self._atomic("atomic_cas")

    def atomic_inc(self, arr, idx, limit):
        self._atomic("atomic_inc")

    def atomic_dec(self, arr, idx, limit):
        self._atomic("atomic_dec")

    def atomic_and(self, arr, idx, value):
        self._atomic("atomic_and")

    def atomic_or(self, arr, idx, value):
        self._atomic("atomic_or")

    def atomic_xor(self, arr, idx, value):
        self._atomic("atomic_xor")

    # Lane-dependent scalar queries: sound only per-thread.

    @property
    def block_thread_linear_idx(self):
        raise CompileFallback(
            "divergent-control-flow",
            "kernel reads the concrete in-block linear thread index",
        )

    @property
    def warp_idx(self):
        raise CompileFallback(
            "divergent-control-flow", "kernel reads its warp index"
        )

    @property
    def lane_idx(self):
        raise CompileFallback(
            "divergent-control-flow", "kernel reads its warp lane index"
        )


class TraceResult:
    """Outcome of one successful compile trace."""

    __slots__ = ("stores", "masks", "guards", "nodes")

    def __init__(self, stores, masks, guards, nodes: int):
        self.stores = stores
        self.masks = masks
        self.guards = guards
        self.nodes = nodes


def _make_sym_args(st: TraceState, args: tuple):
    sym = []
    for pos, a in enumerate(args):
        if isinstance(a, np.ndarray):
            sym.append(SymArrayArg(st, pos, a))
        elif isinstance(a, (bool, int, float, np.bool_, np.integer,
                            np.floating)):
            st.count()
            sym.append(SymValue(st, Arg(pos), value=a, lane=False))
        else:
            raise CompileFallback(
                "unsupported-arg",
                f"argument {pos} has uncompilable type "
                f"{type(a).__name__!r}",
            )
    return tuple(sym)


def trace_kernel(kernel, work_div, props, args: tuple) -> TraceResult:
    """Trace ``kernel`` once over batched thread coordinates.

    Raises :class:`CompileFallback` (classified) when the kernel is not
    representable; any *other* exception escaping the kernel body is
    classified as ``unsupported-op`` — the traced operand types simply
    do not support whatever the kernel attempted, and interpretation
    (where the same code runs on real numbers) remains authoritative.
    """
    st = TraceState(work_div, args)
    sym_args = _make_sym_args(st, args)
    acc = CompileAcc(st, props)
    try:
        kernel(acc, *sym_args)
    except CompileFallback:
        raise
    except Exception as exc:
        raise CompileFallback(
            "unsupported-op",
            f"kernel body raised {type(exc).__name__} under the compile "
            f"tracer: {exc}",
        ) from exc
    if not st.stores:
        # A kernel with no observable writes compiles to a no-op —
        # legal (the launch-overhead bench's empty kernel) but worth
        # distinguishing from a lost trace in the result.
        pass
    return TraceResult(
        stores=tuple(st.stores),
        masks=tuple(st.masks),
        guards=tuple(st.guards),
        nodes=st.nodes,
    )
