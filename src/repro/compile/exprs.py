"""Lane-expression IR for trace-compiled kernels.

Where :mod:`repro.trace.ir` records a PTX-flavoured *instruction
stream* for inspection, this module records a *dataflow* over batched
thread coordinates: one expression node per operation the kernel
performed while being traced, evaluated later over every lane (thread)
of the grid at once with numpy array operations.

The node set is deliberately tiny:

* :class:`Const` / :class:`Arg` — uniform scalars (literals and scalar
  kernel arguments, re-read from the live argument tuple on replay);
* :class:`LaneIndex` — a per-thread coordinate (global thread index,
  block index or in-block thread index along one axis);
* :class:`Ufunc` — any numpy universal function applied to evaluated
  operands.  The node stores the *actual ufunc object* the kernel
  invoked, so replay performs bit-for-bit the operation interpretation
  would have performed (``np.sqrt`` compiles to ``np.sqrt``);
* :class:`Load` / :class:`SpanLoad` — global-memory reads, by lane
  index expression or as the whole grid-strided element span.

Evaluation (:func:`eval_expr`) is memoised per (node, selection) and
restricted to the *active lanes* of the enclosing store: the canonical
``if i < n:`` bounds guard becomes a selection, not control flow.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

__all__ = [
    "Const",
    "Arg",
    "LaneIndex",
    "Ufunc",
    "Load",
    "SpanLoad",
    "Store",
    "SpanStore",
    "LaneGeometry",
    "EvalEnv",
    "eval_expr",
    "describe_expr",
]


class Expr:
    """Base class of all lane-expression nodes."""

    __slots__ = ()


class Const(Expr):
    """A literal scalar captured at trace time."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class Arg(Expr):
    """A uniform scalar kernel argument, read from the live argument
    tuple at every replay (so ``alpha`` may change without re-tracing)."""

    __slots__ = ("pos",)

    def __init__(self, pos: int):
        self.pos = pos


class LaneIndex(Expr):
    """A per-thread coordinate along one axis.

    ``kind``: ``"grid_thread"`` (global thread index), ``"block"``
    (block index in grid) or ``"thread"`` (thread index in block).
    Axis 0 is the slowest dimension (library convention).
    """

    __slots__ = ("kind", "axis")

    def __init__(self, kind: str, axis: int):
        self.kind = kind
        self.axis = axis


class Ufunc(Expr):
    """``fn(*args)`` where ``fn`` is the very callable the traced kernel
    invoked (a numpy/scipy ufunc or an operator's ufunc equivalent)."""

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable, args: Tuple[Expr, ...]):
        self.fn = fn
        self.args = args


class Load(Expr):
    """``array_arg[pos][index...]`` — a global-memory gather."""

    __slots__ = ("pos", "index")

    def __init__(self, pos: int, index: Tuple[Expr, ...]):
        self.pos = pos
        self.index = index


class SpanLoad(Expr):
    """The whole grid-strided element span ``array_arg[pos][0:extent]``
    (the union over threads and iterations of their clipped spans)."""

    __slots__ = ("pos", "extent")

    def __init__(self, pos: int, extent: Expr):
        self.pos = pos
        self.extent = extent


class Store:
    """One recorded global-memory write (not an Expr: stores are the
    trace's roots, applied in order during the commit phase)."""

    __slots__ = ("pos", "index", "value", "mask_count")

    def __init__(
        self, pos: int, index: Tuple[Expr, ...], value: Expr, mask_count: int
    ):
        self.pos = pos
        self.index = index
        self.value = value
        self.mask_count = mask_count


class SpanStore:
    """One recorded whole-span write ``array_arg[pos][0:extent] = value``."""

    __slots__ = ("pos", "extent", "value", "mask_count")

    def __init__(self, pos: int, extent: Expr, value: Expr, mask_count: int):
        self.pos = pos
        self.extent = extent
        self.value = value
        self.mask_count = mask_count


# ---------------------------------------------------------------------------
# Lane geometry
# ---------------------------------------------------------------------------


class LaneGeometry:
    """Per-axis coordinate arrays for every thread of one work division.

    Lane ``l`` is the C-order global thread: block ``l // tpb`` (linear,
    C order over the grid-block extent), thread ``l % tpb`` (linear, C
    order over the block-thread extent).  Arrays are built lazily and
    cached — they depend only on the work division, never on arguments.
    """

    def __init__(self, work_div):
        self.work_div = work_div
        self.lanes = int(work_div.block_count) * int(
            work_div.block_thread_count
        )
        self._cache = {}

    def axis_array(self, kind: str, axis: int) -> np.ndarray:
        key = (kind, axis)
        arr = self._cache.get(key)
        if arr is not None:
            return arr
        wd = self.work_div
        tpb = int(wd.block_thread_count)
        lane = np.arange(self.lanes, dtype=np.int64)
        block_lin = lane // tpb
        thread_lin = lane % tpb
        if kind == "block":
            arr = self._delin(block_lin, tuple(wd.grid_block_extent), axis)
        elif kind == "thread":
            arr = self._delin(thread_lin, tuple(wd.block_thread_extent), axis)
        elif kind == "grid_thread":
            b = self._delin(block_lin, tuple(wd.grid_block_extent), axis)
            t = self._delin(thread_lin, tuple(wd.block_thread_extent), axis)
            arr = b * int(wd.block_thread_extent[axis]) + t
        else:  # pragma: no cover - tracer only emits the kinds above
            raise ValueError(f"unknown lane-index kind {kind!r}")
        self._cache[key] = arr
        return arr

    @staticmethod
    def _delin(lin: np.ndarray, extent: Tuple[int, ...], axis: int) -> np.ndarray:
        """C-order component ``axis`` of linear indices over ``extent``."""
        trailing = 1
        for e in extent[axis + 1 :]:
            trailing *= int(e)
        return (lin // trailing) % int(extent[axis])


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


class EvalEnv:
    """One replay's evaluation context: live args + lane selection.

    ``sel`` is ``None`` (all lanes), a ``slice`` (the contiguous-prefix
    fast path of the bounds guard) or a boolean lane mask.  ``sel_key``
    distinguishes memo entries of the same node under different
    selections.
    """

    __slots__ = ("args", "geom", "sel", "sel_key", "memo", "identity_id")

    def __init__(self, args, geom: LaneGeometry, sel=None, sel_key=0,
                 memo=None, identity_id: Optional[int] = None):
        self.args = args
        self.geom = geom
        self.sel = sel
        self.sel_key = sel_key
        self.memo = {} if memo is None else memo
        #: id() of the lane expression known to evaluate to
        #: ``arange(lanes)`` — loads/stores indexed by exactly that
        #: node use a slice view instead of a gather when ``sel`` is a
        #: prefix slice.
        self.identity_id = identity_id


def eval_expr(node: Expr, env: EvalEnv):
    """Evaluate ``node`` over the active lanes of ``env`` (memoised).

    The memo keys on the node *object* (identity hash — ``Expr`` nodes
    never compare equal structurally), which also keeps every evaluated
    node alive for the memo's lifetime, so a recycled ``id()`` can never
    alias two nodes.
    """
    key = (node, env.sel_key)
    memo = env.memo
    if key in memo:
        return memo[key]
    val = _eval(node, env)
    memo[key] = val
    return val


def _restrict(arr: np.ndarray, env: EvalEnv):
    if env.sel is None:
        return arr
    return arr[env.sel]


def _eval(node: Expr, env: EvalEnv):
    if isinstance(node, Const):
        return node.value
    if isinstance(node, Arg):
        return env.args[node.pos]
    if isinstance(node, LaneIndex):
        return _restrict(env.geom.axis_array(node.kind, node.axis), env)
    if isinstance(node, Ufunc):
        vals = [eval_expr(a, env) for a in node.args]
        return node.fn(*vals)
    if isinstance(node, SpanLoad):
        n = int(eval_expr(node.extent, EvalEnv(
            env.args, env.geom, sel=None, sel_key=-1, memo=env.memo
        )))
        return env.args[node.pos][:n]
    if isinstance(node, Load):
        arr = env.args[node.pos]
        if (
            len(node.index) == 1
            and isinstance(env.sel, slice)
            and id(node.index[0]) == env.identity_id
        ):
            # Identity index under a prefix mask: the gather is a view.
            return arr[env.sel]
        idx = tuple(eval_expr(i, env) for i in node.index)
        if len(idx) == 1:
            return arr[idx[0]]
        return arr[idx]
    raise TypeError(f"cannot evaluate {node!r}")  # pragma: no cover


def describe_expr(node) -> str:
    """Compact human-readable rendering (tests and debug dumps)."""
    if isinstance(node, Const):
        return repr(node.value)
    if isinstance(node, Arg):
        return f"arg{node.pos}"
    if isinstance(node, LaneIndex):
        return f"{node.kind}[{node.axis}]"
    if isinstance(node, Ufunc):
        name = getattr(node.fn, "__name__", str(node.fn))
        return f"{name}({', '.join(describe_expr(a) for a in node.args)})"
    if isinstance(node, Load):
        idx = ", ".join(describe_expr(i) for i in node.index)
        return f"load(arg{node.pos}[{idx}])"
    if isinstance(node, SpanLoad):
        return f"span(arg{node.pos}[:{describe_expr(node.extent)}])"
    if isinstance(node, Store):
        idx = ", ".join(describe_expr(i) for i in node.index)
        return f"arg{node.pos}[{idx}] = {describe_expr(node.value)}"
    if isinstance(node, SpanStore):
        return (
            f"arg{node.pos}[:{describe_expr(node.extent)}] = "
            f"{describe_expr(node.value)}"
        )
    return repr(node)
