"""Compiled replay: execute a recorded trace as fused numpy ops.

One :class:`CompiledReplay` holds the trace of one (kernel, work
division, argument-shape) configuration and runs the *whole grid* in a
handful of array operations:

1. **guards** — every thread-uniform predicate the trace branched on is
   re-evaluated against the live arguments; a flip means the kernel
   would take a different path now, so the caller re-traces (a cheap,
   counted event — never a wrong answer);
2. **masks** — the canonical ``if i < n:`` bounds guards become lane
   selections.  When the guarded index is the flat global thread index
   itself the selection is a contiguous **prefix slice** and every load
   and store under it is a view, not a gather — AXPY replays as
   ``y[:n] = a * x[:n] + y[:n]``;
3. **compute, then commit** — all store values and targets are
   evaluated before the first byte of global memory changes.  A replay
   that fails mid-compute (shape surprise, out-of-bounds gather) leaves
   the arguments untouched and falls back to interpretation, where the
   same kernel produces the authoritative result or error.

Replays are cached per argument signature on the plan
(``LaunchPlan._compiled``); negative results (classified fallbacks) are
cached too, so an uncompilable kernel pays the trace attempt once, not
per launch.  ``REPRO_COMPILE_CROSSCHECK=1`` makes every compiled launch
also run interpreted and compares the store targets bit-for-bit.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import CompileCrossCheckError, KernelError
from . import metrics
from .exprs import (
    Const,
    EvalEnv,
    Expr,
    LaneGeometry,
    LaneIndex,
    SpanStore,
    Ufunc,
    eval_expr,
)
from .tracer import CompileFallback, TraceResult, trace_kernel

__all__ = [
    "CompiledReplay",
    "execute_compiled",
    "replay_for",
    "crosscheck_active",
    "CROSSCHECK_ENV",
    "kernel_name",
]

#: Environment variable: any truthy value makes every compiled launch
#: also run interpreted and assert bit-identity of all store targets.
CROSSCHECK_ENV = "REPRO_COMPILE_CROSSCHECK"

_FALSEY = ("", "0", "false", "no", "off")


def crosscheck_active() -> bool:
    """Is compiled-vs-interpreted cross-checking requested?"""
    return os.environ.get(CROSSCHECK_ENV, "").strip().lower() not in _FALSEY


def kernel_name(kernel) -> str:
    return getattr(kernel, "__name__", type(kernel).__name__)


def _signature(args: tuple) -> tuple:
    """Hashable shape of an argument tuple.

    Arrays key on (dtype, shape): the trace embeds concrete metadata
    wherever the kernel observed it.  Scalars key on their exact type —
    a ``np.float32`` argument promotes ufunc results differently from a
    Python float, and bit-identity is the contract.
    """
    sig = []
    for a in args:
        if isinstance(a, np.ndarray):
            sig.append(("nd", a.dtype.str, a.shape))
        else:
            sig.append(("s", type(a)))
    return tuple(sig)


def _is_static(node: Expr) -> bool:
    """True when ``node`` depends only on geometry and literals (its
    value can never change between replays of the same plan)."""
    if isinstance(node, (Const, LaneIndex)):
        return True
    if isinstance(node, Ufunc):
        return all(_is_static(a) for a in node.args)
    return False


class CompiledReplay:
    """One compiled (kernel, work division, arg-shape) configuration."""

    def __init__(self, plan, trace: TraceResult, sig: tuple):
        self.plan = plan
        self.trace = trace
        self.sig = sig
        self.geom = LaneGeometry(plan.work_div)
        self.store_positions = tuple(sorted(
            {s.pos for s in trace.stores}
        ))
        #: mask index -> True/False identity verdict for masks whose
        #: lane side is pure geometry (decided once, not per replay).
        self._static_identity: Dict[int, bool] = {}
        self._lock = threading.Lock()

    # -- guards ---------------------------------------------------------

    def guards_hold(self, args: tuple) -> bool:
        """Do the live arguments still take the traced path?"""
        if not self.trace.guards:
            return True
        memo: dict = {}
        env = EvalEnv(args, self.geom, sel=None, sel_key=0, memo=memo)
        try:
            for expr, expected in self.trace.guards:
                val = eval_expr(expr, env)
                if isinstance(expected, bool):
                    if bool(val) != expected:
                        return False
                elif not (val == expected):
                    return False
        except Exception:
            return False
        return True

    # -- masks ----------------------------------------------------------

    def _identity(self, k: int, lane: Expr, lane_vals: np.ndarray) -> bool:
        """Is mask ``k``'s lane side the flat lane index itself?"""
        static = _is_static(lane)
        if static:
            with self._lock:
                cached = self._static_identity.get(k)
            if cached is not None:
                return cached
        lanes = self.geom.lanes
        ident = (
            lane_vals.shape == (lanes,)
            and lanes > 0
            and int(lane_vals[0]) == 0
            and int(lane_vals[-1]) == lanes - 1
            and bool(
                np.array_equal(lane_vals, np.arange(lanes, dtype=lane_vals.dtype))
            )
        )
        if static:
            with self._lock:
                self._static_identity[k] = ident
        return ident

    def _selections(self, args: tuple, memo: dict) -> List[tuple]:
        """Per-mask-level lane selection: ``levels[k]`` applies to a
        store recorded under the first ``k`` masks.  Each entry is
        ``(sel, sel_key, identity_id)``."""
        geom = self.geom
        levels: List[tuple] = [(None, 0, None)]
        cur = None  # slice | bool ndarray | None
        for k, (op, lane, bound) in enumerate(self.trace.masks):
            env = EvalEnv(args, geom, sel=None, sel_key=0, memo=memo)
            lane_vals = np.asarray(eval_expr(lane, env))
            bval = eval_expr(bound, env)
            if lane_vals.shape != (geom.lanes,):
                lane_vals = np.broadcast_to(lane_vals, (geom.lanes,))
            identity_id: Optional[int] = None
            bscalar = np.asarray(bval)
            if (
                cur is None
                and bscalar.ndim == 0
                and float(bscalar) == int(bscalar)
                and self._identity(k, lane, lane_vals)
            ):
                n = int(bscalar) + (1 if op == "le" else 0)
                cur = slice(0, max(0, min(geom.lanes, n)))
                identity_id = id(lane)
            else:
                cond = lane_vals < bval if op == "lt" else lane_vals <= bval
                if isinstance(cur, slice):
                    prev = np.zeros(geom.lanes, dtype=bool)
                    prev[cur] = True
                    cur = prev & cond
                elif cur is None:
                    cur = cond
                else:
                    cur = cur & cond
            levels.append((cur, k + 1, identity_id))
        return levels

    # -- compute + commit -----------------------------------------------

    def run(self, args: tuple) -> None:
        """Replay the whole grid onto ``args`` (compute, then commit).

        Raises :class:`~repro.compile.tracer.CompileFallback` — with
        the arguments untouched — when evaluation fails; raises
        :class:`~repro.core.errors.KernelError` only for a failure
        *after* mutation began (which the pre-commit shape checks make
        unreachable in practice).
        """
        trace = self.trace
        geom = self.geom
        multi = len(trace.stores) > 1
        try:
            memo: dict = {}
            levels = self._selections(args, memo)
            uenv = EvalEnv(args, geom, sel=None, sel_key=0, memo=memo)
            ops: List[tuple] = []
            for store in trace.stores:
                sel, sel_key, ident = levels[store.mask_count]
                env = EvalEnv(
                    args, geom, sel=sel, sel_key=sel_key, memo=memo,
                    identity_id=ident,
                )
                arr = args[store.pos]
                if isinstance(store, SpanStore):
                    n = int(eval_expr(store.extent, uenv))
                    if store.mask_count:
                        raise CompileFallback(
                            "span-shape",
                            "grid-strided span store under a lane mask",
                        )
                    vals = eval_expr(store.value, uenv)
                    np.broadcast_shapes((n,), np.shape(vals))
                    ops.append(("span", arr, n, vals))
                    continue
                vals = eval_expr(store.value, env)
                if (
                    isinstance(sel, slice)
                    and len(store.index) == 1
                    and id(store.index[0]) == ident
                ):
                    np.broadcast_shapes(
                        ((sel.stop or 0) - (sel.start or 0),), np.shape(vals)
                    )
                    ops.append(("slice", arr, sel, vals))
                else:
                    idx = tuple(eval_expr(i, env) for i in store.index)
                    target = idx[0] if len(idx) == 1 else idx
                    tshape = (
                        np.shape(idx[0]) if len(idx) == 1
                        else np.broadcast_shapes(*(np.shape(i) for i in idx))
                    )
                    np.broadcast_shapes(tshape, np.shape(vals))
                    ops.append(("scatter", arr, target, vals))
            if multi:
                # Two stores may alias: a value that is a *view* of an
                # argument array must be materialised before any commit
                # mutates what it views.
                ops = [
                    (kind, arr, tgt,
                     vals.copy()
                     if isinstance(vals, np.ndarray) and vals.base is not None
                     else vals)
                    for kind, arr, tgt, vals in ops
                ]
        except CompileFallback:
            raise
        except Exception as exc:
            raise CompileFallback(
                "replay-error",
                f"compiled replay failed during evaluation "
                f"({type(exc).__name__}: {exc}); interpretation is "
                f"authoritative",
            ) from exc

        # Commit: plain assignments only.  Nothing below re-evaluates.
        for kind, arr, tgt, vals in ops:
            try:
                if kind == "span":
                    arr[:tgt] = vals
                elif kind == "slice":
                    arr[tgt] = vals
                else:
                    arr[tgt] = vals
            except Exception as exc:  # pragma: no cover - pre-checked
                raise KernelError(
                    "compiled replay failed mid-commit; buffer state may "
                    "be partial"
                ) from exc


# ---------------------------------------------------------------------------
# Plan-level cache + execution
# ---------------------------------------------------------------------------


def replay_for(plan, task, args: tuple) -> Tuple[CompiledReplay, bool]:
    """The cached-or-traced replay for ``args``' shape on ``plan``.

    Returns ``(replay, fresh)`` — ``fresh`` means the trace was just
    recorded against these very arguments, so its guards hold by
    construction.  Raises :class:`CompileFallback` when the kernel does
    not compile for this shape (the verdict is cached; later launches
    pay a dict lookup, not a trace attempt).
    """
    cache: Dict = plan._compiled
    sig = _signature(args)
    entry = cache.get(sig)
    kname = kernel_name(plan.kernel)
    if entry is None:
        metrics.note_trace(kname)
        try:
            trace = trace_kernel(plan.kernel, plan.work_div, plan.props, args)
        except CompileFallback as cf:
            cache[sig] = ("fallback", cf.reason, cf.detail)
            raise
        replay = CompiledReplay(plan, trace, sig)
        cache[sig] = replay
        return replay, True
    if isinstance(entry, tuple):
        raise CompileFallback(entry[1], entry[2])
    metrics.note_cache_hit(kname)
    return entry, False


def _retrace(plan, task, args: tuple) -> CompiledReplay:
    kname = kernel_name(plan.kernel)
    metrics.note_retrace(kname)
    plan._compiled.pop(_signature(args), None)
    replay, _fresh = replay_for(plan, task, args)
    return replay


def execute_compiled(plan, grid, task, interpret=None) -> None:
    """Run one launch through the compiled path.

    ``interpret`` (when cross-checking) is a zero-argument callable
    that dispatches the same launch through the interpreting scheduler.
    Raises :class:`CompileFallback` when the launch must fall back —
    always *before* any argument byte changed.
    """
    args = grid.args
    replay, fresh = replay_for(plan, task, args)
    if not fresh and not replay.guards_hold(args):
        # A uniform predicate flipped (e.g. alpha became 0): the traced
        # path is stale for these arguments.  Re-trace against them.
        replay = _retrace(plan, task, args)
    kname = kernel_name(plan.kernel)
    try:
        if interpret is not None and crosscheck_active():
            _run_crosschecked(replay, args, interpret, kname)
        else:
            replay.run(args)
    except CompileFallback as cf:
        # Cache the verdict so warm launches skip straight to
        # interpretation instead of re-failing the replay.
        plan._compiled[replay.sig] = ("fallback", cf.reason, cf.detail)
        raise
    metrics.note_compiled_launch(kname)


def _run_crosschecked(replay: CompiledReplay, args: tuple, interpret,
                      kname: str) -> None:
    """Run compiled AND interpreted; assert store targets bit-identical.

    The compiled replay runs first (two-phase, so a fallback leaves the
    arguments clean); its results are snapshotted, the inputs restored,
    and the interpreting scheduler re-runs the launch for real.  The
    buffers end up holding the interpreted result — which the check
    just proved identical.
    """
    positions = replay.store_positions
    before = {p: np.array(args[p], copy=True) for p in positions}
    replay.run(args)
    compiled = {p: np.array(args[p], copy=True) for p in positions}
    for p in positions:
        args[p][...] = before[p]
    interpret()
    for p in positions:
        got = np.asarray(args[p])
        want = compiled[p]
        if got.tobytes() != want.tobytes():
            diff = int(np.count_nonzero(
                got.view(np.uint8) != want.view(np.uint8)
            )) if got.shape == want.shape else -1
            raise CompileCrossCheckError(
                f"compiled and interpreted execution of {kname!r} "
                f"disagree on argument {p} "
                f"({'shape mismatch' if diff < 0 else f'{diff} differing bytes'})"
            )
    metrics.note_crosscheck(kname)
