"""Compile-path accounting: process-local stats + telemetry counters.

Every event feeds two sinks at once:

* a cheap in-process snapshot (:func:`compile_stats`) the benchmarks
  and tests assert on (e.g. "a warm replay performed zero re-traces");
* the process metrics registry (:mod:`repro.telemetry.metrics`) as
  ``repro_compile_*`` counters, so the ops endpoints and dump files
  show how much of the fleet's work ran vectorized and why the rest
  fell back.
"""

from __future__ import annotations

import threading
from collections import Counter as _Counter
from typing import Dict

__all__ = [
    "compile_stats",
    "reset_compile_stats",
    "note_trace",
    "note_cache_hit",
    "note_retrace",
    "note_compiled_launch",
    "note_fallback",
    "note_crosscheck",
]

_lock = threading.Lock()
_traces = 0
_cache_hits = 0
_retraces = 0
_compiled_launches = 0
_crosschecks = 0
_fallbacks: "_Counter[str]" = _Counter()


def _registry():
    from ..telemetry.metrics import registry

    return registry()


def note_trace(kernel: str) -> None:
    """A kernel shape was traced (cold or after a guard flip)."""
    global _traces
    with _lock:
        _traces += 1
    _registry().counter(
        "repro_compile_traces_total",
        "Compile traces performed, by kernel",
        kernel=kernel,
    ).inc()


def note_cache_hit(kernel: str) -> None:
    """A warm launch reused a cached compiled replay."""
    global _cache_hits
    with _lock:
        _cache_hits += 1
    _registry().counter(
        "repro_compile_cache_hits_total",
        "Compiled-replay cache hits, by kernel",
        kernel=kernel,
    ).inc()


def note_retrace(kernel: str) -> None:
    """A uniform guard flipped; the shape was re-traced."""
    global _retraces
    with _lock:
        _retraces += 1
    _registry().counter(
        "repro_compile_retraces_total",
        "Compile re-traces after a uniform-guard flip, by kernel",
        kernel=kernel,
    ).inc()


def note_compiled_launch(kernel: str) -> None:
    """A launch executed through the vectorized replay."""
    global _compiled_launches
    with _lock:
        _compiled_launches += 1
    _registry().counter(
        "repro_compile_launches_total",
        "Launches executed as compiled replays, by kernel",
        kernel=kernel,
    ).inc()


def note_fallback(kernel: str, reason: str) -> None:
    """A compiled dispatch fell back to interpretation."""
    with _lock:
        _fallbacks[reason] += 1
    _registry().counter(
        "repro_compile_fallbacks_total",
        "Compiled dispatches that fell back to interpretation, "
        "by kernel and classified reason",
        kernel=kernel,
        reason=reason,
    ).inc()


def note_crosscheck(kernel: str) -> None:
    """A compiled-vs-interpreted cross-check passed."""
    global _crosschecks
    with _lock:
        _crosschecks += 1
    _registry().counter(
        "repro_compile_crosschecks_total",
        "Compiled-vs-interpreted cross-checks that ran (and matched)",
        kernel=kernel,
    ).inc()


def compile_stats() -> Dict[str, object]:
    """Snapshot of the process-local compile counters."""
    with _lock:
        return {
            "traces": _traces,
            "cache_hits": _cache_hits,
            "retraces": _retraces,
            "compiled_launches": _compiled_launches,
            "crosschecks": _crosschecks,
            "fallbacks": dict(_fallbacks),
        }


def reset_compile_stats() -> None:
    """Zero the process-local counters (tests and bench warm-up)."""
    global _traces, _cache_hits, _retraces, _compiled_launches, _crosschecks
    with _lock:
        _traces = 0
        _cache_hits = 0
        _retraces = 0
        _compiled_launches = 0
        _crosschecks = 0
        _fallbacks.clear()
