"""Process-wide telemetry activation.

Activation has three front doors, all landing on the same collector
machinery:

* **environment** — ``REPRO_TELEMETRY`` non-empty installs a session
  collector at import time (zero code changes) and prints the report
  at interpreter exit; ``REPRO_TELEMETRY_EXPORT`` additionally writes
  an export file at exit (``*.json`` → Chrome trace, ``*.prom`` /
  ``*.txt`` → Prometheus text);
* **programmatic** — :func:`repro.telemetry.collect` scopes a private
  collector to a ``with`` block;
* **CLI** — ``python -m repro.telemetry`` (see
  :mod:`repro.telemetry.cli`).

Deliberately import-light, mirroring :mod:`repro.sanitize._state`: the
only work at import is one environment check; the collector and its
numpy-free dependencies load only when telemetry is actually on.
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
from typing import Optional

__all__ = [
    "TELEMETRY_ENV",
    "TELEMETRY_EXPORT_ENV",
    "enabled",
    "activate",
    "deactivate",
    "session_collector",
    "maybe_activate_from_env",
]

#: Environment variable: any non-empty value collects telemetry for the
#: whole process and renders the report at exit.
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Environment variable: path written at interpreter exit — ``*.json``
#: exports the Chrome trace, ``*.prom`` / ``*.txt`` the Prometheus text.
TELEMETRY_EXPORT_ENV = "REPRO_TELEMETRY_EXPORT"

_lock = threading.Lock()
_session = None  # type: Optional[object]
_atexit_armed = False


def enabled() -> bool:
    """Is environment-driven telemetry requested?"""
    return bool(os.environ.get(TELEMETRY_ENV))


def session_collector():
    """The process-wide collector, or None while not activated."""
    return _session


def activate(label: str = "session", export_path: Optional[str] = None):
    """Install (or return) the process-wide collector.

    Registers a :class:`~repro.telemetry.collector.TelemetryCollector`
    recording into the global metrics registry, and arms the atexit
    report.  Idempotent: repeated calls return the same collector.
    """
    global _session, _atexit_armed
    with _lock:
        if _session is not None:
            return _session
        from ..runtime.instrument import register_observer
        from .collector import TelemetryCollector
        from .metrics import registry

        _session = TelemetryCollector(label=label, registry=registry())
        register_observer(_session)
        if not _atexit_armed:
            atexit.register(_report_at_exit, export_path)
            _atexit_armed = True
        return _session


def deactivate() -> None:
    """Unregister and drop the session collector (tests)."""
    global _session
    with _lock:
        if _session is None:
            return
        from ..runtime.instrument import unregister_observer

        unregister_observer(_session)
        _session = None


def maybe_activate_from_env():
    """Called from ``repro/__init__``: activate iff ``REPRO_TELEMETRY``
    is set.  Returns the collector or None."""
    if not enabled():
        return None
    return activate(
        label=f"{TELEMETRY_ENV} session",
        export_path=os.environ.get(TELEMETRY_EXPORT_ENV) or None,
    )


def export_to(collector, path: str) -> str:
    """Write ``collector`` to ``path``, format chosen by suffix
    (``.json`` → Chrome trace, anything else → Prometheus text)."""
    if path.endswith(".json"):
        from .export import write_chrome_trace

        return write_chrome_trace(collector, path)
    from .export import to_prometheus

    with open(path, "w") as fh:
        fh.write(to_prometheus(collector.registry))
    return path


def _report_at_exit(export_path: Optional[str]) -> None:  # pragma: no cover
    collector = _session
    if collector is None:
        return
    try:
        print(collector.render(), file=sys.stderr)
        if export_path:
            written = export_to(collector, export_path)
            print(f"telemetry export written to {written}", file=sys.stderr)
    except Exception as exc:  # noqa: BLE001 - never break interpreter exit
        print(f"telemetry report failed: {exc!r}", file=sys.stderr)
