"""Span-based profiling: timed regions announced through the runtime's
observer hooks.

A *span* is one named, timed region of runtime work — a launch, a plan
build, a queue drain-wait, a copy, a tuning measurement.  Spans are
opened with :func:`span`::

    with span("launch", cat="runtime", device=dev, kernel="gemm"):
        ...

and reach every registered
:class:`~repro.runtime.instrument.ExecutionObserver` via the
``on_span_begin`` / ``on_span_end`` hooks — the telemetry collector
turns them into latency histograms and Chrome ``trace_event`` entries.

**Hot-path contract**: when no observer is registered, :func:`span`
returns a shared no-op context manager after a single falsy check — no
allocation, no clock read.  This is what keeps ``REPRO_TELEMETRY``
unset launches at their uninstrumented cost (guarded by
``benchmarks/bench_launch_overhead.py``).

Spans passed a ``device`` additionally snapshot the device's simulated
clock (:attr:`~repro.dev.device.Device.sim_time_fs`) at both ends, so a
span knows its **wall** duration and its **modeled** duration — the two
quantities whose ratio is the report's modeled-vs-wall skew.
:func:`sim_interval` exposes the bare simulated-clock snapshot as a
context manager; it is the single implementation behind
``repro.bench.sim_time_of`` and the tuner's modeled measurement loop.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from ..runtime import instrument as _instrument
from ..runtime.instrument import notify_span_begin, notify_span_end
from . import tracing

__all__ = ["Span", "span", "record_span", "sim_interval", "NULL_SPAN"]

_ids_lock = threading.Lock()
_next_id = 0


def _new_id() -> int:
    global _next_id
    with _ids_lock:
        _next_id += 1
        return _next_id


class Span:
    """One timed region.  Context manager; re-entry is not supported."""

    __slots__ = (
        "name",
        "cat",
        "attrs",
        "device",
        "span_id",
        "thread_id",
        "t0",
        "t1",
        "sim0_fs",
        "sim1_fs",
        "error",
        "trace",
        "_prev_ctx",
    )

    def __init__(
        self,
        name: str,
        cat: str = "runtime",
        device=None,
        attrs: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        self.cat = cat
        self.device = device
        self.attrs: Dict[str, object] = attrs or {}
        self.span_id = _new_id()
        self.thread_id = 0
        self.t0 = 0.0
        self.t1 = 0.0
        self.sim0_fs = 0
        self.sim1_fs = 0
        self.error: Optional[str] = None
        #: Trace identity within a distributed request (None = the
        #: opening thread had no ambient :mod:`~repro.telemetry.tracing`
        #: context).
        self.trace: Optional[tracing.TraceContext] = None
        self._prev_ctx: Optional[tracing.TraceContext] = None

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "Span":
        self.thread_id = threading.get_ident()
        ctx = tracing.current()
        if ctx is not None:
            # This span becomes a child of the ambient context, and the
            # *ambient* context becomes this span for the block's
            # duration — nested spans and launches parent naturally.
            self.trace = ctx.child()
            self._prev_ctx = tracing.set_current(self.trace)
        if self.device is not None:
            self.sim0_fs = self.device.sim_time_fs
        self.t0 = time.perf_counter()
        notify_span_begin(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.t1 = time.perf_counter()
        if self.device is not None:
            self.sim1_fs = self.device.sim_time_fs
        if exc_type is not None:
            self.error = exc_type.__name__
        if self.trace is not None:
            tracing.set_current(self._prev_ctx)
        notify_span_end(self)
        return False

    # -- durations ------------------------------------------------------

    @property
    def wall_s(self) -> float:
        """Wall seconds between enter and exit (0.0 while open)."""
        return max(0.0, self.t1 - self.t0)

    @property
    def sim_s(self) -> float:
        """Modeled seconds the span's device accrued (0.0 without a
        device or model)."""
        return (self.sim1_fs - self.sim0_fs) * 1e-15

    @property
    def closed(self) -> bool:
        return self.t1 > 0.0

    def __repr__(self) -> str:
        state = f"{self.wall_s * 1e6:.1f}us" if self.closed else "open"
        return f"<Span {self.cat}/{self.name} {state}>"


class _NullSpan:
    """The shared unobserved span: every method is free, nothing records."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False

    def __repr__(self) -> str:
        return "<NullSpan>"


#: The singleton no-op span returned while no observer is registered.
NULL_SPAN = _NullSpan()


def span(name: str, cat: str = "runtime", device=None, **attrs):
    """A context manager timing the enclosed region — or, when nothing
    observes, the shared :data:`NULL_SPAN` (a single falsy check).

    ``device`` opts into simulated-clock capture; remaining keyword
    arguments become span attributes (exported as ``args`` in the
    Chrome trace).
    """
    if not _instrument._observers:
        return NULL_SPAN
    return Span(name, cat, device, attrs)


def record_span(
    name: str,
    t0: float,
    t1: float,
    cat: str = "runtime",
    trace: Optional["tracing.TraceContext"] = None,
    error: Optional[str] = None,
    **attrs,
) -> Optional[Span]:
    """Announce an already-measured region as a closed span.

    For call sites that know a region's endpoints without having
    wrapped it (the gateway learns a request's span only in the
    completion callback; the fleet daemon's op handler measures inside
    a protocol dispatcher).  ``t0``/``t1`` are ``time.perf_counter``
    readings; ``trace`` stamps an explicit trace identity (the ambient
    context is *not* consulted — pass what the request carried).

    Free when unobserved: one falsy check, returns None.
    """
    if not _instrument._observers:
        return None
    sp = Span(name, cat, None, attrs)
    sp.thread_id = threading.get_ident()
    sp.t0 = t0
    sp.t1 = t1
    sp.trace = trace
    sp.error = error
    notify_span_end(sp)
    return sp


@contextmanager
def sim_interval(device) -> Iterator[List[float]]:
    """Capture the modeled seconds ``device`` accrues in a block::

        with sim_interval(dev) as t:
            enqueue(queue, task)
        elapsed = t[0]

    Reads the exact integer-femtosecond counter, so identical modeled
    work measures identically no matter how large the clock has grown.
    This is the one simulated-clock snapshot helper: the bench
    harness's ``sim_time_of`` and the tuner's modeled measurement both
    delegate here.
    """
    out = [0.0]
    start = device.sim_time_fs
    try:
        yield out
    finally:
        out[0] = (device.sim_time_fs - start) * 1e-15
