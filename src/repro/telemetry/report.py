"""The human-readable telemetry report.

:func:`render` turns one
:class:`~repro.telemetry.collector.TelemetryCollector` into the table
an engineer reads to find the slow kernel: per kernel × back-end ×
device launch counts, launch and block latency percentiles, occupancy,
modeled-vs-wall skew, then the cache hit rates and a span summary.

Formatting leans on the shared bench table renderer
(:func:`repro.comparison.render.render_table`), so telemetry reports
look like the paper-figure benches they sit next to.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..comparison.render import render_table
from .collector import TelemetryCollector
from .metrics import Histogram

__all__ = ["render", "summary"]


def _fmt_seconds(seconds: float) -> str:
    if seconds <= 0:
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def _fmt_rate(rate: Optional[float]) -> str:
    return "-" if rate is None else f"{rate * 100:.1f} %"


def _find(collector, metric: str, **labels) -> Optional[object]:
    for inst in collector.registry.instruments(metric):
        have = dict(inst.labels)
        if all(have.get(k) == v for k, v in labels.items()):
            return inst
    return None


def _sum_counters(collector, metric: str, **labels) -> float:
    """Total over every instrument matching ``labels`` (a kernel that ran
    under several schedules owns one counter per schedule)."""
    total = 0.0
    for inst in collector.registry.instruments(metric):
        have = dict(inst.labels)
        if all(have.get(k) == v for k, v in labels.items()):
            total += inst.value
    return total


def _launch_rows(collector: TelemetryCollector) -> List[Dict[str, object]]:
    rows = []
    for kernel, backend, device in collector.kernels():
        launches = _find(
            collector, "repro_launches_total",
            kernel=kernel, backend=backend, device=device,
        )
        launch_h = _find(
            collector, "repro_launch_seconds",
            kernel=kernel, backend=backend, device=device,
        )
        block_h = _find(
            collector, "repro_block_seconds", kernel=kernel, backend=backend
        )
        occ = _find(
            collector, "repro_occupancy_ratio",
            kernel=kernel, backend=backend, device=device,
        )
        wall = _find(
            collector, "repro_launch_wall_seconds_total",
            kernel=kernel, backend=backend, device=device,
        )
        modeled = _find(
            collector, "repro_launch_modeled_seconds_total",
            kernel=kernel, backend=backend, device=device,
        )
        skew = "-"
        if wall is not None and modeled is not None and wall.value > 0:
            if modeled.value > 0:
                skew = f"{modeled.value / wall.value:.2f}x"
        row: Dict[str, object] = {
            "kernel": kernel,
            "backend": backend,
            "launches": int(_sum_counters(
                collector, "repro_launches_total",
                kernel=kernel, backend=backend, device=device,
            )) if launches else 0,
            "launch p50": _fmt_seconds(
                launch_h.percentile(50) if launch_h else 0.0
            ),
        }
        if isinstance(block_h, Histogram) and block_h.count:
            q = block_h.quantiles()
            row["block p50"] = _fmt_seconds(q["p50"])
            row["block p95"] = _fmt_seconds(q["p95"])
            row["block p99"] = _fmt_seconds(q["p99"])
        else:
            row["block p50"] = row["block p95"] = row["block p99"] = "-"
        row["occupancy"] = (
            f"{occ.mean * 100:.0f} %" if isinstance(occ, Histogram) and occ.count
            else "-"
        )
        row["modeled/wall"] = skew
        total = _sum_counters(
            collector, "repro_launches_total",
            kernel=kernel, backend=backend, device=device,
        )
        vectorised = _sum_counters(
            collector, "repro_launches_total",
            kernel=kernel, backend=backend, device=device,
            schedule="compiled",
        )
        row["compiled"] = (
            f"{int(vectorised)}/{int(total)}" if vectorised else "-"
        )
        rows.append(row)
    return rows


def _span_rows(collector: TelemetryCollector) -> List[Dict[str, object]]:
    rows = []
    for inst in collector.registry.instruments("repro_span_seconds"):
        if not isinstance(inst, Histogram) or not inst.count:
            continue
        labels = dict(inst.labels)
        q = inst.quantiles()
        rows.append(
            {
                "span": f"{labels.get('cat', '?')}/{labels.get('span', '?')}",
                "count": inst.count,
                "p50": _fmt_seconds(q["p50"]),
                "p95": _fmt_seconds(q["p95"]),
                "p99": _fmt_seconds(q["p99"]),
                "total": _fmt_seconds(inst.sum),
            }
        )
    rows.sort(key=lambda r: r["span"])
    return rows


def _graph_rows(collector: TelemetryCollector) -> List[Dict[str, object]]:
    """One row per graph track: submissions, node count, critical path
    and the copy/compute overlap ratio (the dataflow-graph scheduler's
    headline numbers)."""
    by_graph: Dict[str, Dict[str, object]] = {}
    for metric in (
        "repro_graph_submits_total",
        "repro_graph_nodes_total",
        "repro_graph_wall_seconds_total",
        "repro_graph_critical_path_seconds",
        "repro_graph_overlap_ratio",
    ):
        for inst in collector.registry.instruments(metric):
            labels = dict(inst.labels)
            key = labels.get("graph", "?")
            row = by_graph.setdefault(
                key, {"graph": key, "mode": labels.get("mode", "?")}
            )
            row[metric] = inst
    rows = []
    for key in sorted(by_graph, key=lambda g: int(g.lstrip("g") or 0)):
        r = by_graph[key]
        submits = r.get("repro_graph_submits_total")
        nodes = r.get("repro_graph_nodes_total")
        wall = r.get("repro_graph_wall_seconds_total")
        cp = r.get("repro_graph_critical_path_seconds")
        ov = r.get("repro_graph_overlap_ratio")
        n_submits = int(submits.value) if submits else 0
        rows.append(
            {
                "graph": r["graph"],
                "mode": r["mode"],
                "submits": n_submits,
                "nodes": int(nodes.value // max(1, n_submits)) if nodes else 0,
                "wall p50": _fmt_seconds(
                    wall.value / n_submits if wall and n_submits else 0.0
                ),
                "critical path p50": _fmt_seconds(
                    cp.percentile(50) if isinstance(cp, Histogram) else 0.0
                ),
                "overlap": (
                    f"{ov.mean:.2f}x"
                    if isinstance(ov, Histogram) and ov.count
                    else "-"
                ),
            }
        )
    return rows


def _serve_rows(collector: TelemetryCollector) -> List[Dict[str, object]]:
    """One row per serving tenant: admissions, rejections, latency
    percentiles — the multi-tenant gateway's fairness at a glance."""
    tenants: Dict[str, Dict[str, object]] = {}
    for inst in collector.registry.instruments("repro_serve_requests_total"):
        labels = dict(inst.labels)
        tenant = labels.get("tenant", "?")
        row = tenants.setdefault(tenant, {"tenant": tenant})
        row[labels.get("outcome", "?")] = int(inst.value)
    for inst in collector.registry.instruments("repro_serve_latency_seconds"):
        if not isinstance(inst, Histogram) or not inst.count:
            continue
        tenant = dict(inst.labels).get("tenant", "?")
        row = tenants.setdefault(tenant, {"tenant": tenant})
        q = inst.quantiles()
        row["_q"] = q
        row["_count"] = inst.count
    rows = []
    for tenant in sorted(tenants):
        r = tenants[tenant]
        q = r.get("_q", {})
        rows.append(
            {
                "tenant": tenant,
                "completed": r.get("_count", 0),
                "queued": r.get("queued", 0),
                "rejected": r.get("rejected", 0),
                "p50": _fmt_seconds(q.get("p50", 0.0)),
                "p95": _fmt_seconds(q.get("p95", 0.0)),
                "p99": _fmt_seconds(q.get("p99", 0.0)),
            }
        )
    return rows


def _fleet_rows(collector: TelemetryCollector) -> List[Dict[str, object]]:
    """One row per fleet coordination mode: how the fleet converged —
    lookups, lease outcomes, measurements actually run vs. results
    adopted from siblings, and how long lease losers waited."""
    modes: Dict[str, Dict[str, int]] = {}
    for inst in collector.registry.instruments(
        "repro_tuning_fleet_requests_total"
    ):
        labels = dict(inst.labels)
        mode = labels.get("mode", "?")
        row = modes.setdefault(mode, {})
        key = f"{labels.get('op', '?')}:{labels.get('outcome', '?')}"
        row[key] = row.get(key, 0) + int(inst.value)
    for metric, name in (
        ("repro_tuning_fleet_measurements_total", "measured"),
        ("repro_tuning_fleet_adopted_total", "adopted"),
    ):
        for inst in collector.registry.instruments(metric):
            mode = dict(inst.labels).get("mode", "?")
            row = modes.setdefault(mode, {})
            row[name] = row.get(name, 0) + int(inst.value)
    wait_h = None
    for inst in collector.registry.instruments(
        "repro_tuning_fleet_lease_wait_seconds"
    ):
        wait_h = inst
    rows = []
    for mode in sorted(modes):
        r = modes[mode]
        rows.append(
            {
                "mode": mode,
                "gets": r.get("get:hit", 0) + r.get("get:miss", 0),
                "hits": r.get("get:hit", 0),
                "leases won": r.get("lease:granted", 0),
                "leases lost": r.get("lease:denied", 0),
                "measured": r.get("measured", 0),
                "adopted": r.get("adopted", 0),
                "wait p95": _fmt_seconds(
                    wait_h.percentile(95)
                    if isinstance(wait_h, Histogram) and wait_h.count
                    else 0.0
                ),
            }
        )
    return rows


def _drift_rows(collector: TelemetryCollector) -> List[Dict[str, object]]:
    """One row per served workload the drift monitor watched: verdicts,
    what each triggered re-tune actually did (completed vs reverted),
    the predicted old→new seconds of the latest re-tune, and background
    re-tune latency."""
    workloads: Dict[str, Dict[str, int]] = {}
    for inst in collector.registry.instruments(
        "repro_tuning_fleet_drift_total"
    ):
        labels = dict(inst.labels)
        wl = labels.get("workload", "?")
        row = workloads.setdefault(wl, {})
        row[labels.get("outcome", "?")] = int(inst.value)
    outcomes: Dict[str, Dict[str, int]] = {}
    for inst in collector.registry.instruments(
        "repro_tuning_drift_retunes_total"
    ):
        labels = dict(inst.labels)
        wl = labels.get("workload", "?")
        workloads.setdefault(wl, {})
        row = outcomes.setdefault(wl, {})
        row[labels.get("outcome", "?")] = int(inst.value)
    predicted: Dict[str, Dict[str, float]] = {}
    for inst in collector.registry.instruments(
        "repro_tuning_drift_predicted_seconds"
    ):
        labels = dict(inst.labels)
        wl = labels.get("workload", "?")
        predicted.setdefault(wl, {})[labels.get("which", "?")] = float(
            inst.value
        )
    if not workloads:
        return []
    retune_h = None
    for inst in collector.registry.instruments(
        "repro_tuning_fleet_retune_seconds"
    ):
        retune_h = inst
    rows = []
    for wl in sorted(workloads):
        r = workloads[wl]
        o = outcomes.get(wl, {})
        p = predicted.get(wl, {})
        if "old" in p or "new" in p:
            old_new = (
                f"{_fmt_seconds(p.get('old', 0.0))}"
                f"→{_fmt_seconds(p.get('new', 0.0))}"
            )
        else:
            old_new = "-"
        rows.append(
            {
                "workload": wl,
                "drift detected": r.get("detected", 0),
                "retuned": r.get("retuned", 0),
                "completed": o.get("completed", 0),
                "reverted": o.get("reverted", 0),
                "cooldown": r.get("cooldown", 0),
                "failed": r.get("failed", 0),
                "old→new": old_new,
                "retune p50": _fmt_seconds(
                    retune_h.percentile(50)
                    if isinstance(retune_h, Histogram) and retune_h.count
                    else 0.0
                ),
            }
        )
    return rows


def _counter_total(collector, metric: str) -> float:
    return sum(inst.value for inst in collector.registry.instruments(metric))


def summary(collector: TelemetryCollector) -> Dict[str, object]:
    """The report's aggregates as a plain dict (programmatic access)."""
    return {
        "launches": int(_counter_total(collector, "repro_launches_total")),
        "copies": int(_counter_total(collector, "repro_copies_total")),
        "queue_drains": int(
            _counter_total(collector, "repro_queue_drains_total")
        ),
        "sanitizer_findings": int(
            _counter_total(collector, "repro_sanitizer_findings_total")
        ),
        "graph_submits": int(
            _counter_total(collector, "repro_graph_submits_total")
        ),
        "serve_requests": int(
            _counter_total(collector, "repro_serve_requests_total")
        ),
        "fleet_measurements": int(
            _counter_total(collector, "repro_tuning_fleet_measurements_total")
        ),
        "fleet_adopted": int(
            _counter_total(collector, "repro_tuning_fleet_adopted_total")
        ),
        "drift_retunes": int(
            sum(
                inst.value
                for inst in collector.registry.instruments(
                    "repro_tuning_fleet_drift_total"
                )
                if dict(inst.labels).get("outcome") == "retuned"
            )
        ),
        "plan_cache_hit_rate": collector.plan_cache_hit_rate,
        "tuning_cache_hit_rate": collector.tuning_cache_hit_rate,
        "trace_events": len(collector.events),
        "dropped_events": collector.dropped_events,
    }


def render(collector: TelemetryCollector) -> str:
    """The full report: launch table, cache rates, span summary."""
    parts: List[str] = []
    title = "repro telemetry report"
    if collector.label:
        title += f" — {collector.label}"
    parts.append(title)
    parts.append("=" * len(title))

    agg = summary(collector)
    launch_rows = _launch_rows(collector)
    if launch_rows:
        parts.append("")
        parts.append(
            render_table(launch_rows, "Launches (per kernel x back-end)")
        )
    else:
        parts.append("")
        parts.append("No launches recorded.")

    parts.append("")
    parts.append(
        f"plan-cache hit rate:   {_fmt_rate(agg['plan_cache_hit_rate'])}"
    )
    parts.append(
        f"tuning-cache hit rate: {_fmt_rate(agg['tuning_cache_hit_rate'])}"
    )
    parts.append(
        f"launches: {agg['launches']}   copies: {agg['copies']}   "
        f"queue drains: {agg['queue_drains']}   "
        f"sanitizer findings: {agg['sanitizer_findings']}"
    )

    graph_rows = _graph_rows(collector)
    if graph_rows:
        parts.append("")
        parts.append(
            render_table(
                graph_rows, "Dataflow graphs (critical path & overlap)"
            )
        )

    serve_rows = _serve_rows(collector)
    if serve_rows:
        parts.append("")
        parts.append(
            render_table(serve_rows, "Serving (per tenant)")
        )

    fleet_rows = _fleet_rows(collector)
    if fleet_rows:
        parts.append("")
        parts.append(
            render_table(fleet_rows, "Tuning fleet (per coordination mode)")
        )

    drift_rows = _drift_rows(collector)
    if drift_rows:
        parts.append("")
        parts.append(
            render_table(drift_rows, "Online tuning (drift per workload)")
        )

    span_rows = _span_rows(collector)
    if span_rows:
        parts.append("")
        parts.append(render_table(span_rows, "Spans"))

    if collector.dropped_events:
        parts.append("")
        parts.append(
            f"WARNING: trace buffer full — {collector.dropped_events} "
            f"event(s) dropped beyond the first {collector.max_events}; "
            "the exported trace is incomplete."
        )
    return "\n".join(parts)
