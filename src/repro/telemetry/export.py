"""Exporters: Chrome ``trace_event`` JSON and Prometheus text format.

Two wire formats, both consumed by standard tools:

* :func:`to_chrome_trace` emits the Trace Event Format (the
  ``traceEvents`` JSON object array) that Perfetto and
  ``chrome://tracing`` load directly — spans and launches as complete
  (``"X"``) slices, queue drains and sanitizer reports as instant
  (``"i"``) markers;
* :func:`to_prometheus` renders a
  :class:`~repro.telemetry.metrics.MetricsRegistry` in the Prometheus
  text exposition format (``# HELP`` / ``# TYPE`` headers, cumulative
  ``_bucket{le=...}`` histogram series).

:func:`validate_trace` is the schema check the CI job and the test
suite run against exported traces: it accepts exactly what the Trace
Event Format requires, so a trace that validates here loads in
Perfetto.
"""

from __future__ import annotations

import json
import re
from typing import List, Optional, Union

from .collector import TelemetryCollector
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_prometheus",
    "validate_trace",
    "TraceValidationError",
]

#: ``pid`` every event carries — the library is single-process.
TRACE_PID = 1

_VALID_PHASES = {"X", "i", "B", "E", "M", "C"}


class TraceValidationError(ValueError):
    """An exported trace violates the Trace Event Format."""


def to_chrome_trace(collector: TelemetryCollector) -> dict:
    """The collector's events as a Trace Event Format object.

    Returns the JSON-ready dict (``{"traceEvents": [...], ...}``);
    serialise with :func:`json.dump` or :func:`write_chrome_trace`.
    """
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": f"repro telemetry {collector.label}".strip()},
        }
    ]
    for ev in list(collector.events):
        entry = {
            "name": ev.name,
            "cat": ev.cat,
            "ph": ev.ph,
            "ts": max(0.0, ev.ts),
            "pid": TRACE_PID,
            "tid": ev.tid,
            "args": ev.args,
        }
        if ev.ph == "X":
            entry["dur"] = max(0.0, ev.dur)
        if ev.ph == "i":
            entry["s"] = "t"  # instant scope: thread
        events.append(entry)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.telemetry",
            "dropped_events": collector.dropped_events,
        },
    }


def write_chrome_trace(collector: TelemetryCollector, path: str) -> str:
    """Serialise :func:`to_chrome_trace` to ``path``; returns the path."""
    trace = to_chrome_trace(collector)
    validate_trace(trace)
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")
    return path


def validate_trace(trace: Union[dict, str]) -> dict:
    """Check ``trace`` (dict or JSON string) against the Trace Event
    Format; returns the parsed dict or raises
    :class:`TraceValidationError` naming the offending event."""
    if isinstance(trace, str):
        try:
            trace = json.loads(trace)
        except ValueError as exc:
            raise TraceValidationError(f"not valid JSON: {exc}") from None
    if not isinstance(trace, dict):
        raise TraceValidationError(
            f"top level must be an object, got {type(trace).__name__}"
        )
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise TraceValidationError("missing 'traceEvents' array")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise TraceValidationError(f"{where}: not an object")
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            raise TraceValidationError(f"{where}: bad phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise TraceValidationError(f"{where}: missing event name")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise TraceValidationError(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TraceValidationError(f"{where}: bad dur {dur!r}")
        for key in ("pid", "tid"):
            if key in ev and not isinstance(ev[key], int):
                raise TraceValidationError(
                    f"{where}: {key} must be an integer"
                )
        if "args" in ev and not isinstance(ev["args"], dict):
            raise TraceValidationError(f"{where}: args must be an object")
    try:
        json.dumps(trace)
    except (TypeError, ValueError) as exc:
        raise TraceValidationError(
            f"trace is not JSON-serialisable: {exc}"
        ) from None
    return trace


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


#: Legal exposition-format identifiers.  Names produced at runtime (a
#: kernel class name, a tenant string from the network) may contain
#: anything; the exporter must never emit a line Prometheus rejects.
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _sanitize_name(name: str, pattern: "re.Pattern") -> str:
    if pattern.match(name):
        return name
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    # Text-format escaping for quoted label values: backslash, quote
    # and newline, in that order (escaping the escapes first).
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    # HELP lines escape only backslash and newline (quotes stay bare).
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_str(labels, extra: Optional[dict] = None) -> str:
    pairs = list(labels) + sorted((extra or {}).items())
    if not pairs:
        return ""
    inner = ",".join(
        f"{_sanitize_name(str(k), _LABEL_NAME_RE)}"
        f'="{_escape_label_value(str(v))}"'
        for k, v in pairs
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render ``registry`` in the Prometheus text exposition format.

    Metric names are emitted as registered (the runtime's counters
    already follow the ``_total`` convention); histograms expand into
    cumulative ``_bucket`` series plus ``_sum`` and ``_count``.

    Conformance guarantees (the text-format spec is strict and most
    scrapers are stricter): label values escape backslash, double quote
    and newline; ``# HELP`` text escapes backslash and newline; metric
    and label names with characters outside the legal identifier set
    are rewritten with underscores; and each family's ``# HELP`` /
    ``# TYPE`` headers are emitted exactly once, before its samples.
    """
    lines: List[str] = []
    emitted_families = set()
    for raw_name in registry.names():
        kind = registry.kind_of(raw_name)
        help_text = registry.help_of(raw_name)
        name = _sanitize_name(raw_name, _METRIC_NAME_RE)
        # Two registered names collapsing onto one sanitized family
        # must not repeat the headers mid-exposition.
        if name not in emitted_families:
            emitted_families.add(name)
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
        for inst in registry.instruments(raw_name):
            if isinstance(inst, (Counter, Gauge)):
                lines.append(
                    f"{name}{_labels_str(inst.labels)} {_fmt(inst.value)}"
                )
            elif isinstance(inst, Histogram):
                cumulative = inst.cumulative_buckets()
                for bound, count in cumulative:
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels_str(inst.labels, {'le': _fmt(bound)})}"
                        f" {count}"
                    )
                lines.append(
                    f"{name}_bucket"
                    f"{_labels_str(inst.labels, {'le': '+Inf'})}"
                    f" {inst.count}"
                )
                lines.append(
                    f"{name}_sum{_labels_str(inst.labels)} {_fmt(inst.sum)}"
                )
                lines.append(
                    f"{name}_count{_labels_str(inst.labels)} {inst.count}"
                )
    return "\n".join(lines) + "\n" if lines else ""
