"""Exporters: Chrome ``trace_event`` JSON and Prometheus text format.

Two wire formats, both consumed by standard tools:

* :func:`to_chrome_trace` emits the Trace Event Format (the
  ``traceEvents`` JSON object array) that Perfetto and
  ``chrome://tracing`` load directly — spans and launches as complete
  (``"X"``) slices, queue drains and sanitizer reports as instant
  (``"i"``) markers;
* :func:`to_prometheus` renders a
  :class:`~repro.telemetry.metrics.MetricsRegistry` in the Prometheus
  text exposition format (``# HELP`` / ``# TYPE`` headers, cumulative
  ``_bucket{le=...}`` histogram series).

:func:`validate_trace` is the schema check the CI job and the test
suite run against exported traces: it accepts exactly what the Trace
Event Format requires, so a trace that validates here loads in
Perfetto.

:func:`stitch_traces` merges the per-process traces of a distributed
run (gateway, fleet daemon, pool workers) into one Perfetto-loadable
file: each input's default-pid events are remapped to that process's
real pid, and cross-process parent/child span links (the
``trace_id`` / ``span_id`` / ``parent_id`` args the collector stamps)
become flow arrows (``"s"``/``"f"`` events).
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, Iterable, List, Optional, Union

from .collector import TelemetryCollector
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_prometheus",
    "validate_trace",
    "stitch_traces",
    "TraceValidationError",
]

#: Default ``pid`` for events of the exporting process.  Events the
#: collector replayed from *other* processes (pool-worker spans) carry
#: their real pid instead; ``otherData.pid`` records the exporter's
#: real pid so :func:`stitch_traces` can remap the default.
TRACE_PID = 1

_VALID_PHASES = {"X", "i", "B", "E", "M", "C", "s", "t", "f"}
_FLOW_PHASES = {"s", "t", "f"}


class TraceValidationError(ValueError):
    """An exported trace violates the Trace Event Format."""


def to_chrome_trace(collector: TelemetryCollector) -> dict:
    """The collector's events as a Trace Event Format object.

    Returns the JSON-ready dict (``{"traceEvents": [...], ...}``);
    serialise with :func:`json.dump` or :func:`write_chrome_trace`.
    """
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": f"repro telemetry {collector.label}".strip()},
        }
    ]
    foreign_pids: List[int] = []
    for ev in list(collector.events):
        pid = getattr(ev, "pid", None)
        if pid is None:
            pid = TRACE_PID
        elif pid != TRACE_PID and pid not in foreign_pids:
            foreign_pids.append(pid)
        entry = {
            "name": ev.name,
            "cat": ev.cat,
            "ph": ev.ph,
            "ts": max(0.0, ev.ts),
            "pid": pid,
            "tid": ev.tid,
            "args": ev.args,
        }
        if ev.ph == "X":
            entry["dur"] = max(0.0, ev.dur)
        if ev.ph == "i":
            entry["s"] = "t"  # instant scope: thread
        events.append(entry)
    # Replayed foreign-process events (pool-worker spans) get their own
    # named process track.
    for i, pid in enumerate(sorted(foreign_pids)):
        events.insert(
            1 + i,
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro worker pid={pid}"},
            },
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.telemetry",
            "dropped_events": collector.dropped_events,
            "pid": os.getpid(),
        },
    }


def write_chrome_trace(collector: TelemetryCollector, path: str) -> str:
    """Serialise :func:`to_chrome_trace` to ``path``; returns the path."""
    trace = to_chrome_trace(collector)
    validate_trace(trace)
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")
    return path


def validate_trace(trace: Union[dict, str]) -> dict:
    """Check ``trace`` (dict or JSON string) against the Trace Event
    Format; returns the parsed dict or raises
    :class:`TraceValidationError` naming the offending event."""
    if isinstance(trace, str):
        try:
            trace = json.loads(trace)
        except ValueError as exc:
            raise TraceValidationError(f"not valid JSON: {exc}") from None
    if not isinstance(trace, dict):
        raise TraceValidationError(
            f"top level must be an object, got {type(trace).__name__}"
        )
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise TraceValidationError("missing 'traceEvents' array")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise TraceValidationError(f"{where}: not an object")
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            raise TraceValidationError(f"{where}: bad phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise TraceValidationError(f"{where}: missing event name")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise TraceValidationError(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TraceValidationError(f"{where}: bad dur {dur!r}")
        if ph in _FLOW_PHASES:
            flow_id = ev.get("id")
            if not isinstance(flow_id, (int, str)):
                raise TraceValidationError(
                    f"{where}: flow event needs an 'id' (got {flow_id!r})"
                )
        for key in ("pid", "tid"):
            if key in ev and not isinstance(ev[key], int):
                raise TraceValidationError(
                    f"{where}: {key} must be an integer"
                )
        if "args" in ev and not isinstance(ev["args"], dict):
            raise TraceValidationError(f"{where}: args must be an object")
    try:
        json.dumps(trace)
    except (TypeError, ValueError) as exc:
        raise TraceValidationError(
            f"trace is not JSON-serialisable: {exc}"
        ) from None
    return trace


def stitch_traces(traces: Iterable[Union[dict, str]]) -> dict:
    """Merge per-process Chrome traces into one distributed trace.

    ``traces`` are :func:`to_chrome_trace`-shaped dicts (or JSON
    strings) exported by different processes — gateway, fleet daemon,
    workers.  Stitching does three things:

    * **pid remapping** — each input's default-pid events
      (:data:`TRACE_PID`) are rewritten to that process's real pid
      (``otherData.pid``), so every process gets its own track; events
      already carrying a real pid (replayed pool-worker spans) keep it;
    * **track naming** — one ``process_name`` metadata event survives
      per distinct pid;
    * **flow arrows** — every event whose ``args.parent_id`` resolves
      to another event's ``args.span_id`` on a *different* ``(pid,
      tid)`` grows a ``"s"``→``"f"`` flow pair, so Perfetto draws the
      cross-process/cross-thread arrows of the request.

    The result is validated before it is returned.  Timestamps are
    assumed comparable: every collector stamps ``ts`` from
    ``time.perf_counter`` (CLOCK_MONOTONIC on Linux, one clock
    machine-wide), minus its own start — stitched positions are
    per-process-relative, which Perfetto renders fine; the arrows carry
    the causality.
    """
    merged: List[dict] = []
    meta_by_pid: Dict[int, dict] = {}
    dropped = 0
    source_pids: List[int] = []
    for idx, trace in enumerate(traces):
        trace = validate_trace(trace)
        other = trace.get("otherData") or {}
        real_pid = other.get("pid")
        if not isinstance(real_pid, int) or real_pid == 0:
            # No recorded pid: synthesize a stable stand-in per input.
            real_pid = 1_000_000 + idx
        source_pids.append(real_pid)
        dropped += int(other.get("dropped_events", 0) or 0)
        for ev in trace["traceEvents"]:
            ev = dict(ev)
            pid = ev.get("pid", TRACE_PID)
            if pid == TRACE_PID:
                pid = real_pid
            ev["pid"] = pid
            if ev.get("ph") == "M" and ev.get("name") == "process_name":
                meta_by_pid.setdefault(pid, ev)
                continue
            merged.append(ev)

    # Index span ids -> owning slice, then draw one arrow per
    # cross-track parent/child edge.
    by_span: Dict[str, dict] = {}
    for ev in merged:
        args = ev.get("args") or {}
        span_id = args.get("span_id")
        if isinstance(span_id, str) and span_id not in by_span:
            by_span[span_id] = ev
    flows: List[dict] = []
    for ev in merged:
        args = ev.get("args") or {}
        parent_id = args.get("parent_id")
        span_id = args.get("span_id")
        if not isinstance(parent_id, str) or not isinstance(span_id, str):
            continue
        parent = by_span.get(parent_id)
        if parent is None:
            continue
        same_track = (
            parent.get("pid") == ev.get("pid")
            and parent.get("tid") == ev.get("tid")
        )
        if same_track:
            continue
        flow_id = span_id  # unique per edge: one child, one arrow in
        flows.append(
            {
                "name": "trace",
                "cat": "flow",
                "ph": "s",
                "id": flow_id,
                "ts": parent.get("ts", 0.0),
                "pid": parent["pid"],
                "tid": parent.get("tid", 0),
            }
        )
        flows.append(
            {
                "name": "trace",
                "cat": "flow",
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "ts": ev.get("ts", 0.0),
                "pid": ev["pid"],
                "tid": ev.get("tid", 0),
            }
        )

    merged.sort(key=lambda e: (e.get("ts", 0.0), e.get("pid", 0)))
    events: List[dict] = [
        meta_by_pid[pid] for pid in sorted(meta_by_pid)
    ] + merged + flows
    stitched = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.telemetry",
            "stitched_from": source_pids,
            "dropped_events": dropped,
            "flow_edges": len(flows) // 2,
        },
    }
    return validate_trace(stitched)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


#: Legal exposition-format identifiers.  Names produced at runtime (a
#: kernel class name, a tenant string from the network) may contain
#: anything; the exporter must never emit a line Prometheus rejects.
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _sanitize_name(name: str, pattern: "re.Pattern") -> str:
    if pattern.match(name):
        return name
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    # Text-format escaping for quoted label values: backslash, quote
    # and newline, in that order (escaping the escapes first).
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    # HELP lines escape only backslash and newline (quotes stay bare).
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_str(labels, extra: Optional[dict] = None) -> str:
    pairs = list(labels) + sorted((extra or {}).items())
    if not pairs:
        return ""
    inner = ",".join(
        f"{_sanitize_name(str(k), _LABEL_NAME_RE)}"
        f'="{_escape_label_value(str(v))}"'
        for k, v in pairs
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render ``registry`` in the Prometheus text exposition format.

    Metric names are emitted as registered (the runtime's counters
    already follow the ``_total`` convention); histograms expand into
    cumulative ``_bucket`` series plus ``_sum`` and ``_count``.

    Conformance guarantees (the text-format spec is strict and most
    scrapers are stricter): label values escape backslash, double quote
    and newline; ``# HELP`` text escapes backslash and newline; metric
    and label names with characters outside the legal identifier set
    are rewritten with underscores; and each family's ``# HELP`` /
    ``# TYPE`` headers are emitted exactly once, before its samples.
    """
    lines: List[str] = []
    emitted_families = set()
    # One lock acquisition for the whole exposition: a scrape racing
    # concurrent registration must never see a name without its kind.
    for raw_name, kind, help_text, instruments in registry.export_snapshot():
        name = _sanitize_name(raw_name, _METRIC_NAME_RE)
        # Two registered names collapsing onto one sanitized family
        # must not repeat the headers mid-exposition.
        if name not in emitted_families:
            emitted_families.add(name)
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
        for inst in instruments:
            if isinstance(inst, (Counter, Gauge)):
                lines.append(
                    f"{name}{_labels_str(inst.labels)} {_fmt(inst.value)}"
                )
            elif isinstance(inst, Histogram):
                cumulative = inst.cumulative_buckets()
                for bound, count in cumulative:
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels_str(inst.labels, {'le': _fmt(bound)})}"
                        f" {count}"
                    )
                lines.append(
                    f"{name}_bucket"
                    f"{_labels_str(inst.labels, {'le': '+Inf'})}"
                    f" {inst.count}"
                )
                lines.append(
                    f"{name}_sum{_labels_str(inst.labels)} {_fmt(inst.sum)}"
                )
                lines.append(
                    f"{name}_count{_labels_str(inst.labels)} {inst.count}"
                )
    return "\n".join(lines) + "\n" if lines else ""
