"""Process-wide metrics: counters, gauges and histograms with labels.

The registry is the numeric half of :mod:`repro.telemetry` (spans are
the temporal half).  Three instrument kinds cover everything the
runtime needs to report:

* :class:`Counter` — monotonically increasing event counts (launches,
  blocks, cache hits);
* :class:`Gauge` — a value that goes up and down (occupancy, pending
  queue depth);
* :class:`Histogram` — a distribution with two complementary views of
  the same observations: **fixed buckets** (cumulative counts at known
  bounds, the Prometheus histogram contract) and a **reservoir** (a
  bounded uniform sample the percentile queries — p50/p95/p99 — read).

Instruments are keyed by ``(name, label set)``; the canonical label
axes are ``kernel`` × ``backend`` × ``device``, matching how the paper
reports its measurements (one number per kernel per back-end per
machine).  Everything is thread-safe: scheduler worker threads record
block latencies concurrently with the host thread recording launches.
"""

from __future__ import annotations

import math
import random
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "registry",
    "reset_registry",
]

#: Default histogram bounds (seconds): 1 µs .. 10 s in decade-and-half
#: steps — wide enough for both a microsecond block and a slow launch.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
    1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 10.0,
)

#: Bounded uniform sample size per histogram (reservoir sampling).
RESERVOIR_SIZE = 1024

Labels = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, str]) -> Labels:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {dict(self.labels)!r}, {self.value})"


class Gauge:
    """A value that can rise and fall; remembers the last set value."""

    kind = "gauge"

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {dict(self.labels)!r}, {self.value})"


class Histogram:
    """Fixed-bucket counts plus a uniform reservoir sample.

    The buckets satisfy the Prometheus exposition contract (cumulative
    counts at each upper bound, ``+Inf`` implicit via ``count``); the
    reservoir answers percentile queries exactly over a bounded uniform
    sample of the observations.  Sampling uses a deterministic
    per-instance PRNG so two identical runs report identical
    percentiles.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
        reservoir_size: int = RESERVOIR_SIZE,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._bucket_counts = [0] * len(self.bounds)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._reservoir: List[float] = []
        self._reservoir_size = reservoir_size
        self._rng = random.Random(0x5EED ^ hash(name) & 0xFFFF)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[i] += 1
                    break
            if len(self._reservoir) < self._reservoir_size:
                self._reservoir.append(value)
            else:
                j = self._rng.randrange(self._count)
                if j < self._reservoir_size:
                    self._reservoir[j] = value

    # -- queries --------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self._count else 0.0

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0 <= q <= 100) over the reservoir,
        linearly interpolated; 0.0 before any observation."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            sample = sorted(self._reservoir)
        if not sample:
            return 0.0
        if len(sample) == 1:
            return sample[0]
        pos = q / 100.0 * (len(sample) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(sample) - 1)
        frac = pos - lo
        return sample[lo] * (1.0 - frac) + sample[hi] * frac

    def quantiles(self) -> Dict[str, float]:
        """The report's standard trio: ``{"p50": .., "p95": .., "p99": ..}``."""
        return {
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style."""
        out = []
        running = 0
        with self._lock:
            for bound, c in zip(self.bounds, self._bucket_counts):
                running += c
                out.append((bound, running))
        return out

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, {dict(self.labels)!r}, "
            f"count={self.count}, mean={self.mean:.3g})"
        )


class MetricsRegistry:
    """Get-or-create instrument store keyed ``(name, labels)``.

    A name is bound to one instrument kind on first use; asking for the
    same name as a different kind raises (a counter silently shadowing
    a histogram of the same name would corrupt the export).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, Labels], object] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    def _get(self, cls, name: str, help: str, labels: Dict[str, str], **kwargs):
        key = (name, _labels_key(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is not None:
                return inst
            kind = self._kinds.get(name)
            if kind is not None and kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {kind}, "
                    f"requested as a {cls.kind}"
                )
            inst = cls(name, key[1], **kwargs)
            self._instruments[key] = inst
            self._kinds[name] = cls.kind
            if help:
                self._help[name] = help
            return inst

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # -- introspection --------------------------------------------------

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._kinds)

    def kind_of(self, name: str) -> Optional[str]:
        with self._lock:
            return self._kinds.get(name)

    def help_of(self, name: str) -> str:
        with self._lock:
            return self._help.get(name, "")

    def instruments(self, name: Optional[str] = None) -> List[object]:
        """All instruments, or all label variants of one metric name,
        sorted by label set for deterministic export order.

        Returns a materialized list snapshotted under the registry
        lock *at call time* — a lazy generator here would take its
        snapshot at first ``next()`` and silently interleave with
        concurrent registration."""
        with self._lock:
            items = sorted(self._instruments.items())
        return [
            inst for (n, _), inst in items if name is None or n == name
        ]

    def export_snapshot(self) -> List[Tuple[str, str, str, List[object]]]:
        """One consistent view for exporters: sorted ``(name, kind,
        help, instruments)`` tuples captured under a single lock
        acquisition, so a scrape racing registration never sees a name
        without its kind (or vice versa)."""
        with self._lock:
            items = sorted(self._instruments.items())
            kinds = dict(self._kinds)
            helps = dict(self._help)
        by_name: Dict[str, List[object]] = {}
        for (n, _), inst in items:
            by_name.setdefault(n, []).append(inst)
        return [
            (n, kinds.get(n, ""), helps.get(n, ""), by_name[n])
            for n in sorted(by_name)
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()
            self._kinds.clear()
            self._help.clear()


_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def registry() -> MetricsRegistry:
    """The process-wide registry every collector records into."""
    return _registry


def reset_registry() -> MetricsRegistry:
    """Swap in a fresh registry (tests); returns the new one."""
    global _registry
    with _registry_lock:
        _registry = MetricsRegistry()
    return _registry
