"""Live ops endpoints: a stdlib HTTP listener over the telemetry state.

One :class:`OpsServer` (a daemon-threaded
:class:`~http.server.ThreadingHTTPServer`) exposes the process's
observability surface to ``curl`` / Prometheus / a dashboard:

* ``/metrics`` — the process-wide
  :class:`~repro.telemetry.metrics.MetricsRegistry` in Prometheus text
  exposition format;
* ``/healthz`` — JSON readiness: every registered health provider is
  called and the overall status is 200 only when all report ok (the
  gateway registers its lanes and pump, the fleet daemon its listener
  and lease table);
* ``/traces`` — recent completed request traces from the
  :class:`~repro.telemetry.tracing.TraceStore` (tail-sampled,
  errors always kept); ``?limit=N`` bounds the reply.

Opt-in via ``REPRO_TELEMETRY_HTTP=host:port`` (``:0`` picks a free
port; the bound address is printed once) or programmatically::

    from repro.telemetry.http import OpsServer
    ops = OpsServer("127.0.0.1", 0)
    host, port = ops.start()

The gateway and the fleet daemon both call
:func:`maybe_start_from_env` at start-up, so one environment variable
lights up whichever component the process runs — and when both run in
one process they share the listener and its health registry.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

__all__ = [
    "TELEMETRY_HTTP_ENV",
    "OpsServer",
    "register_health",
    "unregister_health",
    "health_snapshot",
    "maybe_start_from_env",
    "shared_server",
    "shutdown_shared_server",
]

#: Environment variable: ``host:port`` to serve the ops endpoints on
#: (``127.0.0.1:0`` binds an OS-assigned free port).
TELEMETRY_HTTP_ENV = "REPRO_TELEMETRY_HTTP"

#: Health providers: name -> callable returning ``(ok, detail_dict)``.
_health_lock = threading.Lock()
_health: Dict[str, Callable[[], Tuple[bool, dict]]] = {}


def register_health(name: str, provider: Callable[[], Tuple[bool, dict]]):
    """Register a component readiness probe under ``name``.  The
    provider returns ``(ok, detail)``; exceptions count as not-ok."""
    with _health_lock:
        _health[name] = provider


def unregister_health(name: str) -> None:
    with _health_lock:
        _health.pop(name, None)


def health_snapshot() -> Tuple[bool, Dict[str, dict]]:
    """Run every provider; overall ok = all ok (vacuously true)."""
    with _health_lock:
        providers = dict(_health)
    components: Dict[str, dict] = {}
    overall = True
    for name, provider in sorted(providers.items()):
        try:
            ok, detail = provider()
            detail = dict(detail)
        except Exception as exc:  # noqa: BLE001 - a probe crash is "down"
            ok, detail = False, {"error": f"{type(exc).__name__}: {exc}"}
        detail["ok"] = bool(ok)
        components[name] = detail
        overall = overall and bool(ok)
    return overall, components


class _OpsHandler(BaseHTTPRequestHandler):
    """Routes /metrics, /healthz and /traces; everything else is 404."""

    server_version = "repro-ops/1"
    protocol_version = "HTTP/1.1"

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload) -> None:
        body = json.dumps(payload, indent=1, default=str).encode()
        self._send(code, body, "application/json")

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        try:
            parsed = urlparse(self.path)
            route = parsed.path.rstrip("/") or "/"
            if route == "/metrics":
                from .export import to_prometheus
                from .metrics import registry

                self._send(
                    200,
                    to_prometheus(registry()).encode(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif route == "/healthz":
                ok, components = health_snapshot()
                self._send_json(
                    200 if ok else 503,
                    {
                        "ok": ok,
                        "pid": os.getpid(),
                        "components": components,
                    },
                )
            elif route == "/traces":
                from .tracing import trace_store

                query = parse_qs(parsed.query)
                limit = None
                if "limit" in query:
                    try:
                        limit = int(query["limit"][0])
                    except (ValueError, IndexError):
                        limit = None
                store = trace_store()
                self._send_json(
                    200,
                    {
                        "stats": store.stats(),
                        "traces": store.recent(limit),
                    },
                )
            else:
                self._send_json(404, {"error": f"no route {route!r}"})
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # noqa: BLE001 - ops surface never crashes
            try:
                self._send_json(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except OSError:
                pass

    def log_message(self, fmt: str, *args) -> None:  # silence stderr
        pass


class OpsServer:
    """The embeddable ops listener; start/stop are idempotent."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> Tuple[str, int]:
        """Bind and serve on a daemon thread; returns the bound
        ``(host, port)``."""
        if self._httpd is not None:
            return (self.host, self.port)
        httpd = ThreadingHTTPServer((self.host, self.port), _OpsHandler)
        httpd.daemon_threads = True
        self._httpd = httpd
        self.host, self.port = httpd.server_address[:2]
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="repro-ops-http",
            daemon=True,
        )
        self._thread.start()
        return (self.host, self.port)

    def stop(self) -> None:
        httpd, self._httpd = self._httpd, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def __enter__(self) -> "OpsServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "bound" if self._httpd is not None else "stopped"
        return f"<OpsServer {self.host}:{self.port} {state}>"


_shared_lock = threading.Lock()
_shared: Optional[OpsServer] = None


def shared_server() -> Optional[OpsServer]:
    """The process's env-activated ops server, or None."""
    return _shared


def maybe_start_from_env() -> Optional[OpsServer]:
    """Start (or return) the shared ops server iff
    ``REPRO_TELEMETRY_HTTP=host:port`` is set.  Idempotent — the
    gateway and fleet daemon both call this and share one listener.
    A bind failure is reported on stderr, never raised: the ops
    surface must not take the serving path down with it."""
    global _shared
    spec = os.environ.get(TELEMETRY_HTTP_ENV)
    if not spec:
        return None
    with _shared_lock:
        if _shared is not None:
            return _shared
        host, _, port_s = spec.rpartition(":")
        host = host or "127.0.0.1"
        try:
            port = int(port_s)
        except ValueError:
            print(
                f"{TELEMETRY_HTTP_ENV}={spec!r} is not host:port; "
                "ops endpoints disabled",
                file=sys.stderr,
            )
            return None
        server = OpsServer(host, port)
        try:
            bound_host, bound_port = server.start()
        except OSError as exc:
            print(
                f"ops endpoints failed to bind {host}:{port}: {exc}",
                file=sys.stderr,
            )
            return None
        print(
            f"repro ops endpoints on http://{bound_host}:{bound_port} "
            "(/metrics /healthz /traces)",
            file=sys.stderr,
            flush=True,
        )
        _shared = server
        return server


def shutdown_shared_server() -> None:
    """Stop the env-activated server (tests)."""
    global _shared
    with _shared_lock:
        server, _shared = _shared, None
    if server is not None:
        server.stop()
