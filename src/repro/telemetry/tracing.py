"""Distributed request tracing: W3C-traceparent contexts across
processes.

A :class:`TraceContext` is the identity of one unit of work inside one
distributed request: a 32-hex ``trace_id`` shared by every span of the
request, a 16-hex ``span_id`` naming this unit, and the ``parent_id``
of the unit that caused it.  Contexts cross every boundary the library
owns:

* **threads** — :func:`use` installs a context as the calling thread's
  ambient context; :func:`current` reads it.  Spans opened while a
  context is ambient (:func:`repro.telemetry.spans.span`) become child
  spans automatically.
* **processes** — :meth:`TraceContext.to_traceparent` serialises to the
  W3C ``traceparent`` wire form (``00-<trace>-<span>-01``); the
  ``REPRO_TRACEPARENT`` environment variable seeds a child process's
  root context (the process-pool scheduler mirrors ``REPRO_*`` into
  workers, so this propagates for free), and the serve / fleet
  JSON-lines protocols carry the same string in a ``trace`` field.
* **exports** — the collector stamps ``trace_id`` / ``span_id`` /
  ``parent_id`` into every trace event's ``args``;
  :func:`repro.telemetry.export.stitch_traces` joins the per-process
  Chrome traces on those ids and draws the cross-process flow arrows.

**Hot-path contract**: nothing here runs unless something opts in.  An
unobserved launch never touches this module; an observed one pays one
thread-local read.  Context creation (two ``os.urandom`` reads) happens
per *request*, never per block.

:class:`TraceStore` is the live-ops half: a bounded ring of recently
completed request summaries, tail-sampled (errors always kept), served
by the ``/traces`` endpoint of :mod:`repro.telemetry.http`.
"""

from __future__ import annotations

import os
import re
import threading
from collections import deque
from typing import Dict, Iterator, List, Optional

__all__ = [
    "TRACEPARENT_ENV",
    "TraceContext",
    "new_trace",
    "from_traceparent",
    "from_env",
    "current",
    "set_current",
    "use",
    "TraceStore",
    "trace_store",
]

#: Environment variable carrying a W3C ``traceparent`` into child
#: processes: ``00-<32 hex trace_id>-<16 hex span_id>-01``.
TRACEPARENT_ENV = "REPRO_TRACEPARENT"

_TRACEPARENT_RE = re.compile(
    r"^[0-9a-f]{2}-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$"
)

_tls = threading.local()


def _hex_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


class TraceContext:
    """One span's identity within a distributed trace.  Immutable."""

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def child(self) -> "TraceContext":
        """A fresh child context: same trace, new span, this span as
        parent."""
        return TraceContext(self.trace_id, _hex_id(8), self.span_id)

    def to_traceparent(self) -> str:
        """The W3C wire form (``00-<trace>-<span>-01``); the parent id
        is implicit — the receiver's spans parent to ``span_id``."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    def ids(self) -> Dict[str, str]:
        """The ids as exporter-ready args (``parent_id`` only when
        set)."""
        out = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id:
            out["parent_id"] = self.parent_id
        return out

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.parent_id == other.parent_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:
        return (
            f"<TraceContext {self.trace_id[:8]}…/{self.span_id}"
            + (f" parent={self.parent_id}" if self.parent_id else "")
            + ">"
        )


def new_trace() -> TraceContext:
    """A fresh root context (new trace_id, no parent)."""
    return TraceContext(_hex_id(16), _hex_id(8))


def from_traceparent(value: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` string; None on anything malformed (a
    bad header from the wire must degrade to "untraced", never raise)."""
    if not value or not isinstance(value, str):
        return None
    m = _TRACEPARENT_RE.match(value.strip().lower())
    if m is None:
        return None
    trace_id, span_id = m.group(1), m.group(2)
    # The all-zero ids are explicitly invalid per W3C trace-context.
    if set(trace_id) == {"0"} or set(span_id) == {"0"}:
        return None
    # The received span becomes the *parent* of everything this process
    # does: give the local side its own span id immediately.
    return TraceContext(trace_id, _hex_id(8), span_id)


def from_env() -> Optional[TraceContext]:
    """The context seeded by ``REPRO_TRACEPARENT``, or None."""
    return from_traceparent(os.environ.get(TRACEPARENT_ENV))


def current() -> Optional[TraceContext]:
    """The calling thread's ambient context (None = untraced)."""
    return getattr(_tls, "ctx", None)


def set_current(ctx: Optional[TraceContext]) -> Optional[TraceContext]:
    """Install ``ctx`` as the thread's ambient context; returns the
    previous one so callers can restore it."""
    prev = getattr(_tls, "ctx", None)
    _tls.ctx = ctx
    return prev


class use:
    """Context manager installing ``ctx`` for a ``with`` block::

        with tracing.use(request.trace):
            workload.execute(...)

    Accepts None (no-op) so call sites need no branching."""

    __slots__ = ("ctx", "_prev")

    def __init__(self, ctx: Optional[TraceContext]):
        self.ctx = ctx
        self._prev: Optional[TraceContext] = None

    def __enter__(self) -> Optional[TraceContext]:
        if self.ctx is not None:
            self._prev = set_current(self.ctx)
        return self.ctx

    def __exit__(self, *exc) -> bool:
        if self.ctx is not None:
            set_current(self._prev)
        return False


# ---------------------------------------------------------------------------
# Completed-trace store (the /traces endpoint's backing)
# ---------------------------------------------------------------------------


class TraceStore:
    """Bounded ring of recently completed request summaries.

    Tail sampling: every ``sample_every``-th OK trace is kept, plus
    *every* errored one — the traces worth reading after an incident
    are exactly the ones that failed.  Summaries are plain dicts
    (JSON-ready); the heavy span data stays in the collector's event
    buffer, keyed by ``trace_id``.
    """

    def __init__(self, capacity: int = 256, sample_every: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.capacity = capacity
        self.sample_every = sample_every
        self._lock = threading.Lock()
        self._traces: deque = deque(maxlen=capacity)
        self._seen = 0
        self._sampled_out = 0

    def add(self, summary: Dict[str, object]) -> bool:
        """Record one completed trace; returns False when tail sampling
        dropped it (never for errored traces)."""
        error = bool(summary.get("error"))
        with self._lock:
            self._seen += 1
            if not error and self._seen % self.sample_every != 0:
                self._sampled_out += 1
                return False
            self._traces.append(dict(summary))
            return True

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Most recent kept summaries, newest last."""
        with self._lock:
            items = list(self._traces)
        if limit is not None:
            items = items[-max(0, int(limit)):]
        return items

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "kept": len(self._traces),
                "seen": self._seen,
                "sampled_out": self._sampled_out,
                "capacity": self.capacity,
                "sample_every": self.sample_every,
            }

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._seen = 0
            self._sampled_out = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.recent())


_store_lock = threading.Lock()
_store: Optional[TraceStore] = None

#: Environment variable: keep 1-in-N OK traces (errors always kept).
TRACE_SAMPLE_ENV = "REPRO_TRACE_SAMPLE"


def trace_store() -> TraceStore:
    """The process-wide completed-trace store (created on first use;
    ``REPRO_TRACE_SAMPLE=N`` sets the tail-sampling rate)."""
    global _store
    store = _store
    if store is not None:
        return store
    with _store_lock:
        if _store is None:
            raw = os.environ.get(TRACE_SAMPLE_ENV, "")
            try:
                sample = max(1, int(raw)) if raw else 1
            except ValueError:
                sample = 1
            _store = TraceStore(sample_every=sample)
        return _store
