"""Crash flight recorder: a bounded ring of recent runtime events,
dumped to disk when something dies.

Soak-harness failures hours into a run are undiagnosable from a stack
trace alone — what matters is what the process was *doing* in the
seconds before.  With ``REPRO_FLIGHT_RECORDER_DIR`` set, every process
(gateway, fleet daemon, pool worker) keeps a per-process ring buffer of
recent launch / queue / lease / drift events, each stamped with the
ambient :mod:`~repro.telemetry.tracing` ids, and dumps the ring as JSON
when:

* a kernel launch raises (:func:`repro.runtime.execute_plan`'s error
  path calls :func:`on_kernel_crash`);
* the sanitizer reports findings (``on_sanitizer_report`` observer
  hook);
* a non-blocking queue is poisoned by an asynchronously failing task
  (:mod:`repro.queue.queue` calls :func:`on_queue_poisoned`).

Dumps land as ``flight-<pid>-<seq>.json`` in the configured directory;
each contains the trigger, the exception text, and the last
:data:`RING_CAPACITY` events — including the failing launch's
``trace_id``, so the dump joins the stitched trace.

**Hot-path contract**: with the env var unset, :func:`active` is one
module-global boolean read and every ``maybe_record`` call returns
immediately.  With it set, the recorder registers itself as an
:class:`~repro.runtime.instrument.ExecutionObserver` (so launches are
recorded through the existing hook fan-out — the process is "observed"
by definition) and each event append is one lock + deque append.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from ..runtime.instrument import ExecutionObserver

__all__ = [
    "FLIGHT_ENV",
    "RING_CAPACITY",
    "FlightRecorder",
    "recorder",
    "active",
    "maybe_activate_from_env",
    "deactivate",
    "maybe_record",
    "on_kernel_crash",
    "on_queue_poisoned",
]

#: Environment variable: directory flight dumps are written to; setting
#: it activates the recorder in this process and (via the REPRO_* env
#: mirror) in spawned pool workers.
FLIGHT_ENV = "REPRO_FLIGHT_RECORDER_DIR"

#: Events kept in the ring (per process).
RING_CAPACITY = 256

_lock = threading.Lock()
_recorder: Optional["FlightRecorder"] = None
#: Fast-path flag: mirrors ``_recorder is not None`` without the lock.
_active = False


def _kernel_name(plan) -> str:
    kernel = getattr(plan, "kernel", None)
    return getattr(kernel, "__name__", type(kernel).__name__)


class FlightRecorder(ExecutionObserver):
    """The per-process ring buffer + dump writer.

    Also an :class:`ExecutionObserver`, so launch and sanitizer events
    arrive through the runtime's existing hook fan-out (block-level
    hooks stay the base class's no-ops — per-block ring churn would
    drown the events worth keeping).
    """

    def __init__(self, directory: str, capacity: int = RING_CAPACITY):
        self.directory = directory
        self._ring: deque = deque(maxlen=capacity)
        self._ring_lock = threading.Lock()
        self._seq = 0
        self.dumps: List[str] = []

    # -- recording -----------------------------------------------------

    def record(self, kind: str, **fields) -> None:
        """Append one event; ambient trace ids are stamped in."""
        from . import tracing

        event: Dict[str, object] = {
            "kind": kind,
            "ts": time.time(),
            "pid": os.getpid(),
        }
        ctx = tracing.current()
        if ctx is not None:
            event.update(ctx.ids())
        event.update(fields)
        with self._ring_lock:
            self._ring.append(event)

    def events(self) -> List[Dict[str, object]]:
        with self._ring_lock:
            return list(self._ring)

    # -- dumping -------------------------------------------------------

    def dump(self, reason: str, error: Optional[str] = None) -> Optional[str]:
        """Write the ring to ``flight-<pid>-<seq>.json``; returns the
        path (None when the write itself failed — a crash dump must
        never raise into the crashing path)."""
        with self._ring_lock:
            events = list(self._ring)
            self._seq += 1
            seq = self._seq
        payload = {
            "reason": reason,
            "error": error,
            "pid": os.getpid(),
            "ts": time.time(),
            "event_count": len(events),
            "events": events,
        }
        path = os.path.join(
            self.directory, f"flight-{os.getpid()}-{seq}.json"
        )
        try:
            os.makedirs(self.directory, exist_ok=True)
            tmp = f"{path}.tmp"
            with open(tmp, "w") as fh:
                json.dump(payload, fh, indent=1, default=str)
                fh.write("\n")
            os.replace(tmp, path)
        except OSError:
            return None
        self.dumps.append(path)
        return path

    # -- ExecutionObserver hooks ---------------------------------------

    def on_launch_begin(self, plan, task, device) -> None:
        self.record(
            "launch_begin",
            kernel=_kernel_name(plan),
            backend=plan.acc_type.name,
            device=device.name,
            schedule=plan.schedule,
        )

    def on_launch_end(self, plan, task, device) -> None:
        self.record("launch_end", kernel=_kernel_name(plan))

    def on_queue_drain(self, queue) -> None:
        self.record("queue_drain", device=queue.dev.name)

    def on_sanitizer_report(self, plan, record) -> None:
        findings = len(record.findings)
        self.record(
            "sanitizer_report",
            kernel=_kernel_name(plan),
            findings=findings,
        )
        if findings:
            self.dump(
                "sanitizer_findings",
                error=f"{findings} finding(s) in {record.kernel}",
            )


# ---------------------------------------------------------------------------
# Module-level front door (what the runtime calls)
# ---------------------------------------------------------------------------


def active() -> bool:
    """Is the flight recorder on in this process?  One global read."""
    return _active


def recorder() -> Optional["FlightRecorder"]:
    """The process recorder, or None while inactive."""
    return _recorder


def maybe_activate_from_env() -> Optional["FlightRecorder"]:
    """Activate iff ``REPRO_FLIGHT_RECORDER_DIR`` is set.  Idempotent.

    Registers the recorder as an execution observer, so activating it
    makes the process "observed" — that is the deal: a flight recorder
    that sees nothing records nothing.
    """
    directory = os.environ.get(FLIGHT_ENV)
    if not directory:
        return None
    return activate(directory)


def activate(directory: str) -> "FlightRecorder":
    """Install (or return) the process recorder dumping to
    ``directory``."""
    global _recorder, _active
    with _lock:
        if _recorder is not None:
            return _recorder
        from ..runtime.instrument import register_observer

        rec = FlightRecorder(directory)
        register_observer(rec)
        _recorder = rec
        _active = True
        return rec


def deactivate() -> None:
    """Unregister and drop the recorder (tests)."""
    global _recorder, _active
    with _lock:
        rec = _recorder
        if rec is None:
            return
        from ..runtime.instrument import unregister_observer

        unregister_observer(rec)
        _recorder = None
        _active = False


def maybe_record(kind: str, **fields) -> None:
    """Record one event iff the recorder is active (one boolean read
    otherwise) — the cheap entry point for lease/drift/serve call
    sites."""
    if not _active:
        return
    rec = _recorder
    if rec is not None:
        rec.record(kind, **fields)


def on_kernel_crash(plan, exc: BaseException) -> None:
    """A launch raised: record + dump.  Called from the runtime's
    failure path; must never raise."""
    if not _active:
        return
    rec = _recorder
    if rec is None:
        return
    try:
        rec.record(
            "kernel_crash",
            kernel=_kernel_name(plan),
            error=f"{type(exc).__name__}: {exc}",
        )
        rec.dump("kernel_crash", error=f"{type(exc).__name__}: {exc}")
    except Exception:
        pass


def on_queue_poisoned(queue, exc: BaseException) -> None:
    """An async queue task failed (queue poisoned): record + dump.
    Must never raise — it runs on the queue's drain thread."""
    if not _active:
        return
    rec = _recorder
    if rec is None:
        return
    try:
        rec.record(
            "queue_poisoned",
            device=queue.dev.name,
            error=f"{type(exc).__name__}: {exc}",
        )
        rec.dump("queue_poisoned", error=f"{type(exc).__name__}: {exc}")
    except Exception:
        pass
