"""``python -m repro.telemetry`` — run, report, export.

Three subcommands:

* ``run <script.py> [args...]`` — execute a Python script under a
  telemetry collector, print the report when it finishes, optionally
  export (``--trace``, ``--prom``);
* ``report`` — run the built-in demo workload (the single-source tiled
  GEMM on every registered back-end, the paper's Fig. 7 kernel) and
  print the report — the quickest way to see the telemetry layer work;
* ``export`` — run the demo workload and write the Chrome trace and/or
  Prometheus files without the human report (CI's entry point).

The demo workload deliberately exercises every signal class: staged
copies, launches on each back-end, plan-cache hits from repeated
launches, and modeled time on the self-describing GEMM kernels.
"""

from __future__ import annotations

import argparse
import runpy
import sys
from typing import List, Optional

from ..runtime.instrument import register_observer, unregister_observer
from .collector import TelemetryCollector
from .export import to_prometheus, write_chrome_trace
from .report import render

__all__ = ["main", "demo_workload"]


def demo_workload(
    backends: Optional[List[str]] = None, n: int = 64, repeats: int = 3
) -> None:
    """Run the tiled GEMM on every (or the named) back-ends.

    Repeated launches per back-end make the plan cache observable; the
    GEMM kernels describe themselves, so modeled time shows up too.
    """
    import numpy as np

    from ..acc import accelerator, accelerator_names
    from ..core.kernel import create_task_kernel
    from ..dev.manager import get_dev_by_idx
    from ..kernels.gemm import GemmTilingKernel, gemm_workdiv_tiling
    from ..mem import alloc, copy
    from ..queue import QueueBlocking

    rng = np.random.default_rng(7)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    C = np.zeros((n, n))
    kernel = GemmTilingKernel()

    for name in backends if backends else accelerator_names():
        acc = accelerator(name)
        # Square multi-thread blocks need block sync; the others take
        # the whole tile at the element level.
        bt, v = (2, 4) if acc.supports_block_sync else (1, 8)
        wd = gemm_workdiv_tiling(n, bt, v)
        dev = get_dev_by_idx(acc, 0)
        q = QueueBlocking(dev)
        bufs = []
        for host in (A, B, C):
            buf = alloc(dev, (n, n))
            copy(q, buf, host)
            bufs.append(buf)
        task = create_task_kernel(
            acc, wd, kernel, n, 1.0, bufs[0], bufs[1], 0.0, bufs[2]
        )
        for _ in range(repeats):
            q.enqueue(task)
        out = np.empty((n, n))
        copy(q, out, bufs[2])


def _export(collector: TelemetryCollector, trace: Optional[str],
            prom: Optional[str]) -> List[str]:
    written = []
    if trace:
        written.append(write_chrome_trace(collector, trace))
    if prom:
        with open(prom, "w") as fh:
            fh.write(to_prometheus(collector.registry))
        written.append(prom)
    return written


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Collect and export runtime telemetry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run", help="run a script under telemetry and print the report"
    )
    p_run.add_argument("script", help="Python script to execute")
    p_run.add_argument(
        "script_args", nargs=argparse.REMAINDER,
        help="arguments passed to the script",
    )
    p_run.add_argument("--trace", help="write Chrome trace JSON here")
    p_run.add_argument("--prom", help="write Prometheus text here")
    p_run.add_argument(
        "--blocks", action="store_true",
        help="record per-block trace events (large!)",
    )

    for name, help_text in (
        ("report", "run the GEMM demo workload and print the report"),
        ("export", "run the GEMM demo workload and write export files"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument(
            "--backend", action="append", dest="backends", default=None,
            help="restrict to this back-end (repeatable; default: all)",
        )
        p.add_argument(
            "--size", type=int, default=64, help="GEMM problem size n"
        )
        p.add_argument("--trace", help="write Chrome trace JSON here")
        p.add_argument("--prom", help="write Prometheus text here")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    collector = TelemetryCollector(
        label=args.command,
        record_blocks=bool(getattr(args, "blocks", False)),
    )
    register_observer(collector)
    try:
        if args.command == "run":
            script_argv = [args.script] + list(args.script_args)
            old_argv = sys.argv
            sys.argv = script_argv
            try:
                runpy.run_path(args.script, run_name="__main__")
            finally:
                sys.argv = old_argv
        else:
            demo_workload(backends=args.backends, n=args.size)
    finally:
        unregister_observer(collector)

    if args.command != "export":
        print(render(collector))
    written = _export(collector, args.trace, args.prom)
    for path in written:
        print(f"wrote {path}")
    if args.command == "export" and not written:
        print(
            "export: nothing to write (pass --trace and/or --prom)",
            file=sys.stderr,
        )
        return 2
    return 0
