"""The telemetry collector: observer hooks → metrics + trace events.

One :class:`TelemetryCollector` registered as an
:class:`~repro.runtime.instrument.ExecutionObserver` turns the
runtime's notifications into:

* **metrics** in a :class:`~repro.telemetry.metrics.MetricsRegistry` —
  launch/block latency histograms, cache hit counters, occupancy,
  modeled-vs-wall second totals, all labelled kernel × back-end ×
  device;
* **trace events** — a bounded in-memory list the Chrome
  ``trace_event`` exporter serialises (complete events for launches
  and spans, instant events for queue drains and sanitizer reports).

Launch begin/end pairing keys on the calling thread: a launch executes
synchronously in the thread that entered :func:`repro.runtime.launch`,
so its ``end`` always arrives on the thread of its ``begin`` — no
cross-thread matching needed even when several queues launch
concurrently.

The event list is bounded (:attr:`max_events`); beyond the cap events
are counted as dropped and the report says so — a truncated trace must
never masquerade as a complete one.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from ..runtime.instrument import ExecutionObserver
from . import tracing
from .metrics import MetricsRegistry

__all__ = ["TelemetryCollector", "TraceEvent"]

#: Thread-execute strategies whose block really runs its threads
#: concurrently (vs. "single": one host thread sweeps the block).
_CONCURRENT_THREAD_EXECUTE = ("preemptive", "cooperative")


class TraceEvent:
    """One exported trace entry (Chrome ``trace_event`` shaped)."""

    __slots__ = ("name", "cat", "ph", "ts", "dur", "tid", "args", "pid")

    def __init__(
        self, name, cat, ph, ts, dur=0.0, tid=0, args=None, pid=None
    ):
        self.name = name
        self.cat = cat
        self.ph = ph  # "X" complete | "i" instant
        self.ts = ts  # microseconds since collector start
        self.dur = dur  # microseconds (complete events)
        self.tid = tid
        self.args = args or {}
        # None = this process (the exporter substitutes its default
        # pid); an explicit value marks an event replayed from another
        # process — a pool worker's span keeps the worker's real pid so
        # the stitched trace shows one track per process.
        self.pid = pid

    def __repr__(self) -> str:
        return f"<TraceEvent {self.ph} {self.cat}/{self.name} @{self.ts:.1f}us>"


def _kernel_name(kernel) -> str:
    return getattr(kernel, "__name__", type(kernel).__name__)


class TelemetryCollector(ExecutionObserver):
    """Collects every runtime signal into metrics and a trace buffer.

    ``registry`` defaults to a private
    :class:`~repro.telemetry.metrics.MetricsRegistry`, so a
    ``telemetry.collect()`` block sees only its own numbers; the
    environment-activated session collector records into the
    process-wide registry instead.
    """

    def __init__(
        self,
        label: str = "",
        registry: Optional[MetricsRegistry] = None,
        record_blocks: bool = False,
        max_events: int = 100_000,
    ):
        self.label = label
        self.registry = registry if registry is not None else MetricsRegistry()
        self.record_blocks = record_blocks
        self.max_events = max_events
        self.dropped_events = 0
        self.events: List[TraceEvent] = []
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        # thread id -> (plan, wall t0, device sim_time_fs at begin)
        self._inflight: Dict[int, Tuple[object, float, int]] = {}
        # graph ids whose trace track metadata was already emitted
        self._graph_tracks: set = set()

    # -- event buffer ---------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    @staticmethod
    def _with_trace_ids(args: Dict[str, object]) -> Dict[str, object]:
        """Stamp the ambient trace identity (as a fresh child span) into
        ``args``; a no-op for untraced work."""
        ctx = tracing.current()
        if ctx is not None:
            args.update(ctx.child().ids())
        return args

    def _emit(self, ev: TraceEvent) -> None:
        with self._lock:
            if len(self.events) >= self.max_events:
                self.dropped_events += 1
                return
            self.events.append(ev)

    # -- derived quantities ---------------------------------------------

    @staticmethod
    def _occupancy(plan) -> float:
        """Modeled fraction of the device's block workers kept busy.

        ``active threads / max_block_workers`` where *active threads*
        is concurrent blocks × concurrently live threads per block.
        Thread-concurrent back-ends can exceed 1.0 (deliberate
        oversubscription shows as > 100 %).
        """
        workers = max(1, plan.props.max_block_workers)
        if plan.schedule in ("pooled", "processes"):
            concurrent_blocks = min(len(plan.block_indices), workers)
        else:
            concurrent_blocks = 1
        te = getattr(plan.acc_type, "thread_execute", "single")
        per_block = (
            plan.work_div.block_thread_count
            if te in _CONCURRENT_THREAD_EXECUTE
            else 1
        )
        return concurrent_blocks * per_block / workers

    def _launch_labels(self, plan, device) -> Dict[str, str]:
        return {
            "kernel": _kernel_name(plan.kernel),
            "backend": plan.acc_type.name,
            "device": device.name,
            "schedule": plan.schedule,
        }

    # -- ExecutionObserver hooks ----------------------------------------

    def on_launch_begin(self, plan, task, device) -> None:
        tid = threading.get_ident()
        with self._lock:
            self._inflight[tid] = (plan, time.perf_counter(), device.sim_time_fs)

    def on_launch_end(self, plan, task, device) -> None:
        tid = threading.get_ident()
        with self._lock:
            entry = self._inflight.pop(tid, None)
        t1 = time.perf_counter()
        labels = self._launch_labels(plan, device)
        reg = self.registry
        reg.counter(
            "repro_launches_total", "kernel launches", **labels
        ).inc()
        reg.histogram(
            "repro_occupancy_ratio",
            "active threads / max_block_workers per launch",
            buckets=(0.1, 0.25, 0.5, 0.75, 1.0, 2.0, 4.0, 8.0),
            **labels,
        ).observe(self._occupancy(plan))
        if entry is None:
            return  # begin was missed (collector registered mid-launch)
        _, t_begin, sim_begin = entry
        wall = t1 - t_begin
        modeled = (device.sim_time_fs - sim_begin) * 1e-15
        reg.histogram(
            "repro_launch_seconds", "wall launch latency", **labels
        ).observe(wall)
        reg.counter(
            "repro_launch_wall_seconds_total", "summed wall launch time",
            **labels,
        ).inc(wall)
        reg.counter(
            "repro_launch_modeled_seconds_total",
            "summed modeled launch time", **labels,
        ).inc(modeled)
        self._emit(
            TraceEvent(
                name=labels["kernel"],
                cat="launch",
                ph="X",
                ts=(t_begin - self._t0) * 1e6,
                dur=wall * 1e6,
                tid=tid,
                args=self._with_trace_ids(
                    {
                        "backend": labels["backend"],
                        "device": labels["device"],
                        "work_div": str(plan.work_div),
                        "schedule": plan.schedule,
                        "modeled_s": modeled,
                    }
                ),
            )
        )

    def on_block_end(self, plan, block_idx, seconds: float) -> None:
        from ..runtime.scheduler import current_worker_label

        # "p<i>" while the process scheduler replays its per-block
        # timings; the executing thread's name otherwise (main thread
        # for sequential dispatch, pool threads for threaded).
        worker = current_worker_label() or threading.current_thread().name
        labels = {
            "kernel": _kernel_name(plan.kernel),
            "backend": plan.acc_type.name,
            "worker": worker,
        }
        self.registry.histogram(
            "repro_block_seconds", "wall per-block latency", **labels
        ).observe(seconds)
        if self.record_blocks:
            now = self._now_us()
            self._emit(
                TraceEvent(
                    name=f"block {block_idx!r}",
                    cat="block",
                    ph="X",
                    ts=now - seconds * 1e6,
                    dur=seconds * 1e6,
                    tid=threading.get_ident(),
                    args=labels,
                )
            )

    def on_copy(self, task, device) -> None:
        self.registry.counter(
            "repro_copies_total", "copy/memset tasks",
            kind=type(task).__name__, device=device.name,
        ).inc()

    def on_queue_drain(self, queue) -> None:
        self.registry.counter(
            "repro_queue_drains_total", "queue pending count reached zero",
            device=queue.dev.name,
        ).inc()

    def on_plan_cache(self, plan, hit: bool) -> None:
        self.registry.counter(
            "repro_plan_cache_total", "launch-plan cache resolutions",
            result="hit" if hit else "miss",
        ).inc()

    def on_tuning_cache(self, kernel, acc_type, hit: bool) -> None:
        self.registry.counter(
            "repro_tuning_cache_total", "AUTO work-div cache resolutions",
            result="hit" if hit else "miss",
        ).inc()

    def on_sanitizer_report(self, plan, record) -> None:
        n = len(record.findings)
        self.registry.counter(
            "repro_sanitizer_findings_total", "sanitizer findings",
            kernel=_kernel_name(plan.kernel), backend=plan.acc_type.name,
        ).inc(n)
        self._emit(
            TraceEvent(
                name="sanitize",
                cat="sanitize",
                ph="i",
                ts=self._now_us(),
                tid=threading.get_ident(),
                args={"kernel": record.kernel, "findings": n},
            )
        )

    def on_graph_end(self, graph_exec, stats) -> None:
        labels = {"graph": f"g{stats.graph_id}", "mode": stats.mode}
        reg = self.registry
        reg.counter(
            "repro_graph_submits_total", "dataflow graph submissions",
            **labels,
        ).inc()
        reg.counter(
            "repro_graph_nodes_total", "graph nodes executed", **labels
        ).inc(stats.node_count)
        reg.counter(
            "repro_graph_wall_seconds_total", "summed graph wall time",
            **labels,
        ).inc(stats.wall_seconds)
        reg.histogram(
            "repro_graph_critical_path_seconds",
            "longest dependency-chain duration per submission", **labels,
        ).observe(stats.critical_path_seconds)
        reg.histogram(
            "repro_graph_overlap_ratio",
            "node_seconds / wall_seconds per submission (>1 = overlap)",
            buckets=(0.5, 0.75, 0.9, 1.0, 1.25, 1.5, 2.0, 4.0, 8.0),
            **labels,
        ).observe(stats.overlap_ratio)
        # Node slices get their own per-graph track (tid) so Perfetto
        # groups one submission's nodes together regardless of which
        # queue worker thread actually ran them.
        tid = 1_000_000 + stats.graph_id
        with self._lock:
            new_track = stats.graph_id not in self._graph_tracks
            self._graph_tracks.add(stats.graph_id)
        if new_track:
            self._emit(
                TraceEvent(
                    name="thread_name", cat="graph", ph="M", ts=0.0,
                    tid=tid,
                    args={"name": f"graph g{stats.graph_id}"},
                )
            )
        base = (graph_exec._t0 - self._t0) * 1e6
        self._emit(
            TraceEvent(
                name=f"graph g{stats.graph_id}",
                cat="graph",
                ph="X",
                ts=max(0.0, base),
                dur=stats.wall_seconds * 1e6,
                tid=tid,
                args=self._with_trace_ids(
                    {
                        "mode": stats.mode,
                        "nodes": stats.node_count,
                        "devices": stats.device_count,
                        "replayed": stats.replayed,
                        "critical_path_s": stats.critical_path_seconds,
                        "overlap_ratio": round(stats.overlap_ratio, 3),
                    }
                ),
            )
        )
        for nd in stats.nodes:
            self._emit(
                TraceEvent(
                    name=f"#{nd['index']} {nd['label']}",
                    cat="graph",
                    ph="X",
                    ts=max(0.0, base + nd["start"] * 1e6),
                    dur=nd["duration"] * 1e6,
                    tid=tid,
                    args={"kind": nd["kind"], "device": nd["device"]},
                )
            )

    def on_worker_span(self, info) -> None:
        """A pool worker's timed region, replayed parent-side.

        The worker recorded ``t0``/``t1`` with its own
        ``time.perf_counter`` — CLOCK_MONOTONIC on Linux, shared across
        processes — so the parent's ``_t0`` origin applies directly and
        the worker's slices land at their true wall position.  The
        event keeps the worker's real pid: the exported trace grows one
        track per worker process.
        """
        t0 = float(info.get("t0", 0.0))
        t1 = float(info.get("t1", t0))
        wall = max(0.0, t1 - t0)
        pid = int(info.get("pid", 0))
        args: Dict[str, object] = {
            k: v
            for k, v in info.items()
            if k not in ("name", "t0", "t1", "pid", "tid")
        }
        self.registry.histogram(
            "repro_worker_span_seconds",
            "wall duration of process-pool worker regions",
            span=str(info.get("name", "chunk")),
            worker=str(pid),
        ).observe(wall)
        self._emit(
            TraceEvent(
                name=str(info.get("name", "chunk")),
                cat="worker",
                ph="X",
                ts=(t0 - self._t0) * 1e6,
                dur=wall * 1e6,
                tid=int(info.get("tid", pid)),
                args=args,
                pid=pid,
            )
        )

    def on_span_end(self, span) -> None:
        self.registry.histogram(
            "repro_span_seconds", "span wall duration",
            span=span.name, cat=span.cat,
        ).observe(span.wall_s)
        args = {str(k): str(v) for k, v in span.attrs.items()}
        if span.sim_s:
            args["modeled_s"] = span.sim_s
        if span.error:
            args["error"] = span.error
        if span.trace is not None:
            args.update(span.trace.ids())
        self._emit(
            TraceEvent(
                name=span.name,
                cat=span.cat,
                ph="X",
                ts=(span.t0 - self._t0) * 1e6,
                dur=span.wall_s * 1e6,
                tid=span.thread_id,
                args=args,
            )
        )

    # -- aggregate queries ----------------------------------------------

    def _cache_rate(self, metric: str) -> Optional[float]:
        hits = misses = 0.0
        for inst in self.registry.instruments(metric):
            labels = dict(inst.labels)
            if labels.get("result") == "hit":
                hits += inst.value
            else:
                misses += inst.value
        total = hits + misses
        return hits / total if total else None

    @property
    def plan_cache_hit_rate(self) -> Optional[float]:
        """Fraction of plan resolutions served from the LRU cache
        (None before any resolution)."""
        return self._cache_rate("repro_plan_cache_total")

    @property
    def tuning_cache_hit_rate(self) -> Optional[float]:
        """Fraction of AUTO work-div resolutions served tuned divisions
        (None before any AUTO resolution)."""
        return self._cache_rate("repro_tuning_cache_total")

    def kernels(self) -> List[Tuple[str, str, str]]:
        """Distinct ``(kernel, backend, device)`` label triples seen."""
        out = set()
        for inst in self.registry.instruments("repro_launches_total"):
            labels = dict(inst.labels)
            out.add((labels["kernel"], labels["backend"], labels["device"]))
        return sorted(out)

    def render(self) -> str:
        """The human report (see :mod:`repro.telemetry.report`)."""
        from .report import render

        return render(self)

    def __repr__(self) -> str:
        return (
            f"<TelemetryCollector {self.label or 'anonymous'}: "
            f"{len(self.registry)} instruments, {len(self.events)} events>"
        )
