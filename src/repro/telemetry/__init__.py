"""repro.telemetry — metrics, span profiling and launch analytics.

The always-available observability layer over the Task→Plan→Execute
runtime: every launch, block, copy, queue drain, cache resolution and
span reaches a :class:`TelemetryCollector` through the
:class:`~repro.runtime.instrument.ExecutionObserver` hooks, lands in a
metrics registry (counters / gauges / histograms with p50/p95/p99
percentiles, labelled kernel × back-end × device) and in a trace
buffer exportable as Chrome ``trace_event`` JSON (Perfetto /
``chrome://tracing``) or Prometheus text.

Three ways in:

* **zero-code** — ``REPRO_TELEMETRY=1 python app.py`` prints the
  report at exit; ``REPRO_TELEMETRY_EXPORT=trace.json`` also writes
  the trace;
* **programmatic** — ::

      from repro import telemetry
      with telemetry.collect() as t:
          enqueue(queue, task)
      print(t.render())

* **CLI** — ``python -m repro.telemetry run|report|export``.

When nothing collects, the hot path pays a single falsy check
(guarded by ``benchmarks/bench_launch_overhead.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from ..runtime.instrument import observe
from ._state import (
    TELEMETRY_ENV,
    TELEMETRY_EXPORT_ENV,
    activate,
    deactivate,
    enabled,
    export_to,
    maybe_activate_from_env,
    session_collector,
)
from .collector import TelemetryCollector, TraceEvent
from .export import (
    TraceValidationError,
    to_chrome_trace,
    to_prometheus,
    validate_trace,
    write_chrome_trace,
)
from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    reset_registry,
)
from . import flight, http, tracing
from .export import stitch_traces
from .report import render, summary
from .spans import NULL_SPAN, Span, record_span, sim_interval, span
from .tracing import TRACEPARENT_ENV, TraceContext, TraceStore, trace_store

__all__ = [
    # activation
    "TELEMETRY_ENV",
    "TELEMETRY_EXPORT_ENV",
    "enabled",
    "activate",
    "deactivate",
    "session_collector",
    "maybe_activate_from_env",
    "collect",
    # collector
    "TelemetryCollector",
    "TraceEvent",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "registry",
    "reset_registry",
    # spans
    "Span",
    "span",
    "record_span",
    "sim_interval",
    "NULL_SPAN",
    # tracing
    "tracing",
    "TraceContext",
    "TraceStore",
    "trace_store",
    "TRACEPARENT_ENV",
    # ops surfaces
    "flight",
    "http",
    # export / report
    "to_chrome_trace",
    "write_chrome_trace",
    "to_prometheus",
    "validate_trace",
    "stitch_traces",
    "TraceValidationError",
    "export_to",
    "render",
    "summary",
]


@contextmanager
def collect(
    label: str = "",
    record_blocks: bool = False,
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[TelemetryCollector]:
    """Collect telemetry for the duration of a ``with`` block::

        with telemetry.collect() as t:
            enqueue(queue, task)
        print(t.render())
        trace = telemetry.to_chrome_trace(t)

    The yielded collector records into its own private metrics registry
    unless one is passed, so concurrent ``collect()`` blocks do not
    bleed into each other.
    """
    collector = TelemetryCollector(
        label=label, registry=registry, record_blocks=record_blocks
    )
    with observe(collector):
        yield collector
