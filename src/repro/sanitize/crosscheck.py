"""Compiled-vs-interpreted cross-check sweep.

The sanitizer's dynamic checks guard the *interpreted* execution; the
trace-vectorized replay (``repro.compile``) is a second executor whose
correctness contract is bit-identity with interpretation.  This sweep
closes the loop: it re-runs the canned kernel sweep
(:data:`~repro.sanitize.sweep.KERNEL_SWEEP`) on a pooled back-end with
``REPRO_SCHEDULER=compiled`` and ``REPRO_COMPILE_CROSSCHECK=1``, so

* every kernel family the vectorizer can compile executes **twice** —
  once as fused array ops, once interpreted — and any byte of
  divergence raises :class:`~repro.core.errors.CompileCrossCheckError`;
* every family it cannot compile must fall back through a *classified*
  reason (barrier, atomics, divergent-control-flow, ...) — an
  unclassified crash is a vectorizer bug, not a fallback.

The sweep is the compiled engine's false-miscompile regression, the
exact analogue of ``sweep_kernels`` being the sanitizer's
false-positive regression.  CI runs it via
``python -m repro.sanitize crosscheck``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "CrossCheckReport",
    "sweep_crosscheck",
    "DEFAULT_CROSSCHECK_BACKENDS",
]

#: Back-ends the cross-check sweep exercises: the pooled CPU back-end
#: is where the ``compiled`` schedule is reachable (sequential
#: back-ends never remap to it).
DEFAULT_CROSSCHECK_BACKENDS = ("AccCpuOmp2Blocks",)


@dataclass
class CrossCheckReport:
    """Outcome of one cross-check sweep."""

    #: (kernel-family, backend) pairs that ran.
    ran: List[Tuple[str, str]] = field(default_factory=list)
    #: Compiled launches that were replayed twice and compared.
    crosschecks: int = 0
    #: Grid replays executed through the vectorized path.
    compiled_launches: int = 0
    #: Fallback counts by classified reason slug.
    fallbacks: Dict[str, int] = field(default_factory=dict)
    #: ``kernel-family@backend: message`` for every mismatch/crash.
    failures: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            "compiled-vs-interpreted cross-check sweep",
            f"  families run      : {len(self.ran)}",
            f"  compiled launches : {self.compiled_launches}",
            f"  crosschecks       : {self.crosschecks}",
        ]
        if self.fallbacks:
            lines.append("  fallbacks (classified, interpreted instead):")
            for reason in sorted(self.fallbacks):
                lines.append(f"    {reason}: {self.fallbacks[reason]}")
        for failure in self.failures:
            lines.append(f"  MISMATCH {failure}")
        lines.append("  " + ("CLEAN" if self.clean else "FAILED"))
        return "\n".join(lines)


@contextmanager
def _pinned_env(**pairs: str):
    saved = {k: os.environ.get(k) for k in pairs}
    os.environ.update(pairs)
    try:
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def sweep_crosscheck(
    backends: Optional[Iterable[str]] = None,
    *,
    only: Optional[Iterable[str]] = None,
) -> CrossCheckReport:
    """Run every shipped kernel family under
    ``REPRO_SCHEDULER=compiled`` with the cross-check active.

    Returns the combined report; :attr:`CrossCheckReport.clean` must be
    true — a mismatch means the vectorizer miscompiled a kernel, an
    unclassified crash means a fallback path is missing.
    """
    from ..acc.registry import accelerator
    from ..compile import CROSSCHECK_ENV, compile_stats, reset_compile_stats
    from ..core.errors import CompileCrossCheckError
    from ..dev.manager import get_dev_by_idx
    from ..queue.queue import QueueBlocking
    from ..runtime import clear_plan_cache
    from ..runtime.scheduler import SCHEDULER_ENV
    from .sweep import KERNEL_SWEEP

    names = set(only) if only is not None else None
    report = CrossCheckReport()
    with _pinned_env(**{SCHEDULER_ENV: "compiled", CROSSCHECK_ENV: "1"}):
        clear_plan_cache()
        reset_compile_stats()
        for backend in backends or DEFAULT_CROSSCHECK_BACKENDS:
            acc = accelerator(backend)
            device = get_dev_by_idx(acc, 0)
            queue = QueueBlocking(device)
            for kernel_name, fn in KERNEL_SWEEP:
                if names is not None and kernel_name not in names:
                    continue
                try:
                    fn(acc, device, queue)
                except CompileCrossCheckError as exc:
                    report.failures.append(
                        f"{kernel_name}@{backend}: {exc}"
                    )
                except Exception as exc:  # unclassified = vectorizer bug
                    report.failures.append(
                        f"{kernel_name}@{backend}: "
                        f"unclassified {type(exc).__name__}: {exc}"
                    )
                else:
                    report.ran.append((kernel_name, backend))
        stats = compile_stats()
    report.crosschecks = int(stats["crosschecks"])
    report.compiled_launches = int(stats["compiled_launches"])
    report.fallbacks = dict(stats["fallbacks"])
    clear_plan_cache()
    return report
