"""Shadow arrays: numpy wrappers that report every kernel access.

A :class:`ShadowArray` stands in for the array a kernel argument (or a
block-shared allocation) unwraps to.  It forwards all data movement to
the real array while telling the launch's
:class:`~repro.sanitize.recorder.AccessRecorder` exactly *which root
cells* were read or written — the information the happens-before race
detector and the bounds checker run on.

Cell attribution uses an **index map**: alongside the wrapped view the
shadow carries an equally-shaped ``int64`` array whose values are flat
indices into the root array.  Indexing the map with the kernel's key —
whatever numpy indexing form it takes — yields precisely the root
cells the access touches, so sub-views, strided slices, transposes and
fancy indexing all attribute exactly.

Semantics preserved:

* **basic indexing** (ints/slices) returns another shadow *view* —
  writes through it reach the root, and reads are recorded lazily when
  the view's data is actually consumed;
* **advanced indexing** (index/bool arrays) has numpy copy semantics,
  so the read is recorded eagerly and a plain copy returned;
* arithmetic/comparison/matmul operators, ``__array__`` and a
  whitelist of read methods consume the view (recording the read) and
  return plain numpy objects — kernels never accumulate nested
  wrappers;
* in-place operators record read+write and mutate the root.

Out-of-bounds and negative indices record a finding and raise
:class:`SanitizedAccessError` (an :class:`~repro.core.errors.ExtentError`)
so the offending thread unwinds while the sanitized launch continues
with the other blocks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.errors import ExtentError
from ..mem.guard import check_index_key

__all__ = ["ShadowArray", "SanitizedAccessError"]


class SanitizedAccessError(ExtentError):
    """An out-of-bounds/negative access caught (and already recorded)
    by the sanitizer; the runner treats it as a finding, not a crash."""


def _is_basic_key(key) -> bool:
    comps = key if type(key) is tuple else (key,)
    return all(
        isinstance(k, (int, np.integer, slice))
        or k is Ellipsis
        or k is None
        for k in comps
    )


class ShadowArray:
    """Recording proxy for one view of a tracked root array."""

    __slots__ = ("_base", "_idxmap", "_tracked")

    def __init__(self, base: np.ndarray, tracked, idxmap: np.ndarray):
        self._base = base
        self._tracked = tracked  # recorder-side root bookkeeping
        self._idxmap = idxmap

    @classmethod
    def wrap_root(cls, base: np.ndarray, tracked) -> "ShadowArray":
        idxmap = np.arange(base.size, dtype=np.int64).reshape(base.shape)
        return cls(base, tracked, idxmap)

    # -- metadata (no access recorded) ----------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._base.shape

    @property
    def dtype(self):
        return self._base.dtype

    @property
    def ndim(self) -> int:
        return self._base.ndim

    @property
    def size(self) -> int:
        return self._base.size

    def __len__(self) -> int:
        return len(self._base)

    def __repr__(self) -> str:
        return (
            f"<ShadowArray of {self._tracked.name!r} "
            f"shape={self._base.shape} dtype={self._base.dtype}>"
        )

    # -- recording helpers ----------------------------------------------

    def _consume(self) -> np.ndarray:
        """Record a read of every cell of this view; return plain data."""
        self._tracked.record(self._idxmap.reshape(-1), False)
        base = self._base
        return base.view(np.ndarray) if type(base) is not np.ndarray else base

    def _coerce(self, value):
        return value._consume() if isinstance(value, ShadowArray) else value

    def _coerce_key(self, key):
        if isinstance(key, ShadowArray):
            return key._consume()
        if type(key) is tuple and any(
            isinstance(k, ShadowArray) for k in key
        ):
            return tuple(self._coerce(k) for k in key)
        return key

    def _check_key(self, key, is_write: bool):
        key = self._coerce_key(key)
        try:
            check_index_key(key)
        except ExtentError as exc:
            self._tracked.record_index_finding(
                "negative-index", is_write, str(exc)
            )
            raise SanitizedAccessError(str(exc)) from None
        return key

    def _map_cells(self, key, is_write: bool):
        try:
            return self._idxmap[key]
        except IndexError as exc:
            detail = (
                f"index {key!r} out of bounds for "
                f"shape {self._base.shape}: {exc}"
            )
            self._tracked.record_index_finding("out-of-bounds", is_write, detail)
            raise SanitizedAccessError(detail) from None

    # -- element access ---------------------------------------------------

    def __getitem__(self, key):
        key = self._check_key(key, is_write=False)
        cells = self._map_cells(key, is_write=False)
        if isinstance(cells, np.ndarray) and cells.ndim > 0:
            if _is_basic_key(key):
                # A genuine numpy view: defer the read until consumed.
                return ShadowArray(self._base[key], self._tracked, cells)
            # Advanced indexing copies; record the read now.
            self._tracked.record(cells.reshape(-1), False)
            base = self._base[key]
            return base.view(np.ndarray) if type(base) is not np.ndarray else base
        # Scalar element.
        self._tracked.record(np.asarray([cells], dtype=np.int64), False)
        return self._base[key]

    def __setitem__(self, key, value) -> None:
        value = self._coerce(value)
        key = self._check_key(key, is_write=True)
        cells = self._map_cells(key, is_write=True)
        if isinstance(cells, np.ndarray) and cells.ndim > 0:
            self._tracked.record(cells.reshape(-1), True)
        else:
            self._tracked.record(np.asarray([cells], dtype=np.int64), True)
        self._base[key] = value

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    # -- numpy interop -----------------------------------------------------

    def __array__(self, dtype=None, **kwargs):
        out = self._consume()
        return np.asarray(out, dtype=dtype) if dtype is not None else out

    @property
    def T(self) -> "ShadowArray":
        return ShadowArray(self._base.T, self._tracked, self._idxmap.T)

    @property
    def __alpaka_atomic_ctx__(self):
        """Context manager marking accesses atomic; entered by
        :meth:`repro.atomic.ops.AtomicDomain._rmw` around its RMW."""
        return self._tracked.recorder.monitor.atomic_section

    def fill(self, value) -> None:
        self._tracked.record(self._idxmap.reshape(-1), True)
        self._base.fill(value)


def _binop(name: str):
    def op(self, other):
        a = self._consume()
        return getattr(a, name)(self._coerce(other))

    op.__name__ = name
    return op


def _ibinop(name: str):
    inplace = getattr(np.ndarray, name)

    def op(self, other):
        other = self._coerce(other)
        cells = self._idxmap.reshape(-1)
        self._tracked.record(cells, False)
        self._tracked.record(cells, True)
        inplace(
            self._base.view(np.ndarray)
            if type(self._base) is not np.ndarray
            else self._base,
            other,
        )
        return self

    op.__name__ = name
    return op


def _unop(name: str):
    def op(self):
        return getattr(self._consume(), name)()

    op.__name__ = name
    return op


def _read_method(name: str):
    def method(self, *args, **kwargs):
        args = tuple(self._coerce(a) for a in args)
        return getattr(self._consume(), name)(*args, **kwargs)

    method.__name__ = name
    return method


for _name in (
    "__add__", "__radd__", "__sub__", "__rsub__",
    "__mul__", "__rmul__", "__truediv__", "__rtruediv__",
    "__floordiv__", "__rfloordiv__", "__mod__", "__rmod__",
    "__pow__", "__rpow__", "__matmul__", "__rmatmul__",
    "__and__", "__rand__", "__or__", "__ror__", "__xor__", "__rxor__",
    "__lshift__", "__rlshift__", "__rshift__", "__rrshift__",
    "__lt__", "__le__", "__gt__", "__ge__", "__eq__", "__ne__",
):
    setattr(ShadowArray, _name, _binop(_name))

for _name in (
    "__iadd__", "__isub__", "__imul__", "__itruediv__",
    "__ifloordiv__", "__imod__", "__ipow__",
    "__iand__", "__ior__", "__ixor__", "__ilshift__", "__irshift__",
):
    setattr(ShadowArray, _name, _ibinop(_name))

for _name in ("__neg__", "__pos__", "__abs__", "__invert__",
              "__float__", "__int__", "__bool__", "__complex__"):
    setattr(ShadowArray, _name, _unop(_name))

for _name in (
    "sum", "mean", "std", "var", "min", "max", "prod", "any", "all",
    "argmin", "argmax", "cumsum", "cumprod", "astype", "copy", "round",
    "ravel", "reshape", "tolist", "item", "nonzero", "dot", "conj",
    "clip", "repeat", "take", "searchsorted",
):
    setattr(ShadowArray, _name, _read_method(_name))

del _name
