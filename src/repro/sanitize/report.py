"""Structured sanitizer output: findings, launch records, reports.

Everything the detector layers (:mod:`repro.sanitize.recorder`,
:mod:`repro.sanitize.monitor`) discover is normalised into
:class:`Finding` values — kind, array, block/thread indices, and the
Python source locations of the offending accesses — grouped per
sanitized launch into :class:`LaunchRecord` and per session/run into
:class:`SanitizerReport`.  Reports render to human-readable text
(:meth:`SanitizerReport.render`) and can escalate to
:class:`~repro.core.errors.SanitizerError` for CI-style hard failure.
"""

from __future__ import annotations

import linecache
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import SanitizerError

__all__ = [
    "AccessSite",
    "Finding",
    "LaunchRecord",
    "SanitizerReport",
    "FINDING_KINDS",
]

#: Every kind of defect the sanitizer reports.
FINDING_KINDS = (
    "data-race",
    "out-of-bounds",
    "negative-index",
    "barrier-divergence",
)


@dataclass(frozen=True)
class AccessSite:
    """A Python source location of one recorded access."""

    filename: str
    lineno: int
    function: str

    def __str__(self) -> str:
        return f"{self.filename}:{self.lineno} in {self.function}"

    @property
    def source_line(self) -> str:
        return linecache.getline(self.filename, self.lineno).strip()


@dataclass
class Finding:
    """One defect: what happened, where in the grid, where in the code.

    Identical defects (same kind, array and site pair) hitting many
    cells/threads collapse into one finding with ``count`` occurrences
    — a racy tile load races on every cell, and one line of report per
    cell helps nobody.
    """

    kind: str
    array: str
    detail: str
    kernel: str = ""
    backend: str = ""
    #: Grid coordinates of the (current) access, when known.
    block: Optional[Tuple[int, ...]] = None
    thread: Optional[Tuple[int, ...]] = None
    cell: Optional[Tuple[int, ...]] = None
    site: Optional[AccessSite] = None
    #: The conflicting access of a race: its thread and source site.
    other_thread: Optional[Tuple[int, ...]] = None
    other_site: Optional[AccessSite] = None
    #: Schedule-fuzzing seed the finding surfaced under (replay handle).
    seed: Optional[int] = None
    count: int = 1

    def describe(self) -> str:
        where = []
        if self.block is not None:
            where.append(f"block {tuple(self.block)}")
        if self.thread is not None:
            where.append(f"thread {tuple(self.thread)}")
        if self.cell is not None:
            where.append(f"cell {tuple(self.cell)}")
        lines = [
            f"[{self.kind}] {self.array}: {self.detail}"
            + (f" ({', '.join(where)})" if where else "")
        ]
        if self.site is not None:
            lines.append(f"    at {self.site}")
            src = self.site.source_line
            if src:
                lines.append(f"        {src}")
        if self.other_site is not None:
            other = f"    conflicts with access at {self.other_site}"
            if self.other_thread is not None:
                other += f" (thread {tuple(self.other_thread)})"
            lines.append(other)
            src = self.other_site.source_line
            if src:
                lines.append(f"        {src}")
        if self.seed is not None:
            lines.append(f"    schedule seed {self.seed} (replay with "
                         f"REPRO_SANITIZE_SEED={self.seed})")
        if self.count > 1:
            lines.append(f"    x{self.count} occurrences (deduplicated)")
        return "\n".join(lines)


@dataclass
class LaunchRecord:
    """One sanitized kernel launch and everything found during it."""

    kernel: str
    backend: str
    device: str
    work_div: str
    seed: Optional[int] = None
    findings: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


@dataclass
class SanitizerReport:
    """Findings of one sanitizer run (one or many launches/schedules)."""

    label: str = ""
    launches: List[LaunchRecord] = field(default_factory=list)

    @property
    def findings(self) -> List[Finding]:
        return [f for rec in self.launches for f in rec.findings]

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def failing_seeds(self) -> List[int]:
        """Fuzz seeds whose schedule produced findings (for replay)."""
        return sorted(
            {
                rec.seed
                for rec in self.launches
                if rec.findings and rec.seed is not None
            }
        )

    def counts_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.kind] = out.get(f.kind, 0) + f.count
        return out

    def render(self) -> str:
        """Human-readable multi-line report."""
        head = "sanitizer report" + (f" [{self.label}]" if self.label else "")
        lines = [head, "=" * len(head)]
        if not self.launches:
            lines.append("(no sanitized launches)")
            return "\n".join(lines)
        for rec in self.launches:
            seed = f" seed={rec.seed}" if rec.seed is not None else ""
            status = "clean" if rec.clean else f"{len(rec.findings)} finding(s)"
            lines.append(
                f"launch {rec.kernel} on {rec.backend} ({rec.work_div}){seed}"
                f": {status}"
            )
            for f in rec.findings:
                lines.append("  " + f.describe().replace("\n", "\n  "))
        total = self.counts_by_kind()
        if total:
            summary = ", ".join(f"{k}: {n}" for k, n in sorted(total.items()))
            lines.append(f"TOTAL {summary}")
        else:
            lines.append("TOTAL clean")
        return "\n".join(lines)

    def raise_if_findings(self) -> None:
        """Escalate to :class:`SanitizerError` when anything was found."""
        if not self.clean:
            raise SanitizerError(
                f"sanitizer found defects:\n{self.render()}"
            )
