"""Schedule fuzzing: seeded-random fiber interleavings.

The cooperative engine (:func:`repro.acc.engine.run_block_cooperative`)
runs exactly one fiber at a time and transfers control only at
well-defined points — which makes interleavings *permutable*: replace
the deterministic round-robin successor choice with a seeded RNG and
every schedule the block can legally take becomes reachable, each one
exactly reproducible from its seed.

:func:`make_fuzzed_runner` builds a drop-in block runner that executes
any block this way; the sanitizer's launch runner substitutes it for
the back-end's declared runner (including the CUDA-sim back-end's
preemptive one — fuzzing trades the "real threads" flavour for
determinism, which is exactly what replaying a failing seed needs).
Preemption points between barriers come from the monitor's
``on_access`` hook, which yields the baton mid-kernel with probability
``preempt_probability`` per recorded access.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..acc.engine import _FiberScheduler, run_block_cooperative

__all__ = ["FuzzFiberScheduler", "make_fuzzed_runner"]


class FuzzFiberScheduler(_FiberScheduler):
    """A fiber scheduler whose every successor choice is drawn from a
    seeded RNG instead of round-robin order."""

    def __init__(self, n: int, rng: random.Random):
        super().__init__(n)
        self.rng = rng
        # Randomise which fiber runs first, too.
        self.current = rng.randrange(n) if n > 0 else 0

    def _next_ready_locked(self, after: int) -> Optional[int]:
        ready = [j for j, s in enumerate(self.state) if s == self.READY]
        if not ready:
            return None
        return self.rng.choice(ready)


def make_fuzzed_runner(rng: random.Random) -> Callable:
    """A block runner executing every block as seeded-random fibers.

    One shared ``rng`` drives all blocks of the launch; because only
    one fiber ever runs at a time, the draw sequence — and therefore
    the whole schedule — is a pure function of the seed.
    """

    def run_block_fuzzed(grid, block_idx, kernel, args) -> None:
        run_block_cooperative(
            grid,
            block_idx,
            kernel,
            args,
            scheduler_factory=lambda n: FuzzFiberScheduler(n, rng),
        )

    return run_block_fuzzed
