"""Canned sanitizer sweep over every shipped kernel.

One small, representative, *correct* launch per kernel family — the
kernels the paper evaluates plus the app kernels.  The sweep is the
sanitizer's false-positive regression: every run here must come back
clean (races between atomic accesses, barrier-separated shared-memory
phases, element-level vector slices... all idioms the detector must
not mis-flag).  The CLI (``python -m repro.sanitize kernels``) and CI
run it; a finding is a bug in either the kernel or the sanitizer.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ..core.vec import Vec
from ..core.workdiv import WorkDivMembers
from ..dev.manager import get_dev_by_idx
from ..queue.queue import QueueBlocking
from ._state import enabled
from .report import SanitizerReport

__all__ = ["KERNEL_SWEEP", "sweep_kernels", "DEFAULT_SWEEP_BACKENDS"]

#: Back-ends the sweep exercises by default: the serial baseline, a
#: preemptively threaded CPU back-end and the CUDA simulator — the
#: three distinct engine paths.
DEFAULT_SWEEP_BACKENDS = ("AccCpuSerial", "AccCpuThreads", "AccGpuCudaSim")


def _staged(mem, queue, device, host):
    buf = mem.alloc(device, host.shape, dtype=host.dtype)
    mem.copy(queue, buf, np.ascontiguousarray(host))
    return buf


def _run_axpy(acc, device, queue):
    from .. import mem
    from ..core.kernel import create_task_kernel
    from ..kernels import AxpyElementsKernel, AxpyKernel

    n = 64
    rng = np.random.default_rng(2)
    x = _staged(mem, queue, device, rng.random(n))
    y = _staged(mem, queue, device, rng.random(n))
    queue.enqueue(
        create_task_kernel(
            acc, WorkDivMembers.make(n, 1, 1), AxpyKernel(), n, 2.0, x, y
        )
    )
    queue.enqueue(
        create_task_kernel(
            acc, WorkDivMembers.make(4, 1, 16), AxpyElementsKernel(), n, 2.0, x, y
        )
    )


def _run_gemm(acc, device, queue):
    from .. import mem
    from ..core.kernel import create_task_kernel
    from ..kernels import (
        GemmCudaStyleKernel,
        GemmOmpStyleKernel,
        GemmTilingKernel,
        gemm_workdiv_cuda,
        gemm_workdiv_omp,
        gemm_workdiv_tiling,
    )

    n = 8
    rng = np.random.default_rng(3)
    A = _staged(mem, queue, device, rng.random((n, n)))
    B = _staged(mem, queue, device, rng.random((n, n)))
    C = _staged(mem, queue, device, rng.random((n, n)))
    queue.enqueue(
        create_task_kernel(
            acc, gemm_workdiv_omp(n, 4), GemmOmpStyleKernel(),
            n, 1.5, A, B, 0.5, C,
        )
    )
    if acc.supports_block_sync:
        bt = 4 if acc.get_acc_dev_props(device).block_thread_count_max >= 16 else 2
        queue.enqueue(
            create_task_kernel(
                acc, gemm_workdiv_cuda(n, bt), GemmCudaStyleKernel(),
                n, 1.0, A, B, 0.0, C,
            )
        )
        queue.enqueue(
            create_task_kernel(
                acc, gemm_workdiv_tiling(n, 2, 2), GemmTilingKernel(),
                n, 1.0, A, B, 1.0, C,
            )
        )


def _run_histogram(acc, device, queue):
    from .. import mem
    from ..core.kernel import create_task_kernel
    from ..kernels import HistogramKernel

    n, bins = 128, 8
    rng = np.random.default_rng(4)
    x = _staged(mem, queue, device, rng.random(n) * 0.999)
    hist = mem.alloc(device, bins)
    mem.memset(queue, hist, 0.0)
    if acc.supports_block_sync:
        wd = WorkDivMembers.make(4, 4, -(-n // 16))
    else:
        wd = WorkDivMembers.make(8, 1, -(-n // 8))
    queue.enqueue(
        create_task_kernel(acc, wd, HistogramKernel(), n, 0.0, 1.0, bins, x, hist)
    )


def _run_reduce(acc, device, queue):
    from .. import mem
    from ..core.kernel import create_task_kernel
    from ..kernels import DotKernel, SumReduceKernel

    n = 64
    rng = np.random.default_rng(5)
    x = _staged(mem, queue, device, rng.random(n))
    y = _staged(mem, queue, device, rng.random(n))
    out = mem.alloc(device, 1)
    mem.memset(queue, out, 0.0)
    if acc.supports_block_sync:
        bt = min(8, acc.get_acc_dev_props(device).block_thread_count_max)
        wd = WorkDivMembers.make(2, bt, -(-n // (2 * bt)))
    else:
        wd = WorkDivMembers.make(4, 1, 16)
    queue.enqueue(create_task_kernel(acc, wd, SumReduceKernel(), n, x, out))
    mem.memset(queue, out, 0.0)
    queue.enqueue(create_task_kernel(acc, wd, DotKernel(), n, x, y, out))


def _run_scan(acc, device, queue):
    from .. import mem
    from ..kernels import scan_exclusive

    n, chunk = 64, 8
    rng = np.random.default_rng(6)
    x = _staged(mem, queue, device, rng.random(n))
    out = mem.alloc(device, n)
    scan_exclusive(acc, queue, x, out, n, chunk=chunk)


def _run_sort(acc, device, queue):
    from .. import mem
    from ..kernels import sort_chunks

    n = 32
    rng = np.random.default_rng(7)
    data = _staged(mem, queue, device, rng.random(n))
    sort_chunks(acc, queue, data, n, chunk=16)


def _run_spmv(acc, device, queue):
    from .. import mem
    from ..core.kernel import create_task_kernel
    from ..kernels import CsrSpmvKernel, csr_from_dense

    n = 16
    rng = np.random.default_rng(8)
    dense = rng.random((n, n)) * (rng.random((n, n)) < 0.3)
    values, col_idx, row_ptr = csr_from_dense(dense)
    vb = _staged(mem, queue, device, values)
    cb = _staged(mem, queue, device, col_idx)
    rb = _staged(mem, queue, device, row_ptr)
    x = _staged(mem, queue, device, rng.random(n))
    y = mem.alloc(device, n)
    mem.memset(queue, y, 0.0)
    wd = WorkDivMembers.make(4, 1, 4)
    queue.enqueue(
        create_task_kernel(acc, wd, CsrSpmvKernel(), n, vb, cb, rb, x, y)
    )


def _run_stencil(acc, device, queue):
    from .. import mem
    from ..core.kernel import create_task_kernel
    from ..kernels import Jacobi2DKernel

    h = w = 8
    rng = np.random.default_rng(9)
    src = _staged(mem, queue, device, rng.random((h, w)))
    dst = mem.alloc(device, (h, w))
    wd = WorkDivMembers.make((2, 2), Vec(1, 1), Vec(4, 4))
    queue.enqueue(
        create_task_kernel(acc, wd, Jacobi2DKernel(), h, w, 0.1, src, dst)
    )


def _run_stencil3d(acc, device, queue):
    from .. import mem
    from ..core.kernel import create_task_kernel
    from ..kernels import Jacobi3DKernel

    d, h, w = 4, 6, 5
    rng = np.random.default_rng(10)
    src = _staged(mem, queue, device, rng.random((d, h, w)))
    dst = mem.alloc(device, (d, h, w))
    wd = WorkDivMembers.make((2, 2, 1), Vec(1, 1, 1), Vec(2, 3, 5))
    queue.enqueue(
        create_task_kernel(acc, wd, Jacobi3DKernel(), d, h, w, 0.1, src, dst)
    )


def _run_transform(acc, device, queue):
    from .. import mem
    from ..core.kernel import create_task_kernel
    from ..kernels import FillKernel, IotaKernel, MapKernel, ScaleKernel

    n = 64
    out = mem.alloc(device, n)
    x = mem.alloc(device, n)
    wd = WorkDivMembers.make(4, 1, 16)
    queue.enqueue(create_task_kernel(acc, wd, FillKernel(), n, 1.25, out))
    queue.enqueue(create_task_kernel(acc, wd, IotaKernel(), n, 0.0, x))
    queue.enqueue(create_task_kernel(acc, wd, ScaleKernel(), n, 3.0, x, out))
    queue.enqueue(
        create_task_kernel(acc, wd, MapKernel(np.sqrt), n, x, out)
    )


def _run_transpose(acc, device, queue):
    from .. import mem
    from ..core.kernel import create_task_kernel
    from ..kernels import (
        TransposeNaiveKernel,
        TransposeTiledKernel,
        transpose_workdiv,
    )

    n = 8
    rng = np.random.default_rng(11)
    inp = _staged(mem, queue, device, rng.random((n, n)))
    out = mem.alloc(device, (n, n))
    wd = transpose_workdiv(n, tile=4)
    queue.enqueue(create_task_kernel(acc, wd, TransposeNaiveKernel(), n, inp, out))
    queue.enqueue(create_task_kernel(acc, wd, TransposeTiledKernel(), n, inp, out))


def _run_batched(acc, device, queue):
    from .. import mem
    from ..core.kernel import create_task_kernel
    from ..kernels import DEFAULT_ROWS_PER_CHUNK, BatchedGemmKernel

    batch, n = 3, 8
    rng = np.random.default_rng(11)
    A = _staged(mem, queue, device, rng.random((batch, n, n)))
    B = _staged(mem, queue, device, rng.random((batch, n, n)))
    C = _staged(mem, queue, device, rng.random((batch, n, n)))
    queue.enqueue(
        create_task_kernel(
            acc, WorkDivMembers.make(batch, 1, 1), BatchedGemmKernel(),
            batch, n, DEFAULT_ROWS_PER_CHUNK, 1.5, 0.5, A, B, C,
        )
    )


#: name -> launch function; every shipped kernel family appears once.
KERNEL_SWEEP: Tuple[Tuple[str, object], ...] = (
    ("axpy", _run_axpy),
    ("batched", _run_batched),
    ("gemm", _run_gemm),
    ("histogram", _run_histogram),
    ("reduce", _run_reduce),
    ("scan", _run_scan),
    ("sort", _run_sort),
    ("spmv", _run_spmv),
    ("stencil", _run_stencil),
    ("stencil3d", _run_stencil3d),
    ("transform", _run_transform),
    ("transpose", _run_transpose),
)


def sweep_kernels(
    backends: Optional[Iterable[str]] = None,
    *,
    seed: Optional[int] = None,
    only: Optional[Iterable[str]] = None,
) -> SanitizerReport:
    """Run every shipped kernel under the sanitizer on ``backends``.

    Returns the combined report; :attr:`SanitizerReport.clean` must be
    true — any finding is a regression.  ``seed`` forces the fuzzed
    cooperative schedule on back-ends that support it.
    """
    from ..acc.registry import accelerator

    names = set(only) if only is not None else None
    report = SanitizerReport(label="kernel sweep")
    old_seed = None
    if seed is not None:
        old_seed = _state_set_seed(seed)
    try:
        for backend in backends or DEFAULT_SWEEP_BACKENDS:
            acc = accelerator(backend)
            device = get_dev_by_idx(acc, 0)
            queue = QueueBlocking(device)
            for kernel_name, fn in KERNEL_SWEEP:
                if names is not None and kernel_name not in names:
                    continue
                with enabled(label=f"{kernel_name}@{backend}") as rep:
                    fn(acc, device, queue)
                report.launches.extend(rep.launches)
    finally:
        if seed is not None:
            _state_set_seed(old_seed)
    return report


def _state_set_seed(value) -> Optional[str]:
    """Set/restore ``REPRO_SANITIZE_SEED`` around a sweep; returns the
    previous value (``None`` = unset)."""
    import os

    from ._state import SANITIZE_SEED_ENV

    old = os.environ.get(SANITIZE_SEED_ENV)
    if value is None:
        os.environ.pop(SANITIZE_SEED_ENV, None)
    else:
        os.environ[SANITIZE_SEED_ENV] = str(value)
    return old
