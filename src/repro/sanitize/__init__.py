"""repro.sanitize — a dynamic kernel sanitizer for every back-end.

Because every back-end executes through the reproduction's own engine
and memory objects, a sanitizer can watch *every* access and *every*
barrier with zero kernel changes.  This package runs task-kernels in an
instrumented mode and reports:

* **data races** on block-shared and global memory (phase/epoch
  happens-before model — :mod:`repro.sanitize.recorder`),
* **out-of-bounds and negative-index** accesses on buffers and views,
* **barrier divergence** (threads syncing while siblings exited),
* latent schedule-dependent bugs via **seeded schedule fuzzing**
  (:mod:`repro.sanitize.fuzz`), with failing seeds replayable.

Entry points::

    # zero code changes: sanitize every launch of a process
    REPRO_SANITIZE=1 python my_script.py
    REPRO_SANITIZE=1 REPRO_SANITIZE_SEED=7 python my_script.py

    # programmatic: one task, optionally many fuzz schedules
    from repro.sanitize import sanitize_task
    report = sanitize_task(task, seed=0, schedules=20)
    report.raise_if_findings()

    # collect whatever launches happen inside a block
    from repro.sanitize import enabled
    with enabled() as report:
        enqueue(queue, task)

    # CLI: demos, shipped kernels, examples, compiled cross-check
    python -m repro.sanitize demos
    python -m repro.sanitize examples
    python -m repro.sanitize crosscheck

This module keeps imports light (the runtime consults
:func:`sanitize_active` on every launch); detector machinery loads on
first attribute access.
"""

from __future__ import annotations

from ._state import (
    SANITIZE_ENV,
    SANITIZE_SEED_ENV,
    active as sanitize_active,
    enabled,
    env_seed,
    session_report,
)
from .report import AccessSite, Finding, LaunchRecord, SanitizerReport

__all__ = [
    "SANITIZE_ENV",
    "SANITIZE_SEED_ENV",
    "sanitize_active",
    "enabled",
    "env_seed",
    "session_report",
    "AccessSite",
    "Finding",
    "LaunchRecord",
    "SanitizerReport",
    # lazy (PEP 562):
    "sanitize_task",
    "sanitized_launch",
    "run_with_sanitizer",
    "ShadowArray",
    "SanitizedAccessError",
    "AccessRecorder",
    "SanitizeMonitor",
    "FuzzFiberScheduler",
    "make_fuzzed_runner",
    "sweep_crosscheck",
    "CrossCheckReport",
]

_LAZY = {
    "sanitize_task": "runner",
    "sanitized_launch": "runner",
    "run_with_sanitizer": "runner",
    "ShadowArray": "shadow",
    "SanitizedAccessError": "shadow",
    "AccessRecorder": "recorder",
    "SanitizeMonitor": "monitor",
    "FuzzFiberScheduler": "fuzz",
    "make_fuzzed_runner": "fuzz",
    "sweep_crosscheck": "crosscheck",
    "CrossCheckReport": "crosscheck",
}


def __getattr__(name: str):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{mod}", __name__), name)
