"""Process-wide sanitizer activation and report collection.

Deliberately import-light: :func:`active` is consulted by
:func:`repro.runtime.launch` on every kernel launch, so this module
must not pull in numpy-heavy detector machinery.  Only the report
dataclasses are imported.

Activation has two sources, either of which routes launches through the
instrumented path:

* the ``REPRO_SANITIZE`` environment variable (non-empty ⇒ on) — the
  zero-code-change entry for scripts and CI;
* the :func:`enabled` context manager — the programmatic opt-in
  ``testing.run_on_all_backends(sanitize=True)`` and the test-suite
  use.

``REPRO_SANITIZE_SEED`` selects a fuzzed (seeded, cooperative)
schedule for environment-activated launches; without it launches run
their back-end's declared deterministic runner.
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
from contextlib import contextmanager
from typing import Iterator, List, Optional

from .report import LaunchRecord, SanitizerReport

__all__ = [
    "SANITIZE_ENV",
    "SANITIZE_SEED_ENV",
    "active",
    "env_seed",
    "enabled",
    "session_report",
    "add_record",
]

#: Environment variable: any non-empty value sanitizes every launch.
SANITIZE_ENV = "REPRO_SANITIZE"
#: Environment variable: integer seed for fuzzed schedules (implies a
#: seeded cooperative scheduler on sync-capable launches).
SANITIZE_SEED_ENV = "REPRO_SANITIZE_SEED"

_lock = threading.Lock()
_forced = 0
_collectors: List[SanitizerReport] = []
_session = SanitizerReport(label="session")
_env_session = SanitizerReport(label=f"{SANITIZE_ENV} session")
_atexit_armed = False


def active() -> bool:
    """Should the runtime route launches through the sanitizer?"""
    return _forced > 0 or bool(os.environ.get(SANITIZE_ENV))


def env_seed() -> Optional[int]:
    raw = os.environ.get(SANITIZE_SEED_ENV)
    if raw is None or raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{SANITIZE_SEED_ENV}={raw!r} is not an integer seed"
        ) from None


def session_report() -> SanitizerReport:
    """Every sanitized launch of this process, in order."""
    return _session


def _print_session_at_exit() -> None:  # pragma: no cover - process teardown
    if not _env_session.clean:
        print(_env_session.render(), file=sys.stderr)


def add_record(rec: LaunchRecord) -> None:
    """File one sanitized launch with the session and active collectors."""
    global _atexit_armed
    with _lock:
        _session.launches.append(rec)
        for collector in _collectors:
            collector.launches.append(rec)
        if os.environ.get(SANITIZE_ENV):
            # Environment-driven runs have no caller holding a report;
            # collect separately and summarise on interpreter exit so
            # findings cannot vanish.
            _env_session.launches.append(rec)
            if not _atexit_armed:
                atexit.register(_print_session_at_exit)
                _atexit_armed = True


@contextmanager
def enabled(label: str = "") -> Iterator[SanitizerReport]:
    """Force-sanitize every launch inside the ``with`` block and collect
    their records into the yielded :class:`SanitizerReport`."""
    global _forced
    report = SanitizerReport(label=label)
    with _lock:
        _forced += 1
        _collectors.append(report)
    try:
        yield report
    finally:
        with _lock:
            _forced -= 1
            _collectors.remove(report)
