"""The launch monitor: per-thread sanitizer context and engine hooks.

One :class:`SanitizeMonitor` exists per sanitized launch, installed on
the :class:`~repro.acc.base.GridContext` (``grid.monitor``).  The
engine's thread runners announce thread begin/end, the block context
announces barrier passage (``on_sync`` = epoch bump) and shared
allocations (wrapped into shadow arrays), and the recorder asks it for
the current thread's (block, thread, epoch, atomic) context on every
access.

Divergence detection: each thread's *final* epoch (its completed
barrier count) is collected at ``thread_end``; a block whose threads
finished at different epochs had divergent ``sync_block_threads``
behaviour — some threads exited while siblings kept syncing — which is
undefined on CUDA and reported as a ``barrier-divergence`` finding.

Schedule fuzzing: when constructed with a seeded RNG the monitor's
``on_access`` hook (called by the recorder after every recorded
access) injects cooperative preemption points, yielding the fiber
baton to a randomly chosen ready sibling.  Preemption is suppressed
inside atomic sections — suspending a fiber that holds an atomic
stripe lock would deadlock the one-runs-at-a-time scheduler.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from .recorder import NONE, AccessRecorder
from .report import Finding
from .shadow import ShadowArray

__all__ = ["SanitizeMonitor", "ThreadContext"]


class ThreadContext:
    """Snapshot of one kernel thread's sanitizer coordinates."""

    __slots__ = ("block", "thread", "epoch", "atomic")

    def __init__(self, block: int, thread: int, epoch: int, atomic: int):
        self.block = block
        self.thread = thread
        self.epoch = epoch
        self.atomic = atomic


class _OutsideKernel(ThreadContext):
    def __init__(self):
        super().__init__(NONE, NONE, 0, 0)


_OUTSIDE = _OutsideKernel()


class SanitizeMonitor:
    """Engine-facing hooks + thread-local context for one launch."""

    def __init__(
        self,
        recorder: AccessRecorder,
        fuzz_rng=None,
        preempt_probability: float = 0.25,
    ):
        self.recorder = recorder
        self.fuzz_rng = fuzz_rng
        self.preempt_probability = preempt_probability
        self._tls = threading.local()
        self._lock = threading.Lock()
        # block_lin -> {thread_lin: final_epoch}
        self._final_epochs: Dict[int, Dict[int, int]] = {}
        self._aborted_blocks: set = set()

    # -- linearisation helpers ------------------------------------------

    def _block_lin(self, block_idx) -> int:
        from ..core.index import linearize

        return linearize(block_idx, self.recorder.work_div.grid_block_extent)

    def _thread_lin(self, thread_idx) -> int:
        from ..core.index import linearize

        return linearize(thread_idx, self.recorder.work_div.block_thread_extent)

    # -- engine hooks ----------------------------------------------------

    def thread_begin(self, block, thread_idx, scheduler=None) -> None:
        tls = self._tls
        tls.ctx = ThreadContext(
            self._block_lin(block.block_idx), self._thread_lin(thread_idx), 0, 0
        )
        tls.sched = scheduler

    def thread_end(self, block, thread_idx) -> None:
        ctx = getattr(self._tls, "ctx", None)
        if ctx is None:
            return
        with self._lock:
            self._final_epochs.setdefault(ctx.block, {})[ctx.thread] = ctx.epoch
        self._tls.ctx = None
        self._tls.sched = None

    def on_sync(self, block_ctx) -> None:
        ctx = getattr(self._tls, "ctx", None)
        if ctx is not None:
            ctx.epoch += 1

    def wrap_shared(self, name: str, arr, block_ctx) -> ShadowArray:
        ctx = self.context()
        block = (
            self._unlin_block(ctx.block) if ctx.block != NONE else "?"
        )
        tracked = self.recorder.track(
            f"shared[{name}]@block{block}", arr, scope="shared"
        )
        return ShadowArray.wrap_root(arr, tracked)

    def _unlin_block(self, lin: int) -> Tuple[int, ...]:
        import numpy as np

        return tuple(
            int(v)
            for v in np.unravel_index(
                int(lin), tuple(self.recorder.work_div.grid_block_extent)
            )
        )

    # -- recorder-facing -------------------------------------------------

    def context(self) -> ThreadContext:
        """The calling OS thread's sanitizer coordinates (a shared
        outside-kernel sentinel when not inside a kernel thread)."""
        ctx = getattr(self._tls, "ctx", None)
        return ctx if ctx is not None else _OUTSIDE

    def atomic_section(self):
        """Context manager marking the enclosed accesses atomic."""
        return _AtomicSection(self.context())

    def on_access(self) -> None:
        """Called by the recorder after each recorded access (with its
        lock released): the schedule fuzzer's preemption point."""
        rng = self.fuzz_rng
        if rng is None:
            return
        sched = getattr(self._tls, "sched", None)
        ctx = getattr(self._tls, "ctx", None)
        if sched is None or ctx is None or ctx.atomic:
            return
        if rng.random() < self.preempt_probability:
            sched.preempt()

    # -- divergence ------------------------------------------------------

    def skip_block(self, block_lin: int) -> None:
        """Exclude a block from divergence analysis (it aborted on an
        error/finding, so unequal final epochs are expected)."""
        with self._lock:
            self._aborted_blocks.add(block_lin)

    def divergence_findings(self, seed: Optional[int] = None) -> List[Finding]:
        out: List[Finding] = []
        wd = self.recorder.work_div
        with self._lock:
            for block_lin, epochs in sorted(self._final_epochs.items()):
                if block_lin in self._aborted_blocks or len(epochs) < 2:
                    continue
                lo, hi = min(epochs.values()), max(epochs.values())
                if lo == hi:
                    continue
                lo_t = min(t for t, e in epochs.items() if e == lo)
                hi_t = min(t for t, e in epochs.items() if e == hi)
                out.append(
                    Finding(
                        kind="barrier-divergence",
                        array="sync_block_threads",
                        detail=(
                            f"threads of the block passed different numbers "
                            f"of barriers ({lo} vs {hi}): e.g. thread "
                            f"{self._unlin_thread(lo_t, wd)} exited after "
                            f"{lo} sync(s) while thread "
                            f"{self._unlin_thread(hi_t, wd)} reached {hi}"
                        ),
                        block=self._unlin_block(block_lin),
                        seed=seed,
                    )
                )
        return out

    def _unlin_thread(self, lin: int, wd) -> Tuple[int, ...]:
        import numpy as np

        return tuple(
            int(v)
            for v in np.unravel_index(int(lin), tuple(wd.block_thread_extent))
        )


class _AtomicSection:
    __slots__ = ("_ctx",)

    def __init__(self, ctx: ThreadContext):
        self._ctx = ctx

    def __enter__(self):
        self._ctx.atomic += 1
        return self

    def __exit__(self, *exc) -> bool:
        self._ctx.atomic -= 1
        return False
