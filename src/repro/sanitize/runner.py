"""Sanitized launch execution: the instrumented Task→Plan→Execute path.

:func:`sanitized_launch` is what :func:`repro.runtime.launch` delegates
to when the sanitizer is active (``REPRO_SANITIZE=1`` or
:func:`repro.sanitize.enabled`): same plan resolution, same observer
notifications and modeled-time accounting, but kernel arguments are
wrapped in shadow arrays, a :class:`SanitizeMonitor` rides on the grid
context, blocks run sequentially in the caller's thread, and every
finding lands in a :class:`~repro.sanitize.report.LaunchRecord`.

:func:`sanitize_task` is the programmatic front door: run one task
under the sanitizer — optionally across several seeded fuzz schedules
with argument snapshot/restore between them — and get the report back
directly.

A thread that trips the bounds checker unwinds with
:class:`SanitizedAccessError`; its block is abandoned (and excluded
from divergence analysis) while the remaining blocks still execute, so
one bad access does not mask findings elsewhere in the grid.  Any
other kernel exception is re-raised exactly as an uninstrumented
launch would raise it.
"""

from __future__ import annotations

import inspect
import random
from typing import Optional, Tuple

import numpy as np

from ..core.index import linearize
from . import _state
from .fuzz import make_fuzzed_runner
from .monitor import SanitizeMonitor
from .recorder import AccessRecorder
from .report import LaunchRecord, SanitizerReport
from .shadow import SanitizedAccessError, ShadowArray

__all__ = ["sanitized_launch", "sanitize_task", "run_with_sanitizer"]


def _kernel_name(kernel) -> str:
    return getattr(kernel, "__name__", type(kernel).__name__)


def _arg_names(kernel, n: int) -> Tuple[str, ...]:
    """Best-effort kernel parameter names for report attribution."""
    names: Tuple[str, ...] = ()
    try:
        params = list(inspect.signature(kernel).parameters)
        if params and params[0] in ("acc", "self"):
            params = params[1:]
        if params and params[0] == "acc":
            params = params[1:]
        names = tuple(params)
    except (TypeError, ValueError):
        pass
    if len(names) < n:
        names = names + tuple(f"arg{i}" for i in range(len(names), n))
    return names[:n]


def _should_fuzz(plan) -> bool:
    return (
        plan.work_div.block_thread_count > 1
        and getattr(plan.acc_type, "supports_block_sync", False)
    )


def _sanitized_cause(exc) -> Optional[SanitizedAccessError]:
    seen = 0
    while exc is not None and seen < 20:
        if isinstance(exc, SanitizedAccessError):
            return exc
        exc = exc.__cause__
        seen += 1
    return None


def run_with_sanitizer(
    task, device, plan, seed: Optional[int] = None
) -> LaunchRecord:
    """Execute one sanitized launch; the shared core of both entry
    points.  Handles observer notification, accounting, shadow
    wrapping, sequential block dispatch, and divergence finalisation.
    """
    from ..acc.base import GridContext
    from ..acc.engine import unwrap_args
    from ..acc.timing import advance_modeled_time
    from ..runtime.instrument import (
        notify_launch_begin,
        notify_launch_end,
        notify_sanitizer_report,
    )

    recorder = AccessRecorder(plan.work_div)
    rng = random.Random(seed) if seed is not None else None
    monitor = SanitizeMonitor(recorder, fuzz_rng=rng)
    recorder.monitor = monitor

    raw = unwrap_args(task.args, device)
    names = _arg_names(task.kernel, len(raw))
    shadow_args = tuple(
        ShadowArray.wrap_root(a, recorder.track(name, a, "global"))
        if isinstance(a, np.ndarray)
        else a
        for name, a in zip(names, raw)
    )
    grid = GridContext(
        device,
        plan.work_div,
        plan.props,
        shadow_args,
        shared_mem_bytes=plan.shared_mem_bytes,
        monitor=monitor,
    )
    runner = plan.block_runner
    if rng is not None and _should_fuzz(plan):
        runner = make_fuzzed_runner(rng)

    record = LaunchRecord(
        kernel=_kernel_name(task.kernel),
        backend=plan.acc_type.name,
        device=getattr(device, "name", repr(device)),
        work_div=str(plan.work_div),
        seed=seed,
    )
    from ..telemetry.spans import span

    device.note_kernel_launch()
    plan.launches += 1
    notify_launch_begin(plan, task, device)
    error = None
    try:
        with span(
            "sanitize.launch",
            cat="sanitize",
            device=device,
            kernel=record.kernel,
        ):
            for bidx in plan.block_indices:
                try:
                    runner(grid, bidx, task.kernel, grid.args)
                except BaseException as exc:  # noqa: BLE001 - triaged below
                    monitor.skip_block(
                        linearize(bidx, plan.work_div.grid_block_extent)
                    )
                    if _sanitized_cause(exc) is not None:
                        continue  # already recorded as a finding
                    error = exc
                    break
            advance_modeled_time(
                task, device, plan.acc_type.kind, plan.work_div
            )
    finally:
        record.findings.extend(recorder.findings)
        record.findings.extend(monitor.divergence_findings(seed=seed))
        if seed is not None:
            for f in record.findings:
                if f.seed is None:
                    f.seed = seed
        _state.add_record(record)
        notify_sanitizer_report(plan, record)
        notify_launch_end(plan, task, device)
    if error is not None:
        raise error
    return record


def sanitized_launch(task, device):
    """Environment-activated path: called from
    :func:`repro.runtime.launch` instead of normal dispatch.  Returns
    the :class:`~repro.runtime.plan.LaunchPlan` like a normal launch;
    the record lands in the session report and active collectors."""
    from ..runtime.plan import get_plan

    plan = get_plan(task, device)
    run_with_sanitizer(task, device, plan, seed=_state.env_seed())
    return plan


def sanitize_task(
    task,
    device=None,
    *,
    seed: Optional[int] = None,
    schedules: int = 1,
) -> SanitizerReport:
    """Run ``task`` under the sanitizer and return its report.

    With ``schedules > 1`` the launch is repeated under that many
    seeded fuzz schedules (seeds ``seed, seed+1, ...``; ``seed``
    defaults to 0), restoring array arguments between runs so every
    schedule starts from identical data.  ``report.failing_seeds``
    lists any seed whose schedule produced findings — re-run with
    ``seed=<failing>`` (or ``REPRO_SANITIZE_SEED``) for a
    deterministic replay.
    """
    from ..acc.engine import unwrap_args
    from ..dev.manager import get_dev_by_idx
    from ..runtime.plan import get_plan

    if device is None:
        device = get_dev_by_idx(task.acc_type, 0)
    plan = get_plan(task, device)
    report = SanitizerReport(label=_kernel_name(task.kernel))

    if schedules <= 1:
        report.launches.append(run_with_sanitizer(task, device, plan, seed))
        return report

    base_seed = 0 if seed is None else seed
    raw = unwrap_args(task.args, device)
    snapshots = [
        (a, a.copy()) for a in raw if isinstance(a, np.ndarray)
    ]
    for k in range(schedules):
        if k > 0:
            for arr, snap in snapshots:
                arr[...] = snap
        report.launches.append(
            run_with_sanitizer(task, device, plan, base_seed + k)
        )
    return report
