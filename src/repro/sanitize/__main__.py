"""Entry point for ``python -m repro.sanitize``."""

import sys

from .cli import main

sys.exit(main())
