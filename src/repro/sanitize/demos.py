"""Seeded-buggy demo kernels proving the sanitizer detects real bugs.

Two classics, each a one-line mutation of a shipped kernel:

* :class:`RacyTiledGemmKernel` — the CUDA-programming-guide tiled GEMM
  (:class:`repro.kernels.gemm.GemmCudaStyleKernel`) with the barrier
  between the tile *load* and the tile *use* removed.  Every thread
  writes its tile cell and immediately reads its whole tile row/column
  — cells its siblings are still writing in the same epoch.  The
  happens-before detector flags this deterministically on every
  sync-capable back-end, under any schedule.
* :class:`OffByOneStencilKernel` — a 3-point stencil whose neighbour
  loads skip the boundary clamp: ``src[i - 1]`` at ``i == 0`` wraps
  negative (a silent numpy wrap-around in an uninstrumented run!) and
  ``src[i + 1]`` at ``i == n - 1`` runs out of bounds.

:func:`run_demo` builds the buffers, stages the data and runs a demo
under the sanitizer on any back-end; the CLI (``python -m
repro.sanitize demos``) and the tutorial's "debugging a racy kernel"
step drive it.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..core.errors import KernelError
from ..core.index import Block, Blocks, Grid, Threads, get_idx, get_work_div
from ..core.kernel import create_task_kernel, fn_acc
from ..core.workdiv import WorkDivMembers
from ..dev.manager import get_dev_by_idx
from ..queue.queue import QueueBlocking
from .report import SanitizerReport
from .runner import sanitize_task

__all__ = [
    "RacyTiledGemmKernel",
    "OffByOneStencilKernel",
    "DEMOS",
    "run_demo",
    "demo_backends",
]


class RacyTiledGemmKernel:
    """Shared-memory tiled DGEMM with the load-use barrier *missing*.

    Identical to :class:`~repro.kernels.gemm.GemmCudaStyleKernel`
    except the ``sync_block_threads`` after the tile load is gone —
    the textbook shared-memory race.
    """

    @fn_acc
    def __call__(self, acc, n, alpha, A, B, beta, C):
        ti = get_idx(acc, Block, Threads)
        bi = get_idx(acc, Grid, Blocks)
        ts = get_work_div(acc, Block, Threads)
        if ts.dim != 2 or ts[0] != ts[1]:
            raise KernelError(
                f"RacyTiledGemmKernel needs a square 2-d thread block, got {ts!r}"
            )
        bt = ts[0]
        row = bi[0] * bt + ti[0]
        col = bi[1] * bt + ti[1]
        s_a = acc.shared_mem("tileA", (bt, bt))
        s_b = acc.shared_mem("tileB", (bt, bt))

        accum = 0.0
        for t in range(-(-n // bt)):
            a_col = t * bt + ti[1]
            b_row = t * bt + ti[0]
            s_a[ti[0], ti[1]] = A[row, a_col] if (row < n and a_col < n) else 0.0
            s_b[ti[0], ti[1]] = B[b_row, col] if (b_row < n and col < n) else 0.0
            # BUG: missing acc.sync_block_threads() — siblings may still
            # be writing the tile cells read below.
            for k in range(bt):
                accum += s_a[ti[0], k] * s_b[k, ti[1]]
            acc.sync_block_threads()
        if row < n and col < n:
            C[row, col] = alpha * accum + beta * C[row, col]


class OffByOneStencilKernel:
    """3-point stencil whose neighbour loads skip the boundary clamp.

    ``src[i - 1]`` at the left edge silently wraps to ``src[n - 1]`` in
    an uninstrumented numpy run; ``src[i + 1]`` at the right edge reads
    out of bounds.
    """

    @fn_acc
    def __call__(self, acc, n, src, dst):
        i = get_idx(acc, Grid, Threads)[0]
        if i < n:
            # BUG: no clamp at either boundary.
            left = src[i - 1]
            right = src[i + 1]
            dst[i] = 0.5 * src[i] + 0.25 * (left + right)


def _build_racy_gemm(acc_type, device, n: int = 8, tile: int = 4):
    from .. import mem

    queue = QueueBlocking(device)
    rng = np.random.default_rng(0)
    bufs = []
    for host in (
        rng.random((n, n)),
        rng.random((n, n)),
        np.zeros((n, n)),
    ):
        buf = mem.alloc(device, host.shape, dtype=host.dtype)
        mem.copy(queue, buf, host)
        bufs.append(buf)
    A, B, C = bufs
    blocks = -(-n // tile)
    wd = WorkDivMembers.make((blocks, blocks), (tile, tile), (1, 1))
    return create_task_kernel(
        acc_type, wd, RacyTiledGemmKernel(), n, 1.0, A, B, 0.0, C
    )


def _build_oob_stencil(acc_type, device, n: int = 64):
    from .. import mem

    queue = QueueBlocking(device)
    src = mem.alloc(device, n)
    dst = mem.alloc(device, n)
    mem.copy(queue, src, np.linspace(0.0, 1.0, n))
    mem.memset(queue, dst, 0)
    threads = 4 if acc_type.supports_block_sync else 1
    blocks = -(-n // threads)
    wd = WorkDivMembers.make(blocks, threads, 1)
    return create_task_kernel(acc_type, wd, OffByOneStencilKernel(), n, src, dst)


#: name -> (task builder, finding kinds the demo must produce)
DEMOS = {
    "racy-gemm": (_build_racy_gemm, ("data-race",)),
    "oob-stencil": (_build_oob_stencil, ("negative-index", "out-of-bounds")),
}


def demo_backends(name: str) -> Iterable[str]:
    """Back-ends a demo is meaningful on."""
    from ..acc.registry import accelerator_names, sync_capable_accelerators

    if name == "racy-gemm":
        return tuple(a.name for a in sync_capable_accelerators())
    return tuple(accelerator_names())


def run_demo(
    name: str,
    backend: Optional[str] = None,
    *,
    seed: Optional[int] = None,
    schedules: int = 1,
) -> SanitizerReport:
    """Run one seeded-buggy demo under the sanitizer; returns the report
    (which is expected to be anything but clean)."""
    from ..acc.registry import accelerator

    try:
        build, _expected = DEMOS[name]
    except KeyError:
        raise ValueError(
            f"unknown demo {name!r}; known: {sorted(DEMOS)}"
        ) from None
    if backend is None:
        backend = next(iter(demo_backends(name)))
    acc_type = accelerator(backend)
    device = get_dev_by_idx(acc_type, 0)
    task = build(acc_type, device)
    return sanitize_task(task, device, seed=seed, schedules=schedules)
