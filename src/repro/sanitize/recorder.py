"""The access recorder: shadow state + happens-before conflict checks.

**Model** (docs/MODEL.md has the long form).  Kernel threads are
ordered only by two relations:

* *program order* within one thread, and
* *block barriers*: ``sync_block_threads`` is a block-wide rendezvous,
  so every access a thread makes before barrier *k* happens-before
  every access any thread of the same block makes after barrier *k*.

The recorder assigns each thread an **epoch** — its count of completed
barriers, advanced by the engine's sync hook — and checks, per root
cell, each new access against the last recorded read/write *frame*:

    two accesses conflict  ⇔  different threads
                              ∧ at least one is a write
                              ∧ not both atomic
                              ∧ not separated by a barrier
                                (same block ∧ earlier epoch)

Accesses from different blocks are never barrier-ordered (alpaka has
no grid-wide barrier inside a kernel), so any cross-block pair with a
non-atomic write is a race.  Atomic accesses (marked by
:class:`~repro.atomic.ops.AtomicDomain` through the shadow's atomic
context) are serialised by definition and never conflict with each
other.

State per cell is one read frame and one write frame — (block, thread,
epoch, site, atomic) with ``MANY`` collapsing multiple blocks/threads.
Overwriting an older same-block frame is sound because concurrent
same-block accesses always share an epoch (a thread cannot pass a
barrier its siblings have not reached), and cross-block history is
sticky via ``MANY``.  All checks are vectorised over the cell set of
one access, so a whole-tile read costs one numpy pass, not one Python
iteration per element.
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from .report import AccessSite, Finding

__all__ = ["AccessRecorder", "TrackedArray", "NONE", "MANY"]

NONE = -1  # no frame recorded
MANY = -2  # multiple blocks/threads collapsed

def _internal_files() -> frozenset:
    """Files whose frames are recorder/engine plumbing, not kernel
    code; the reported access site is the innermost frame outside
    them."""
    import inspect

    from ..acc import base as _acc_base
    from ..atomic import ops as _atomic_ops
    from ..mem.guard import GuardedArray
    from . import monitor as _monitor
    from . import shadow as _shadow

    files = {
        __file__,
        _acc_base.__file__,
        _atomic_ops.__file__,
        _shadow.__file__,
        _monitor.__file__,
        inspect.getfile(GuardedArray),
    }
    return frozenset(f for f in files if f)


class TrackedArray:
    """Recorder-side bookkeeping for one root array (kernel argument or
    block-shared allocation): lazy per-cell read/write frames."""

    __slots__ = (
        "name", "scope", "shape", "size", "recorder",
        "wb", "wt", "we", "ws", "wa",
        "rb", "rt", "re", "rs", "ra",
    )

    def __init__(self, name: str, shape: Tuple[int, ...], recorder):
        self.name = name
        self.shape = tuple(shape)
        self.size = int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1
        self.recorder = recorder
        self.wb = None  # write frames allocated on first access
        self.rb = None

    def _ensure_state(self) -> None:
        if self.wb is None:
            n = max(self.size, 1)
            self.wb = np.full(n, NONE, dtype=np.int64)
            self.wt = np.full(n, NONE, dtype=np.int64)
            self.we = np.zeros(n, dtype=np.int64)
            self.ws = np.zeros(n, dtype=np.int64)
            self.wa = np.zeros(n, dtype=bool)
            self.rb = np.full(n, NONE, dtype=np.int64)
            self.rt = np.full(n, NONE, dtype=np.int64)
            self.re = np.zeros(n, dtype=np.int64)
            self.rs = np.zeros(n, dtype=np.int64)
            self.ra = np.zeros(n, dtype=bool)

    # Shadow arrays call these (they only know their tracked root).

    def record(self, cells: np.ndarray, is_write: bool) -> None:
        self.recorder.record(self, cells, is_write)

    def record_index_finding(self, kind: str, is_write: bool, detail: str) -> None:
        self.recorder.record_index_finding(self, kind, is_write, detail)


class AccessRecorder:
    """Collects accesses and findings for one sanitized launch."""

    def __init__(self, work_div):
        self.work_div = work_div
        self.lock = threading.Lock()
        #: Set right after construction by the launch runner.
        self.monitor = None
        self._tracked: List[TrackedArray] = []
        self._sites: Dict[Tuple[str, int, str], int] = {}
        self._site_list: List[AccessSite] = []
        self._findings: Dict[tuple, Finding] = {}
        self._skip_files = _internal_files()

    # -- roots -----------------------------------------------------------

    def track(self, name: str, base: np.ndarray, scope: str) -> TrackedArray:
        ta = TrackedArray(name, base.shape, self)
        ta.scope = scope
        self._tracked.append(ta)
        return ta

    # -- findings --------------------------------------------------------

    @property
    def findings(self) -> List[Finding]:
        return list(self._findings.values())

    def add_finding(self, key: tuple, finding: Finding) -> None:
        with self.lock:
            self._merge_finding_locked(key, finding)

    def _merge_finding_locked(self, key: tuple, finding: Finding) -> None:
        existing = self._findings.get(key)
        if existing is not None:
            existing.count += finding.count
        else:
            self._findings[key] = finding

    # -- source sites ----------------------------------------------------

    def _capture_site(self) -> Optional[AccessSite]:
        f = sys._getframe(2)
        hops = 0
        while f is not None and hops < 25:
            if f.f_code.co_filename not in self._skip_files:
                return AccessSite(
                    f.f_code.co_filename, f.f_lineno, f.f_code.co_name
                )
            f = f.f_back
            hops += 1
        return None

    def _site_id_locked(self, site: Optional[AccessSite]) -> int:
        if site is None:
            return 0
        key = (site.filename, site.lineno, site.function)
        sid = self._sites.get(key)
        if sid is None:
            self._site_list.append(site)
            sid = len(self._site_list)  # ids start at 1; 0 = unknown
            self._sites[key] = sid
        return sid

    def _site(self, sid: int) -> Optional[AccessSite]:
        return self._site_list[sid - 1] if sid > 0 else None

    def _unlin(self, lin: int, extent) -> Optional[Tuple[int, ...]]:
        if lin < 0:
            return None
        return tuple(
            int(v) for v in np.unravel_index(int(lin), tuple(extent))
        )

    # -- the hot path -----------------------------------------------------

    def record_index_finding(
        self, ta: TrackedArray, kind: str, is_write: bool, detail: str
    ) -> None:
        ctx = self.monitor.context()
        site = self._capture_site()
        with self.lock:
            sid = self._site_id_locked(site)
            key = (kind, ta.name, sid)
            self._merge_finding_locked(
                key,
                Finding(
                    kind=kind,
                    array=ta.name,
                    detail=("write " if is_write else "read ") + detail,
                    block=self._unlin(ctx.block, self.work_div.grid_block_extent),
                    thread=self._unlin(
                        ctx.thread, self.work_div.block_thread_extent
                    ),
                    site=site,
                ),
            )

    def record(self, ta: TrackedArray, cells: np.ndarray, is_write: bool) -> None:
        ctx = self.monitor.context()
        if ctx.block == NONE:
            return  # access outside a sanitized kernel thread (staging)
        b, t, e = ctx.block, ctx.thread, ctx.epoch
        atomic = ctx.atomic > 0
        site = self._capture_site()
        with self.lock:
            ta._ensure_state()
            sid = self._site_id_locked(site)
            wb = ta.wb[cells]
            wt = ta.wt[cells]
            we = ta.we[cells]
            wa = ta.wa[cells]
            # Ordered with the last write frame: same thread (program
            # order) or same block at an earlier epoch (barrier).
            w_ordered = (wb == b) & ((wt == t) | (we < e))
            w_conflict = (wb != NONE) & ~w_ordered & ~(atomic & wa)
            if is_write:
                rb = ta.rb[cells]
                rt = ta.rt[cells]
                re = ta.re[cells]
                ra = ta.ra[cells]
                r_ordered = (rb == b) & ((rt == t) | (re < e))
                r_conflict = (rb != NONE) & ~r_ordered & ~(atomic & ra)
                if w_conflict.any():
                    self._report_race_locked(
                        ta, cells, w_conflict, "write", "write",
                        ta.wb, ta.wt, ta.ws, b, t, sid,
                    )
                if r_conflict.any():
                    self._report_race_locked(
                        ta, cells, r_conflict, "write", "read",
                        ta.rb, ta.rt, ta.rs, b, t, sid,
                    )
                self._update_frame_locked(
                    ta.wb, ta.wt, ta.we, ta.ws, ta.wa,
                    cells, b, t, e, sid, atomic,
                )
            else:
                if w_conflict.any():
                    self._report_race_locked(
                        ta, cells, w_conflict, "read", "write",
                        ta.wb, ta.wt, ta.ws, b, t, sid,
                    )
                self._update_frame_locked(
                    ta.rb, ta.rt, ta.re, ta.rs, ta.ra,
                    cells, b, t, e, sid, atomic,
                )
        self.monitor.on_access()

    def _update_frame_locked(
        self, fb, ft, fe, fs, fa, cells, b, t, e, sid, atomic
    ) -> None:
        pb = fb[cells]
        m_none = pb == NONE
        m_sameb = pb == b
        m_new = m_none | (m_sameb & (fe[cells] < e))
        m_same_epoch = m_sameb & ~m_new
        m_cross = ~m_none & ~m_sameb  # other block or already MANY

        if m_new.any():
            idx = cells[m_new]
            fb[idx] = b
            ft[idx] = t
            fe[idx] = e
            fs[idx] = sid
            fa[idx] = atomic
        if m_same_epoch.any():
            idx = cells[m_same_epoch]
            ft[idx] = np.where(ft[idx] == t, t, MANY)
            fa[idx] &= atomic
        if m_cross.any():
            idx = cells[m_cross]
            fb[idx] = MANY
            fa[idx] &= atomic

    def _report_race_locked(
        self, ta, cells, conflict, cur_kind, prev_kind,
        fb, ft, fs, b, t, sid,
    ) -> None:
        first = cells[conflict][0]
        prev_sid = int(fs[first])
        prev_b = int(fb[first])
        prev_t = int(ft[first])
        wd = self.work_div
        if prev_b == b:
            prev_where = "another thread of the same block"
        elif prev_b == MANY:
            prev_where = "threads of multiple blocks"
        else:
            prev_where = "a thread of another block"
        key = ("data-race", ta.name, cur_kind, prev_kind, sid, prev_sid)
        finding = Finding(
            kind="data-race",
            array=ta.name,
            detail=(
                f"{cur_kind} races with unsynchronised {prev_kind} by "
                f"{prev_where} (no barrier between them)"
            ),
            block=self._unlin(b, wd.grid_block_extent),
            thread=self._unlin(t, wd.block_thread_extent),
            cell=self._unlin(int(first), ta.shape),
            site=self._site(sid),
            other_thread=(
                self._unlin(prev_t, wd.block_thread_extent)
                if prev_t >= 0
                else None
            ),
            other_site=self._site(prev_sid),
            count=int(conflict.sum()),
        )
        self._merge_finding_locked(key, finding)
