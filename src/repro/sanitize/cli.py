"""``python -m repro.sanitize`` — the sanitizer command line.

Subcommands::

    demos       run the seeded-buggy demos; exit 0 iff every demo is FLAGGED
    kernels     sanitize every shipped kernel; exit 1 on any finding
    examples    run example scripts under the sanitizer; exit 1 on findings
    run         sanitize an arbitrary script (``--seed`` replays a schedule)
    crosscheck  replay the kernel sweep compiled vs interpreted; exit 1 on
                any bit-level mismatch or unclassified compile crash

``demos`` inverts the usual polarity: the demos contain known bugs, so
a *clean* report is the failure (exit 2) — that is the CI check that
the detector keeps detecting.
"""

from __future__ import annotations

import argparse
import runpy
import sys
from typing import List, Optional

from ._state import enabled
from .report import SanitizerReport


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="dynamic kernel sanitizer: races, bounds, divergence",
    )
    sub = p.add_subparsers(dest="command", required=True)

    d = sub.add_parser("demos", help="run the seeded-buggy demo kernels")
    d.add_argument("names", nargs="*", help="demo names (default: all)")
    d.add_argument("--backend", help="back-end name (default: per demo)")
    d.add_argument("--seed", type=int, help="schedule seed (fuzzing back-ends)")
    d.add_argument(
        "--schedules", type=int, default=1,
        help="fuzz schedules per demo (default 1)",
    )

    k = sub.add_parser("kernels", help="sanitize every shipped kernel (must be clean)")
    k.add_argument(
        "--backend", action="append", dest="backends", metavar="NAME",
        help="back-end to sweep (repeatable; default: serial+threads+cuda-sim)",
    )
    k.add_argument("--seed", type=int, help="schedule seed for fuzzing back-ends")
    k.add_argument(
        "--only", action="append", metavar="KERNEL",
        help="restrict to one kernel family (repeatable)",
    )

    e = sub.add_parser("examples", help="run example scripts under the sanitizer")
    e.add_argument(
        "scripts", nargs="*",
        help="example paths (default: every examples/*.py)",
    )
    e.add_argument("--seed", type=int, help="schedule seed for fuzzing back-ends")

    c = sub.add_parser(
        "crosscheck",
        help="replay the kernel sweep compiled vs interpreted (bit-identity)",
    )
    c.add_argument(
        "--backend", action="append", dest="backends", metavar="NAME",
        help="pooled back-end to sweep (repeatable; default: omp2-blocks)",
    )
    c.add_argument(
        "--only", action="append", metavar="KERNEL",
        help="restrict to one kernel family (repeatable)",
    )

    r = sub.add_parser("run", help="sanitize an arbitrary python script")
    r.add_argument("script", help="path to the script")
    r.add_argument("args", nargs=argparse.REMAINDER, help="script argv")
    r.add_argument("--seed", type=int, help="schedule seed (replay a failing seed)")
    return p


def _with_seed(seed: Optional[int]):
    from .sweep import _state_set_seed

    class _Ctx:
        def __enter__(self):
            self.old = _state_set_seed(seed) if seed is not None else None
            return self

        def __exit__(self, *exc):
            if seed is not None:
                _state_set_seed(self.old)
            return False

    return _Ctx()


def _finish(report: SanitizerReport, *, expect_findings: bool) -> int:
    out = report.render()
    if out:
        print(out)
    if expect_findings:
        return 0 if not report.clean else 2
    return 0 if report.clean else 1


def _cmd_demos(ns) -> int:
    from .demos import DEMOS, run_demo

    names = ns.names or sorted(DEMOS)
    combined = SanitizerReport(label="demos")
    missed: List[str] = []
    for name in names:
        rep = run_demo(
            name, ns.backend, seed=ns.seed, schedules=ns.schedules
        )
        combined.launches.extend(rep.launches)
        expected = DEMOS[name][1]
        got = rep.counts_by_kind()
        missing = [k for k in expected if not got.get(k)]
        if missing:
            missed.append(f"{name} (missing {', '.join(missing)})")
    print(combined.render())
    if missed:
        print(f"NOT FLAGGED: {'; '.join(missed)}", file=sys.stderr)
        return 2
    n = len(combined.findings)
    print(f"all {len(names)} demo(s) flagged as intended ({n} finding(s))")
    return 0


def _cmd_kernels(ns) -> int:
    from .sweep import sweep_kernels

    report = sweep_kernels(ns.backends, seed=ns.seed, only=ns.only)
    rc = _finish(report, expect_findings=False)
    if rc == 0:
        print(f"kernel sweep clean ({len(report.launches)} sanitized launches)")
    return rc


def _default_examples() -> List[str]:
    import os

    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )))
    ex_dir = os.path.join(here, "examples")
    if not os.path.isdir(ex_dir):
        return []
    return sorted(
        os.path.join(ex_dir, f)
        for f in os.listdir(ex_dir)
        if f.endswith(".py")
    )


def _run_script(
    path: str, report: SanitizerReport, argv: Optional[List[str]] = None
) -> None:
    saved = sys.argv
    sys.argv = [path] + list(argv or [])
    try:
        with enabled(label=path) as rep:
            try:
                runpy.run_path(path, run_name="__main__")
            except SystemExit as exc:
                if exc.code not in (None, 0):
                    raise
    finally:
        sys.argv = saved
    report.launches.extend(rep.launches)


#: Shrunken argv per example so the instrumented run stays fast (the
#: shadow layer records every element access in Python); detection
#: coverage is identical — the kernels are the same, just fewer steps.
_FAST_EXAMPLE_ARGV = {
    "heat_equation.py": ["AccCpuOmp2Blocks", "3"],
    "matmul_tiling.py": ["16"],
    "multi_gpu_halo.py": ["3"],
}


def _cmd_examples(ns) -> int:
    import os

    scripts = ns.scripts or _default_examples()
    if not scripts:
        print("no example scripts found", file=sys.stderr)
        return 1
    report = SanitizerReport(label="examples")
    with _with_seed(ns.seed):
        for path in scripts:
            print(f"[sanitize] {path}", file=sys.stderr)
            argv = _FAST_EXAMPLE_ARGV.get(os.path.basename(path))
            _run_script(path, report, argv)
    rc = _finish(report, expect_findings=False)
    if rc == 0:
        print(
            f"examples clean ({len(scripts)} script(s), "
            f"{len(report.launches)} sanitized launches)"
        )
    return rc


def _cmd_crosscheck(ns) -> int:
    from .crosscheck import sweep_crosscheck

    report = sweep_crosscheck(ns.backends, only=ns.only)
    print(report.render())
    return 0 if report.clean else 1


def _cmd_run(ns) -> int:
    report = SanitizerReport(label=ns.script)
    with _with_seed(ns.seed):
        _run_script(ns.script, report, ns.args)
    return _finish(report, expect_findings=False)


def main(argv: Optional[List[str]] = None) -> int:
    ns = _parser().parse_args(argv)
    return {
        "demos": _cmd_demos,
        "kernels": _cmd_kernels,
        "examples": _cmd_examples,
        "crosscheck": _cmd_crosscheck,
        "run": _cmd_run,
    }[ns.command](ns)


if __name__ == "__main__":
    sys.exit(main())
