"""Framework comparison matrix (paper Table 1) and table rendering."""

from .frameworks import (
    TABLE1,
    Framework,
    Property,
    Rating,
    evaluate_alpaka,
    table1_rows,
)
from .render import render_series, render_table

__all__ = [
    "Property",
    "Rating",
    "Framework",
    "TABLE1",
    "table1_rows",
    "evaluate_alpaka",
    "render_table",
    "render_series",
]
