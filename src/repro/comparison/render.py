"""Plain-text table rendering for the benches.

Small, dependency-free, used by every ``benchmarks/bench_*.py`` to print
the regenerated tables/series in a shape comparable to the paper's.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["render_table", "render_series"]


def render_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render dict-rows as an aligned text table (keys of the first row
    define the columns)."""
    if not rows:
        return title
    cols = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in cols
    }
    sep = "-+-".join("-" * widths[c] for c in cols)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(c).ljust(widths[c]) for c in cols))
    lines.append(sep)
    for r in rows:
        lines.append(
            " | ".join(str(r.get(c, "")).ljust(widths[c]) for c in cols)
        )
    return "\n".join(lines)


def render_series(
    series: Dict[str, Dict[object, float]],
    x_label: str,
    y_format: str = "{:.3f}",
    title: str = "",
) -> str:
    """Render {curve name: {x: y}} as one table with the x values as
    rows — the textual form of the paper's line plots."""
    xs: List[object] = sorted({x for curve in series.values() for x in curve})
    rows = []
    for x in xs:
        row: Dict[str, object] = {x_label: x}
        for name, curve in series.items():
            row[name] = y_format.format(curve[x]) if x in curve else ""
        rows.append(row)
    return render_table(rows, title)
