"""Framework property matrix (paper Table 1).

The paper compares eleven intra-node parallelisation models against
eight properties defined in Sec. 1.1.  The matrix itself is qualitative
— judgements the authors argue in Sec. 2 — so the reproduction encodes
it as data *with the paper's rationale attached to every cell*, and the
bench regenerates the printed table.

For the Alpaka row there is more than data: :func:`evaluate_alpaka`
re-derives each rating by exercising this library (one kernel source on
every back-end, plain-buffer memory model, mixed back-ends in one
program, ...), so the row is backed by executable evidence rather than
transcription.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

__all__ = [
    "Property",
    "Rating",
    "Framework",
    "TABLE1",
    "table1_rows",
    "evaluate_alpaka",
]


class Property(enum.Enum):
    """The eight comparison axes of paper Sec. 1.1 / Table 1."""

    OPENNESS = "Openness"
    SINGLE_SOURCE = "Single Source"
    SUSTAINABILITY = "Sustainability"
    HETEROGENEITY = "Heterogeneity"
    MAINTAINABILITY = "Maintainability"
    TESTABILITY = "Testability"
    OPTIMIZABILITY = "Optimizability"
    DATA_STRUCTURE_AGNOSTIC = "Data structure agnostic"


class Rating(enum.Enum):
    YES = "yes"
    PARTIAL = "partial"
    NO = "no"

    @property
    def symbol(self) -> str:
        return {"yes": "+", "partial": "~", "no": "-"}[self.value]


@dataclass(frozen=True)
class Framework:
    """One row of Table 1."""

    name: str
    ratings: Dict[Property, Rating]
    rationale: Dict[Property, str] = field(default_factory=dict)

    def __post_init__(self):
        missing = [p for p in Property if p not in self.ratings]
        if missing:
            raise ValueError(f"{self.name}: missing ratings for {missing}")

    def rating(self, prop: Property) -> Rating:
        return self.ratings[prop]


def _fw(name: str, *cells: Tuple[Rating, str]) -> Framework:
    ratings = {}
    rationale = {}
    for prop, (rating, why) in zip(Property, cells):
        ratings[prop] = rating
        rationale[prop] = why
    return Framework(name, ratings, rationale)


_Y, _P, _N = Rating.YES, Rating.PARTIAL, Rating.NO

#: Paper Table 1, row by row, with the Sec. 2 rationale per cell.
TABLE1: List[Framework] = [
    _fw(
        "NVIDIA CUDA",
        (_N, "proprietary platform"),
        (_Y, "single-source C++ kernels"),
        (_N, "NVIDIA GPUs only"),
        (_N, "one vendor's accelerators"),
        (_N, "porting means rewriting"),
        (_N, "cannot run kernels on the host"),
        (_P, "full control, but only on CUDA hardware"),
        (_Y, "raw pointers, no imposed containers"),
    ),
    _fw(
        "PGI CUDA-x86",
        (_N, "proprietary compiler"),
        (_Y, "compiles CUDA C/C++"),
        (_P, "lags behind current CUDA features"),
        (_Y, "CUDA source on x86"),
        (_Y, "same source on GPU and CPU"),
        (_Y, "host execution enables testing"),
        (_N, "no control over x86 mapping"),
        (_Y, "CUDA memory model"),
    ),
    _fw(
        "GPU Ocelot",
        (_Y, "open source (LLVM based)"),
        (_Y, "translates existing CUDA binaries"),
        (_P, "development stopped at PTX 3.1"),
        (_Y, "NVIDIA/AMD GPUs and CPUs"),
        (_Y, "retargets without source changes"),
        (_Y, "host execution enables testing"),
        (_N, "JIT translation, no tuning control"),
        (_Y, "CUDA memory model"),
    ),
    _fw(
        "OpenMP",
        (_Y, "open specification"),
        (_Y, "pragmas on sequential code"),
        (_Y, "broad compiler support"),
        (_P, "no persistent device memory before 4.5"),
        (_P, "shared-memory assumption leaks"),
        (_Y, "runs everywhere a compiler exists"),
        (_N, "no block shared memory control"),
        (_Y, "plain arrays"),
    ),
    _fw(
        "OpenACC",
        (_Y, "open standard"),
        (_Y, "pragma annotations"),
        (_P, "few conforming implementations"),
        (_P, "limited shared-memory access"),
        (_Y, "directives retarget"),
        (_Y, "host fallback"),
        (_N, "no dynamic allocation in kernels"),
        (_Y, "plain arrays"),
    ),
    _fw(
        "OpenCL",
        (_Y, "open standard"),
        (_P, "separate kernel language until 2.1, no compilers yet"),
        (_Y, "all major vendors"),
        (_Y, "CPUs and GPUs at run time"),
        (_Y, "kernels retarget at run time"),
        (_Y, "same kernel on all devices"),
        (_N, "no dynamic allocation in kernels"),
        (_Y, "buffer objects, raw layout"),
    ),
    _fw(
        "SYCL",
        (_Y, "open Khronos standard"),
        (_Y, "single-source C++"),
        (_P, "no usable free compiler (2016)"),
        (_Y, "inherits OpenCL device coverage"),
        (_Y, "retargets via runtime"),
        (_P, "compiler availability limits testing"),
        (_P, "in principle optimizable"),
        (_Y, "accessor-wrapped but layout-free"),
    ),
    _fw(
        "C++AMP",
        (_Y, "open Microsoft specification"),
        (_Y, "annotated C++"),
        (_P, "DirectX 11 implementations only"),
        (_P, "Windows/DirectX bound"),
        (_Y, "language extension retargets"),
        (_P, "implementation coverage limits testing"),
        (_N, "no execution/memory hierarchy control"),
        (_P, "concurrency::array restricts layout"),
    ),
    _fw(
        "KOKKOS",
        (_Y, "open source"),
        (_Y, "single-source C++"),
        (_Y, "actively developed, many back-ends"),
        (_Y, "CPUs and GPUs"),
        (_Y, "policy types retarget"),
        (_Y, "host back-ends for testing"),
        (_N, "kernel arguments live in functor members"),
        (_P, "views couple data to parallelism"),
    ),
    _fw(
        "Thrust",
        (_Y, "open source"),
        (_Y, "STL-like C++"),
        (_Y, "CUDA/TBB/OpenMP back-ends"),
        (_Y, "back-end chosen at make time"),
        (_Y, "algorithms retarget"),
        (_Y, "host back-ends for testing"),
        (_N, "parallelism hidden inside algorithms"),
        (_N, "containers tied to back-end"),
    ),
    _fw(
        "Alpaka",
        (_Y, "open source"),
        (_Y, "single-source C++ (here: Python) kernels"),
        (_Y, "back-ends added without app changes"),
        (_Y, "CPU and GPU back-ends mixed at run time"),
        (_Y, "one retargeting line"),
        (_Y, "same kernel testable on every back-end"),
        (_Y, "full hierarchy + memory control"),
        (_Y, "plain buffers, explicit deep copies"),
    ),
]


def table1_rows() -> List[dict]:
    """Table 1 as printable dicts (Model column + one per property)."""
    rows = []
    for fw in TABLE1:
        row = {"Model": fw.name}
        for prop in Property:
            row[prop.value] = fw.rating(prop).symbol
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Executable evidence for the Alpaka row
# ---------------------------------------------------------------------------


def _check_single_source() -> Tuple[Rating, str]:
    """One kernel object, every registered back-end, same result."""
    import numpy as np

    from .. import (
        QueueBlocking,
        accelerator_names,
        accelerator,
        create_task_kernel,
        divide_work,
        get_dev_by_idx,
        mem,
    )
    from ..kernels import AxpyElementsKernel

    x_h = np.arange(32, dtype=np.float64)
    expected = 2.0 * x_h + 1.0
    kernel = AxpyElementsKernel()
    for name in accelerator_names():
        acc_t = accelerator(name)
        dev = get_dev_by_idx(acc_t, 0)
        q = QueueBlocking(dev)
        x = mem.alloc(dev, 32)
        y = mem.alloc(dev, 32)
        mem.copy(q, x, x_h)
        mem.memset(q, y, 1.0)
        props = acc_t.get_acc_dev_props(dev)
        wd = divide_work(32, props, acc_t.mapping_strategy, thread_elems=4)
        q.enqueue(create_task_kernel(acc_t, wd, kernel, 32, 2.0, x, y))
        out = np.zeros(32)
        mem.copy(q, out, y)
        if not np.allclose(out, expected):
            return Rating.NO, f"kernel diverged on {name}"
    return Rating.YES, "one kernel object ran identically on every back-end"


def _check_heterogeneity() -> Tuple[Rating, str]:
    """CPU and (simulated) GPU back-ends in one program, one source."""
    from .. import AccCpuSerial, AccGpuCudaSim, get_dev_by_idx

    cpu = get_dev_by_idx(AccCpuSerial, 0)
    gpu = get_dev_by_idx(AccGpuCudaSim, 0)
    if cpu.accessible_from_host and not gpu.accessible_from_host:
        return Rating.YES, "CPU and GPU devices coexist with separate memory"
    return Rating.NO, "memory spaces not separated"


def _check_data_structure_agnostic() -> Tuple[Rating, str]:
    """Kernels receive raw arrays; the library imposes no container."""
    import numpy as np

    from .. import AccCpuSerial, QueueBlocking, get_dev_by_idx, mem

    dev = get_dev_by_idx(AccCpuSerial, 0)
    buf = mem.alloc(dev, (4, 4))
    if isinstance(buf.as_numpy(), np.ndarray) and buf.pitch_bytes >= 4 * 8:
        return Rating.YES, "buffers expose plain pitched arrays"
    return Rating.NO, "buffer hides its memory"


def evaluate_alpaka() -> Dict[Property, Tuple[Rating, str]]:
    """Re-derive the Alpaka row of Table 1 from executable checks where
    a check is meaningful, and from the library's construction (with the
    claim stated) where it is not."""
    results: Dict[Property, Tuple[Rating, str]] = {
        Property.OPENNESS: (Rating.YES, "this reproduction is plain source"),
        Property.SINGLE_SOURCE: _check_single_source(),
        Property.SUSTAINABILITY: (
            Rating.YES,
            "back-ends register via AcceleratorType without app changes",
        ),
        Property.HETEROGENEITY: _check_heterogeneity(),
        Property.MAINTAINABILITY: (
            Rating.YES,
            "retargeting is the single Acc = ... line",
        ),
        Property.TESTABILITY: _check_single_source(),
        Property.OPTIMIZABILITY: (
            Rating.YES,
            "work division, shared memory and element level are explicit",
        ),
        Property.DATA_STRUCTURE_AGNOSTIC: _check_data_structure_agnostic(),
    }
    return results
