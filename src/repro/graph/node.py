"""Future-like node handles returned by :class:`repro.graph.Graph`.

A node is created inert — recording it into a graph runs nothing.  It
becomes a *future* once the graph is submitted: ``node.wait()`` blocks
until the node's task completed on its device, ``node.done`` polls.
Between recording and submission it is a handle for wiring explicit
ordering (``node_b.after(node_a)``) on top of whatever edges the graph
inferred from buffer arguments.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..core.errors import GraphError

__all__ = ["Node"]

#: Node kinds a graph records.
KINDS = ("kernel", "copy", "memset", "call")


class Node:
    """One unit of work recorded into a graph.

    Attributes of interest to users: :attr:`index` (creation order),
    :attr:`kind`, :attr:`label`, :attr:`device` (resolved at record
    time), and after submission :attr:`done` / :meth:`wait` /
    :attr:`duration` (wall seconds of the last run).
    """

    __slots__ = (
        "graph",
        "index",
        "kind",
        "task",
        "device",
        "label",
        "reads",
        "writes",
        "explicit_deps",
        "_done_event",
        "duration",
        "started_at",
    )

    def __init__(self, graph, index: int, kind: str, task, device, label: str,
                 reads: Tuple, writes: Tuple):
        if kind not in KINDS:
            raise GraphError(f"unknown node kind {kind!r}")
        self.graph = graph
        self.index = index
        self.kind = kind
        self.task = task
        self.device = device
        self.label = label
        self.reads = reads
        self.writes = writes
        self.explicit_deps: list = []
        self._done_event: Optional[object] = None  # threading.Event per run
        #: Wall seconds of this node's last execution (None before a run).
        self.duration: Optional[float] = None
        #: Wall timestamp (perf_counter) the last execution started at.
        self.started_at: Optional[float] = None

    def after(self, *nodes: "Node") -> "Node":
        """Order this node after ``nodes`` regardless of buffer overlap.

        The explicit escape hatch for dependencies the inference cannot
        see (side effects through host state, time ordering for
        benchmarks).  Returns ``self`` for chaining.
        """
        for n in nodes:
            if not isinstance(n, Node):
                raise GraphError(f"after() takes Node handles, got {n!r}")
            if n.graph is not self.graph:
                raise GraphError("after() across different graphs")
            if n.index >= self.index:
                raise GraphError(
                    f"node #{self.index} cannot wait on node #{n.index}: "
                    "explicit edges must point at earlier-recorded nodes"
                )
            self.explicit_deps.append(n.index)
        self.graph._invalidate()
        return self

    # -- future protocol (meaningful after graph.submit) -----------------

    @property
    def done(self) -> bool:
        """True once this node's task completed in the current/last run.
        False before any submission."""
        ev = self._done_event
        return bool(ev is not None and ev.is_set())

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until this node completes; True unless ``timeout`` hit.

        Raises :class:`GraphError` when the graph was never submitted —
        waiting on an unsubmitted node would deadlock forever.
        """
        ev = self._done_event
        if ev is None:
            raise GraphError(
                f"wait() on node #{self.index} before the graph was submitted"
            )
        return ev.wait(timeout=timeout)

    @property
    def deps(self) -> Sequence[int]:
        """Resolved dependency indices (inferred + explicit) from the
        last build, or the explicit ones if the graph is unbuilt."""
        exec_ = self.graph._exec
        if exec_ is not None:
            return exec_.deps[self.index]
        return tuple(self.explicit_deps)

    def __repr__(self) -> str:
        return (
            f"<Node #{self.index} {self.kind} {self.label!r} "
            f"on {self.device!r}>"
        )
