"""Graph compilation and execution over the queue/event runtime.

Two execution modes, chosen per submission:

* **inline replay** — every node lives on one device, the sanitizer is
  off and ``REPRO_GRAPH_REPLAY`` is not ``0``: nodes run in topological
  order in the calling thread, kernel nodes through
  :func:`repro.runtime.execute_plan` with the grid context and scheduler
  snapshotted in the shared :class:`~repro.runtime.plan.GraphPlan`.  A
  warm resubmission therefore pays one graph-cache hit for the whole
  pipeline instead of one plan lookup + grid construction per node — the
  mechanism behind the bench_graph.py replay bound.
* **queued** — nodes span devices (or the sanitizer is active): one
  non-blocking queue per device, nodes enqueued in topological order,
  cross-queue edges realised as ``Event.record`` on the producer queue
  plus ``enqueue_after`` on the consumer queue.  Kernel tasks go through
  the queues' normal ``task.execute`` path, i.e. through
  :func:`repro.runtime.launch` — the sanitizer detour and all observers
  fire exactly as for hand-written queue code.

Every edge recorded by :class:`~repro.graph.graph.Graph` points at an
earlier node (inference walks history; ``after()`` rejects forward
references), so creation order *is* a topological order and cycles are
impossible by construction.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.errors import GraphError
from ..mem.buf import Buffer
from ..mem.view import ViewSubView
from ..runtime.instrument import (
    notify_graph_end,
    notify_launch_begin,
    notify_launch_end,
    observers,
)
from ..runtime.plan import get_graph_plan

#: Bound on first run() — importing repro.sanitize eagerly here would
#: drag the whole sanitizer machinery into every graph import.
_sanitize_state = None

__all__ = ["GraphExec", "GraphRunStats", "REPLAY_ENV"]

#: Set to ``0`` to force the queued path even for single-device graphs
#: (A/B-testing the replay fast path, or debugging with full queue
#: semantics).
REPLAY_ENV = "REPRO_GRAPH_REPLAY"

_graph_ids = itertools.count(1)

#: Shared pre-set event: inline submissions complete synchronously, so
#: finished nodes can all point at one fired event instead of paying an
#: ``Event.set`` (lock + notify) per node per replay.
_DONE = threading.Event()
_DONE.set()


@dataclass
class GraphRunStats:
    """Timing and scheduling accounting for one graph submission."""

    graph_id: int
    mode: str  # "inline" | "queued"
    node_count: int
    device_count: int
    #: Host wall seconds from first dispatch to last completion.
    wall_seconds: float
    #: Sum of individual node wall durations.
    node_seconds: float
    #: Longest dependency-chain duration — the theoretical floor for
    #: ``wall_seconds`` under perfect overlap.
    critical_path_seconds: float
    #: Whether this submission replayed a cached :class:`GraphPlan`.
    replayed: bool
    #: Raw per-node tuples ``(index, label, kind, device_name, start,
    #: duration)``; use :attr:`nodes` for the dict view.
    node_info: Tuple[tuple, ...] = ()

    @property
    def nodes(self) -> Tuple[dict, ...]:
        """Per-node records as dicts (built on demand — the warm replay
        path must not pay for telemetry nobody reads)."""
        return tuple(
            {
                "index": i,
                "label": label,
                "kind": kind,
                "device": device,
                "start": start,
                "duration": duration,
            }
            for i, label, kind, device, start, duration in self.node_info
        )

    @property
    def overlap_ratio(self) -> float:
        """``node_seconds / wall_seconds`` — 1.0 is fully serial, above
        1.0 means copies/compute genuinely overlapped across queues."""
        return self.node_seconds / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def parallel_efficiency(self) -> float:
        """How close the run came to its critical-path floor (1.0 =
        wall time equalled the longest chain)."""
        return (
            self.critical_path_seconds / self.wall_seconds
            if self.wall_seconds
            else 0.0
        )


class GraphExec:
    """A compiled graph: resolved edges + the shared :class:`GraphPlan`.

    Built by :meth:`Graph.submit` (and cached on the graph instance);
    one ``GraphExec`` survives any number of ``run()`` calls while the
    graph is unmodified.
    """

    def __init__(self, graph, deps: Tuple[Tuple[int, ...], ...]):
        self.graph = graph
        self.nodes = tuple(graph.nodes)
        self.deps = deps
        self.node_count = len(self.nodes)
        self.graph_id = next(_graph_ids)
        # Every edge points backward (see module docstring), so the
        # recording order is already topological.
        self.order = tuple(range(self.node_count))
        for i, d in enumerate(deps):
            if any(j >= i for j in d):
                raise GraphError(f"forward edge {d} on node #{i}")
        self.plan = None  # GraphPlan, bound at first run
        self.last_stats: Optional[GraphRunStats] = None
        self.failed = False
        self.error: Optional[BaseException] = None
        self._fail_lock = threading.Lock()
        self._done = threading.Event()
        self._done.set()
        self._queues: List = []
        self._t0 = 0.0
        seen: Dict[int, object] = {}
        for n in self.nodes:
            seen.setdefault(n.device.uid, n.device)
        self.devices = tuple(seen.values())
        # (tuning generation, scheduler override) -> structure key; the
        # node signatures only change with those, so warm submissions
        # skip rebuilding the key.
        self._key_ctx: Optional[tuple] = None
        self._key: Optional[tuple] = None

    def still_valid(self) -> bool:
        return len(self.graph.nodes) == self.node_count

    # -- structural identity ---------------------------------------------

    @staticmethod
    def _arg_sig(a) -> tuple:
        if isinstance(a, Buffer):
            return ("b", a.buf_id)
        if isinstance(a, ViewSubView):
            return ("v", a.buf_id, a.access_box())
        try:
            hash(a)
        except TypeError:
            return ("u", id(a))
        return ("s", a)

    def _node_sig(self, node) -> tuple:
        t = node.task
        if node.kind == "kernel":
            return (
                "k",
                t.acc_type,
                id(t.kernel),
                t.work_div,
                t.shared_mem_bytes,
                tuple(self._arg_sig(a) for a in t.args),
            )
        if node.kind == "copy":
            return ("c", self._arg_sig(t.dst), self._arg_sig(t.src),
                    tuple(t.extent))
        if node.kind == "memset":
            return ("m", self._arg_sig(t.dst), t.value, tuple(t.extent))
        return ("f", id(t))

    def structure_key(self) -> tuple:
        """The graph-cache key: node signatures + edges + devices, plus
        the same volatile context the per-launch key folds in (tuning
        generation, scheduler override) so a tuning run or an env flip
        misses instead of replaying a stale snapshot."""
        from ..runtime.scheduler import resolve_scheduler_override
        from ..tuning.cache import tuning_generation

        ctx = (tuning_generation(), resolve_scheduler_override())
        if ctx != self._key_ctx:
            self._key = (
                tuple(self._node_sig(n) for n in self.nodes),
                tuple(n.device.uid for n in self.nodes),
                self.deps,
            ) + ctx
            self._key_ctx = ctx
        return self._key

    def _build_plan(self, key):
        from ..runtime.plan import GraphPlan

        return GraphPlan(
            key=key,
            order=self.order,
            deps=self.deps,
            device_uids=tuple(n.device.uid for n in self.nodes),
        )

    # -- execution --------------------------------------------------------

    def run(self, wait: bool = True) -> "GraphExec":
        global _sanitize_state
        if _sanitize_state is None:  # lazy: sanitize is a heavy import
            from ..sanitize import _state as _sanitize_state

        key = self.structure_key()
        self.plan = get_graph_plan(key, lambda: self._build_plan(key))
        replayed = self.plan.served_from_cache and bool(self.plan.replays)

        self.failed = False
        self.error = None
        inline_ok = (
            len(self.devices) == 1
            and not _sanitize_state.active()
            and os.environ.get(REPLAY_ENV, "1") != "0"
        )
        if inline_ok:
            self._run_inline(replayed)
        else:
            self._run_queued(wait=wait, replayed=replayed)
        self.plan.replays += 1
        return self

    def _finish(self, mode: str, wall: float, replayed: bool) -> None:
        nodes = self.nodes
        deps = self.deps
        durs = [n.duration or 0.0 for n in nodes]
        cp: List[float] = [0.0] * self.node_count
        for i in self.order:
            d = deps[i]
            cp[i] = durs[i] + (max(cp[j] for j in d) if d else 0.0)
        obs = observers()
        if obs:
            t0 = self._t0
            node_info = tuple(
                (
                    n.index,
                    n.label,
                    n.kind,
                    n.device.name,
                    (n.started_at - t0) if n.started_at is not None else 0.0,
                    n.duration or 0.0,
                )
                for n in nodes
            )
        else:
            # Nobody is listening: don't pay for per-node records on the
            # warm replay path (stats totals stay exact either way).
            node_info = ()
        self.last_stats = GraphRunStats(
            graph_id=self.graph_id,
            mode=mode,
            node_count=self.node_count,
            device_count=len(self.devices),
            wall_seconds=wall,
            node_seconds=sum(durs),
            critical_path_seconds=max(cp, default=0.0),
            replayed=replayed,
            node_info=node_info,
        )
        self._done.set()
        if obs:
            notify_graph_end(self, self.last_stats)

    # -- inline replay path ----------------------------------------------

    def _build_op(self, node, plan, i):
        """Resolve node ``i`` once and return a zero-argument replay
        closure with everything bound: :func:`repro.runtime.execute_plan`
        with the plan lookup, grid construction, scheduler resolution and
        even the attribute fetches hoisted out of the warm loop."""
        if node.kind == "kernel":
            from ..acc.base import GridContext
            from ..acc.timing import advance_modeled_time
            from ..runtime.plan import get_plan
            from ..runtime.scheduler import scheduler_for

            task, device = node.task, node.device
            lp = plan.node_plans.get(i)
            if lp is None:
                lp = get_plan(task, device)
                plan.node_plans[i] = lp
                grid = GridContext(
                    device,
                    lp.work_div,
                    lp.props,
                    lp.unwrap_args(task.args),
                    shared_mem_bytes=lp.shared_mem_bytes,
                )
                sched = scheduler_for(device, lp.schedule)
                plan.node_grids[i] = (grid, sched)
            else:
                grid, sched = plan.node_grids[i]
            dispatch = sched.dispatch
            blocks = lp.block_indices
            note = device.note_kernel_launch
            kind = lp.acc_type.kind
            wd = lp.work_div

            def op():  # mirrors execute_plan() with all lookups pre-bound
                note()
                lp.launches += 1
                notify_launch_begin(lp, task, device)
                try:
                    dispatch(lp, grid, blocks, task)
                    advance_modeled_time(task, device, kind, wd)
                except BaseException:
                    try:
                        notify_launch_end(lp, task, device)
                    except Exception:
                        pass
                    raise
                notify_launch_end(lp, task, device)

            return op
        if node.kind == "call":
            return node.task
        task, device = node.task, node.device
        return lambda: task.execute(device)  # copy / memset

    def _run_inline(self, replayed: bool) -> None:
        plan = self.plan
        self._done.clear()
        perf = time.perf_counter
        nodes = self.nodes
        ops = plan.node_ops
        self._t0 = perf()
        try:
            for i in self.order:
                node = nodes[i]
                op = ops.get(i)
                if op is None:
                    op = ops[i] = self._build_op(node, plan, i)
                start = perf()
                node.started_at = start
                op()
                node.duration = perf() - start
                # Synchronous path: point at the shared fired event
                # rather than paying a per-node Event.set each replay.
                node._done_event = _DONE
        except BaseException as e:
            self.failed = True
            self.error = e
            for n in self.nodes:  # unblock any waiter
                n._done_event = _DONE
            self._finish("inline", perf() - self._t0, replayed)
            raise
        self._finish("inline", perf() - self._t0, replayed)

    # -- queued (multi-device / sanitized) path ---------------------------

    def _run_queued(self, wait: bool, replayed: bool) -> None:
        from ..queue.event import Event
        from ..queue.queue import QueueNonBlocking

        perf = time.perf_counter
        queue_of: Dict[int, QueueNonBlocking] = {}
        for dev in self.devices:
            queue_of[dev.uid] = QueueNonBlocking(dev)
        self._queues = list(queue_of.values())
        for n in self.nodes:
            ev = n._done_event
            if ev is None or ev is _DONE:  # never clear the shared sentinel
                n._done_event = threading.Event()
            else:
                ev.clear()
        self._done.clear()
        self._t0 = perf()

        # Nodes whose completion a *different* queue must observe get an
        # Event recorded right after them on their producer queue.
        cross = set()
        for i in self.order:
            qi = queue_of[self.nodes[i].device.uid]
            for j in self.deps[i]:
                if queue_of[self.nodes[j].device.uid] is not qi:
                    cross.add(j)

        events: Dict[int, Event] = {}
        pending = {"n": len(self._queues)}
        pending_lock = threading.Lock()

        # Distributed tracing: queue worker threads are not the
        # submitting thread, so hand them the submitter's ambient
        # context — node launches then stamp trace ids and the queued
        # run stitches under the request that submitted the graph.
        from ..telemetry import tracing

        trace_ctx = tracing.current()

        def _make_runner(node):
            # Errors are harvested at the graph level rather than left
            # to poison the queue: a poisoned queue skips its remaining
            # items, which would leave cross-queue events unfired and
            # sibling queues gated forever.  The first failure stops
            # later nodes from *executing*, but every node still
            # completes (done event set, events fire, queues drain).
            def _run():
                start = perf()
                node.started_at = start
                if trace_ctx is not None:
                    prev_ctx = tracing.set_current(trace_ctx)
                try:
                    if not self.failed:
                        if node.kind == "call":
                            node.task()
                        else:
                            node.task.execute(node.device)
                except BaseException as e:  # noqa: BLE001 - re-raised in wait
                    with self._fail_lock:
                        if self.error is None:
                            self.error = e
                            self.failed = True
                finally:
                    if trace_ctx is not None:
                        tracing.set_current(prev_ctx)
                    node.duration = perf() - start
                    node._done_event.set()

            return _run

        def _queue_done():
            with pending_lock:
                pending["n"] -= 1
                last = pending["n"] == 0
            if last:
                self._finish("queued", perf() - self._t0, replayed)

        for i in self.order:
            node = self.nodes[i]
            q = queue_of[node.device.uid]
            for j in sorted(self.deps[i]):
                if queue_of[self.nodes[j].device.uid] is not q:
                    q.enqueue_after(events[j])
            q.enqueue(_make_runner(node))
            if i in cross:
                ev = Event(node.device)
                ev.record(q)
                events[i] = ev

        for q in self._queues:
            q.enqueue_callback(_queue_done)

        if wait:
            self.wait()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the submission completed; drains and destroys the
        queued path's queues and re-raises the first node error."""
        if not self._done.wait(timeout=timeout):
            return False
        queues, self._queues = self._queues, []
        for q in queues:
            q.destroy()  # drains (everything already completed)
        if self.error is not None:
            raise self.error
        return True

    def __repr__(self) -> str:
        return (
            f"<GraphExec #{self.graph_id} {self.node_count} nodes on "
            f"{len(self.devices)} device(s)>"
        )
