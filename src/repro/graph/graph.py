"""Record-then-submit dataflow graphs over the existing queue runtime.

A :class:`Graph` collects kernel launches, copies, memsets and host
callbacks as inert :class:`~repro.graph.node.Node` handles::

    g = Graph()
    a = g.launch(Acc, wd, sweep, h, w, c, src, dst)
    h = g.copy(halo_dst, halo_src)           # depends on `a` automatically
    g.submit()                               # schedule, run, wait

Dependencies come from three sources, merged per node:

* **inferred** — buffer arguments produce reader-after-writer and
  writer-after-any edges (:mod:`repro.graph.infer`);
* **explicit** — ``node_b.after(node_a)``;
* **program order fallback** — none: independent nodes genuinely run
  concurrently, that is the point.

``submit()`` compiles the node list into a
:class:`~repro.graph.executor.GraphExec` (cached on the graph instance
and, via :func:`repro.runtime.plan.get_graph_plan`, across structurally
identical graphs) and executes it; a warm resubmission replays every
node's cached :class:`~repro.runtime.plan.LaunchPlan` and grid context
without touching the per-launch plan cache at all.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import GraphError
from ..core.kernel import create_task_kernel
from ..core.vec import as_vec
from ..mem.copy import TaskCopy, TaskMemset
from ..mem.copy import _validate as _validate_copy
from ..mem.buf import Buffer
from ..mem.view import ViewSubView
from .infer import Access, access_of, classify_args, infer_edges
from .node import Node

__all__ = ["Graph"]


def _endpoint_device(ep):
    return ep.dev if isinstance(ep, (Buffer, ViewSubView)) else None


class Graph:
    """A recorded DAG of device work, submit-many capable.

    ``default_device`` seats nodes that reference no device memory (a
    host callback, a kernel over host numpy arrays); nodes touching
    buffers always run where their buffers live.
    """

    def __init__(self, default_device=None):
        self.default_device = default_device
        self.nodes: List[Node] = []
        self._exec = None  # cached GraphExec, built lazily at submit
        self._lock = threading.Lock()
        self._submitting = False

    # -- recording --------------------------------------------------------

    def launch(
        self,
        acc_type,
        work_div,
        kernel,
        *args,
        device=None,
        shared_mem_bytes: int = 0,
        reads: Optional[Sequence] = None,
        writes: Optional[Sequence] = None,
        label: Optional[str] = None,
    ) -> Node:
        """Record a kernel launch; returns its future-like :class:`Node`.

        Mirrors ``create_task_kernel(acc_type, work_div, kernel, *args)``
        — the task is built here, validated at first submit.  Buffer
        arguments default to read-write; narrow with ``reads=`` /
        ``writes=`` to unlock more overlap (see
        :func:`repro.graph.infer.classify_args`).
        """
        task = create_task_kernel(
            acc_type, work_div, kernel, *args,
            shared_mem_bytes=shared_mem_bytes,
        )
        dev = device
        for a in args:
            d = _endpoint_device(a)
            if d is None:
                continue
            if dev is None:
                dev = d
            elif dev is not d:
                raise GraphError(
                    f"kernel {label or kernel!r} mixes buffers of "
                    f"{dev!r} and {d!r}; one launch runs on one device — "
                    "stage data with g.copy() first"
                )
        r, w = classify_args(args, reads=reads, writes=writes)
        name = label or getattr(
            kernel, "__name__", type(kernel).__name__
        )
        return self._record("kernel", task, dev, name, r, w)

    def copy(self, dst, src, extent=None, label: Optional[str] = None) -> Node:
        """Record a deep copy (``mem.copy`` semantics, no queue arg).

        Depends on earlier writers of ``src`` and earlier touchers of
        ``dst``; runs on the device-side endpoint's device (``dst`` when
        both are device memory).
        """
        ext = _validate_copy(
            dst, src, as_vec(extent) if extent is not None else None
        )
        task = TaskCopy(dst=dst, src=src, extent=ext)
        dev = _endpoint_device(dst) or _endpoint_device(src)
        reads = tuple(a for a in (access_of(src),) if a is not None)
        writes = tuple(a for a in (access_of(dst),) if a is not None)
        return self._record("copy", task, dev, label or "copy", reads, writes)

    def memset(self, dst, value, extent=None, label: Optional[str] = None) -> Node:
        """Record a scalar fill of ``dst`` (``mem.memset`` semantics)."""
        ext = as_vec(extent, dst.dim) if extent is not None else dst.extent
        dst.check_extent_fits(ext, "memset")
        task = TaskMemset(dst=dst, value=value, extent=ext)
        return self._record(
            "memset", task, _endpoint_device(dst), label or "memset",
            (), (access_of(dst),),
        )

    def call(
        self,
        fn,
        *,
        device=None,
        reads: Sequence = (),
        writes: Sequence = (),
        label: Optional[str] = None,
    ) -> Node:
        """Record a zero-argument host callback as a graph node.

        The graph cannot see what ``fn`` touches, so declare it: pass
        the buffers/arrays it reads and writes, or chain with
        ``.after()``.  Runs in the owning queue's context (keep it
        short, CUDA host-func rules apply).
        """
        if not callable(fn):
            raise GraphError(f"call() needs a callable, got {fn!r}")
        r = tuple(a if isinstance(a, Access) else access_of(a) for a in reads)
        w = tuple(a if isinstance(a, Access) else access_of(a) for a in writes)
        if any(a is None for a in r + w):
            raise GraphError("call() reads/writes entries must be memory endpoints")
        dev = device
        for ep in tuple(reads) + tuple(writes):
            d = _endpoint_device(ep)
            if dev is None and d is not None:
                dev = d
        name = label or getattr(fn, "__name__", "call")
        return self._record("call", fn, dev, name, r, w)

    def _record(self, kind, task, dev, label, reads, writes) -> Node:
        with self._lock:
            if self._submitting:
                raise GraphError(
                    "graph mutated mid-submit; record nodes before submit()"
                )
            dev = dev or self.default_device
            if dev is None:
                raise GraphError(
                    f"cannot place node {label!r}: no buffer argument "
                    "carries a device and the graph has no default_device"
                )
            node = Node(
                self, len(self.nodes), kind, task, dev, label,
                tuple(reads), tuple(writes),
            )
            self.nodes.append(node)
            self._exec = None
            return node

    def _invalidate(self) -> None:
        self._exec = None

    # -- inspection -------------------------------------------------------

    def dependencies(self) -> Dict[int, Tuple[int, ...]]:
        """``{node_index: (dep_indices...)}`` as the executor will see it
        — inferred buffer edges merged with explicit ``after()`` edges.
        Builds (or reuses) the compiled executor without running it.
        """
        return {n.index: tuple(n.deps) for n in self._compile().nodes}

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    # -- submission -------------------------------------------------------

    def _compile(self):
        from .executor import GraphExec

        exec_ = self._exec
        if exec_ is not None and exec_.still_valid():
            return exec_
        deps = infer_edges([(n.reads, n.writes) for n in self.nodes])
        for n in self.nodes:
            deps[n.index].update(n.explicit_deps)
        self._exec = GraphExec(self, tuple(
            tuple(sorted(d)) for d in deps
        ))
        return self._exec

    def submit(self, devices=None, wait: bool = True):
        """Schedule and run the whole graph; returns the
        :class:`~repro.graph.executor.GraphExec` (also exposed as
        ``g.last_exec`` via the instance cache).

        ``devices`` optionally pins the allowed device set: submission
        fails fast if a node resolved to a device outside it (catching
        e.g. a buffer allocated on the wrong die).  ``wait=False``
        returns after enqueuing; use ``g.wait()`` or ``node.wait()``.
        Only the queued (multi-device-capable) path supports
        ``wait=False`` — single-device graphs replay inline and are
        complete on return either way.
        """
        if not self.nodes:
            raise GraphError("submit() on an empty graph")
        exec_ = self._compile()
        if devices is not None:
            allowed = {id(d) for d in devices}
            for n in self.nodes:
                if id(n.device) not in allowed:
                    raise GraphError(
                        f"node #{n.index} {n.label!r} resolved to "
                        f"{n.device!r}, outside submit(devices=...)"
                    )
        with self._lock:
            if self._submitting:
                raise GraphError("graph is already mid-submit")
            self._submitting = True
        try:
            exec_.run(wait=wait)
        except BaseException:
            with self._lock:
                self._submitting = False
            raise
        if wait:
            with self._lock:
                self._submitting = False
        return exec_

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the last ``submit(wait=False)`` finished."""
        exec_ = self._exec
        if exec_ is None:
            raise GraphError("wait() before any submit()")
        try:
            done = exec_.wait(timeout=timeout)
        finally:
            if exec_._done.is_set():
                with self._lock:
                    self._submitting = False
        return done

    @property
    def last_stats(self):
        """The :class:`~repro.graph.executor.GraphRunStats` of the last
        completed submission (None before the first)."""
        exec_ = self._exec
        return exec_.last_stats if exec_ is not None else None

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"<Graph {len(self.nodes)} nodes>"
