"""Automatic buffer-dependency inference for dataflow graphs.

The graph layer derives execution-order edges from each node's buffer
arguments instead of making users hand-wire ``Event``/``enqueue_after``
chains.  The rules are the classic hazard pairs:

* **reader-after-writer (RAW)** — a node reading a region depends on
  every earlier node that wrote an overlapping region;
* **writer-after-any (WAR + WAW)** — a node writing a region depends on
  every earlier node that read *or* wrote an overlapping region.

Accesses key on :attr:`repro.mem.buf.Buffer.buf_id` — the stable
allocation id both buffers and their views expose — plus the
``access_box()`` region, so two disjoint windows of one buffer (the
halo-exchange pattern) do not serialise.  Argument classification walks
the same shapes :func:`repro.runtime.procpool.marshal_launch` walks:
``Buffer`` and ``ViewSubView`` arguments are memory, host ``numpy``
arrays are memory of the host, everything else is a value.

Kernels do not declare argument intent, so a kernel's buffer arguments
default to **read-write** (conservative, always correct); callers may
narrow with ``reads=``/``writes=`` for more overlap.  Copies and
memsets have known intent (source read, destination write).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..mem.buf import Buffer
from ..mem.view import ViewSubView

__all__ = [
    "Access",
    "access_of",
    "classify_args",
    "accesses_overlap",
    "infer_edges",
]

#: A region box: ``((offset, extent), ...)`` per dimension, or ``None``
#: for "the whole allocation".
Box = Optional[Tuple[Tuple[int, int], ...]]


@dataclass(frozen=True)
class Access:
    """One node's touch of one memory region."""

    #: Stable identity of the allocation (``("buf", buf_id)`` for
    #: buffers/views, ``("np", id)`` for host numpy endpoints).
    key: tuple
    #: Region within the allocation (None = whole).
    box: Box = None

    def __repr__(self) -> str:
        region = "whole" if self.box is None else str(self.box)
        return f"<Access {self.key} {region}>"


def access_of(obj) -> Optional[Access]:
    """The :class:`Access` ``obj`` represents, or None for plain values.

    Buffers and views resolve to their base allocation's stable id with
    their region box; host numpy arrays key on object identity (they
    stay alive while the graph holds the node's task).
    """
    if isinstance(obj, Buffer):
        return Access(("buf", obj.buf_id), None)
    if isinstance(obj, ViewSubView):
        return Access(("buf", obj.buf_id), obj.access_box())
    if isinstance(obj, np.ndarray):
        return Access(("np", id(obj)), None)
    return None


def _as_accesses(objs: Iterable) -> List[Access]:
    out = []
    for o in objs:
        a = o if isinstance(o, Access) else access_of(o)
        if a is None:
            raise TypeError(
                f"{o!r} is not a memory endpoint (Buffer, ViewSubView or "
                "numpy array); reads=/writes= entries must be"
            )
        out.append(a)
    return out


def classify_args(
    args: Sequence,
    reads: Optional[Iterable] = None,
    writes: Optional[Iterable] = None,
) -> Tuple[Tuple[Access, ...], Tuple[Access, ...]]:
    """``(reads, writes)`` access tuples for a kernel's argument list.

    Without annotations every buffer argument is read-write.  With
    ``reads=`` and/or ``writes=`` (buffers, views or prebuilt
    :class:`Access` objects), listed endpoints get exactly the declared
    intent and *unlisted* buffer arguments stay read-write — narrowing
    is opt-in per endpoint, never implied for the rest.
    """
    declared_r = _as_accesses(reads or ())
    declared_w = _as_accesses(writes or ())
    declared_keys = {a.key for a in declared_r} | {a.key for a in declared_w}
    r: List[Access] = list(declared_r)
    w: List[Access] = list(declared_w)
    for a in args:
        acc = access_of(a)
        if acc is None or acc.key in declared_keys:
            continue
        r.append(acc)
        w.append(acc)
    return tuple(r), tuple(w)


def _spans_overlap(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    return a[0] < b[0] + b[1] and b[0] < a[0] + a[1]


def accesses_overlap(a: Access, b: Access) -> bool:
    """True when the two accesses may touch common memory."""
    if a.key != b.key:
        return False
    if a.box is None or b.box is None:
        return True
    if len(a.box) != len(b.box):  # dim confusion: stay conservative
        return True
    return all(_spans_overlap(sa, sb) for sa, sb in zip(a.box, b.box))


def infer_edges(
    node_accesses: Sequence[Tuple[Sequence[Access], Sequence[Access]]],
) -> List[set]:
    """Dependency edges for nodes given ``[(reads, writes), ...]`` in
    program (creation) order.

    Returns one set of earlier-node indices per node.  History per
    allocation is pruned at whole-allocation writes: later nodes that
    would conflict with anything older necessarily conflict with that
    write, and transitivity carries the ordering — keeping long
    same-buffer pipelines linear instead of quadratic.
    """
    history: Dict[tuple, List[Tuple[int, Access, bool]]] = {}
    deps: List[set] = []
    for i, (reads, writes) in enumerate(node_accesses):
        mine: set = set()
        for acc in reads:
            for j, prior, was_write in history.get(acc.key, ()):
                if was_write and accesses_overlap(acc, prior):
                    mine.add(j)
        for acc in writes:
            for j, prior, _w in history.get(acc.key, ()):
                if accesses_overlap(acc, prior):
                    mine.add(j)
        deps.append(mine)
        write_keys = {a.key for a in writes}
        for acc in reads:
            if acc.key not in write_keys:
                history.setdefault(acc.key, []).append((i, acc, False))
        for acc in writes:
            entries = history.setdefault(acc.key, [])
            if acc.box is None:
                entries.clear()
            entries.append((i, acc, True))
    return deps
