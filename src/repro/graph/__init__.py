"""repro.graph — futurized dataflow graphs over the queue runtime.

The record-then-submit layer on top of queues and events (the CUDA-graph
analogue the paper's queue model anticipates)::

    from repro.graph import Graph

    g = Graph()
    a = g.launch(Acc, wd, Sweep(), h, w, c, src, dst)   # Node (future)
    b = g.copy(halo_dst, halo_src)                      # after `a`, inferred
    c = g.launch(Acc, wd, Sweep(), h, w, c, dst, nxt).after(b)
    g.submit()                                          # schedule + run
    assert c.done

Dependencies are inferred from buffer arguments (reader-after-writer,
writer-after-any, region-precise through sub-views — see
:mod:`repro.graph.infer`) and merged with explicit ``.after()`` edges.
Submission schedules across one queue per device, overlapping copies
with compute and sharding independent branches; single-device graphs
replay through the whole-graph plan cache
(:class:`repro.runtime.plan.GraphPlan`) at roughly the cost of a single
warm launch (``benchmarks/bench_graph.py`` asserts the bound).
"""

from ..core.errors import GraphError
from .executor import REPLAY_ENV, GraphExec, GraphRunStats
from .graph import Graph
from .infer import Access, access_of, classify_args, infer_edges
from .node import Node

__all__ = [
    "Graph",
    "Node",
    "GraphExec",
    "GraphRunStats",
    "GraphError",
    "Access",
    "access_of",
    "classify_args",
    "infer_edges",
    "REPLAY_ENV",
]
