"""Hierarchical roofline: kernel characteristics x machine model -> time.

The model is a max-of-ceilings roofline with three ceilings plus two
additive overheads::

    seconds = max(compute, on_chip, dram) + sync + overhead

* **compute** — ``flops / (peak * compute_eff)`` where ``compute_eff``
  folds device utilisation (how much of the machine the work division
  and back-end can occupy) and SIMD efficiency (scalar element loops
  forfeit the vector lanes the peak assumes).
* **on_chip** — traffic through the cache / shared-memory level that
  serves the kernel's per-block working set.  This ceiling, not
  compute, is what pins tiled DGEMM near 20 % of peak on every machine
  (paper Fig. 9) — an SMX moving 16 bytes of shared memory per FMA
  cannot feed its FPUs.
* **dram** — global-memory traffic over the device bandwidth, degraded
  by the *device-effective* access pattern
  (:func:`~repro.perfmodel.kernel_model.device_effective_pattern`) and
  inflated to the spill traffic when the working set fits no cache.
* **sync** — block barrier generations: ~free on a GPU, OS-futex
  expensive on CPU thread back-ends.
* **overhead** — kernel-launch and extra API-call costs, plus the
  abstraction layer's relative cost applied multiplicatively
  (paper Sec. 4.2.1's <6 %).

Constants are physical or vendor-published except two documented
compiler-efficiency constants (:data:`CPU_AUTOVEC_EFFICIENCY`,
:data:`CPU_COMPILER_CONTRACTS_FMA`) and the paper-measured abstraction
overhead fraction carried by kernels.  There is no per-figure tuning
knob.  The model's job is *shape fidelity* — who wins, by what factor,
where the crossovers are — not absolute microseconds (DESIGN.md,
acceptance criteria).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core.errors import ModelError
from ..core.workdiv import WorkDivMembers
from ..hardware.cache import AccessPattern, CacheModel
from ..hardware.specs import HardwareSpec
from .kernel_model import KernelCharacteristics, device_effective_pattern

__all__ = [
    "PredictedTime",
    "predict_time",
    "predict_launch_seconds",
    "MachineResources",
    "machine_resources",
]

#: Seconds per kernel launch (driver + runtime queueing).
LAUNCH_OVERHEAD_S = {"gpu": 5e-6, "cpu": 2e-6}

#: CPU block barrier: base futex cost plus a per-participant term.
CPU_BARRIER_BASE_S = 1e-7
CPU_BARRIER_PER_THREAD_S = 1e-9

#: GPU barrier: a few cycles per warp, folded into one constant.
GPU_BARRIER_S = 2e-9

#: Warps per SM the latency-hiding model wants resident.
GPU_NEED_WARPS_PER_SM = 16

#: Fraction of the SIMD lanes gcc 4.9's auto-vectoriser realises on
#: vector-friendly inner loops (vs hand intrinsics).  One of the two
#: compiler-efficiency constants of the model; see DESIGN.md.
CPU_AUTOVEC_EFFICIENCY = 0.4

#: gcc 4.9 compiles C/C++ with -ffp-contract=off semantics by default,
#: so CPU code issues separate mul+add; machines whose peak assumes FMA
#: then cap at half peak.  nvcc contracts by default, so GPU code keeps
#: full FMA throughput.  The second compiler-efficiency constant.
CPU_COMPILER_CONTRACTS_FMA = False

#: Hardware residency limits per SM (Kepler).
GPU_MAX_BLOCKS_PER_SM = 16
GPU_MAX_THREADS_PER_SM = 2048


@dataclass(frozen=True)
class MachineResources:
    """The slice of a machine one kernel launch can use."""

    peak_gflops: float
    dram_bandwidth_gbs: float
    cores: int
    clock_ghz: float


def machine_resources(spec: HardwareSpec, backend_kind: str) -> MachineResources:
    """Resources available to a single launch.

    CPU back-ends span the whole machine (OpenMP crosses sockets, as in
    the paper's node-level measurements); GPU launches own one device.
    """
    if spec.kind != backend_kind:
        raise ModelError(
            f"backend kind {backend_kind!r} cannot target machine "
            f"{spec.key!r} of kind {spec.kind!r}"
        )
    if backend_kind == "gpu":
        return MachineResources(
            peak_gflops=spec.device_peak_gflops_dp,
            dram_bandwidth_gbs=spec.global_mem_bandwidth_gbs / spec.device_count,
            cores=spec.cores_per_device,
            clock_ghz=spec.effective_clock_ghz,
        )
    return MachineResources(
        peak_gflops=spec.peak_gflops_dp,
        dram_bandwidth_gbs=spec.global_mem_bandwidth_gbs,
        cores=spec.total_cores,
        clock_ghz=spec.effective_clock_ghz,
    )


@dataclass(frozen=True)
class PredictedTime:
    """Model output: the launch time and its decomposition."""

    seconds: float
    compute_seconds: float
    on_chip_seconds: float
    dram_seconds: float
    sync_seconds: float
    overhead_seconds: float
    flops: float
    peak_gflops: float
    factors: Dict[str, float] = field(default_factory=dict)

    @property
    def gflops(self) -> float:
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0

    @property
    def fraction_of_peak(self) -> float:
        return self.gflops / self.peak_gflops if self.peak_gflops else 0.0

    @property
    def bound(self) -> str:
        """Which ceiling dominates."""
        parts = {
            "compute": self.compute_seconds,
            "on_chip": self.on_chip_seconds,
            "dram": self.dram_seconds,
            "sync": self.sync_seconds,
            "overhead": self.overhead_seconds,
        }
        return max(parts, key=parts.get)


def _gpu_efficiency(spec: HardwareSpec, wd: WorkDivMembers) -> Dict[str, float]:
    """Occupancy and warp efficiency of a work division on a GPU."""
    warp = spec.warp_size
    threads_per_block = wd.block_thread_count
    warps_per_block = -(-threads_per_block // warp)
    warp_eff = threads_per_block / (warps_per_block * warp)

    blocks_per_sm = min(
        GPU_MAX_BLOCKS_PER_SM,
        max(1, GPU_MAX_THREADS_PER_SM // max(threads_per_block, 1)),
    )
    resident_warps = spec.sm_count * blocks_per_sm * warps_per_block
    total_warps = wd.block_count * warps_per_block
    need_warps = spec.sm_count * GPU_NEED_WARPS_PER_SM
    occupancy = min(1.0, min(resident_warps, total_warps) / need_warps)
    return {"warp_eff": warp_eff, "occupancy": occupancy}


def _cpu_utilisation(
    res: MachineResources, wd: WorkDivMembers, parallel_scope: str
) -> float:
    """Fraction of the machine's cores a back-end's concurrency covers."""
    workers = {
        "none": 1,
        "blocks": wd.block_count,
        "threads": wd.block_thread_count,
        "both": wd.block_count * wd.block_thread_count,
    }.get(parallel_scope)
    if workers is None:
        raise ModelError(f"unknown parallel scope {parallel_scope!r}")
    return min(1.0, workers / res.cores)


def predict_time(
    spec: HardwareSpec,
    backend_kind: str,
    wd: WorkDivMembers,
    chars: KernelCharacteristics,
    parallel_scope: str = "both",
) -> PredictedTime:
    """Predict the execution time of one launch (see module docstring)."""
    res = machine_resources(spec, backend_kind)
    cache = CacheModel(spec)
    factors: Dict[str, float] = {}

    # -- compute ceiling -------------------------------------------------
    if backend_kind == "gpu":
        g = _gpu_efficiency(spec, wd)
        factors.update(g)
        util = g["occupancy"]
        compute_eff = g["warp_eff"] * g["occupancy"] * chars.issue_efficiency
    else:
        util = _cpu_utilisation(res, wd, parallel_scope)
        factors["utilisation"] = util
        if chars.uses_vector_math_library:
            # Hand-vectorised library math keeps the lanes and the FMAs.
            simd_eff = 1.0 if chars.vector_friendly else 1.0 / spec.simd_dp_lanes
            fma_eff = 1.0
        else:
            simd_eff = (
                CPU_AUTOVEC_EFFICIENCY
                if (
                    chars.vector_friendly
                    and wd.thread_elem_count >= spec.simd_dp_lanes
                )
                else 1.0 / spec.simd_dp_lanes
            )
            fma_eff = (
                0.5
                if (spec.peak_assumes_fma and not CPU_COMPILER_CONTRACTS_FMA)
                else 1.0
            )
        factors["simd_eff"] = simd_eff
        factors["fma_eff"] = fma_eff
        compute_eff = util * simd_eff * fma_eff * chars.issue_efficiency
    factors["issue_eff"] = chars.issue_efficiency
    factors["compute_eff"] = compute_eff
    compute_s = chars.flops / (res.peak_gflops * 1e9 * max(compute_eff, 1e-12))

    # -- on-chip ceiling ----------------------------------------------------
    serving = cache.serving_level(chars.working_set_bytes)
    on_chip_s = 0.0
    if chars.on_chip_read_bytes > 0 and serving is not None:
        level_bw = serving.bandwidth_gbs * 1e9 * max(util, 1e-12)
        on_chip_s = chars.on_chip_read_bytes / level_bw
        factors["on_chip_level_bw_gbs"] = serving.bandwidth_gbs * util
    factors["serving_level"] = (
        0.0 if serving is None else float(serving.size_bytes)
    )

    # -- DRAM ceiling ----------------------------------------------------------
    pattern = device_effective_pattern(chars.thread_access_pattern, backend_kind)
    if serving is None:
        # Reuse assumption failed: working set spills past every cache.
        read = (
            chars.spill_read_bytes
            if chars.spill_read_bytes is not None
            else chars.global_read_bytes
        )
        dram_bytes = read + chars.global_write_bytes
    else:
        dram_bytes = chars.total_bytes
    est = cache.bandwidth(1 << 62, pattern)  # force the global level
    pattern_eff = est.efficiency
    factors["dram_pattern_eff"] = pattern_eff
    dram_s = dram_bytes / (res.dram_bandwidth_gbs * 1e9 * pattern_eff)

    # -- additive terms -----------------------------------------------------------
    if backend_kind == "gpu":
        sync_s = chars.block_sync_generations * GPU_BARRIER_S
    else:
        per_barrier = (
            CPU_BARRIER_BASE_S
            + CPU_BARRIER_PER_THREAD_S * wd.block_thread_count
        )
        # Barriers of concurrently running blocks overlap.
        concurrency = max(
            1.0, util * res.cores / max(wd.block_thread_count, 1)
        ) if parallel_scope in ("blocks", "both") else 1.0
        sync_s = chars.block_sync_generations * per_barrier / concurrency

    # The abstraction-layer costs are nvcc residuals (see
    # KernelCharacteristics.abstraction_overhead_fraction); gcc elides
    # the same template machinery completely, so CPU back-ends pay
    # neither the fraction nor the extra API calls (paper Sec. 4.2.1:
    # OpenMP relative performance 100 %).
    if backend_kind == "gpu":
        overhead_fraction = chars.abstraction_overhead_fraction
        api_calls = chars.launches + chars.extra_api_calls
    else:
        overhead_fraction = 0.0
        api_calls = chars.launches
    overhead_s = api_calls * LAUNCH_OVERHEAD_S[backend_kind]

    seconds = max(compute_s, on_chip_s, dram_s) * (
        1.0 + overhead_fraction
    ) + sync_s + overhead_s
    return PredictedTime(
        seconds=seconds,
        compute_seconds=compute_s,
        on_chip_seconds=on_chip_s,
        dram_seconds=dram_s,
        sync_seconds=sync_s,
        overhead_seconds=overhead_s,
        flops=chars.flops,
        peak_gflops=res.peak_gflops,
        factors=factors,
    )


def predict_launch_seconds(
    kernel, acc_type, device, wd: WorkDivMembers, args=()
):
    """Predicted seconds for one launch of ``kernel`` under ``wd``, or
    ``None`` when the model has nothing to say.

    The hint interface of the work-division autotuner
    (:mod:`repro.tuning`): self-describing kernels (those implementing
    ``characteristics(work_div, *args)``) get a roofline prediction the
    search strategies use to prune and order candidates; anything that
    goes wrong — no ``characteristics`` method, the kernel declining a
    division, a model error — yields ``None`` rather than an exception,
    because a missing hint must never abort a tuning run.
    """
    describe = getattr(kernel, "characteristics", None)
    if describe is None:
        return None
    try:
        chars = describe(wd, *args)
        if chars is None:
            return None
        predicted = predict_time(
            device.spec,
            acc_type.kind,
            wd,
            chars,
            parallel_scope=getattr(acc_type, "parallel_scope", "none"),
        )
    except Exception:
        return None
    return predicted.seconds
