"""Performance model: regenerates the paper's timing figures from
machine models and kernel characteristics (see DESIGN.md substitutions).
"""

from .curves import RooflinePoint, place_kernel, roofline_envelope
from .kernel_model import KernelCharacteristics, device_effective_pattern
from .roofline import (
    MachineResources,
    PredictedTime,
    machine_resources,
    predict_launch_seconds,
    predict_time,
)

__all__ = [
    "KernelCharacteristics",
    "device_effective_pattern",
    "PredictedTime",
    "MachineResources",
    "predict_time",
    "predict_launch_seconds",
    "machine_resources",
    "RooflinePoint",
    "roofline_envelope",
    "place_kernel",
]
