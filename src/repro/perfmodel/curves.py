"""Roofline curves: the classic (arithmetic intensity, GFLOPS) plot data.

Utility API for users exploring the model: for a machine, produce the
roofline envelope (memory-slope then compute-flat), and place a kernel
launch on it.  The benches don't need this — it exists so the model is
inspectable the way performance engineers expect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.workdiv import WorkDivMembers
from ..hardware.specs import HardwareSpec
from .kernel_model import KernelCharacteristics
from .roofline import machine_resources, predict_time

__all__ = ["RooflinePoint", "roofline_envelope", "place_kernel"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on a machine's roofline."""

    arithmetic_intensity: float  # flops / DRAM byte
    attained_gflops: float
    bound: str


def roofline_envelope(
    spec: HardwareSpec,
    backend_kind: str,
    intensities: np.ndarray | None = None,
) -> List[Tuple[float, float]]:
    """The machine's roofline: attainable GFLOPS as a function of
    arithmetic intensity, ``min(peak, AI * BW)``.

    Returns (intensity, gflops) pairs suitable for log-log plotting.
    """
    res = machine_resources(spec, backend_kind)
    if intensities is None:
        intensities = np.logspace(-2, 3, 51)
    return [
        (float(ai), float(min(res.peak_gflops, ai * res.dram_bandwidth_gbs)))
        for ai in intensities
    ]


def place_kernel(
    spec: HardwareSpec,
    backend_kind: str,
    wd: WorkDivMembers,
    chars: KernelCharacteristics,
    parallel_scope: str = "both",
) -> RooflinePoint:
    """Where a kernel launch lands relative to the envelope."""
    p = predict_time(spec, backend_kind, wd, chars, parallel_scope)
    return RooflinePoint(
        arithmetic_intensity=chars.arithmetic_intensity,
        attained_gflops=p.gflops,
        bound=p.bound,
    )
