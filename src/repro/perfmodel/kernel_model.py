"""Kernel characteristics: what the performance model needs to know.

A kernel that wants modeled timing describes one launch with a
:class:`KernelCharacteristics` record — total useful FLOPs, DRAM
traffic after cache/shared-memory reuse, the per-block working set, the
per-thread access pattern, and whether its element-level inner
operations are vector friendly.

The record is deliberately *device independent*: the same description
feeds the model for every machine and back-end, and all
device-specific effects (coalescing, SIMD, occupancy, cache fit) are
applied by :mod:`repro.perfmodel.roofline`.  That mirrors the paper's
separation between the algorithm (kernel) and the parallelisation
strategy (accelerator + work division).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.errors import ModelError
from ..hardware.cache import AccessPattern

__all__ = [
    "KernelCharacteristics",
    "device_effective_pattern",
]


@dataclass(frozen=True)
class KernelCharacteristics:
    """Cost description of one kernel launch.

    Attributes
    ----------
    flops:
        Useful floating-point operations in the whole launch.
    global_read_bytes / global_write_bytes:
        DRAM traffic assuming the kernel's blocking/reuse works (tile
        fits the cache level it was sized for).
    spill_read_bytes:
        DRAM read traffic when the reuse *fails* (working set does not
        fit any cache); defaults to ``global_read_bytes``.
    working_set_bytes:
        Per-block hot working set; decides which cache level serves the
        inner loop and whether the reuse assumption holds.
    thread_access_pattern:
        Access pattern *as seen from one thread* (see
        :func:`device_effective_pattern` for the device translation).
    vector_friendly:
        True when the element-level inner operations are span
        operations (auto-vectorisable / numpy path).
    on_chip_read_bytes:
        Traffic through the cache/shared-memory level that serves the
        inner loop (e.g. 16 bytes per FMA for a tiled DGEMM without
        register blocking).  This is the ceiling that pins optimised
        DGEMM near 20 % of peak on *every* machine (paper Fig. 9);
        element-level register blocking divides it.
    block_sync_generations:
        Total block-barrier generations in the launch (count per block
        times number of blocks).  Cheap on GPUs, expensive on CPU
        thread back-ends — one of the two reasons the CUDA-style kernel
        collapses on CPUs in Fig. 6.
    abstraction_overhead_fraction:
        Relative execution-time cost of the abstraction layer versus a
        native implementation of the same algorithm on the same
        back-end (paper Sec. 4.2.1: the move/forward-operator copies in
        the grid index calculations cost the CUDA back-end <6 %, the
        OpenMP back-end ~0 %).  This is the one place the model takes a
        *measured* paper quantity as an input instead of deriving it —
        deriving a compiler's copy-elision behaviour is outside any
        roofline's power; what the model reproduces is the structure
        (which back-end pays it, and that it is small and roughly
        size-independent).  0 for native kernels.
    extra_api_calls:
        Additional runtime API calls the abstraction issues per launch
        (paper: "a small number of additional CUDA runtime calls by the
        alpaka CUDA back-end"); each costs one launch overhead and is
        what bends the Fig. 5 curve down at small matrix sizes.
    launches:
        Number of kernel launches the record covers (launch overhead
        multiplies with it).
    """

    flops: float
    global_read_bytes: float
    global_write_bytes: float
    working_set_bytes: int
    thread_access_pattern: AccessPattern
    vector_friendly: bool
    on_chip_read_bytes: float = 0.0
    block_sync_generations: float = 0.0
    spill_read_bytes: float | None = None
    abstraction_overhead_fraction: float = 0.0
    extra_api_calls: int = 0
    launches: int = 1
    #: Fraction of peak issue rate the kernel's instruction mix can use
    #: even with perfect occupancy/vectorisation — transcendentals
    #: counted as one flop but costing many cycles, divergent branches,
    #: integer address work.  1.0 for pure FMA streams (DGEMM), ~0.5
    #: for Monte-Carlo kernels full of exp/div (HASE).
    issue_efficiency: float = 1.0
    #: True when the element-level math goes through a hand-vectorised
    #: math library (numpy/SVML/MKL-style) rather than compiler
    #: auto-vectorisation of user loops; such code keeps full SIMD and
    #: FMA efficiency on CPUs regardless of gcc's auto-vectoriser.
    uses_vector_math_library: bool = False

    def __post_init__(self):
        if self.flops < 0:
            raise ModelError("flops must be non-negative")
        if self.global_read_bytes < 0 or self.global_write_bytes < 0:
            raise ModelError("traffic must be non-negative")
        if self.working_set_bytes < 0:
            raise ModelError("working set must be non-negative")
        if self.launches < 1:
            raise ModelError("launches must be >= 1")
        if self.spill_read_bytes is not None and self.spill_read_bytes < 0:
            raise ModelError("spill traffic must be non-negative")
        if self.on_chip_read_bytes < 0 or self.block_sync_generations < 0:
            raise ModelError("on-chip traffic / sync counts must be non-negative")
        if self.abstraction_overhead_fraction < 0 or self.extra_api_calls < 0:
            raise ModelError("overhead terms must be non-negative")
        if not 0.0 < self.issue_efficiency <= 1.0:
            raise ModelError("issue_efficiency must be in (0, 1]")

    def with_overhead(
        self, fraction: float, extra_api_calls: int = 2
    ) -> "KernelCharacteristics":
        """The same kernel, wrapped by an abstraction layer costing a
        ``fraction`` of execution time plus ``extra_api_calls`` runtime
        calls per launch."""
        return replace(
            self,
            abstraction_overhead_fraction=fraction,
            extra_api_calls=extra_api_calls,
        )

    @property
    def total_bytes(self) -> float:
        return self.global_read_bytes + self.global_write_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte — the roofline x-axis."""
        return self.flops / self.total_bytes if self.total_bytes else float("inf")


def device_effective_pattern(
    pattern: AccessPattern, backend_kind: str
) -> AccessPattern:
    """Translate a per-thread access pattern into the pattern the memory
    system of a device actually sees.

    This one function encodes the paper's Fig. 6 explanation: *"the
    back-ends require completely different data access patterns to
    achieve optimum data access performance, e.g. strided data access
    in CUDA"*.

    * On a **GPU**, adjacent threads execute in lockstep; per-thread
      *strided* access (thread ``i`` touches ``data[i]``, ``data[i+N]``,
      ...) coalesces into contiguous transactions, while per-thread
      *contiguous* access (each thread walks its own chunk) scatters a
      warp's loads across lines.
    * On a **CPU**, one thread runs a whole block; its pattern reaches
      the cache untranslated.
    * *Tiled* and *random* mean the same thing everywhere.
    """
    if backend_kind == "cpu":
        return pattern
    if backend_kind == "gpu":
        if pattern is AccessPattern.STRIDED:
            return AccessPattern.CONTIGUOUS
        if pattern is AccessPattern.CONTIGUOUS:
            return AccessPattern.STRIDED
        return pattern
    raise ModelError(f"unknown backend kind {backend_kind!r}")
