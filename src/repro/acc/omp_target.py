"""Simulated OpenMP 4.x target-offload back-end (paper future work).

The paper's conclusion: *"Future work will focus on including more
Alpaka back-ends, e.g. for OpenACC and OpenMP 4.x target offloading and
studying performance portability for additional architectures (e.g.
Intel Xeon Phi ...)"*.  This back-end realises that combination:

* **offloading semantics** — OpenMP ``target`` regions execute against
  a *device data environment*: host pointers are not device pointers,
  data moves through explicit ``map`` clauses.  The platform therefore
  exposes a device whose memory is isolated from the host, exactly like
  the CUDA back-end's (``mem.copy`` plays the map clause).
* **teams x threads execution** — ``teams distribute`` runs blocks
  concurrently and ``parallel for`` runs a block's threads
  concurrently, so *both* hierarchy levels are parallel
  (``parallel_scope="both"``), unlike the host OpenMP-2 back-ends.
* **default target device** — the modeled Xeon Phi 5110P, the paper's
  named additional architecture; any CPU-kind machine model works.

Proof of the abstraction-extension claim: this file adds a back-end
with a third memory-space behaviour without touching a single kernel
or any core module.
"""

from __future__ import annotations

from typing import Dict, Type

from ..core.properties import AccDevProps
from ..core.vec import Vec
from ..core.workdiv import MappingStrategy
from ..dev.device import Device
from ..dev.platform import Platform
from ..hardware.registry import machine
from ..runtime.scheduler import resolve_max_block_workers
from .base import AcceleratorType

__all__ = ["PlatformOmpTarget", "AccOmp4TargetSim"]

_HUGE = 1 << 30


class PlatformOmpTarget(Platform):
    """OpenMP target device: CPU-kind hardware behind an offload
    boundary (isolated device data environment)."""

    kind = "omp-target"

    def __init__(self, machine_key: str = "intel-xeon-phi-5110p"):
        spec = machine(machine_key)
        if spec.kind != "cpu":
            raise ValueError(
                f"OpenMP target offload models CPU-kind devices; "
                f"{spec.key} is {spec.kind}"
            )
        super().__init__(spec, accessible_from_host=False)


class AccOmp4TargetSim(AcceleratorType):
    """``#pragma omp target teams distribute parallel for`` as a
    back-end."""

    name = "AccOmp4TargetSim"
    kind = "cpu"
    mapping_strategy = MappingStrategy.THREAD_LEVEL
    supports_block_sync = True
    parallel_scope = "both"  # teams AND threads execute concurrently
    block_schedule = "pooled"  # teams distribute -> per-device pool
    thread_execute = "preemptive"  # parallel for -> OS threads
    machine_key: str = "intel-xeon-phi-5110p"
    _machine_variants: Dict[str, Type["AccOmp4TargetSim"]] = {}

    @classmethod
    def platform(cls) -> PlatformOmpTarget:
        return PlatformOmpTarget(cls.machine_key)

    @classmethod
    def get_acc_dev_props(cls, dev: Device) -> AccDevProps:
        spec = dev.spec
        return AccDevProps(
            multi_processor_count=spec.cores_per_device,
            grid_block_extent_max=Vec.all(3, _HUGE),
            # A team binds to one core; its thread count is the core's
            # hardware-thread count (4 on Knights Corner).
            block_thread_extent_max=Vec.all(3, spec.max_threads_per_block),
            thread_elem_extent_max=Vec.all(3, _HUGE),
            block_thread_count_max=spec.max_threads_per_block,
            shared_mem_size_bytes=spec.shared_mem_per_block_bytes,
            warp_size=1,
            global_mem_size_bytes=spec.global_mem_bytes,
            max_block_workers=resolve_max_block_workers(),
        )

    @classmethod
    def for_machine(cls, machine_key: str) -> Type["AccOmp4TargetSim"]:
        cache_key = f"{cls.__name__}@{machine_key}"
        variant = cls._machine_variants.get(cache_key)
        if variant is None:
            variant = type(
                cache_key.replace("-", "_").replace("@", "_on_"),
                (cls,),
                {"machine_key": machine_key, "name": cache_key},
            )
            cls._machine_variants[cache_key] = variant
        return variant
