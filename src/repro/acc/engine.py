"""Grid execution engines shared by the back-ends.

A back-end is the composition of two choices (paper Sec. 3.3's mapping):

* how *blocks* of the grid are scheduled (sequentially, or across a
  worker pool — the OpenMP-block strategy), and
* how *threads inside a block* are executed:

  - :func:`run_block_single_thread` — the block has exactly one thread
    (serial / OpenMP-block back-ends; the element level carries SIMD),
  - :func:`run_block_preemptive` — one OS thread per block thread with a
    real barrier (C++11-threads, OpenMP-thread, CUDA-sim back-ends),
  - :func:`run_block_cooperative` — fibers: block threads share one core
    and yield to each other only at synchronisation points
    (boost::fibers back-end).  Execution is deterministic round-robin,
    which makes it the back-end of choice for debugging race-like
    behaviour — same as in alpaka.

Block-level scheduling (sequential vs. chunked worker-pool dispatch)
lives in :mod:`repro.runtime.scheduler`; this module only provides the
thread-level runners the runtime composes into launch plans.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Iterator, Optional, Tuple

from ..core.errors import KernelError
from ..core.vec import Vec
from ..dev.device import Device
from ..mem.buf import Buffer
from ..mem.view import ViewSubView
from .base import Accelerator, BlockContext, GridContext

__all__ = [
    "unwrap_args",
    "iter_indices",
    "run_block_single_thread",
    "run_block_preemptive",
    "run_block_cooperative",
    "run_grid",
]


def unwrap_args(args: Tuple, device: Device) -> Tuple:
    """Turn host-side kernel arguments into device-side ones.

    Buffers become their numpy arrays after a residency check (the
    moral equivalent of passing the device pointer); everything else
    passes through untouched — alpaka kernels take arguments by value.
    """
    return tuple(
        a.kernel_array(device) if isinstance(a, (Buffer, ViewSubView)) else a
        for a in args
    )


def iter_indices(extent: Vec) -> Iterator[Vec]:
    """All n-dim indices inside ``extent``, C order."""
    for tup in itertools.product(*(range(e) for e in extent)):
        yield Vec(*tup)


# ---------------------------------------------------------------------------
# Block runners
# ---------------------------------------------------------------------------


def run_block_single_thread(
    grid: GridContext, block_idx: Vec, kernel: Callable, args: Tuple
) -> None:
    """Execute a one-thread block in the calling thread."""
    block = BlockContext(grid, block_idx, sync=None)
    thread_idx = Vec.zeros(grid.work_div.dim)
    acc = Accelerator(grid, block, thread_idx)
    monitor = grid.monitor
    if monitor is None:
        kernel(acc, *args)
        return
    monitor.thread_begin(block, thread_idx)
    try:
        kernel(acc, *args)
    finally:
        monitor.thread_end(block, thread_idx)


class _SiblingAbort(BaseException):
    """Internal unwind signal: a sibling thread of this block raised, so
    this thread must leave its barrier wait and exit quietly.

    Derives from ``BaseException`` so kernel-level ``except Exception``
    cleanup handlers never see (or swallow) it — user code previously
    observed a raw ``threading.BrokenBarrierError`` here, which leaked
    the engine's implementation and hid the sibling's real error.
    """


class _BlockBarrier:
    """Barrier over the *live* threads of one preemptive block.

    Unlike :class:`threading.Barrier` the party count adapts as threads
    exit: a generation completes when every thread that has not yet
    exited is waiting.  Divergent exits (some threads returning without
    reaching the barrier their siblings wait at) therefore release the
    waiters instead of deadlocking — the same contract the cooperative
    fiber scheduler pins in its tests, and the behaviour CUDA kernels
    in the wild rely on.  The sanitizer reports such divergence as a
    finding; the engine's job is merely never to hang.

    A kernel error (:meth:`on_error`) wakes all waiters with
    :class:`_SiblingAbort` so the original exception is what the block
    reports.
    """

    def __init__(self, n: int):
        self.cv = threading.Condition()
        self.n = n
        self.waiting = 0
        self.exited = 0
        self.generation = 0
        self.failed = False

    def _complete_locked(self) -> None:
        self.waiting = 0
        self.generation += 1
        self.cv.notify_all()

    def wait(self) -> None:
        with self.cv:
            if self.failed:
                raise _SiblingAbort()
            gen = self.generation
            self.waiting += 1
            if self.waiting + self.exited == self.n:
                self._complete_locked()
                return
            while self.generation == gen and not self.failed:
                self.cv.wait()
            if self.failed and self.generation == gen:
                raise _SiblingAbort()

    def on_exit(self) -> None:
        """A thread left the block (normally or not); if every other
        live thread sits at the barrier, release them."""
        with self.cv:
            self.exited += 1
            if (
                not self.failed
                and self.waiting
                and self.waiting + self.exited == self.n
            ):
                self._complete_locked()

    def on_error(self) -> None:
        with self.cv:
            self.failed = True
            self.cv.notify_all()


def _raise_block_errors(errors: list, kernel: Callable, block_idx: Vec) -> None:
    """Re-raise the first kernel error with thread/block context.

    The original exception is preserved as ``__cause__``; an error that
    is already a :class:`KernelError` (e.g. a nested contract violation
    that carries its own context) passes through unchanged.
    """
    if not errors:
        return
    thread_idx, exc = errors[0]
    if isinstance(exc, KernelError):
        raise exc
    kname = getattr(kernel, "__name__", type(kernel).__name__)
    raise KernelError(
        f"kernel {kname!r} failed in thread {thread_idx!r} of "
        f"block {block_idx!r}"
    ) from exc


def run_block_preemptive(
    grid: GridContext, block_idx: Vec, kernel: Callable, args: Tuple
) -> None:
    """Execute a block with one OS thread per block thread.

    ``sync_block_threads`` maps to a :class:`_BlockBarrier` across the
    block.  The first kernel exception aborts the barrier (so no
    sibling deadlocks) and is re-raised — wrapped with its thread and
    block indices — to the block scheduler; siblings unwind via the
    internal :class:`_SiblingAbort`, never a raw
    ``threading.BrokenBarrierError``.
    """
    wd = grid.work_div
    n = wd.block_thread_count
    if n == 1:
        run_block_single_thread(grid, block_idx, kernel, args)
        return

    barrier = _BlockBarrier(n)
    block = BlockContext(grid, block_idx, sync=barrier.wait)
    monitor = grid.monitor
    errors: list = []
    err_lock = threading.Lock()

    def body(thread_idx: Vec) -> None:
        acc = Accelerator(grid, block, thread_idx)
        if monitor is not None:
            monitor.thread_begin(block, thread_idx)
        try:
            kernel(acc, *args)
        except _SiblingAbort:
            pass  # a sibling failed; its error is the one to report
        except BaseException as exc:  # noqa: BLE001 - reported by scheduler
            with err_lock:
                errors.append((thread_idx, exc))
            barrier.on_error()
        finally:
            barrier.on_exit()
            if monitor is not None:
                monitor.thread_end(block, thread_idx)

    threads = [
        threading.Thread(target=body, args=(tidx,), daemon=True)
        for tidx in iter_indices(wd.block_thread_extent)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    _raise_block_errors(errors, kernel, block_idx)


class _FiberScheduler:
    """Cooperative round-robin scheduler for one block's fibers.

    Exactly one fiber runs at any time; control transfers only at
    barriers and fiber completion, giving deterministic interleaving.
    """

    READY, BARRIER, DONE = range(3)

    def __init__(self, n: int):
        self.n = n
        self.cv = threading.Condition()
        self.state = [self.READY] * n
        self.current = 0
        self._ident_to_fiber: dict = {}

    # -- identity ---------------------------------------------------------

    def register(self, fiber_id: int) -> None:
        with self.cv:
            self._ident_to_fiber[threading.get_ident()] = fiber_id

    def my_id(self) -> int:
        try:
            return self._ident_to_fiber[threading.get_ident()]
        except KeyError:
            raise KernelError(
                "sync_block_threads called from outside a fiber"
            ) from None

    # -- scheduling ---------------------------------------------------------

    def _next_ready_locked(self, after: int) -> Optional[int]:
        for k in range(1, self.n + 1):
            j = (after + k) % self.n
            if self.state[j] == self.READY:
                return j
        return None

    def _release_barrier_locked(self) -> None:
        for j, s in enumerate(self.state):
            if s == self.BARRIER:
                self.state[j] = self.READY

    def wait_turn(self, i: int) -> None:
        with self.cv:
            while not (self.current == i and self.state[i] == self.READY):
                self.cv.wait()

    def preempt(self) -> None:
        """Yield the baton to another ready fiber (if any) and wait for
        it to come back.  A no-op for the deterministic round-robin
        scheduler's users — only the sanitizer's fuzzing scheduler
        injects calls — but defined here so any scheduler can honour
        an injected yield point."""
        i = self.my_id()
        with self.cv:
            nxt = self._next_ready_locked(i)
            if nxt is None or nxt == i:
                return
            self.current = nxt
            self.cv.notify_all()
            while not (self.current == i and self.state[i] == self.READY):
                self.cv.wait()

    def barrier_wait(self) -> None:
        i = self.my_id()
        with self.cv:
            self.state[i] = self.BARRIER
            nxt = self._next_ready_locked(i)
            if nxt is None:
                # Everyone else is at the barrier or done: generation
                # complete; this fiber continues.
                self._release_barrier_locked()
                self.current = i
                return
            self.current = nxt
            self.cv.notify_all()
            while not (self.current == i and self.state[i] == self.READY):
                self.cv.wait()

    def finish(self, i: int) -> None:
        with self.cv:
            self.state[i] = self.DONE
            nxt = self._next_ready_locked(i)
            if nxt is None:
                # Remaining fibers (if any) all sit at a barrier while
                # this one exited — divergent sync, undefined on CUDA;
                # release them so the block terminates.
                self._release_barrier_locked()
                nxt = self._next_ready_locked(i)
            if nxt is not None:
                self.current = nxt
            self.cv.notify_all()


def run_block_cooperative(
    grid: GridContext,
    block_idx: Vec,
    kernel: Callable,
    args: Tuple,
    *,
    scheduler_factory: Callable[[int], _FiberScheduler] = _FiberScheduler,
) -> None:
    """Execute a block as cooperatively scheduled fibers (one at a time).

    ``scheduler_factory`` defaults to the deterministic round-robin
    :class:`_FiberScheduler`; the sanitizer's schedule fuzzer passes a
    seeded-random subclass to permute interleavings.
    """
    wd = grid.work_div
    n = wd.block_thread_count
    if n == 1:
        run_block_single_thread(grid, block_idx, kernel, args)
        return

    sched = scheduler_factory(n)
    block = BlockContext(grid, block_idx, sync=sched.barrier_wait)
    monitor = grid.monitor
    errors: list = []

    def body(fiber_id: int, thread_idx: Vec) -> None:
        sched.register(fiber_id)
        sched.wait_turn(fiber_id)
        acc = Accelerator(grid, block, thread_idx)
        if monitor is not None:
            monitor.thread_begin(block, thread_idx, scheduler=sched)
        try:
            kernel(acc, *args)
        except BaseException as exc:  # noqa: BLE001
            errors.append((thread_idx, exc))
        finally:
            if monitor is not None:
                monitor.thread_end(block, thread_idx)
            sched.finish(fiber_id)

    fibers = [
        threading.Thread(target=body, args=(fid, tidx), daemon=True)
        for fid, tidx in enumerate(iter_indices(wd.block_thread_extent))
    ]
    for f in fibers:
        f.start()
    for f in fibers:
        f.join()
    _raise_block_errors(errors, kernel, block_idx)


# ---------------------------------------------------------------------------
# Legacy grid entry point
# ---------------------------------------------------------------------------


def run_grid(
    task,
    device: Device,
    props,
    block_runner: Optional[Callable[[GridContext, Vec, Callable, Tuple], None]] = None,
    *,
    parallel_blocks: bool = False,
) -> None:
    """Deprecated launch entry point; use :func:`repro.runtime.launch`.

    Kept for source compatibility with pre-runtime callers.  When
    ``block_runner`` is None (or matches the back-end's declared
    strategy) the launch goes through the cached plan pipeline; an
    explicit foreign runner builds a one-off plan so old ad-hoc callers
    keep their exact semantics, minus the per-block future dispatch.
    """
    from .. import runtime
    from ..runtime.plan import build_plan
    from ..runtime.scheduler import scheduler_for

    plan = runtime.get_plan(task, device)
    if block_runner is not None and block_runner is not plan.block_runner:
        plan = build_plan(task, device)
        plan.block_runner = block_runner
        plan.schedule = (
            "pooled"
            if parallel_blocks and plan.work_div.block_count > 1
            else "sequential"
        )
    grid = GridContext(
        device,
        plan.work_div,
        plan.props,
        plan.unwrap_args(task.args),
        shared_mem_bytes=plan.shared_mem_bytes,
    )
    device.note_kernel_launch()
    plan.launches += 1
    runtime.notify_launch_begin(plan, task, device)
    try:
        sched = scheduler_for(device, plan.schedule)
        sched.dispatch(plan, grid, plan.block_indices, task)
    finally:
        runtime.notify_launch_end(plan, task, device)
