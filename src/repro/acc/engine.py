"""Grid execution engines shared by the back-ends.

A back-end is the composition of two choices (paper Sec. 3.3's mapping):

* how *blocks* of the grid are scheduled (sequentially, or across a
  worker pool — the OpenMP-block strategy), and
* how *threads inside a block* are executed:

  - :func:`run_block_single_thread` — the block has exactly one thread
    (serial / OpenMP-block back-ends; the element level carries SIMD),
  - :func:`run_block_preemptive` — one OS thread per block thread with a
    real barrier (C++11-threads, OpenMP-thread, CUDA-sim back-ends),
  - :func:`run_block_cooperative` — fibers: block threads share one core
    and yield to each other only at synchronisation points
    (boost::fibers back-end).  Execution is deterministic round-robin,
    which makes it the back-end of choice for debugging race-like
    behaviour — same as in alpaka.

Block-level scheduling (sequential vs. chunked worker-pool dispatch)
lives in :mod:`repro.runtime.scheduler`; this module only provides the
thread-level runners the runtime composes into launch plans.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Iterator, Optional, Tuple

from ..core.errors import KernelError
from ..core.vec import Vec
from ..dev.device import Device
from ..mem.buf import Buffer
from ..mem.view import ViewSubView
from .base import Accelerator, BlockContext, GridContext

__all__ = [
    "unwrap_args",
    "iter_indices",
    "run_block_single_thread",
    "run_block_preemptive",
    "run_block_cooperative",
    "run_grid",
]


def unwrap_args(args: Tuple, device: Device) -> Tuple:
    """Turn host-side kernel arguments into device-side ones.

    Buffers become their numpy arrays after a residency check (the
    moral equivalent of passing the device pointer); everything else
    passes through untouched — alpaka kernels take arguments by value.
    """
    return tuple(
        a.kernel_array(device) if isinstance(a, (Buffer, ViewSubView)) else a
        for a in args
    )


def iter_indices(extent: Vec) -> Iterator[Vec]:
    """All n-dim indices inside ``extent``, C order."""
    for tup in itertools.product(*(range(e) for e in extent)):
        yield Vec(*tup)


# ---------------------------------------------------------------------------
# Block runners
# ---------------------------------------------------------------------------


def run_block_single_thread(
    grid: GridContext, block_idx: Vec, kernel: Callable, args: Tuple
) -> None:
    """Execute a one-thread block in the calling thread."""
    block = BlockContext(grid, block_idx, sync=None)
    acc = Accelerator(grid, block, Vec.zeros(grid.work_div.dim))
    kernel(acc, *args)


def run_block_preemptive(
    grid: GridContext, block_idx: Vec, kernel: Callable, args: Tuple
) -> None:
    """Execute a block with one OS thread per block thread.

    ``sync_block_threads`` maps to a :class:`threading.Barrier` across
    the block.  The first kernel exception aborts the barrier (so no
    sibling deadlocks) and is re-raised to the block scheduler.
    """
    wd = grid.work_div
    n = wd.block_thread_count
    if n == 1:
        run_block_single_thread(grid, block_idx, kernel, args)
        return

    barrier = threading.Barrier(n)
    block = BlockContext(grid, block_idx, sync=barrier.wait)
    errors: list = []
    err_lock = threading.Lock()

    def body(thread_idx: Vec) -> None:
        acc = Accelerator(grid, block, thread_idx)
        try:
            kernel(acc, *args)
        except threading.BrokenBarrierError:
            pass  # a sibling failed; silently unwind
        except BaseException as exc:  # noqa: BLE001 - reported by scheduler
            with err_lock:
                errors.append(exc)
            barrier.abort()

    threads = [
        threading.Thread(target=body, args=(tidx,), daemon=True)
        for tidx in iter_indices(wd.block_thread_extent)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class _FiberScheduler:
    """Cooperative round-robin scheduler for one block's fibers.

    Exactly one fiber runs at any time; control transfers only at
    barriers and fiber completion, giving deterministic interleaving.
    """

    READY, BARRIER, DONE = range(3)

    def __init__(self, n: int):
        self.n = n
        self.cv = threading.Condition()
        self.state = [self.READY] * n
        self.current = 0
        self._ident_to_fiber: dict = {}

    # -- identity ---------------------------------------------------------

    def register(self, fiber_id: int) -> None:
        with self.cv:
            self._ident_to_fiber[threading.get_ident()] = fiber_id

    def my_id(self) -> int:
        try:
            return self._ident_to_fiber[threading.get_ident()]
        except KeyError:
            raise KernelError(
                "sync_block_threads called from outside a fiber"
            ) from None

    # -- scheduling ---------------------------------------------------------

    def _next_ready_locked(self, after: int) -> Optional[int]:
        for k in range(1, self.n + 1):
            j = (after + k) % self.n
            if self.state[j] == self.READY:
                return j
        return None

    def _release_barrier_locked(self) -> None:
        for j, s in enumerate(self.state):
            if s == self.BARRIER:
                self.state[j] = self.READY

    def wait_turn(self, i: int) -> None:
        with self.cv:
            while not (self.current == i and self.state[i] == self.READY):
                self.cv.wait()

    def barrier_wait(self) -> None:
        i = self.my_id()
        with self.cv:
            self.state[i] = self.BARRIER
            nxt = self._next_ready_locked(i)
            if nxt is None:
                # Everyone else is at the barrier or done: generation
                # complete; this fiber continues.
                self._release_barrier_locked()
                self.current = i
                return
            self.current = nxt
            self.cv.notify_all()
            while not (self.current == i and self.state[i] == self.READY):
                self.cv.wait()

    def finish(self, i: int) -> None:
        with self.cv:
            self.state[i] = self.DONE
            nxt = self._next_ready_locked(i)
            if nxt is None:
                # Remaining fibers (if any) all sit at a barrier while
                # this one exited — divergent sync, undefined on CUDA;
                # release them so the block terminates.
                self._release_barrier_locked()
                nxt = self._next_ready_locked(i)
            if nxt is not None:
                self.current = nxt
            self.cv.notify_all()


def run_block_cooperative(
    grid: GridContext, block_idx: Vec, kernel: Callable, args: Tuple
) -> None:
    """Execute a block as cooperatively scheduled fibers (one at a time)."""
    wd = grid.work_div
    n = wd.block_thread_count
    if n == 1:
        run_block_single_thread(grid, block_idx, kernel, args)
        return

    sched = _FiberScheduler(n)
    block = BlockContext(grid, block_idx, sync=sched.barrier_wait)
    errors: list = []

    def body(fiber_id: int, thread_idx: Vec) -> None:
        sched.register(fiber_id)
        sched.wait_turn(fiber_id)
        acc = Accelerator(grid, block, thread_idx)
        try:
            kernel(acc, *args)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)
        finally:
            sched.finish(fiber_id)

    fibers = [
        threading.Thread(target=body, args=(fid, tidx), daemon=True)
        for fid, tidx in enumerate(iter_indices(wd.block_thread_extent))
    ]
    for f in fibers:
        f.start()
    for f in fibers:
        f.join()
    if errors:
        raise errors[0]


# ---------------------------------------------------------------------------
# Legacy grid entry point
# ---------------------------------------------------------------------------


def run_grid(
    task,
    device: Device,
    props,
    block_runner: Optional[Callable[[GridContext, Vec, Callable, Tuple], None]] = None,
    *,
    parallel_blocks: bool = False,
) -> None:
    """Deprecated launch entry point; use :func:`repro.runtime.launch`.

    Kept for source compatibility with pre-runtime callers.  When
    ``block_runner`` is None (or matches the back-end's declared
    strategy) the launch goes through the cached plan pipeline; an
    explicit foreign runner builds a one-off plan so old ad-hoc callers
    keep their exact semantics, minus the per-block future dispatch.
    """
    from .. import runtime
    from ..runtime.plan import build_plan
    from ..runtime.scheduler import scheduler_for

    plan = runtime.get_plan(task, device)
    if block_runner is not None and block_runner is not plan.block_runner:
        plan = build_plan(task, device)
        plan.block_runner = block_runner
        plan.schedule = (
            "pooled"
            if parallel_blocks and plan.work_div.block_count > 1
            else "sequential"
        )
    grid = GridContext(
        device,
        plan.work_div,
        plan.props,
        plan.unwrap_args(task.args),
        shared_mem_bytes=plan.shared_mem_bytes,
    )
    device.note_kernel_launch()
    plan.launches += 1
    runtime.notify_launch_begin(plan, task, device)
    try:
        sched = scheduler_for(device, plan.schedule)
        sched.dispatch(plan, grid, plan.block_indices, task)
    finally:
        runtime.notify_launch_end(plan, task, device)
