"""Grid execution engines shared by the back-ends.

A back-end is the composition of two choices (paper Sec. 3.3's mapping):

* how *blocks* of the grid are scheduled (sequentially, or across a
  worker pool — the OpenMP-block strategy), and
* how *threads inside a block* are executed:

  - :func:`run_block_single_thread` — the block has exactly one thread
    (serial / OpenMP-block back-ends; the element level carries SIMD),
  - :func:`run_block_preemptive` — one OS thread per block thread with a
    real barrier (C++11-threads, OpenMP-thread, CUDA-sim back-ends),
  - :func:`run_block_cooperative` — fibers: block threads share one core
    and yield to each other only at synchronisation points
    (boost::fibers back-end).  Execution is deterministic round-robin,
    which makes it the back-end of choice for debugging race-like
    behaviour — same as in alpaka.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, Optional, Tuple

from ..core.errors import KernelError, SharedMemError
from ..core.vec import Vec
from ..core.workdiv import validate_work_div
from ..dev.device import Device
from ..mem.buf import Buffer
from ..mem.view import ViewSubView
from .base import Accelerator, BlockContext, GridContext

__all__ = [
    "unwrap_args",
    "iter_indices",
    "run_block_single_thread",
    "run_block_preemptive",
    "run_block_cooperative",
    "run_grid",
]

#: Upper bound on concurrently scheduled block workers; beyond this the
#: host's thread-creation overhead dominates any concurrency benefit.
MAX_BLOCK_WORKERS = 16

_block_pool: Optional[ThreadPoolExecutor] = None
_block_pool_lock = threading.Lock()


def _shared_block_pool() -> ThreadPoolExecutor:
    """The persistent block-worker pool.

    OpenMP runtimes keep their worker threads alive between parallel
    regions; re-creating a pool per kernel launch would charge thread
    start-up to every launch and show up as (false) abstraction overhead
    in the Fig. 5 measurement.  Sized to the host, shared by all
    OpenMP-block launches, torn down with the process.
    """
    global _block_pool
    with _block_pool_lock:
        if _block_pool is None:
            import os

            workers = min(MAX_BLOCK_WORKERS, max(2, os.cpu_count() or 1))
            _block_pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="alpaka-omp"
            )
        return _block_pool


def unwrap_args(args: Tuple, device: Device) -> Tuple:
    """Turn host-side kernel arguments into device-side ones.

    Buffers become their numpy arrays after a residency check (the
    moral equivalent of passing the device pointer); everything else
    passes through untouched — alpaka kernels take arguments by value.
    """
    return tuple(
        a.kernel_array(device) if isinstance(a, (Buffer, ViewSubView)) else a
        for a in args
    )


def iter_indices(extent: Vec) -> Iterator[Vec]:
    """All n-dim indices inside ``extent``, C order."""
    for tup in itertools.product(*(range(e) for e in extent)):
        yield Vec(*tup)


# ---------------------------------------------------------------------------
# Block runners
# ---------------------------------------------------------------------------


def run_block_single_thread(
    grid: GridContext, block_idx: Vec, kernel: Callable, args: Tuple
) -> None:
    """Execute a one-thread block in the calling thread."""
    block = BlockContext(grid, block_idx, sync=None)
    acc = Accelerator(grid, block, Vec.zeros(grid.work_div.dim))
    kernel(acc, *args)


def run_block_preemptive(
    grid: GridContext, block_idx: Vec, kernel: Callable, args: Tuple
) -> None:
    """Execute a block with one OS thread per block thread.

    ``sync_block_threads`` maps to a :class:`threading.Barrier` across
    the block.  The first kernel exception aborts the barrier (so no
    sibling deadlocks) and is re-raised to the block scheduler.
    """
    wd = grid.work_div
    n = wd.block_thread_count
    if n == 1:
        run_block_single_thread(grid, block_idx, kernel, args)
        return

    barrier = threading.Barrier(n)
    block = BlockContext(grid, block_idx, sync=barrier.wait)
    errors: list = []
    err_lock = threading.Lock()

    def body(thread_idx: Vec) -> None:
        acc = Accelerator(grid, block, thread_idx)
        try:
            kernel(acc, *args)
        except threading.BrokenBarrierError:
            pass  # a sibling failed; silently unwind
        except BaseException as exc:  # noqa: BLE001 - reported by scheduler
            with err_lock:
                errors.append(exc)
            barrier.abort()

    threads = [
        threading.Thread(target=body, args=(tidx,), daemon=True)
        for tidx in iter_indices(wd.block_thread_extent)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class _FiberScheduler:
    """Cooperative round-robin scheduler for one block's fibers.

    Exactly one fiber runs at any time; control transfers only at
    barriers and fiber completion, giving deterministic interleaving.
    """

    READY, BARRIER, DONE = range(3)

    def __init__(self, n: int):
        self.n = n
        self.cv = threading.Condition()
        self.state = [self.READY] * n
        self.current = 0
        self._ident_to_fiber: dict = {}

    # -- identity ---------------------------------------------------------

    def register(self, fiber_id: int) -> None:
        with self.cv:
            self._ident_to_fiber[threading.get_ident()] = fiber_id

    def my_id(self) -> int:
        try:
            return self._ident_to_fiber[threading.get_ident()]
        except KeyError:
            raise KernelError(
                "sync_block_threads called from outside a fiber"
            ) from None

    # -- scheduling ---------------------------------------------------------

    def _next_ready_locked(self, after: int) -> Optional[int]:
        for k in range(1, self.n + 1):
            j = (after + k) % self.n
            if self.state[j] == self.READY:
                return j
        return None

    def _release_barrier_locked(self) -> None:
        for j, s in enumerate(self.state):
            if s == self.BARRIER:
                self.state[j] = self.READY

    def wait_turn(self, i: int) -> None:
        with self.cv:
            while not (self.current == i and self.state[i] == self.READY):
                self.cv.wait()

    def barrier_wait(self) -> None:
        i = self.my_id()
        with self.cv:
            self.state[i] = self.BARRIER
            nxt = self._next_ready_locked(i)
            if nxt is None:
                # Everyone else is at the barrier or done: generation
                # complete; this fiber continues.
                self._release_barrier_locked()
                self.current = i
                return
            self.current = nxt
            self.cv.notify_all()
            while not (self.current == i and self.state[i] == self.READY):
                self.cv.wait()

    def finish(self, i: int) -> None:
        with self.cv:
            self.state[i] = self.DONE
            nxt = self._next_ready_locked(i)
            if nxt is None:
                # Remaining fibers (if any) all sit at a barrier while
                # this one exited — divergent sync, undefined on CUDA;
                # release them so the block terminates.
                self._release_barrier_locked()
                nxt = self._next_ready_locked(i)
            if nxt is not None:
                self.current = nxt
            self.cv.notify_all()


def run_block_cooperative(
    grid: GridContext, block_idx: Vec, kernel: Callable, args: Tuple
) -> None:
    """Execute a block as cooperatively scheduled fibers (one at a time)."""
    wd = grid.work_div
    n = wd.block_thread_count
    if n == 1:
        run_block_single_thread(grid, block_idx, kernel, args)
        return

    sched = _FiberScheduler(n)
    block = BlockContext(grid, block_idx, sync=sched.barrier_wait)
    errors: list = []

    def body(fiber_id: int, thread_idx: Vec) -> None:
        sched.register(fiber_id)
        sched.wait_turn(fiber_id)
        acc = Accelerator(grid, block, thread_idx)
        try:
            kernel(acc, *args)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)
        finally:
            sched.finish(fiber_id)

    fibers = [
        threading.Thread(target=body, args=(fid, tidx), daemon=True)
        for fid, tidx in enumerate(iter_indices(wd.block_thread_extent))
    ]
    for f in fibers:
        f.start()
    for f in fibers:
        f.join()
    if errors:
        raise errors[0]


# ---------------------------------------------------------------------------
# Grid scheduler
# ---------------------------------------------------------------------------


def run_grid(
    task,
    device: Device,
    props,
    block_runner: Callable[[GridContext, Vec, Callable, Tuple], None],
    *,
    parallel_blocks: bool = False,
) -> None:
    """Run every block of ``task``'s grid on ``device``.

    ``parallel_blocks`` schedules blocks over a worker pool (the
    OpenMP-block strategy); otherwise blocks run sequentially in the
    caller — grids are independent of each other and blocks within a
    grid are independent by the model's contract (paper Sec. 3.2.2), so
    either order is legal.
    """
    wd = task.work_div
    validate_work_div(wd, props)
    shared_dyn = getattr(task, "shared_mem_bytes", 0)
    if shared_dyn > props.shared_mem_size_bytes:
        raise SharedMemError(
            f"dynamic shared memory request of {shared_dyn} B exceeds the "
            f"device limit of {props.shared_mem_size_bytes} B"
        )
    grid = GridContext(
        device,
        wd,
        props.for_dim(wd.dim),
        unwrap_args(task.args, device),
        shared_mem_bytes=shared_dyn,
    )
    device.note_kernel_launch()

    block_indices = iter_indices(wd.grid_block_extent)
    if not parallel_blocks or wd.block_count == 1:
        for bidx in block_indices:
            _run_one(block_runner, grid, bidx, task)
        return

    pool = _shared_block_pool()
    futures = [
        pool.submit(_run_one, block_runner, grid, bidx, task)
        for bidx in block_indices
    ]
    for fut in futures:
        fut.result()  # re-raises the first failure


def _run_one(block_runner, grid: GridContext, bidx: Vec, task) -> None:
    try:
        block_runner(grid, bidx, task.kernel, grid.args)
    except KernelError:
        raise
    except BaseException as exc:  # noqa: BLE001
        kname = getattr(task.kernel, "__name__", type(task.kernel).__name__)
        raise KernelError(
            f"kernel {kname!r} failed in block {bidx!r}"
        ) from exc
