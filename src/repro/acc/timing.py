"""Timing: the shared warmup/repeat measurement loop and the
modeled-time hook for kernel execution.

:func:`measure` is the *one* warmup-then-repeat timing loop of the
library.  The benchmark harness (:func:`repro.bench.measure_wall`) and
the work-division autotuner (:mod:`repro.tuning.measure`) both delegate
here, so "how we time things" — warmup first, best-of-N, monotonic
clock — is defined exactly once.

:func:`advance_modeled_time` is the simulated-clock hook: the
reproduction runs every kernel *functionally* on the host, and for the
performance figures it additionally advances the device's simulated
clock by the time the launch would have taken on the modeled machine —
but only when the kernel opts in by describing itself: a kernel class
may implement::

    def characteristics(self, work_div, *args) -> KernelCharacteristics

Kernels without the method cost no simulated time (their correctness is
still fully exercised).  This is the documented substitution for the
paper's wall-clock measurements on K20/K80/Xeon/Opteron hardware; see
DESIGN.md.
"""

from __future__ import annotations

import time
from typing import Callable

from ..core.errors import ModelError
from ..dev.device import Device

__all__ = ["measure", "advance_modeled_time"]


def measure(
    fn: Callable[[], None],
    *,
    warmup: int = 1,
    repeat: int = 3,
) -> float:
    """Best-of-``repeat`` wall seconds of ``fn`` after ``warmup`` calls.

    Minimum (not mean) is the right statistic for timing comparisons:
    noise is strictly additive, so the fastest observation is the
    closest to the true cost.  ``warmup`` calls run first and are not
    timed (plan caches fill, pools spin up, branch predictors settle).
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def advance_modeled_time(
    task, device: Device, backend_kind: str, work_div=None
) -> float:
    """Advance ``device``'s simulated clock for ``task``; returns the
    modeled seconds (0.0 when the kernel does not describe itself).

    ``work_div`` overrides ``task.work_div`` — the runtime passes the
    plan's *resolved* division so tasks carrying a deferred
    :class:`~repro.core.workdiv.AutoWorkDiv` are modeled with the
    concrete division they actually executed under.
    """
    describe = getattr(task.kernel, "characteristics", None)
    if describe is None:
        return 0.0
    from ..perfmodel.roofline import predict_time

    wd = work_div if work_div is not None else task.work_div
    chars = describe(wd, *task.args)
    if chars is None:
        return 0.0
    predicted = predict_time(
        device.spec,
        backend_kind,
        wd,
        chars,
        parallel_scope=getattr(task.acc_type, "parallel_scope", "none"),
    )
    seconds = predicted.seconds
    if seconds < 0:
        raise ModelError(f"negative modeled time from {task.kernel!r}")
    device.advance_sim_time(seconds)
    return seconds
