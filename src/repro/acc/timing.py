"""Modeled-time hook for kernel execution.

The reproduction runs every kernel *functionally* on the host.  For the
performance figures it additionally advances the device's simulated
clock by the time the launch would have taken on the modeled machine —
but only when the kernel opts in by describing itself: a kernel class
may implement::

    def characteristics(self, work_div, *args) -> KernelCharacteristics

Kernels without the method cost no simulated time (their correctness is
still fully exercised).  This is the documented substitution for the
paper's wall-clock measurements on K20/K80/Xeon/Opteron hardware; see
DESIGN.md.
"""

from __future__ import annotations

from ..core.errors import ModelError
from ..dev.device import Device

__all__ = ["advance_modeled_time"]


def advance_modeled_time(task, device: Device, backend_kind: str) -> float:
    """Advance ``device``'s simulated clock for ``task``; returns the
    modeled seconds (0.0 when the kernel does not describe itself)."""
    describe = getattr(task.kernel, "characteristics", None)
    if describe is None:
        return 0.0
    from ..perfmodel.roofline import predict_time

    chars = describe(task.work_div, *task.args)
    if chars is None:
        return 0.0
    predicted = predict_time(
        device.spec,
        backend_kind,
        task.work_div,
        chars,
        parallel_scope=getattr(task.acc_type, "parallel_scope", "none"),
    )
    seconds = predicted.seconds
    if seconds < 0:
        raise ModelError(f"negative modeled time from {task.kernel!r}")
    device.advance_sim_time(seconds)
    return seconds
