"""Simulated CUDA back-end (``AccGpuCudaSim``).

The reproduction's stand-in for ``AccGpuCudaRt`` (see DESIGN.md
substitution table).  What is *real* about it:

* the offloading model — its devices' memory is isolated from the host;
  data moves only through explicit ``mem.copy`` tasks,
* block/thread execution with a true ``__syncthreads`` barrier and
  block shared memory, atomics, per-thread RNG,
* CUDA-shaped device limits (1024 threads/block, 48 KiB shared memory,
  warp size 32, per-axis grid limits),

and what is *modeled*: execution time, via the hierarchical roofline
(:mod:`repro.perfmodel`), accumulated on the device's simulated clock
when the kernel describes its characteristics.

Functional execution cost on the host grows with the real thread count,
so correctness tests use small extents; figures use the model (that
split is the point of the substitution).
"""

from __future__ import annotations

from typing import Dict, Type

from ..core.properties import AccDevProps
from ..core.vec import Vec
from ..core.workdiv import MappingStrategy
from ..dev.device import Device
from ..dev.platform import PlatformCudaSim
from .base import AcceleratorType

__all__ = ["AccGpuCudaSim"]


class AccGpuCudaSim(AcceleratorType):
    """CUDA-style accelerator on a simulated GPU device."""

    name = "AccGpuCudaSim"
    kind = "gpu"
    mapping_strategy = MappingStrategy.THREAD_LEVEL
    supports_block_sync = True
    parallel_scope = "both"
    # Functional execution runs blocks sequentially (real threads only
    # inside a block, for __syncthreads); device concurrency is what the
    # performance model captures, not the host simulation.
    block_schedule = "sequential"
    thread_execute = "preemptive"
    machine_key: str = "nvidia-k80"
    _machine_variants: Dict[str, Type["AccGpuCudaSim"]] = {}

    @classmethod
    def platform(cls) -> PlatformCudaSim:
        return PlatformCudaSim(cls.machine_key)

    @classmethod
    def get_acc_dev_props(cls, dev: Device) -> AccDevProps:
        spec = dev.spec
        return AccDevProps(
            multi_processor_count=spec.sm_count,
            # CUDA per-axis grid limits (z, y, x order: component 0 is
            # the slowest dimension).
            grid_block_extent_max=Vec(65535, 65535, (1 << 31) - 1),
            block_thread_extent_max=Vec(64, 1024, 1024),
            thread_elem_extent_max=Vec.all(3, 1 << 30),
            block_thread_count_max=spec.max_threads_per_block,
            shared_mem_size_bytes=spec.shared_mem_per_block_bytes,
            warp_size=spec.warp_size,
            global_mem_size_bytes=spec.global_mem_bytes,
        )

    @classmethod
    def for_machine(cls, machine_key: str) -> Type["AccGpuCudaSim"]:
        """Variant targeting another modeled GPU (e.g. ``nvidia-k20``)."""
        cache_key = f"{cls.__name__}@{machine_key}"
        variant = cls._machine_variants.get(cache_key)
        if variant is None:
            variant = type(
                cache_key.replace("-", "_").replace("@", "_on_"),
                (cls,),
                {"machine_key": machine_key, "name": cache_key},
            )
            cls._machine_variants[cache_key] = variant
        return variant
