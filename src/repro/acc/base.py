"""Accelerator interface: what a kernel sees (paper Sec. 3.4.1).

There are *no implicit built-in variables or functions* in alpaka — all
information flows through the accelerator object passed as the kernel's
first argument.  :class:`Accelerator` is that object: one instance per
executing thread, giving access to

* the work division and the thread's indices (via
  :func:`repro.core.index.get_idx` / ``get_work_div``),
* block synchronisation (``sync_block_threads``),
* block shared memory (``shared_mem`` / ``shared_var``),
* atomics, math, and per-thread random streams.

:class:`AcceleratorType` is the back-end descriptor host code names in
its one retargeting line (``Acc = AccCpuSerial``): it knows its
platform, its device properties, its preferred Table 2 mapping, and how
to execute a bound kernel task.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..atomic.ops import AtomicDomain
from ..core.errors import KernelError, SharedMemError
from ..core.properties import AccDevProps
from ..core.vec import Vec
from ..core.workdiv import MappingStrategy, WorkDivMembers
from ..dev.device import Device
from ..math.ops import DEFAULT_MATH, MathOps
from ..rand.philox import PhiloxRng

__all__ = ["GridContext", "BlockContext", "Accelerator", "AcceleratorType"]


class GridContext:
    """State shared by every thread of one kernel launch."""

    def __init__(
        self,
        device: Device,
        work_div: WorkDivMembers,
        props: AccDevProps,
        args: Tuple,
        shared_mem_bytes: int = 0,
        monitor=None,
    ):
        self.device = device
        self.work_div = work_div
        self.props = props
        self.args = args
        self.shared_mem_bytes = shared_mem_bytes
        self.atomics = AtomicDomain()
        #: Sanitizer hook (:class:`repro.sanitize.monitor.SanitizeMonitor`)
        #: or None.  When set, the engine announces thread begin/end,
        #: barrier passage and shared allocations to it.
        self.monitor = monitor


class BlockContext:
    """State shared by the threads of one block: shared memory and the
    synchronisation primitive the engine installed."""

    def __init__(
        self,
        grid: GridContext,
        block_idx: Vec,
        sync: Optional[Callable[[], None]],
    ):
        self.grid = grid
        self.block_idx = block_idx
        self._sync = sync
        self._shared: Dict[str, np.ndarray] = {}
        self._shared_bytes = 0
        self._shared_lock = threading.Lock()

    def sync(self) -> None:
        monitor = self.grid.monitor
        if self._sync is None:
            if self.grid.work_div.block_thread_count == 1:
                # A lone thread is trivially synchronised, but the
                # barrier still separates its accesses into epochs.
                if monitor is not None:
                    monitor.on_sync(self)
                return
            raise KernelError(
                "sync_block_threads on a back-end without thread-level "
                "parallelism support"
            )
        self._sync()
        if monitor is not None:
            monitor.on_sync(self)

    def shared_alloc(self, name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Allocate-or-get a named shared array.

        All threads of the block calling with the same name receive the
        same array (CUDA ``__shared__`` semantics); divergent shapes or
        dtypes across threads are a programming error and raise.
        """
        dt = np.dtype(dtype)
        with self._shared_lock:
            existing = self._shared.get(name)
            if existing is not None:
                if existing.shape != tuple(shape) or existing.dtype != dt:
                    raise SharedMemError(
                        f"divergent shared allocation {name!r}: "
                        f"{existing.shape}/{existing.dtype} vs {tuple(shape)}/{dt}"
                    )
                return existing
            nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
            limit = self.grid.props.shared_mem_size_bytes
            if self._shared_bytes + nbytes > limit:
                raise SharedMemError(
                    f"block shared memory exhausted: {name!r} needs {nbytes} B, "
                    f"{limit - self._shared_bytes} B free of {limit} B"
                )
            arr = np.zeros(shape, dtype=dt)
            monitor = self.grid.monitor
            if monitor is not None:
                # One shadow wrapper per allocation, cached like the
                # array itself so every thread records into one history.
                arr = monitor.wrap_shared(name, arr, self)
            self._shared[name] = arr
            self._shared_bytes += nbytes
            return arr


class Accelerator:
    """The per-thread kernel-facing facade (``T_Acc acc``)."""

    __slots__ = ("_grid", "_block", "block_thread_idx", "math")

    def __init__(
        self,
        grid: GridContext,
        block: BlockContext,
        thread_idx: Vec,
        math: MathOps = DEFAULT_MATH,
    ):
        self._grid = grid
        self._block = block
        self.block_thread_idx = thread_idx
        self.math = math

    # -- identity / geometry --------------------------------------------

    @property
    def work_div(self) -> WorkDivMembers:
        return self._grid.work_div

    @property
    def grid_block_idx(self) -> Vec:
        return self._block.block_idx

    @property
    def device(self) -> Device:
        return self._grid.device

    @property
    def props(self) -> AccDevProps:
        return self._grid.props

    @property
    def warp_size(self) -> int:
        return self._grid.props.warp_size

    @property
    def block_thread_linear_idx(self) -> int:
        """This thread's flat index within its block (C order)."""
        from ..core.index import linearize

        return linearize(
            self.block_thread_idx, self._grid.work_div.block_thread_extent
        )

    @property
    def warp_idx(self) -> int:
        """Index of this thread's warp within the block.

        Warps partition the block's flat thread index space in chunks
        of ``warp_size`` — CUDA's convention, degenerating to one
        thread per "warp" on CPU back-ends (warp size 1)."""
        return self.block_thread_linear_idx // self.warp_size

    @property
    def lane_idx(self) -> int:
        """This thread's lane within its warp (``%laneid``)."""
        return self.block_thread_linear_idx % self.warp_size

    # -- synchronisation ---------------------------------------------------

    def sync_block_threads(self) -> None:
        """Barrier across the threads of this block
        (``syncBlockThreads`` / ``__syncthreads``)."""
        self._block.sync()

    # -- shared memory -------------------------------------------------------

    def shared_mem(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Block shared memory allocation (``declareSharedVar`` /
        ``getBlockSharedExternMem``); see
        :meth:`BlockContext.shared_alloc`."""
        if isinstance(shape, int):
            shape = (shape,)
        return self._block.shared_alloc(name, tuple(shape), dtype)

    def shared_var(self, name: str, dtype=np.float64) -> np.ndarray:
        """A scalar shared variable, returned as a 0-d-indexable length-1
        array so assignment (``v[0] = x``) is shared across threads."""
        return self._block.shared_alloc(name, (1,), dtype)

    def shared_mem_dyn(self, dtype=np.float64) -> np.ndarray:
        """The block's dynamic shared memory, sized at launch via
        ``create_task_kernel(..., shared_mem_bytes=...)`` and viewed as
        an array of ``dtype`` (``getDynSharedMem`` / CUDA ``extern
        __shared__``)."""
        nbytes = self._grid.shared_mem_bytes
        if nbytes == 0:
            raise SharedMemError(
                "kernel requested dynamic shared memory but the task was "
                "created with shared_mem_bytes=0"
            )
        count = nbytes // np.dtype(dtype).itemsize
        return self._block.shared_alloc("__dyn__", (count,), dtype)

    # -- atomics (grid scope; see AtomicDomain) -----------------------------

    def atomic_add(self, arr, idx, value):
        return self._grid.atomics.atomic_add(arr, idx, value)

    def atomic_sub(self, arr, idx, value):
        return self._grid.atomics.atomic_sub(arr, idx, value)

    def atomic_min(self, arr, idx, value):
        return self._grid.atomics.atomic_min(arr, idx, value)

    def atomic_max(self, arr, idx, value):
        return self._grid.atomics.atomic_max(arr, idx, value)

    def atomic_exch(self, arr, idx, value):
        return self._grid.atomics.atomic_exch(arr, idx, value)

    def atomic_cas(self, arr, idx, compare, value):
        return self._grid.atomics.atomic_cas(arr, idx, compare, value)

    def atomic_inc(self, arr, idx, limit):
        return self._grid.atomics.atomic_inc(arr, idx, limit)

    def atomic_dec(self, arr, idx, limit):
        return self._grid.atomics.atomic_dec(arr, idx, limit)

    def atomic_and(self, arr, idx, value):
        return self._grid.atomics.atomic_and_(arr, idx, value)

    def atomic_or(self, arr, idx, value):
        return self._grid.atomics.atomic_or_(arr, idx, value)

    def atomic_xor(self, arr, idx, value):
        return self._grid.atomics.atomic_xor(arr, idx, value)

    # -- randomness -----------------------------------------------------------

    def rng(self, seed: int) -> PhiloxRng:
        """A random stream unique to this thread (subsequence = global
        linear thread index), reproducible across back-ends."""
        from ..core.index import Grid, Threads, get_idx, get_work_div, linearize

        gidx = get_idx(self, Grid, Threads)
        gext = get_work_div(self, Grid, Threads)
        return PhiloxRng(seed, linearize(gidx, gext))


class AcceleratorType:
    """Base class of back-end descriptors (``AccCpuSerial`` et al.).

    Back-ends are *types*, never instantiated: they carry class-level
    metadata and a classmethod executor.  This mirrors alpaka, where the
    accelerator is a template parameter and its instances exist only
    inside kernels.

    A back-end's execution strategy is the *declarative* pair
    ``(block_schedule, thread_execute)`` (paper Sec. 3.3's mapping):
    the launch runtime (:mod:`repro.runtime`) reads it when building a
    :class:`~repro.runtime.plan.LaunchPlan`; back-ends carry no pool or
    dispatch logic of their own.
    """

    #: Human-readable back-end name, e.g. "AccCpuSerial".
    name: str = "AccAbstract"
    #: Table 2 mapping this back-end prefers.
    mapping_strategy: MappingStrategy = MappingStrategy.THREAD_LEVEL
    #: Whether block threads can synchronise (False forces 1 thread/block).
    supports_block_sync: bool = False
    #: "cpu" or "gpu" — the execution-style key the performance model uses.
    kind: str = "cpu"
    #: Which hierarchy level the back-end executes concurrently:
    #: "none" (serial, fibers), "blocks" (OpenMP-block), "threads"
    #: (OpenMP-thread, C++11 threads), or "both" (CUDA).  Consumed by
    #: the performance model to derive device utilisation.
    parallel_scope: str = "none"
    #: How the runtime schedules *blocks*: "sequential" (caller's
    #: thread, C order) or "pooled" (chunked over the per-device pool).
    block_schedule: str = "sequential"
    #: How *threads inside a block* execute: "single" (exactly one),
    #: "preemptive" (one OS thread each, real barrier) or "cooperative"
    #: (fibers, deterministic round-robin).
    thread_execute: str = "single"
    #: Whether the runtime may remap this back-end's block dispatch onto
    #: the process pool (``REPRO_SCHEDULER=processes`` / tuning).  True
    #: only for pooled back-ends whose blocks are single-thread — a
    #: preemptive in-block barrier cannot span process boundaries.
    supports_process_blocks: bool = False

    def __init__(self):  # pragma: no cover - defensive
        raise TypeError(
            f"{type(self).__name__} is a back-end descriptor; it is never "
            "instantiated (accelerator instances appear only inside kernels)"
        )

    # -- to be provided by concrete back-ends ------------------------------

    @classmethod
    def platform(cls):
        raise NotImplementedError

    @classmethod
    def get_acc_dev_props(cls, dev: Device) -> AccDevProps:
        raise NotImplementedError

    @classmethod
    def execute(cls, task, device: Device) -> None:
        """Run ``task`` on ``device`` through the unified runtime
        (Task → Plan → Execute); see :func:`repro.runtime.launch`."""
        from ..runtime import launch

        launch(task, device)
