"""Accelerator registry: look up back-ends by name.

The paper's headline usability claim — *"running Alpaka applications on
a new platform requires the change of only one source code line"* —
becomes, in an application with a config file, looking the back-end up
by name.  The registry also drives the Table 2 bench and the
"run this kernel on every back-end" test patterns.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from ..core.workdiv import MappingStrategy
from .base import AcceleratorType
from .cpu import (
    AccCpuFibers,
    AccCpuOmp2Blocks,
    AccCpuOmp2Threads,
    AccCpuSerial,
    AccCpuThreads,
)
from .cuda_sim import AccGpuCudaSim
from .omp_target import AccOmp4TargetSim

__all__ = [
    "accelerator",
    "accelerator_names",
    "all_accelerators",
    "cpu_accelerators",
    "sync_capable_accelerators",
    "execution_strategies",
    "mapping_strategies",
]

_REGISTRY: Dict[str, Type[AcceleratorType]] = {
    acc.name: acc
    for acc in (
        AccCpuSerial,
        AccCpuOmp2Blocks,
        AccCpuOmp2Threads,
        AccCpuThreads,
        AccCpuFibers,
        AccGpuCudaSim,
        AccOmp4TargetSim,
    )
}


def accelerator(name: str) -> Type[AcceleratorType]:
    """Look up a back-end by its class name (``"AccCpuSerial"``...)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown accelerator {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def accelerator_names() -> List[str]:
    return sorted(_REGISTRY)


def all_accelerators() -> List[Type[AcceleratorType]]:
    return [_REGISTRY[n] for n in sorted(_REGISTRY)]


def cpu_accelerators() -> List[Type[AcceleratorType]]:
    return [a for a in all_accelerators() if a.kind == "cpu"]


def sync_capable_accelerators() -> List[Type[AcceleratorType]]:
    """Back-ends whose blocks may hold more than one thread."""
    return [a for a in all_accelerators() if a.supports_block_sync]


def mapping_strategies() -> Dict[str, MappingStrategy]:
    """Every back-end's preferred Table 2 mapping — the starting point
    the work-division autotuner (:mod:`repro.tuning`) searches from."""
    return {
        name: acc.mapping_strategy for name, acc in sorted(_REGISTRY.items())
    }


def execution_strategies() -> Dict[str, Tuple[str, str]]:
    """Every back-end's declarative ``(block_schedule, thread_execute)``
    pair — the strategy the launch runtime resolves into a scheduler
    and a block runner (see ``repro.runtime``).  The registry-level
    view of how each back-end maps the paper's parallelisation
    hierarchy onto the host."""
    return {
        name: (acc.block_schedule, acc.thread_execute)
        for name, acc in sorted(_REGISTRY.items())
    }
