"""Accelerator back-ends: the mappings of the abstract hierarchy to
execution strategies (paper Sec. 3.3, Table 2)."""

from .base import Accelerator, AcceleratorType, BlockContext, GridContext
from .cpu import (
    AccCpu,
    AccCpuFibers,
    AccCpuOmp2Blocks,
    AccCpuOmp2Threads,
    AccCpuSerial,
    AccCpuThreads,
)
from .cuda_sim import AccGpuCudaSim
from .omp_target import AccOmp4TargetSim, PlatformOmpTarget
from .registry import (
    accelerator,
    accelerator_names,
    all_accelerators,
    cpu_accelerators,
    execution_strategies,
    mapping_strategies,
    sync_capable_accelerators,
)

__all__ = [
    "Accelerator",
    "AcceleratorType",
    "BlockContext",
    "GridContext",
    "AccCpu",
    "AccCpuSerial",
    "AccCpuOmp2Blocks",
    "AccCpuOmp2Threads",
    "AccCpuThreads",
    "AccCpuFibers",
    "AccGpuCudaSim",
    "AccOmp4TargetSim",
    "PlatformOmpTarget",
    "accelerator",
    "accelerator_names",
    "all_accelerators",
    "cpu_accelerators",
    "execution_strategies",
    "mapping_strategies",
    "sync_capable_accelerators",
]
