"""CPU back-ends (paper Table 2, CPU and MIC rows).

Five back-ends share the host platform and differ only in how they map
the block and thread levels:

===================  ======================  =========================
back-end             blocks                  threads in a block
===================  ======================  =========================
AccCpuSerial         sequential              exactly 1
AccCpuOmp2Blocks     worker pool             exactly 1
AccCpuOmp2Threads    sequential              one OS thread each
AccCpuThreads        sequential              one OS thread each
AccCpuFibers         sequential              cooperative fibers
===================  ======================  =========================

``AccCpuOmp2Threads`` and ``AccCpuThreads`` execute identically here
(Python has no OpenMP runtime); they are kept distinct because the
paper's evaluation names them separately and because their device
properties differ (the OpenMP back-end caps block size at the OpenMP
thread limit, the C++11-threads back-end at a memory-bound constant).

Retarget a machine model with ``for_machine``::

    Acc = AccCpuOmp2Blocks.for_machine("intel-xeon-e5-2630v3")
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ..core.properties import AccDevProps
from ..core.vec import Vec
from ..core.workdiv import MappingStrategy
from ..dev.device import Device
from ..dev.platform import PlatformCpu
from ..runtime.scheduler import resolve_max_block_workers
from .base import AcceleratorType

__all__ = [
    "AccCpu",
    "AccCpuSerial",
    "AccCpuOmp2Blocks",
    "AccCpuOmp2Threads",
    "AccCpuThreads",
    "AccCpuFibers",
]

_HUGE = 1 << 30


class AccCpu(AcceleratorType):
    """Common behaviour of the CPU back-ends."""

    kind = "cpu"
    #: machine registry key; None = the real host.
    machine_key: Optional[str] = None
    #: subclass cache for for_machine()
    _machine_variants: Dict[str, Type["AccCpu"]] = {}

    # execution strategy declared per concrete back-end; the runtime
    # composes (block_schedule, thread_execute) into the launch plan
    block_schedule = "sequential"
    thread_execute = "single"
    block_thread_limit = 1

    @classmethod
    def platform(cls) -> PlatformCpu:
        return PlatformCpu(cls.machine_key)

    @classmethod
    def get_acc_dev_props(cls, dev: Device) -> AccDevProps:
        spec = dev.spec
        workers = (
            resolve_max_block_workers()
            if cls.block_schedule == "pooled"
            else 1
        )
        return AccDevProps(
            multi_processor_count=spec.cores_per_device,
            grid_block_extent_max=Vec.all(3, _HUGE),
            block_thread_extent_max=Vec.all(3, cls.block_thread_limit),
            thread_elem_extent_max=Vec.all(3, _HUGE),
            block_thread_count_max=cls.block_thread_limit,
            shared_mem_size_bytes=spec.shared_mem_per_block_bytes,
            warp_size=1,
            global_mem_size_bytes=spec.global_mem_bytes,
            max_block_workers=workers,
        )

    @classmethod
    def for_machine(cls, machine_key: str) -> Type["AccCpu"]:
        """A variant of this back-end whose platform is a modeled
        machine from the hardware registry (the paper's Xeons/Opteron).
        Variants are cached so they compare identical across calls."""
        cache_key = f"{cls.__name__}@{machine_key}"
        variant = cls._machine_variants.get(cache_key)
        if variant is None:
            variant = type(
                cache_key.replace("-", "_").replace("@", "_on_"),
                (cls,),
                {"machine_key": machine_key, "name": cache_key},
            )
            cls._machine_variants[cache_key] = variant
        return variant


class AccCpuSerial(AccCpu):
    """Sequential back-end: one thread per block, blocks in order.

    Table 2 row "Sequential": grid = N/V, block = 1, element = V.
    The baseline back-end and the reference for differential testing.
    """

    name = "AccCpuSerial"
    mapping_strategy = MappingStrategy.BLOCK_LEVEL
    supports_block_sync = False
    parallel_scope = "none"
    block_schedule = "sequential"
    thread_execute = "single"
    block_thread_limit = 1


class AccCpuOmp2Blocks(AccCpu):
    """OpenMP-2-over-blocks: blocks are scheduled onto a worker pool,
    each block runs its single thread to completion.

    Table 2 row "OpenMP block": grid = N/V, block = 1, element = V.
    This is the back-end the paper uses for all CPU measurements
    ("Alpaka(OMP2)").
    """

    name = "AccCpuOmp2Blocks"
    mapping_strategy = MappingStrategy.BLOCK_LEVEL
    supports_block_sync = False
    parallel_scope = "blocks"
    block_schedule = "pooled"
    thread_execute = "single"
    #: Single-thread blocks over independent chunks: the one CPU mapping
    #: that survives a process boundary (REPRO_SCHEDULER=processes).
    supports_process_blocks = True
    block_thread_limit = 1


class AccCpuOmp2Threads(AccCpu):
    """OpenMP-2-over-threads: blocks sequential, block threads parallel.

    Table 2 row "OpenMP thread": grid = N/(B*V), block = B, element = V.
    """

    name = "AccCpuOmp2Threads"
    mapping_strategy = MappingStrategy.THREAD_LEVEL
    supports_block_sync = True
    parallel_scope = "threads"
    block_schedule = "sequential"
    thread_execute = "preemptive"
    block_thread_limit = 64


class AccCpuThreads(AccCpu):
    """C++11-threads analogue: one preemptive thread per block thread."""

    name = "AccCpuThreads"
    mapping_strategy = MappingStrategy.THREAD_LEVEL
    supports_block_sync = True
    parallel_scope = "threads"
    block_schedule = "sequential"
    thread_execute = "preemptive"
    block_thread_limit = 128


class AccCpuFibers(AccCpu):
    """boost::fibers analogue: block threads are cooperative fibers,
    exactly one runnable at a time, switching only at sync points.

    Deterministic round-robin interleaving makes this the debugging
    back-end: a kernel that is correct only under preemptive timing
    behaves reproducibly here.
    """

    name = "AccCpuFibers"
    mapping_strategy = MappingStrategy.THREAD_LEVEL
    supports_block_sync = True
    parallel_scope = "none"
    #: Sequential block order + cooperative fibers = fully deterministic
    #: interleaving; the runtime must never pool-schedule this back-end.
    block_schedule = "sequential"
    thread_execute = "cooperative"
    block_thread_limit = 128
