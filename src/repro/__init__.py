"""pyalpaka — a Python reproduction of *Alpaka: An Abstraction Library
for Parallel Kernel Acceleration* (Zenker et al., 2016).

One kernel source, many back-ends::

    import numpy as np
    from repro import (
        AccCpuSerial, Grid, Threads, QueueBlocking, WorkDivMembers,
        create_task_kernel, enqueue, fn_acc, get_dev_by_idx, get_idx, mem,
    )

    class AxpyKernel:
        @fn_acc
        def __call__(self, acc, n, alpha, x, y):
            i = get_idx(acc, Grid, Threads)[0]
            if i < n:
                y[i] += alpha * x[i]

    Acc = AccCpuSerial                      # the one retargeting line
    dev = get_dev_by_idx(Acc, 0)
    queue = QueueBlocking(dev)
    x = mem.alloc(dev, 1024)
    y = mem.alloc(dev, 1024)
    wd = WorkDivMembers.make(1024, 1, 1)
    enqueue(queue, create_task_kernel(Acc, wd, AxpyKernel(), 1024, 2.0, x, y))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from . import acc, atomic, core, dev, graph, hardware, math, mem
from . import perfmodel, queue, rand, runtime, sanitize, telemetry, testing
from . import trace, tuning
from .acc import (
    AccCpuFibers,
    AccOmp4TargetSim,
    AccCpuOmp2Blocks,
    AccCpuOmp2Threads,
    AccCpuSerial,
    AccCpuThreads,
    AccGpuCudaSim,
    accelerator,
    accelerator_names,
    all_accelerators,
    execution_strategies,
    mapping_strategies,
)
from .core import (
    AccDevProps,
    AlpakaError,
    AutoWorkDiv,
    Block,
    Blocks,
    Elems,
    Grid,
    InvalidWorkDiv,
    KernelTask,
    MappingStrategy,
    MemorySpaceError,
    Thread,
    Threads,
    Vec,
    WorkDivMembers,
    create_task_kernel,
    divide_work,
    element_box,
    element_slice,
    fn_acc,
    fn_host,
    fn_host_acc,
    get_idx,
    get_work_div,
    grid_strided_spans,
    independent_elements,
    map_idx,
)
from .dev import PlatformCpu, PlatformCudaSim, get_dev_by_idx, get_dev_count
from .graph import Graph, GraphError, Node
from .mem import alloc, alloc_like, copy, memset
from .queue import (
    Event,
    QueueBlocking,
    QueueNonBlocking,
    enqueue,
    enqueue_after,
    wait,
)
from .runtime import (
    CountingObserver,
    ExecutionObserver,
    LaunchPlan,
    clear_plan_cache,
    observe,
    plan_cache_info,
    register_observer,
    unregister_observer,
)
from .tuning import TuningCache, TuningResult, autotune, default_cache

# Zero-code observability: REPRO_TELEMETRY=1 installs the session
# collector the moment the library is imported (no-op otherwise).
telemetry.maybe_activate_from_env()
# Crash flight recorder: REPRO_FLIGHT_RECORDER_DIR=<dir> arms a
# bounded ring of recent runtime events, dumped on kernel crashes /
# sanitizer findings / queue poisonings.  The process-pool scheduler
# mirrors REPRO_* env into workers, so workers arm themselves too.
telemetry.flight.maybe_activate_from_env()

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # subpackages
    "acc", "atomic", "core", "dev", "graph", "hardware", "math", "mem",
    "perfmodel", "queue", "rand", "runtime", "sanitize", "telemetry",
    "testing", "trace", "tuning",
    # accelerators
    "AccCpuSerial", "AccCpuOmp2Blocks", "AccCpuOmp2Threads", "AccCpuThreads",
    "AccCpuFibers", "AccGpuCudaSim", "AccOmp4TargetSim",
    "accelerator", "accelerator_names",
    "all_accelerators", "execution_strategies", "mapping_strategies",
    # core
    "Vec", "WorkDivMembers", "AutoWorkDiv", "MappingStrategy",
    "divide_work", "AccDevProps",
    "Grid", "Block", "Thread", "Blocks", "Threads", "Elems",
    "get_idx", "get_work_div", "map_idx",
    "element_box", "element_slice", "independent_elements",
    "grid_strided_spans",
    "create_task_kernel", "KernelTask", "fn_acc", "fn_host", "fn_host_acc",
    "AlpakaError", "InvalidWorkDiv", "MemorySpaceError",
    # devices
    "PlatformCpu", "PlatformCudaSim", "get_dev_by_idx", "get_dev_count",
    # memory
    "alloc", "alloc_like", "copy", "memset",
    # queues
    "QueueBlocking", "QueueNonBlocking", "Event", "enqueue", "wait",
    "enqueue_after",
    # dataflow graphs
    "Graph", "Node", "GraphError",
    # launch runtime
    "LaunchPlan", "clear_plan_cache", "plan_cache_info",
    "ExecutionObserver", "CountingObserver",
    "register_observer", "unregister_observer", "observe",
    # autotuning
    "autotune", "TuningResult", "TuningCache", "default_cache",
]
