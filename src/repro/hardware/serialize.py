"""Machine-model serialisation: model your own hardware in JSON.

The Table 3 machines ship in code; users reproducing the figures on
*their* hardware describe it once in JSON and load it into the
registry::

    spec = load_machine("my-cluster-node.json", register=True)
    Acc = AccCpuOmp2Blocks.for_machine(spec.key)

Round-trips are exact: ``spec_from_dict(spec_to_dict(s)) == s``.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Union

from .registry import register_machine
from .specs import CacheLevel, HardwareSpec

__all__ = [
    "spec_to_dict",
    "spec_from_dict",
    "save_machine",
    "load_machine",
]


def spec_to_dict(spec: HardwareSpec) -> dict:
    """A plain-JSON-able dict of the spec (caches nested)."""
    d = asdict(spec)
    d["caches"] = [asdict(c) for c in spec.caches]
    return d


def spec_from_dict(data: dict) -> HardwareSpec:
    """Inverse of :func:`spec_to_dict`; validates through the dataclass
    constructors (bad values raise exactly like hand-written specs)."""
    payload = dict(data)
    caches = tuple(CacheLevel(**c) for c in payload.pop("caches", ()))
    return HardwareSpec(caches=caches, **payload)


def save_machine(spec: HardwareSpec, path: str) -> str:
    """Write a spec as JSON; returns the path."""
    with open(path, "w") as fh:
        json.dump(spec_to_dict(spec), fh, indent=2, sort_keys=True)
    return path


def load_machine(
    source: Union[str, dict],
    *,
    register: bool = False,
    replace: bool = False,
) -> HardwareSpec:
    """Load a spec from a JSON file path (or an already-parsed dict);
    optionally add it to the machine registry."""
    if isinstance(source, dict):
        data = source
    else:
        with open(source) as fh:
            data = json.load(fh)
    spec = spec_from_dict(data)
    if register:
        register_machine(spec, replace=replace)
    return spec
