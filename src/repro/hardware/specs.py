"""Hardware description records for the modeled evaluation machines.

The paper evaluates on five machines (Table 3).  We cannot measure on
that hardware, so the reproduction carries explicit machine models: the
published core counts, clocks and theoretical double-precision peaks,
plus the memory-system parameters (bandwidths, cache/shared-memory
geometry) that the performance model in :mod:`repro.perfmodel` needs.

Peak GFLOPS values are taken directly from paper Table 3 (they are the
*node* totals, i.e. across all devices of a machine).  Microarchitecture
parameters (SIMD lanes, warp size, cache sizes, bandwidths) come from
the vendors' published specifications; where the paper's peak and a
first-principles ``sockets*cores*clock*flops_per_cycle`` product
disagree slightly, the paper's number wins and the derived per-core
throughput absorbs the difference, so every modeled ratio is relative to
the same peaks the paper normalises by (Fig. 9, Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["CacheLevel", "HardwareSpec"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of an on-chip memory hierarchy.

    ``bandwidth_gbs`` is the aggregate bandwidth of the level across the
    whole device; ``shared_by`` tells the model how many execution units
    contend for one instance of the level.
    """

    name: str
    size_bytes: int
    bandwidth_gbs: float
    latency_ns: float
    shared_by: int = 1

    def __post_init__(self):
        if self.size_bytes <= 0:
            raise ValueError(f"cache size must be positive: {self}")
        if self.bandwidth_gbs <= 0 or self.latency_ns < 0:
            raise ValueError(f"invalid cache timing: {self}")


@dataclass(frozen=True)
class HardwareSpec:
    """A machine from paper Table 3 (or the local host).

    A *machine* may contain several identical *devices* (sockets for
    CPUs, GPU boards / GPU dies for accelerators); ``peak_gflops_dp`` is
    the machine total, ``device_peak_gflops_dp`` the per-device share.
    """

    key: str
    vendor: str
    architecture: str
    kind: str  # "cpu" | "gpu"
    device_count: int
    cores_per_device: int
    clock_ghz: float
    turbo_ghz: Optional[float]
    release: str
    peak_gflops_dp: float
    global_mem_bandwidth_gbs: float
    caches: Tuple[CacheLevel, ...] = field(default_factory=tuple)
    simd_dp_lanes: int = 1  # CPU vector width in doubles
    warp_size: int = 1  # GPU lockstep width
    sm_count: int = 0  # GPU streaming multiprocessors per device
    shared_mem_per_block_bytes: int = 48 * 1024
    max_threads_per_block: int = 1024
    global_mem_bytes: int = 8 << 30
    #: Whether ``peak_gflops_dp`` counts fused multiply-adds as two
    #: flops issued by one instruction.  Code whose compiler does not
    #: contract a*b+c into FMA (gcc 4.9 defaults on the paper's CPUs)
    #: can reach at most half of an FMA-based peak.
    peak_assumes_fma: bool = True

    def __post_init__(self):
        if self.kind not in ("cpu", "gpu"):
            raise ValueError(f"kind must be 'cpu' or 'gpu', got {self.kind!r}")
        if self.device_count < 1 or self.cores_per_device < 1:
            raise ValueError(f"device/core counts must be >= 1: {self.key}")
        if self.peak_gflops_dp <= 0 or self.global_mem_bandwidth_gbs <= 0:
            raise ValueError(f"peak/bandwidth must be positive: {self.key}")
        if self.kind == "gpu" and self.sm_count < 1:
            raise ValueError(f"gpu spec needs sm_count: {self.key}")

    # -- derived ------------------------------------------------------

    @property
    def device_peak_gflops_dp(self) -> float:
        return self.peak_gflops_dp / self.device_count

    @property
    def total_cores(self) -> int:
        return self.device_count * self.cores_per_device

    @property
    def effective_clock_ghz(self) -> float:
        """Clock used for throughput modeling.

        Table 3's note: turbo applies only when few cores are busy; a
        saturating kernel runs at base clock, so the model uses the base
        clock and treats turbo as an upper bound only.
        """
        return self.clock_ghz

    @property
    def flops_per_cycle_per_core(self) -> float:
        """DP FLOPs/cycle/core implied by the paper's peak — the model's
        normalisation constant (see module docstring)."""
        return self.peak_gflops_dp / (self.total_cores * self.clock_ghz)

    def smallest_cache_level(self) -> Optional[CacheLevel]:
        return min(self.caches, key=lambda c: c.size_bytes) if self.caches else None

    def cache_level(self, name: str) -> CacheLevel:
        for c in self.caches:
            if c.name == name:
                return c
        raise KeyError(f"{self.key} has no cache level {name!r}")

    def clock_string(self) -> str:
        """Format the clock column exactly as paper Table 3 does:
        ``base (turbo) GHz`` or plain ``base GHz``."""
        if self.turbo_ghz:
            return f"{self.clock_ghz:.2f} ({self.turbo_ghz:.2f}) GHz"
        return f"{self.clock_ghz:.2f} GHz"
