"""Modeled hardware: the paper's Table 3 machines and a cache model.

The reproduction runs on whatever host executes the tests; the *paper's*
machines exist here as explicit models so the performance figures can be
regenerated from first principles (see DESIGN.md, substitution table).
"""

from .cache import AccessPattern, BandwidthEstimate, CacheModel
from .registry import (
    TABLE3_KEYS,
    all_machines,
    host_machine,
    machine,
    machine_keys,
    register_machine,
    table3_rows,
)
from .serialize import load_machine, save_machine, spec_from_dict, spec_to_dict
from .specs import CacheLevel, HardwareSpec

__all__ = [
    "HardwareSpec",
    "CacheLevel",
    "CacheModel",
    "AccessPattern",
    "BandwidthEstimate",
    "machine",
    "machine_keys",
    "all_machines",
    "register_machine",
    "table3_rows",
    "host_machine",
    "TABLE3_KEYS",
    "spec_to_dict",
    "spec_from_dict",
    "save_machine",
    "load_machine",
]
