"""Registry of modeled machines — paper Table 3 plus the local host.

The five evaluation machines carry the exact counts, clocks and
theoretical double-precision peaks printed in Table 3.  Cache and
bandwidth parameters are vendor-published values; they feed the
performance model only (Figs. 5/6/8/9/10 shapes), never correctness.
"""

from __future__ import annotations

import os
from typing import Dict, List

from .specs import CacheLevel, HardwareSpec

__all__ = [
    "machine",
    "machine_keys",
    "all_machines",
    "register_machine",
    "table3_rows",
    "TABLE3_KEYS",
    "host_machine",
]

_KB = 1024
_MB = 1024 * 1024


def _opteron_6276() -> HardwareSpec:
    # AMD Interlagos (Bulldozer): 16 integer cores per device sharing 8
    # FPU modules; 4-socket node. Paper: 480 GFLOPS node peak.
    return HardwareSpec(
        key="amd-opteron-6276",
        vendor="AMD",
        architecture="Opteron 6276",
        kind="cpu",
        device_count=4,
        cores_per_device=16,
        clock_ghz=2.3,
        turbo_ghz=3.2,
        release="Q4/2011",
        peak_gflops_dp=480.0,
        global_mem_bandwidth_gbs=4 * 51.2,
        caches=(
            CacheLevel("L1", 16 * _KB, 4 * 16 * 2 * 2.3 * 8, 1.5, shared_by=1),
            CacheLevel("L2", 2 * _MB, 4 * 8 * 2.3 * 16, 9.0, shared_by=2),
            CacheLevel("L3", 16 * _MB, 4 * 2.3 * 32, 20.0, shared_by=16),
        ),
        simd_dp_lanes=4,  # AVX (shared FMA pipes between paired cores)
        shared_mem_per_block_bytes=2 * _MB,  # block shared mem maps to L2
        max_threads_per_block=16,
        global_mem_bytes=64 << 30,
    )


def _xeon_e5_2609() -> HardwareSpec:
    # Sandy Bridge EP, no hyper-threading, no turbo; 2-socket node.
    # 2 * 4 cores * 2.4 GHz * 8 DP flops/cycle (AVX) = 153.6; Table 3
    # rounds to 150.
    return HardwareSpec(
        key="intel-xeon-e5-2609",
        vendor="Intel",
        architecture="Xeon E5-2609",
        kind="cpu",
        device_count=2,
        cores_per_device=4,
        clock_ghz=2.4,
        turbo_ghz=None,
        release="Q1/2012",
        peak_gflops_dp=150.0,
        global_mem_bandwidth_gbs=2 * 51.2,
        caches=(
            CacheLevel("L1", 32 * _KB, 2 * 4 * 2.4 * 32, 1.2, shared_by=1),
            CacheLevel("L2", 256 * _KB, 2 * 4 * 2.4 * 16, 3.5, shared_by=1),
            CacheLevel("L3", 10 * _MB, 2 * 2.4 * 32, 15.0, shared_by=4),
        ),
        simd_dp_lanes=4,  # AVX-256
        shared_mem_per_block_bytes=10 * _MB,
        max_threads_per_block=4,
        global_mem_bytes=32 << 30,
        peak_assumes_fma=False,  # Sandy Bridge: separate mul and add ports
    )


def _xeon_e5_2630v3() -> HardwareSpec:
    # Haswell EP, 8 cores / 16 hyper-threads per socket, 2-socket node.
    # AVX2+FMA: 2 * 8 * 2.4 * 16 = 614 theoretical; Table 3 lists 540
    # (AVX base clock is below nominal), which we adopt.
    return HardwareSpec(
        key="intel-xeon-e5-2630v3",
        vendor="Intel",
        architecture="Xeon E5-2630v3",
        kind="cpu",
        device_count=2,
        cores_per_device=8,
        clock_ghz=2.4,
        turbo_ghz=3.2,
        release="Q3/2014",
        peak_gflops_dp=540.0,
        global_mem_bandwidth_gbs=2 * 68.0,
        caches=(
            CacheLevel("L1", 32 * _KB, 2 * 8 * 2.4 * 64, 1.2, shared_by=1),
            CacheLevel("L2", 256 * _KB, 2 * 8 * 2.4 * 32, 3.5, shared_by=1),
            CacheLevel("L3", 20 * _MB, 2 * 2.4 * 64, 14.0, shared_by=8),
        ),
        simd_dp_lanes=4,
        shared_mem_per_block_bytes=20 * _MB,
        max_threads_per_block=16,  # hyper-threads
        global_mem_bytes=64 << 30,
    )


def _nvidia_k20() -> HardwareSpec:
    # GK110: 13 SMX * 192 cores = 2496, 0.71 GHz; Table 3: 1170 GFLOPS.
    return HardwareSpec(
        key="nvidia-k20",
        vendor="NVIDIA",
        architecture="K20 GK110",
        kind="gpu",
        device_count=1,
        cores_per_device=2496,
        clock_ghz=0.71,
        turbo_ghz=None,
        release="Q4/2012",
        peak_gflops_dp=1170.0,
        global_mem_bandwidth_gbs=208.0,
        caches=(
            CacheLevel("L2", 1536 * _KB, 500.0, 80.0, shared_by=13),
            CacheLevel("shared", 48 * _KB, 13 * 0.71 * 128, 10.0, shared_by=1),
        ),
        warp_size=32,
        sm_count=13,
        shared_mem_per_block_bytes=48 * _KB,
        max_threads_per_block=1024,
        global_mem_bytes=5 << 30,
    )


def _nvidia_k80() -> HardwareSpec:
    # K80 board = 2 GK210 dies; Table 3 lists it as 2 devices of 2496
    # cores, 0.56 (0.88) GHz, 2 x 1450 GFLOPS.
    return HardwareSpec(
        key="nvidia-k80",
        vendor="NVIDIA",
        architecture="K80 GK210",
        kind="gpu",
        device_count=2,
        cores_per_device=2496,
        clock_ghz=0.56,
        turbo_ghz=0.88,
        release="Q4/2014",
        peak_gflops_dp=2 * 1450.0,
        global_mem_bandwidth_gbs=2 * 240.0,
        caches=(
            CacheLevel("L2", 1536 * _KB, 600.0, 80.0, shared_by=13),
            CacheLevel("shared", 112 * _KB, 13 * 0.56 * 128, 10.0, shared_by=1),
        ),
        warp_size=32,
        sm_count=13,
        shared_mem_per_block_bytes=48 * _KB,
        max_threads_per_block=1024,
        global_mem_bytes=12 << 30,
    )


def _xeon_phi_5110p() -> HardwareSpec:
    # Knights Corner MIC: 60 cores, 4 hardware threads each, 8-wide DP
    # SIMD, 1.053 GHz, ~1011 GFLOPS DP peak, 320 GB/s GDDR5.  Not part
    # of Table 3 — the paper's Fig. 3 shows the MIC mapping and its
    # future work names Xeon Phi explicitly; the model backs the
    # future-architectures bench.
    return HardwareSpec(
        key="intel-xeon-phi-5110p",
        vendor="Intel",
        architecture="Xeon Phi 5110P",
        kind="cpu",
        device_count=1,
        cores_per_device=60,
        clock_ghz=1.053,
        turbo_ghz=None,
        release="Q4/2012",
        peak_gflops_dp=1011.0,
        global_mem_bandwidth_gbs=320.0,
        caches=(
            CacheLevel("L1", 32 * _KB, 60 * 1.053 * 64, 1.0, shared_by=1),
            CacheLevel("L2", 512 * _KB, 60 * 1.053 * 32, 11.0, shared_by=1),
        ),
        simd_dp_lanes=8,  # 512-bit vector units
        shared_mem_per_block_bytes=512 * _KB,  # Fig. 3: block maps to L2
        max_threads_per_block=4,  # 4 hardware threads per core
        global_mem_bytes=8 << 30,
    )


def host_machine() -> HardwareSpec:
    """A model of the machine the reproduction actually runs on.

    Used for the functional CPU back-ends; counts come from the OS, the
    throughput numbers are nominal (they never enter modeled figures,
    which use the Table 3 machines)."""
    cores = os.cpu_count() or 1
    return HardwareSpec(
        key="host",
        vendor="generic",
        architecture="host CPU",
        kind="cpu",
        device_count=1,
        cores_per_device=cores,
        clock_ghz=2.0,
        turbo_ghz=None,
        release="n/a",
        peak_gflops_dp=16.0 * cores,
        global_mem_bandwidth_gbs=20.0,
        caches=(
            CacheLevel("L1", 32 * _KB, cores * 100.0, 1.0, shared_by=1),
            CacheLevel("L2", 1 * _MB, cores * 50.0, 4.0, shared_by=1),
        ),
        simd_dp_lanes=4,
        shared_mem_per_block_bytes=1 * _MB,
        max_threads_per_block=max(cores, 16),
        global_mem_bytes=4 << 30,
    )


#: Keys of the five paper machines, in Table 3 column order.
TABLE3_KEYS = (
    "amd-opteron-6276",
    "intel-xeon-e5-2609",
    "intel-xeon-e5-2630v3",
    "nvidia-k20",
    "nvidia-k80",
)

_REGISTRY: Dict[str, HardwareSpec] = {}


def register_machine(spec: HardwareSpec, *, replace: bool = False) -> HardwareSpec:
    """Add a machine model to the registry (used by tests and users who
    model their own hardware)."""
    if spec.key in _REGISTRY and not replace:
        raise KeyError(f"machine {spec.key!r} already registered")
    _REGISTRY[spec.key] = spec
    return spec


for _ctor in (
    _opteron_6276,
    _xeon_e5_2609,
    _xeon_e5_2630v3,
    _nvidia_k20,
    _nvidia_k80,
    _xeon_phi_5110p,
):
    register_machine(_ctor())
register_machine(host_machine())


def machine(key: str) -> HardwareSpec:
    """Look up a machine model by key (see :data:`TABLE3_KEYS`)."""
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown machine {key!r}; known: {sorted(_REGISTRY)}"
        ) from None


def machine_keys() -> List[str]:
    return sorted(_REGISTRY)


def all_machines() -> List[HardwareSpec]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def table3_rows() -> List[dict]:
    """Regenerate paper Table 3 from the registry (one dict per column
    of the paper's table; the bench renders it transposed like the
    paper)."""
    rows = []
    for key in TABLE3_KEYS:
        m = machine(key)
        per_dev = m.peak_gflops_dp / m.device_count
        peak = (
            f"{m.device_count}x{per_dev:.0f} GFLOPS"
            if m.device_count > 1 and m.kind == "gpu"
            else f"{m.peak_gflops_dp:.0f} GFLOPS"
        )
        cores = m.cores_per_device
        cores_str = str(cores)
        if m.key == "intel-xeon-e5-2630v3":
            cores_str = f"{cores} ({2 * cores} hyper-threads)"
        rows.append(
            {
                "Vendor": m.vendor,
                "Architecture": m.architecture,
                "Number of devices": m.device_count,
                "Number of cores per device": cores_str,
                "Clock frequency": m.clock_string(),
                "Release date": m.release,
                "Th. double peak performance": peak,
            }
        )
    return rows
