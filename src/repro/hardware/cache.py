"""Cache hierarchy model.

The performance model needs one question answered: *given a working set
of W bytes accessed with pattern P by this device, what effective
bandwidth does the memory system deliver?*  The answer drives the
memory-bound side of the hierarchical roofline in
:mod:`repro.perfmodel.roofline`, and it is precisely the effect the
paper's Fig. 6 demonstrates — the same kernel collapses when its access
pattern and working set stop matching the device's cache geometry.

This is a capacity/bandwidth model, not a cycle-accurate simulator:
the smallest level that holds the working set serves the accesses at
its bandwidth, discounted by an access-pattern efficiency factor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .specs import CacheLevel, HardwareSpec

__all__ = ["AccessPattern", "CacheModel", "BandwidthEstimate"]


class AccessPattern(enum.Enum):
    """Spatial locality classes the model distinguishes.

    * ``CONTIGUOUS`` — unit-stride (or coalesced, on GPUs): full lines
      are consumed, bandwidth is delivered as specified.
    * ``STRIDED`` — constant large stride: each line contributes one
      element.  Efficiency = element/line ratio (modeled as 1/8 for
      doubles on 64-byte lines).
    * ``TILED`` — blocked accesses sized to a cache/shared-memory tile:
      contiguous within the tile, so near-full efficiency with a small
      tiling overhead.
    * ``RANDOM`` — no locality: latency bound; modeled as a steep
      bandwidth discount.
    """

    CONTIGUOUS = "contiguous"
    STRIDED = "strided"
    TILED = "tiled"
    RANDOM = "random"


_PATTERN_EFFICIENCY = {
    AccessPattern.CONTIGUOUS: 1.0,
    AccessPattern.TILED: 0.9,
    AccessPattern.STRIDED: 0.125,  # one double per 64-byte line
    AccessPattern.RANDOM: 0.05,
}

#: On GPUs a *strided per-thread* pattern is what coalescing wants, and a
#: *contiguous per-thread* pattern is what breaks it.  The executor maps
#: kernel-described per-thread patterns to device-effective patterns
#: before calling the cache model; see
#: :func:`repro.perfmodel.kernel_model.device_effective_pattern`.


@dataclass(frozen=True)
class BandwidthEstimate:
    """Result of a bandwidth query: which level served it and at what
    effective rate."""

    level_name: str
    raw_bandwidth_gbs: float
    efficiency: float

    @property
    def effective_bandwidth_gbs(self) -> float:
        return self.raw_bandwidth_gbs * self.efficiency


class CacheModel:
    """Capacity/bandwidth model over a machine's cache levels.

    Levels are consulted smallest-first; the first level whose capacity
    (scaled by how many units share it) holds the working set serves the
    traffic.  Working sets larger than every cache go to global memory.
    """

    def __init__(self, spec: HardwareSpec):
        self.spec = spec
        self._levels = sorted(spec.caches, key=lambda c: c.size_bytes)

    def serving_level(self, working_set_bytes: int) -> Optional[CacheLevel]:
        """The smallest cache level that fits the working set, or None
        when only global memory can hold it."""
        if working_set_bytes < 0:
            raise ValueError("working set must be non-negative")
        for level in self._levels:
            if working_set_bytes <= level.size_bytes:
                return level
        return None

    def bandwidth(
        self,
        working_set_bytes: int,
        pattern: AccessPattern = AccessPattern.CONTIGUOUS,
    ) -> BandwidthEstimate:
        """Effective bandwidth for a working set accessed with
        ``pattern`` (see class docstring)."""
        eff = _PATTERN_EFFICIENCY[pattern]
        level = self.serving_level(working_set_bytes)
        if level is None:
            return BandwidthEstimate(
                level_name="global",
                raw_bandwidth_gbs=self.spec.global_mem_bandwidth_gbs,
                efficiency=eff,
            )
        return BandwidthEstimate(
            level_name=level.name,
            raw_bandwidth_gbs=level.bandwidth_gbs,
            efficiency=eff,
        )

    def line_transfer_time_s(self, bytes_: int, pattern: AccessPattern) -> float:
        """Time to move ``bytes_`` through the level serving them."""
        est = self.bandwidth(bytes_, pattern)
        return bytes_ / (est.effective_bandwidth_gbs * 1e9)
