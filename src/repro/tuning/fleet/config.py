"""Fleet-tuning configuration and its ``REPRO_TUNING_*`` env surface.

One immutable record configures all three fleet features:

* **sharing** — ``REPRO_TUNING_FLEET`` selects how worker processes
  coordinate: ``off`` (per-process tuning, the pre-fleet behaviour),
  ``lock`` (advisory file locking + lease files next to the JSON cache;
  no daemon needed) or ``daemon`` (the socket service of
  ``python -m repro.tuning.fleet serve`` at ``REPRO_TUNING_FLEET_ADDR``).
* **leases** — how long a tuning lease is honoured before siblings may
  break it, and how long a worker that lost the race waits for the
  winner before proceeding with the Table 2 heuristic.
* **drift** — the ``REPRO_TUNING_DRIFT_*`` family tuning the online
  re-tuner: EWMA smoothing, drift threshold ratio, sample window,
  cooldown between re-tunes and the measurement budget of a background
  re-tune.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ...core.errors import TuningFleetError

__all__ = [
    "FleetConfig",
    "FleetConfigError",
    "fleet_config_from_env",
    "parse_fleet_mode",
    "parse_addr",
    "FLEET_ENV",
    "FLEET_ADDR_ENV",
    "DRIFT_THRESHOLD_ENV",
    "DRIFT_WINDOW_ENV",
    "DRIFT_COOLDOWN_ENV",
    "DRIFT_BUDGET_ENV",
    "DRIFT_EWMA_ENV",
    "HOF_ENV",
    "DEFAULT_DAEMON_PORT",
    "FLEET_MODES",
]

FLEET_ENV = "REPRO_TUNING_FLEET"
FLEET_ADDR_ENV = "REPRO_TUNING_FLEET_ADDR"
DRIFT_THRESHOLD_ENV = "REPRO_TUNING_DRIFT_THRESHOLD"
DRIFT_WINDOW_ENV = "REPRO_TUNING_DRIFT_WINDOW"
DRIFT_COOLDOWN_ENV = "REPRO_TUNING_DRIFT_COOLDOWN"
DRIFT_BUDGET_ENV = "REPRO_TUNING_DRIFT_BUDGET"
DRIFT_EWMA_ENV = "REPRO_TUNING_DRIFT_EWMA"
#: Hall-of-fame file of the evolutionary search (see fleet.evolve).
HOF_ENV = "REPRO_TUNING_HOF"

#: Port the fleet daemon binds when the address names none.
DEFAULT_DAEMON_PORT = 7412

FLEET_MODES = ("off", "lock", "daemon")


class FleetConfigError(TuningFleetError, ValueError):
    """A fleet configuration value is malformed."""


def parse_fleet_mode(raw: Optional[str]) -> str:
    """Map the ``REPRO_TUNING_FLEET`` value to a mode name.

    Unset / empty / ``0`` / ``off`` → ``off``; ``1`` / ``lock`` /
    ``file`` → ``lock`` (file locking is the no-daemon default);
    ``daemon`` / ``socket`` → ``daemon``.
    """
    if raw is None:
        return "off"
    value = raw.strip().lower()
    if value in ("", "0", "off", "no", "false"):
        return "off"
    if value in ("1", "lock", "file", "flock", "yes", "true"):
        return "lock"
    if value in ("daemon", "socket", "serve"):
        return "daemon"
    raise FleetConfigError(
        f"{FLEET_ENV}={raw!r} not understood; use one of off|lock|daemon"
    )


def parse_addr(raw: str) -> Tuple[str, int]:
    """``"host:port"`` (or bare ``"host"`` / bare ``":port"``) → tuple."""
    value = raw.strip()
    host, sep, port = value.rpartition(":")
    if not sep:
        return (value or "127.0.0.1", DEFAULT_DAEMON_PORT)
    try:
        port_no = int(port)
    except ValueError:
        raise FleetConfigError(
            f"{FLEET_ADDR_ENV} port is not an integer: {port!r}"
        ) from None
    if not 0 <= port_no <= 65535:
        raise FleetConfigError(f"{FLEET_ADDR_ENV} port out of range: {port_no}")
    return (host or "127.0.0.1", port_no)


@dataclass(frozen=True)
class FleetConfig:
    """Everything the fleet layer needs to know, in one record."""

    #: Coordination mode: ``off`` / ``lock`` / ``daemon``.
    mode: str = "off"
    #: Daemon address (daemon mode only).
    host: str = "127.0.0.1"
    port: int = DEFAULT_DAEMON_PORT

    #: Seconds a tuning lease is honoured.  A worker that crashed while
    #: holding one stops blocking the fleet after this long.
    lease_timeout: float = 120.0
    #: Seconds a lease loser waits for the winner's result before
    #: proceeding with the Table 2 heuristic (it adopts the winner later
    #: through the generation bump).
    wait_timeout: float = 60.0
    #: Poll interval while waiting on a sibling's result (lock mode
    #: re-reads the cache file at this cadence; daemon mode uses a
    #: server-side blocking wait and ignores it).
    poll_interval: float = 0.05
    #: Socket timeout for one daemon round-trip.
    io_timeout: float = 10.0

    #: Observed-latency EWMA must exceed ``drift_threshold`` × the tuned
    #: baseline (or the window p95 must exceed it vs. the baseline p95)
    #: to count as drift.
    drift_threshold: float = 1.5
    #: Samples kept per workload window (and needed before the first
    #: drift verdict).
    drift_window: int = 64
    #: EWMA smoothing factor (weight of the newest sample).
    drift_ewma_alpha: float = 0.2
    #: Seconds between background re-tunes of one workload key.
    drift_cooldown: float = 30.0
    #: Measurement budget of one background re-tune.
    drift_budget: int = 8

    def __post_init__(self):
        if self.mode not in FLEET_MODES:
            raise FleetConfigError(
                f"mode must be one of {FLEET_MODES}, got {self.mode!r}"
            )
        if not 0 <= self.port <= 65535:
            raise FleetConfigError(f"port out of range: {self.port}")
        for name in ("lease_timeout", "wait_timeout", "io_timeout"):
            if getattr(self, name) <= 0:
                raise FleetConfigError(
                    f"{name} must be > 0, got {getattr(self, name)}"
                )
        if self.poll_interval <= 0:
            raise FleetConfigError(
                f"poll_interval must be > 0, got {self.poll_interval}"
            )
        if self.drift_threshold <= 1.0:
            raise FleetConfigError(
                f"drift_threshold must be > 1 (a ratio vs. the baseline), "
                f"got {self.drift_threshold}"
            )
        if self.drift_window < 4:
            raise FleetConfigError(
                f"drift_window must be >= 4, got {self.drift_window}"
            )
        if not 0.0 < self.drift_ewma_alpha <= 1.0:
            raise FleetConfigError(
                f"drift_ewma_alpha must be in (0, 1], got {self.drift_ewma_alpha}"
            )
        if self.drift_cooldown < 0:
            raise FleetConfigError(
                f"drift_cooldown must be >= 0, got {self.drift_cooldown}"
            )
        if self.drift_budget < 1:
            raise FleetConfigError(
                f"drift_budget must be >= 1, got {self.drift_budget}"
            )

    @property
    def addr(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def with_overrides(self, **kwargs) -> "FleetConfig":
        try:
            return replace(self, **kwargs)
        except TypeError as exc:
            raise FleetConfigError(str(exc)) from None


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        raise FleetConfigError(f"{name} is not a number: {raw!r}") from None


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw)
    except ValueError:
        raise FleetConfigError(f"{name} is not an integer: {raw!r}") from None


def fleet_config_from_env(base: Optional[FleetConfig] = None) -> FleetConfig:
    """A :class:`FleetConfig` with every ``REPRO_TUNING_FLEET*`` /
    ``REPRO_TUNING_DRIFT_*`` variable applied on top of ``base``."""
    cfg = base or FleetConfig()
    mode = cfg.mode
    raw_mode = os.environ.get(FLEET_ENV)
    if raw_mode is not None:
        mode = parse_fleet_mode(raw_mode)
    host, port = cfg.host, cfg.port
    raw_addr = os.environ.get(FLEET_ADDR_ENV)
    if raw_addr is not None and raw_addr.strip():
        host, port = parse_addr(raw_addr)
    return cfg.with_overrides(
        mode=mode,
        host=host,
        port=port,
        drift_threshold=_env_float(DRIFT_THRESHOLD_ENV, cfg.drift_threshold),
        drift_window=_env_int(DRIFT_WINDOW_ENV, cfg.drift_window),
        drift_cooldown=_env_float(DRIFT_COOLDOWN_ENV, cfg.drift_cooldown),
        drift_budget=_env_int(DRIFT_BUDGET_ENV, cfg.drift_budget),
        drift_ewma_alpha=_env_float(DRIFT_EWMA_ENV, cfg.drift_ewma_alpha),
    )
