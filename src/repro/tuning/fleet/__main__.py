"""CLI entry point: ``python -m repro.tuning.fleet``.

Two subcommands:

* ``serve`` — run the fleet tuning daemon.  Prints the bound address as
  ``listening on HOST:PORT`` once ready (pass ``--port 0`` to let the
  OS pick; scripts parse that line).
* ``hof`` — render the persisted evolutionary hall of fame, latest
  generation first per run.
"""

from __future__ import annotations

import argparse
import sys

from ...comparison.render import render_table
from .config import (
    DEFAULT_DAEMON_PORT,
    FleetConfig,
    fleet_config_from_env,
)
from .daemon import FleetDaemon
from .evolve import default_hof_path, load_hall_of_fame


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tuning.fleet",
        description="Fleet tuning service and reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the shared tuning daemon")
    serve.add_argument("--host", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        help=f"TCP port (default {DEFAULT_DAEMON_PORT}; 0 = OS-assigned)",
    )
    serve.add_argument(
        "--cache",
        help="tuning cache file the daemon owns "
        "(default: $REPRO_TUNING_CACHE or ./.repro-tuning-cache.json)",
    )

    hof = sub.add_parser("hof", help="show the evolutionary hall of fame")
    hof.add_argument(
        "--path",
        help="hall-of-fame file "
        "(default: $REPRO_TUNING_HOF or ./.repro-tuning-hof.json)",
    )
    hof.add_argument(
        "--runs", type=int, default=3, help="how many recent runs to show"
    )
    return parser


def _fmt_div(payload: dict) -> str:
    return (
        f"grid={tuple(payload['grid'])} "
        f"block={tuple(payload['block'])} "
        f"elems={tuple(payload['elems'])}"
    )


def cmd_serve(args) -> int:
    base = fleet_config_from_env(FleetConfig(mode="daemon"))
    overrides = {}
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    config = base.with_overrides(**overrides) if overrides else base
    daemon = FleetDaemon(config, cache_path=args.cache)
    host, port = daemon.start()
    print(f"listening on {host}:{port}", flush=True)
    print(f"cache: {daemon.cache.path}", flush=True)
    daemon.serve_forever()
    return 0


def cmd_hof(args) -> int:
    path = args.path or default_hof_path()
    doc = load_hall_of_fame(path)
    runs = doc.get("runs", [])
    if not runs:
        print(f"no evolve runs recorded in {path}")
        return 0
    print(f"hall of fame: {path} ({len(runs)} run(s))")
    for run in runs[-max(args.runs, 1):][::-1]:
        best = run.get("best", {})
        header = (
            f"\nrun {run.get('label', '?')} — "
            f"{run.get('measurements', '?')} measurements over "
            f"{len(run.get('generations', []))} generation(s), "
            f"space {run.get('space', '?')}, "
            f"best {best.get('seconds', float('nan')):.3e}s"
        )
        print(header)
        rows = []
        # Latest generation first — the freshest champions on top.
        for gen in reversed(run.get("generations", [])):
            for rank, member in enumerate(gen.get("hall_of_fame", []), 1):
                rows.append(
                    {
                        "gen": gen.get("generation"),
                        "rank": rank,
                        "seconds": f"{member.get('seconds', float('nan')):.3e}",
                        "division": _fmt_div(member.get("work_div", {})),
                    }
                )
        if rows:
            print(render_table(rows))
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return cmd_serve(args)
    return cmd_hof(args)


if __name__ == "__main__":
    sys.exit(main())
