"""Cross-process tuning leases for the no-daemon (file-lock) case.

A *lease* is the right to run the one fleet-wide measurement for a
tuning key.  In file-lock mode the lease is a sidecar file next to the
JSON cache — ``<cache>.<sha1(key)[:12]>.lease`` — created with
``O_CREAT | O_EXCL`` so exactly one process of a fleet wins, holding a
tiny JSON body (pid, key, acquire time) purely for diagnostics.

Liveness is time-based, not pid-based: a worker that crashed while
holding a lease stops blocking its siblings once the lease is older
than the configured ``lease_timeout``; a *live* holder whose
measurement outlasts the timeout stays alive by :meth:`LeaseFile.touch`
heartbeats (``autotune`` refreshes its lease while the search runs).
Breaking a stale lease happens under the cache's advisory
:func:`~repro.tuning.cache.file_lock` so two breakers cannot both
conclude they won.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Optional

from ..cache import file_lock

__all__ = ["Lease", "LeaseFile", "lease_path"]


def lease_path(cache_path: str, key: str) -> str:
    """Sidecar lease-file path for one tuning key."""
    digest = hashlib.sha1(key.encode("utf-8")).hexdigest()[:12]
    return f"{cache_path}.{digest}.lease"


@dataclass(frozen=True)
class Lease:
    """A held lease; release through the :class:`LeaseFile` that made it."""

    key: str
    path: str
    acquired_at: float


class LeaseFile:
    """Acquire/release tuning leases as exclusive-create sidecar files."""

    def __init__(self, cache_path: str, *, timeout: float = 120.0):
        self.cache_path = cache_path
        #: Seconds after which a lease counts as abandoned.
        self.timeout = timeout

    # -- internals -----------------------------------------------------

    def _age(self, path: str) -> Optional[float]:
        try:
            return time.time() - os.stat(path).st_mtime
        except OSError:
            return None

    def _try_create(self, key: str, path: str) -> Optional[Lease]:
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return None
        now = time.time()
        with os.fdopen(fd, "w") as fh:
            json.dump({"pid": os.getpid(), "key": key, "time": now}, fh)
        return Lease(key=key, path=path, acquired_at=now)

    # -- public API ----------------------------------------------------

    def try_acquire(self, key: str) -> Optional[Lease]:
        """The lease for ``key``, or ``None`` if a live sibling holds it.

        A lease older than :attr:`timeout` is broken (its holder is
        presumed dead) and re-acquired in the same call.
        """
        path = lease_path(self.cache_path, key)
        lease = self._try_create(key, path)
        if lease is not None:
            return lease
        age = self._age(path)
        if age is None:
            # Holder released between our create attempt and the stat;
            # contend for the now-free lease.
            return self._try_create(key, path)
        if age <= self.timeout:
            return None
        # Stale: break it under the cache file lock so only one breaker
        # unlinks + recreates.
        with file_lock(self.cache_path):
            age = self._age(path)
            if age is not None and age > self.timeout:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            return self._try_create(key, path)

    def touch(self, lease: Lease) -> bool:
        """Refresh the lease file's mtime so a live holder mid-way
        through a long measurement is not mistaken for a dead one and
        broken by its siblings; False when the file is gone (the lease
        was broken already)."""
        try:
            os.utime(lease.path, None)
            return True
        except OSError:
            return False

    def release(self, lease: Lease) -> None:
        """Give the lease up (idempotent; tolerates a broken lease)."""
        try:
            os.unlink(lease.path)
        except OSError:
            pass

    def holder_alive(self, key: str) -> bool:
        """Whether ``key``'s lease exists and is younger than the
        timeout — i.e. whether waiting for its holder makes sense."""
        age = self._age(lease_path(self.cache_path, key))
        return age is not None and age <= self.timeout
