"""Evolutionary work-division search (``strategy="evolve"``).

A population-based alternative to exhaustive/coordinate search over the
*joint* candidate space.  A genome is one pre-validated candidate
division, addressed by its (block-thread extent, thread-element extent)
coordinate — crossover recombines the block axis of one parent with the
element axis of the other, mutation steps to an axis neighbour, and any
child that leaves the valid-candidate set snaps back to a parent, so
evolution can never propose a division the accelerator would reject.

Population zero is not random: it is the Table 2 seed divisions plus
the performance model's top-ranked candidates (the ``_prune`` ordering
exhaustive search uses), so generation 0 already ties the heuristic and
the model's best guess, and evolution only spends its budget improving
on them.

Each generation's fittest individuals are appended to a persisted
**hall of fame** (JSON, ``$REPRO_TUNING_HOF`` or
``.repro-tuning-hof.json``), latest generation first in the
``python -m repro.tuning.fleet hof`` report — the generations view of
the juno genetic optimizer is the exemplar.
"""

from __future__ import annotations

import json
import os
import random as _random
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ...core.workdiv import WorkDivMembers
from ..cache import file_lock
from ..search import (
    PRUNE_RATIO,
    SEARCH_STRATEGIES,
    SearchResult,
    Trial,
    _best,
    _prune,
)
from .config import HOF_ENV

__all__ = [
    "evolve_search",
    "default_hof_path",
    "load_hall_of_fame",
    "DEFAULT_HOF_FILENAME",
    "HOF_FORMAT_VERSION",
]

#: Default hall-of-fame file, created in the current working directory.
DEFAULT_HOF_FILENAME = ".repro-tuning-hof.json"

HOF_FORMAT_VERSION = 1


def default_hof_path() -> str:
    env = os.environ.get(HOF_ENV)
    if env:
        return env
    return os.path.join(os.getcwd(), DEFAULT_HOF_FILENAME)


def _wd_payload(wd: WorkDivMembers) -> dict:
    return {
        "grid": list(wd.grid_block_extent),
        "block": list(wd.block_thread_extent),
        "elems": list(wd.thread_elem_extent),
    }


def load_hall_of_fame(path: Optional[str] = None) -> dict:
    """The persisted hall-of-fame document (empty skeleton when the
    file is missing or rotten — a report tool must not crash on it)."""
    path = path or default_hof_path()
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {"version": HOF_FORMAT_VERSION, "runs": []}
    if (
        not isinstance(data, dict)
        or data.get("version") != HOF_FORMAT_VERSION
        or not isinstance(data.get("runs"), list)
    ):
        return {"version": HOF_FORMAT_VERSION, "runs": []}
    return data


def _append_run(path: str, run: dict) -> None:
    """Append one run record, read-merge-write atomically under the
    advisory lock (fleet workers may finish evolve runs concurrently)."""
    with file_lock(path):
        doc = load_hall_of_fame(path)
        doc["runs"].append(run)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=".repro-hof-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, indent=2)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def _coord(wd: WorkDivMembers) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    return (tuple(wd.block_thread_extent), tuple(wd.thread_elem_extent))


def evolve_search(
    candidates: Sequence[WorkDivMembers],
    objective,
    *,
    seeds: int = 0,
    budget: Optional[int] = None,
    seed: int = 0,
    predicted: Optional[Dict[WorkDivMembers, float]] = None,
    prune_ratio: float = PRUNE_RATIO,
    population: int = 8,
    max_generations: int = 16,
    elite: int = 2,
    tournament: int = 3,
    mutation_rate: float = 0.35,
    stale_after: int = 3,
    hof_size: int = 3,
    hof_path: Optional[str] = None,
    hof_label: str = "evolve",
    schedules: Sequence[str] = (),
    schedule_objective=None,
) -> SearchResult:
    """Tournament-selected, crossover/mutation search over the candidate
    space; persists a per-generation hall of fame.

    Deterministic for a given ``seed``.  ``budget`` caps *total distinct
    measurements* (memoised — re-evaluating a surviving individual is
    free); evolution also stops after ``stale_after`` generations
    without improvement or after ``max_generations``.

    With ``schedules`` (and a ``schedule_objective(wd, schedule) ->
    seconds``), the genome grows a third axis: each individual is a
    (division, block-schedule) pair, crossover may take its schedule
    from either parent, and mutation can step the schedule instead of a
    division axis.  The winner's schedule lands in
    :attr:`SearchResult.best_schedule` — this is how ``compiled`` (the
    trace-vectorized replay) competes against ``sequential`` / pooled /
    process dispatch inside one evolutionary run instead of a separate
    post-search sweep.
    """
    order, pruned = _prune(candidates, seeds, predicted, prune_ratio)
    if not order:
        raise ValueError("empty candidate space")
    rng = _random.Random(seed)

    sched_axis: List[Optional[str]] = (
        list(schedules) if schedules and schedule_objective else [None]
    )

    # Valid-coordinate index: (block, elems, schedule) -> individual.
    # Axis value lists are sorted so mutation's "neighbour" is the
    # next/previous extent along that axis.
    valid: Dict[tuple, tuple] = {}
    for wd in order:
        c = _coord(wd)
        for sched in sched_axis:
            valid.setdefault(c + (sched,), (wd, sched))
    block_axis = sorted({c[0] for c in valid})
    elem_axis = sorted({c[1] for c in valid})

    measured: Dict[tuple, float] = {}
    trials: List[Trial] = []

    def coord(ind: tuple) -> tuple:
        return _coord(ind[0]) + (ind[1],)

    def spend(ind: tuple) -> Optional[float]:
        """Memoised measurement; None once the budget is gone."""
        if ind in measured:
            return measured[ind]
        if budget is not None and len(trials) >= budget:
            return None
        wd, sched = ind
        secs = objective(wd) if sched is None else schedule_objective(wd, sched)
        measured[ind] = secs
        trials.append(Trial(wd, secs))
        return secs

    def fitness(ind: tuple) -> float:
        return measured.get(ind, float("inf"))

    def crossover(a: tuple, b: tuple) -> tuple:
        ca, cb = coord(a), coord(b)
        scheds = [ca[2], cb[2]]
        rng.shuffle(scheds)
        for combo in (
            (ca[0], cb[1], scheds[0]),
            (cb[0], ca[1], scheds[1]),
        ):
            child = valid.get(combo)
            if child is not None:
                return child
        return a if fitness(a) <= fitness(b) else b

    def mutate(ind: tuple) -> tuple:
        block, elems, sched = coord(ind)
        genes = ["block", "elems"] + (
            ["sched"] if len(sched_axis) > 1 else []
        )
        gene = rng.choice(genes)
        if gene == "sched":
            # Step the schedule axis: any other legal schedule.
            others = [s for s in sched_axis if s != sched]
            rng.shuffle(others)
            for s in others:
                child = valid.get((block, elems, s))
                if child is not None:
                    return child
            return ind
        if gene == "block":
            axis, make = block_axis, lambda v: (v, elems, sched)
            at = axis.index(block)
        else:
            axis, make = elem_axis, lambda v: (block, v, sched)
            at = axis.index(elems)
        steps = list(range(1, len(axis)))
        rng.shuffle(steps)
        for step in steps:
            for direction in (1, -1):
                idx = at + direction * step
                if 0 <= idx < len(axis):
                    child = valid.get(make(axis[idx]))
                    if child is not None:
                        return child
        return ind

    def pick(pool: List[tuple]) -> tuple:
        k = min(tournament, len(pool))
        return min(rng.sample(pool, k), key=fitness)

    # -- generation 0: Table 2 seeds + model-ranked head ---------------
    # With a schedule axis, the head divisions cycle through the legal
    # schedules so every schedule is measured early.
    pop_size = max(2, min(population, len(order) * len(sched_axis)))
    head = list(dict.fromkeys(order))
    pop = [
        (head[i % len(head)], sched_axis[i % len(sched_axis)])
        for i in range(pop_size)
    ]
    pop = list(dict.fromkeys(pop))

    generations: List[dict] = []
    best_so_far = float("inf")
    stale = 0
    out_of_budget = False

    for gen in range(max_generations):
        for ind in pop:
            if spend(ind) is None:
                out_of_budget = True
                break

        ranked = sorted(
            (ind for ind in dict.fromkeys(pop) if ind in measured),
            key=fitness,
        )
        if ranked:
            gen_best = fitness(ranked[0])
            generations.append(
                {
                    "generation": gen,
                    "hall_of_fame": [
                        {
                            "work_div": _wd_payload(ind[0]),
                            **(
                                {"schedule": ind[1]}
                                if ind[1] is not None
                                else {}
                            ),
                            "seconds": measured[ind],
                        }
                        for ind in ranked[:hof_size]
                        if measured[ind] != float("inf")
                    ],
                    "best_seconds": (
                        gen_best if gen_best != float("inf") else None
                    ),
                    "measurements": len(trials),
                }
            )
            if gen_best < best_so_far:
                best_so_far = gen_best
                stale = 0
            else:
                stale += 1

        if out_of_budget or stale >= stale_after:
            break
        if len(measured) >= len(valid):
            break  # the whole space is measured; nothing left to evolve

        survivors = ranked or pop
        elite_n = min(elite, len(survivors))
        next_pop = list(survivors[:elite_n])
        while len(next_pop) < pop_size:
            child = crossover(pick(survivors), pick(survivors))
            if rng.random() < mutation_rate:
                child = mutate(child)
            next_pop.append(child)
        # Duplicates are free (memoised) but diversity is not: replace
        # repeats with unmeasured candidates while any remain.
        seen: List[tuple] = []
        unmeasured = [ind for ind in valid.values() if ind not in measured]
        rng.shuffle(unmeasured)
        for ind in next_pop:
            if ind in seen and unmeasured:
                seen.append(unmeasured.pop())
            else:
                seen.append(ind)
        pop = seen

    best_ind: Optional[tuple] = None
    finite = {ind: s for ind, s in measured.items() if s != float("inf")}
    if finite:
        best_ind = min(finite, key=finite.get)
    schedule_trials: Dict[str, float] = {}
    for (wd, sched), secs in measured.items():
        if sched is not None and secs != float("inf"):
            schedule_trials[sched] = min(
                schedule_trials.get(sched, float("inf")), secs
            )
    result = SearchResult(
        best=_best(trials),
        trials=trials,
        pruned=pruned,
        strategy="evolve",
        best_schedule=best_ind[1] if best_ind is not None else None,
        schedule_trials=schedule_trials,
    )

    path = hof_path or default_hof_path()
    try:
        _append_run(
            path,
            {
                "label": hof_label,
                "strategy": "evolve",
                "time": time.time(),
                "seed": seed,
                "budget": budget,
                "population": pop_size,
                "measurements": len(trials),
                "space": len(valid),
                "best": {
                    "work_div": _wd_payload(result.best.work_div),
                    **(
                        {"schedule": result.best_schedule}
                        if result.best_schedule is not None
                        else {}
                    ),
                    "seconds": result.best.seconds,
                },
                "generations": generations,
            },
        )
    except OSError:
        pass  # the hall of fame is a report, never worth failing a tune

    return result


SEARCH_STRATEGIES.setdefault("evolve", evolve_search)
