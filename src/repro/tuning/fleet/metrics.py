"""Fleet-tuning metrics, recorded into the shared telemetry registry.

Same registry the runtime and the serving gateway report into, so one
telemetry report covers launch counts, serving latency *and* how the
fleet converged on its tuning results.

Metric families:

* ``repro_tuning_fleet_requests_total{mode, op, outcome}`` — cache
  lookups / publishes / lease attempts per coordination mode;
* ``repro_tuning_fleet_lease_wait_seconds`` — how long lease losers
  waited for the winner's result;
* ``repro_tuning_fleet_measurements_total{mode}`` — full measurement
  runs actually executed (the number the fleet exists to minimise);
* ``repro_tuning_fleet_adopted_total{mode}`` — results adopted from a
  sibling worker instead of measured locally;
* ``repro_tuning_fleet_drift_total{workload, outcome}`` — drift-test
  verdicts (``detected`` / ``retuned`` / ``cooldown``);
* ``repro_tuning_fleet_retune_seconds`` — background re-tune durations;
* ``repro_tuning_drift_retunes_total{workload, outcome}`` — what each
  triggered re-tune actually *did* (``triggered`` / ``completed`` /
  ``reverted`` / ``failed`` / ``no_target``);
* ``repro_tuning_drift_predicted_seconds{workload, which}`` — the
  old-division vs new-division predicted seconds of the latest re-tune
  (``which="old"`` / ``"new"``), so a dashboard can show whether the
  re-tune bought anything.
"""

from __future__ import annotations

from typing import Optional

from ...telemetry.metrics import MetricsRegistry, registry

__all__ = [
    "fleet_registry",
    "record_op",
    "record_lease_wait",
    "record_measurement",
    "record_adopted",
    "record_drift",
    "record_retune_seconds",
    "record_retune_outcome",
]

#: Lease-wait buckets: sub-millisecond (daemon push) to a minute.
WAIT_BUCKETS = (0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0)


def fleet_registry() -> MetricsRegistry:
    """The registry fleet metrics land in (the process-wide one)."""
    return registry()


def record_op(mode: str, op: str, outcome: str) -> None:
    registry().counter(
        "repro_tuning_fleet_requests_total",
        "Fleet tuning operations by mode, op and outcome",
        mode=mode,
        op=op,
        outcome=outcome,
    ).inc()


def record_lease_wait(seconds: float) -> None:
    registry().histogram(
        "repro_tuning_fleet_lease_wait_seconds",
        "Time lease losers spent waiting for the winner's result",
        buckets=WAIT_BUCKETS,
    ).observe(seconds)


def record_measurement(mode: str) -> None:
    registry().counter(
        "repro_tuning_fleet_measurements_total",
        "Full tuning measurement runs executed",
        mode=mode,
    ).inc()


def record_adopted(mode: str) -> None:
    registry().counter(
        "repro_tuning_fleet_adopted_total",
        "Tuning results adopted from a sibling instead of measured",
        mode=mode,
    ).inc()


def record_drift(workload: str, outcome: str) -> None:
    registry().counter(
        "repro_tuning_fleet_drift_total",
        "Drift-test verdicts per workload",
        workload=workload,
        outcome=outcome,
    ).inc()


def record_retune_seconds(seconds: float) -> None:
    registry().histogram(
        "repro_tuning_fleet_retune_seconds",
        "Background re-tune durations",
    ).observe(seconds)


def record_retune_outcome(
    workload: str,
    outcome: str,
    old_seconds: Optional[float] = None,
    new_seconds: Optional[float] = None,
) -> None:
    """One drift-driven re-tune outcome, with the old/new predicted
    seconds when the re-tune measured them."""
    registry().counter(
        "repro_tuning_drift_retunes_total",
        "Drift-driven re-tune outcomes per workload",
        workload=workload,
        outcome=outcome,
    ).inc()
    for which, seconds in (("old", old_seconds), ("new", new_seconds)):
        if seconds is not None:
            registry().gauge(
                "repro_tuning_drift_predicted_seconds",
                "Predicted seconds of the latest re-tune's old/new division",
                workload=workload,
                which=which,
            ).set(seconds)
