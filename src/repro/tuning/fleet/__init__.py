"""repro.tuning.fleet — tune once per fleet, adapt while serving.

PR 2's :func:`repro.tuning.autotune` pays the measurement cost in every
process; this package scales it to a fleet of workers and to live
traffic, in three pieces:

* **Shared convergence** — :func:`~.coordinator.maybe_coordinator`
  turns the per-process :class:`~repro.tuning.cache.TuningCache` into a
  fleet-wide one.  ``REPRO_TUNING_FLEET=lock`` coordinates through
  lease sidecar files and merge-on-write cache saves (zero
  infrastructure); ``REPRO_TUNING_FLEET=daemon`` talks JSON lines to
  ``python -m repro.tuning.fleet serve`` at
  ``REPRO_TUNING_FLEET_ADDR``.  Either way, N workers tuning the same
  (kernel, back-end, device, extent-bucket) run **one** measurement:
  the lease winner measures and publishes, losers briefly wait or
  proceed with the Table 2 heuristic and adopt the winner through the
  tuning-generation bump.
* **Evolutionary search** — ``autotune(strategy="evolve")``
  (:mod:`~.evolve`): population search over the joint division space,
  seeded from Table 2 + the performance model, with a persisted
  per-generation hall of fame (``python -m repro.tuning.fleet hof``).
* **Online re-tuning** — :class:`~.drift.DriftMonitor`: EWMA +
  percentile drift tests on gateway latencies, budgeted background
  re-tunes, hot-swap through the plan cache's generation key.  The
  serving side lives in :mod:`repro.serve.online`.
"""

from __future__ import annotations

from .config import (
    DEFAULT_DAEMON_PORT,
    FLEET_ADDR_ENV,
    FLEET_ENV,
    FLEET_MODES,
    HOF_ENV,
    FleetConfig,
    FleetConfigError,
    fleet_config_from_env,
)
from .coordinator import (
    DaemonCoordinator,
    FileLockCoordinator,
    FleetCoordinator,
    maybe_coordinator,
    reset_coordinator,
)
from .daemon import FleetDaemon
from .drift import DriftMonitor, WorkloadStats
from .evolve import (
    DEFAULT_HOF_FILENAME,
    default_hof_path,
    evolve_search,
    load_hall_of_fame,
)
from .lock import Lease, LeaseFile, lease_path

__all__ = [
    # config
    "FleetConfig",
    "FleetConfigError",
    "fleet_config_from_env",
    "FLEET_ENV",
    "FLEET_ADDR_ENV",
    "HOF_ENV",
    "FLEET_MODES",
    "DEFAULT_DAEMON_PORT",
    # coordination
    "FleetCoordinator",
    "FileLockCoordinator",
    "DaemonCoordinator",
    "maybe_coordinator",
    "reset_coordinator",
    "Lease",
    "LeaseFile",
    "lease_path",
    "FleetDaemon",
    # evolutionary search
    "evolve_search",
    "default_hof_path",
    "load_hall_of_fame",
    "DEFAULT_HOF_FILENAME",
    # online tuning
    "DriftMonitor",
    "WorkloadStats",
]
