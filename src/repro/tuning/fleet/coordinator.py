"""Fleet coordination: one measurement per tuning key, fleet-wide.

The coordinator sits between :func:`repro.tuning.autotune` and the
persistent :class:`~repro.tuning.cache.TuningCache` and answers three
questions for a worker about to tune a key:

1. *Did a sibling already tune this?* — :meth:`fetch` does a **fresh**
   read (disk re-read in lock mode, daemon round-trip in daemon mode),
   not just an in-memory lookup.
2. *May I run the measurement?* — :meth:`try_lease` grants the
   fleet-wide measurement lease to exactly one worker.
3. *If not, what did the winner find?* — :meth:`wait_for` blocks up to
   the configured ``wait_timeout`` for the winner's published result; a
   worker that times out proceeds with the Table 2 heuristic and picks
   the winner up later through the tuning-generation bump.

Two implementations share that contract: :class:`FileLockCoordinator`
(lease sidecar files + cache re-reads; zero infrastructure) and
:class:`DaemonCoordinator` (the socket service of
``python -m repro.tuning.fleet serve``; in-memory leases and push-style
waits).  :func:`maybe_coordinator` picks one from the environment.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from ...core.errors import TuningFleetError
from ..cache import CachedResult, TuningCache
from . import metrics
from .config import FleetConfig, fleet_config_from_env
from .lock import Lease, LeaseFile

__all__ = [
    "FleetCoordinator",
    "FileLockCoordinator",
    "DaemonCoordinator",
    "maybe_coordinator",
    "reset_coordinator",
]


class FleetCoordinator:
    """Common contract; see the module docstring for the life cycle."""

    mode = "off"

    def __init__(self, cache: TuningCache, config: FleetConfig):
        self.cache = cache
        self.config = config

    def fetch(self, key: str) -> Optional[CachedResult]:
        """Freshest known result for ``key`` (never measures)."""
        raise NotImplementedError

    def try_lease(self, key: str):
        """A lease token when this worker wins the measurement race,
        else ``None``."""
        raise NotImplementedError

    def release(self, key: str, token) -> None:
        """Give up a lease without publishing (measurement failed)."""
        raise NotImplementedError

    def refresh(self, key: str, token) -> None:
        """Heartbeat a held lease so a measurement that outlasts
        ``lease_timeout`` is not broken mid-run (best-effort no-op by
        default)."""

    def publish(self, key: str, result: CachedResult, token=None) -> None:
        """Make ``result`` visible fleet-wide and release ``token``."""
        raise NotImplementedError

    def wait_for(self, key: str, timeout: Optional[float] = None) -> Optional[CachedResult]:
        """Block until a sibling publishes ``key`` (or ``timeout``
        elapses); adopts the result into the local cache."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (idempotent)."""

    # -- shared helpers ------------------------------------------------

    def _adopt(self, key: str, result: CachedResult) -> CachedResult:
        """Fold a remotely produced result into the local cache (bumps
        the tuning generation through ``put_key``)."""
        if self.cache.get_key(key) != result:
            self.cache.put_key(key, result)
            metrics.record_adopted(self.mode)
        return result


class FileLockCoordinator(FleetCoordinator):
    """No-daemon coordination: lease sidecar files + cache re-reads."""

    mode = "lock"

    def __init__(self, cache: TuningCache, config: FleetConfig):
        super().__init__(cache, config)
        self._leases = LeaseFile(cache.path, timeout=config.lease_timeout)

    def fetch(self, key: str) -> Optional[CachedResult]:
        # reload() adopts anything siblings saved since our last look.
        self.cache.reload()
        entry = self.cache.get_key(key)
        metrics.record_op(self.mode, "get", "hit" if entry else "miss")
        return entry

    def try_lease(self, key: str) -> Optional[Lease]:
        lease = self._leases.try_acquire(key)
        if lease is not None:
            # Post-acquire re-check: the previous holder may have
            # published and released between our fetch and this acquire,
            # in which case measuring again wastes the fleet's time.
            self.cache.reload()
            if self.cache.get_key(key) is not None:
                self._leases.release(lease)
                metrics.record_op(self.mode, "lease", "denied")
                return None
        metrics.record_op(
            self.mode, "lease", "granted" if lease else "denied"
        )
        return lease

    def release(self, key: str, token) -> None:
        if token is not None:
            self._leases.release(token)

    def refresh(self, key: str, token) -> None:
        if token is not None:
            self._leases.touch(token)

    def publish(self, key: str, result: CachedResult, token=None) -> None:
        self.cache.put_key(key, result)
        self.cache.save()
        metrics.record_op(self.mode, "put", "ok")
        self.release(key, token)

    def wait_for(self, key: str, timeout: Optional[float] = None) -> Optional[CachedResult]:
        limit = self.config.wait_timeout if timeout is None else timeout
        deadline = time.monotonic() + limit
        started = time.monotonic()
        while True:
            self.cache.reload()
            entry = self.cache.get_key(key)
            if entry is not None:
                metrics.record_lease_wait(time.monotonic() - started)
                metrics.record_op(self.mode, "wait", "resolved")
                return entry
            if not self._leases.holder_alive(key):
                # Winner died (or released without publishing); no point
                # waiting out the full timeout.
                metrics.record_op(self.mode, "wait", "abandoned")
                return None
            if time.monotonic() >= deadline:
                metrics.record_op(self.mode, "wait", "timeout")
                return None
            time.sleep(self.config.poll_interval)


class DaemonCoordinator(FleetCoordinator):
    """Socket coordination against ``python -m repro.tuning.fleet serve``.

    The daemon owns the authoritative cache file; workers keep their
    local cache as a read-through copy (adopting published entries so
    the launch path never needs the socket).
    """

    mode = "daemon"

    def __init__(self, cache: TuningCache, config: FleetConfig, client=None):
        super().__init__(cache, config)
        if client is None:
            from .client import FleetClient

            client = FleetClient(config)
        self._client = client

    def fetch(self, key: str) -> Optional[CachedResult]:
        entry = self._client.get(key)
        metrics.record_op(self.mode, "get", "hit" if entry else "miss")
        if entry is not None:
            self._adopt(key, entry)
        return entry

    def try_lease(self, key: str) -> Optional[str]:
        token = self._client.lease(key)
        metrics.record_op(
            self.mode, "lease", "granted" if token else "denied"
        )
        return token

    def release(self, key: str, token) -> None:
        if token is not None:
            self._client.release(key, token)

    def refresh(self, key: str, token) -> None:
        if token is not None:
            self._client.renew(key, token)

    def publish(self, key: str, result: CachedResult, token=None) -> None:
        self.cache.put_key(key, result)
        self._client.put(key, result, token=token)
        metrics.record_op(self.mode, "put", "ok")

    def wait_for(self, key: str, timeout: Optional[float] = None) -> Optional[CachedResult]:
        limit = self.config.wait_timeout if timeout is None else timeout
        started = time.monotonic()
        entry = self._client.wait(key, limit)
        if entry is not None:
            metrics.record_lease_wait(time.monotonic() - started)
            metrics.record_op(self.mode, "wait", "resolved")
            return self._adopt(key, entry)
        metrics.record_op(self.mode, "wait", "timeout")
        return None

    def close(self) -> None:
        self._client.close()


_coordinator: Optional[FleetCoordinator] = None
_coordinator_sig = None
_coordinator_lock = threading.Lock()


def maybe_coordinator(
    cache: TuningCache, config: Optional[FleetConfig] = None
) -> Optional[FleetCoordinator]:
    """The process-wide coordinator for ``cache``, or ``None`` when the
    fleet is off (``REPRO_TUNING_FLEET`` unset).

    Daemon mode degrades to ``None`` with a warning-free fallback if the
    daemon cannot be reached at construction time — tuning must work
    standalone; the fleet only removes duplicate work when present.
    """
    global _coordinator, _coordinator_sig
    cfg = config if config is not None else fleet_config_from_env()
    if cfg.mode == "off":
        return None
    sig = (cfg, cache.path, id(cache))
    with _coordinator_lock:
        if _coordinator is not None and _coordinator_sig == sig:
            return _coordinator
        if _coordinator is not None:
            _coordinator.close()
            _coordinator = None
        if cfg.mode == "lock":
            _coordinator = FileLockCoordinator(cache, cfg)
        else:
            try:
                _coordinator = DaemonCoordinator(cache, cfg)
            except TuningFleetError:
                metrics.record_op("daemon", "connect", "unreachable")
                return None
        _coordinator_sig = sig
        return _coordinator


def reset_coordinator() -> None:
    """Drop the process-wide coordinator (tests switching modes or
    addresses mid-process call this)."""
    global _coordinator, _coordinator_sig
    with _coordinator_lock:
        if _coordinator is not None:
            _coordinator.close()
        _coordinator = None
        _coordinator_sig = None
