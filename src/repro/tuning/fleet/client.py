"""Socket client for the fleet tuning daemon.

One JSON-lines connection (framing borrowed from
:mod:`repro.serve.protocol`), strictly request/response: every op sends
one line and blocks for one reply line.  ``wait`` is the only op the
daemon may hold open — the client stretches its socket timeout to cover
the requested wait.

A dead daemon raises :class:`~repro.core.errors.TuningFleetError` from
the constructor (so :func:`~repro.tuning.fleet.coordinator.maybe_coordinator`
can degrade to standalone tuning) and from any mid-conversation I/O
failure (callers on the tuning path catch it and fall back to the
heuristic; it never propagates out of a kernel launch).
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, Optional

from ...core.errors import TuningFleetError
from ...serve.protocol import decode_message, encode_message
from ...telemetry import tracing
from ..cache import CachedResult, entry_from_dict, entry_to_dict
from .config import FleetConfig

__all__ = ["FleetClient"]


class FleetClient:
    """Blocking JSON-lines client; thread-safe (one in-flight op)."""

    def __init__(self, config: FleetConfig):
        self.config = config
        self._lock = threading.Lock()
        self._next_id = 0
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._connect()

    # -- transport -----------------------------------------------------

    def _connect(self) -> None:
        try:
            sock = socket.create_connection(
                self.config.addr, timeout=self.config.io_timeout
            )
        except OSError as exc:
            raise TuningFleetError(
                f"fleet daemon unreachable at "
                f"{self.config.host}:{self.config.port} ({exc})"
            ) from exc
        self._sock = sock
        self._rfile = sock.makefile("rb")

    def close(self) -> None:
        with self._lock:
            if self._rfile is not None:
                try:
                    self._rfile.close()
                except OSError:
                    pass
                self._rfile = None
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    def _roundtrip(
        self, payload: Dict[str, Any], *, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        with self._lock:
            if self._sock is None:
                raise TuningFleetError("fleet client is closed")
            self._next_id += 1
            payload = dict(payload, id=self._next_id)
            # Distributed tracing: ops made during a drift re-tune (or
            # any traced tuning path) carry the caller's context, so
            # daemon-side spans stitch under the request that caused
            # the fleet traffic.  Untraced callers add nothing.
            ctx = tracing.current() or tracing.from_env()
            if ctx is not None:
                payload["trace"] = ctx.child().to_traceparent()
            try:
                self._sock.settimeout(
                    timeout if timeout is not None else self.config.io_timeout
                )
                self._sock.sendall(encode_message(payload))
                line = self._rfile.readline()
            except OSError as exc:
                self._teardown_locked()
                raise TuningFleetError(
                    f"fleet daemon connection failed mid-conversation ({exc})"
                ) from exc
            if not line:
                self._teardown_locked()
                raise TuningFleetError("fleet daemon closed the connection")
            reply = decode_message(line)
            if reply.get("id") != payload["id"]:
                self._teardown_locked()
                raise TuningFleetError(
                    f"fleet daemon reply out of sequence "
                    f"(sent id {payload['id']}, got {reply.get('id')!r})"
                )
            if not reply.get("ok", False):
                raise TuningFleetError(
                    f"fleet daemon rejected {payload.get('op')!r}: "
                    f"{reply.get('message', 'no detail')}"
                )
            return reply

    def _teardown_locked(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # -- ops -----------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("pong"))

    def get(self, key: str) -> Optional[CachedResult]:
        reply = self._roundtrip({"op": "get", "key": key})
        entry = reply.get("entry")
        return entry_from_dict(entry) if entry else None

    def put(
        self, key: str, result: CachedResult, *, token: Optional[str] = None
    ) -> None:
        self._roundtrip(
            {
                "op": "put",
                "key": key,
                "entry": entry_to_dict(result),
                "token": token,
            }
        )

    def lease(self, key: str) -> Optional[str]:
        reply = self._roundtrip({"op": "lease", "key": key})
        token = reply.get("token")
        return str(token) if token else None

    def release(self, key: str, token: str) -> None:
        self._roundtrip({"op": "release", "key": key, "token": token})

    def renew(self, key: str, token: str) -> bool:
        """Extend a held lease's deadline; False when the lease is no
        longer ours (expired and re-granted, or already released)."""
        return bool(
            self._roundtrip(
                {"op": "renew", "key": key, "token": token}
            ).get("renewed")
        )

    def wait(self, key: str, timeout: float) -> Optional[CachedResult]:
        reply = self._roundtrip(
            {"op": "wait", "key": key, "timeout": timeout},
            timeout=timeout + self.config.io_timeout,
        )
        entry = reply.get("entry")
        return entry_from_dict(entry) if entry else None

    def stats(self) -> Dict[str, Any]:
        return dict(self._roundtrip({"op": "stats"}).get("stats", {}))
