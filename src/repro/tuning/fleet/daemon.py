"""The fleet tuning daemon: one authoritative cache, N workers.

``python -m repro.tuning.fleet serve`` runs this.  The daemon owns the
tuning-cache file and speaks the JSON-lines protocol of
:mod:`repro.tuning.fleet.client` — one thread per connection, strictly
request/response per connection.

Semantics worth stating:

* **Leases are in-memory** (uuid token + deadline).  A worker that
  crashed mid-measurement stops blocking the fleet when its lease
  expires; a *live* worker whose tuning run outlasts the timeout keeps
  its lease through ``renew`` heartbeats.  A daemon restart forgets all
  leases, which merely lets the race re-run — the merge-on-write cache
  makes duplicate publishes harmless.
* **`wait` is push-style**: the op parks on a condition variable and
  returns the entry the moment a `put` lands (or early with ``null``
  when the lease holder released without publishing), instead of the
  client polling.
* **Writes are atomic and merging** — the daemon persists through
  :meth:`TuningCache.save`, so it can even share a cache file with
  file-lock-mode workers.
"""

from __future__ import annotations

import socket
import threading
import time
import uuid
from typing import Any, Dict, Optional, Tuple

from ...serve.protocol import MAX_LINE_BYTES, decode_message, encode_message
from ...telemetry import flight, tracing
from ...telemetry import http as ops_http
from ...telemetry.spans import record_span
from ..cache import TuningCache, entry_from_dict, entry_to_dict
from .config import FleetConfig

__all__ = ["FleetDaemon"]


class FleetDaemon:
    """Threaded TCP server over one :class:`TuningCache`."""

    def __init__(
        self,
        config: Optional[FleetConfig] = None,
        *,
        cache_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ):
        self.config = config or FleetConfig(mode="daemon")
        self.cache = TuningCache(cache_path)
        self.host = host if host is not None else self.config.host
        self.port = port if port is not None else self.config.port
        self._server: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        # key -> (token, deadline); guarded by _cond's lock, which also
        # serialises publish visibility for parked `wait` ops.
        self._leases: Dict[str, Tuple[str, float]] = {}
        self._cond = threading.Condition()
        self._conns: set = set()
        self._ops: Dict[str, int] = {}
        self._started_at = time.monotonic()

    # -- life cycle ----------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port) —
        pass ``port=0`` to let the OS pick."""
        server = socket.create_server(
            (self.host, self.port), reuse_port=False
        )
        server.settimeout(0.2)
        self._server = server
        self.host, self.port = server.getsockname()[:2]
        self.cache.reload()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fleet-daemon-accept", daemon=True
        )
        self._accept_thread.start()
        # Live ops surface: the daemon is a long-lived process, so it
        # exposes /metrics, /healthz and /traces when asked to.
        ops_http.maybe_start_from_env()
        ops_http.register_health("fleet_daemon", self._health)
        return (self.host, self.port)

    def _health(self):
        with self._cond:
            leases = sum(
                1 for key in list(self._leases)
                if self._lease_active_locked(key)
            )
            conns = len(self._conns)
        up = self._server is not None and not self._stopping.is_set()
        return up, {
            "entries": len(self.cache),
            "leases": leases,
            "connections": conns,
            "uptime": time.monotonic() - self._started_at,
        }

    def serve_forever(self) -> None:
        if self._server is None:
            self.start()
        try:
            while not self._stopping.is_set():
                time.sleep(0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        ops_http.unregister_health("fleet_daemon")
        self._stopping.set()
        with self._cond:
            self._cond.notify_all()
            conns = list(self._conns)
        for conn in conns:
            # Unblock connection threads parked in readline; a client
            # mid-conversation sees a clean EOF/reset, not a hang.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
            self._server = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None

    # -- accept / per-connection ---------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="fleet-daemon-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(None)
        with self._cond:
            self._conns.add(conn)
        rfile = conn.makefile("rb")
        try:
            while not self._stopping.is_set():
                line = rfile.readline(MAX_LINE_BYTES + 1)
                if not line:
                    return
                try:
                    msg = decode_message(line)
                except Exception as exc:
                    conn.sendall(
                        encode_message(
                            {"id": None, "ok": False, "message": str(exc)}
                        )
                    )
                    return
                reply = self._dispatch(msg)
                conn.sendall(encode_message(reply))
        except OSError:
            pass
        finally:
            with self._cond:
                self._conns.discard(conn)
            try:
                rfile.close()
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    # -- ops -----------------------------------------------------------

    def _count(self, op: str) -> None:
        with self._cond:
            self._ops[op] = self._ops.get(op, 0) + 1

    def _dispatch(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        op = msg.get("op")
        msg_id = msg.get("id")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return {
                "id": msg_id,
                "ok": False,
                "message": f"unknown op {op!r}",
            }
        self._count(str(op))
        # The wire context (when the client sent one) makes this op a
        # child span of the remote caller; a malformed traceparent
        # degrades to an untraced op.
        ctx = tracing.from_traceparent(msg.get("trace"))
        if op in ("lease", "put", "release", "wait"):
            flight.maybe_record(
                f"fleet_{op}",
                key=str(msg.get("key", "")),
                **(ctx.ids() if ctx is not None else {}),
            )
        t0 = time.perf_counter()
        try:
            with tracing.use(ctx):
                payload = handler(msg)
        except Exception as exc:  # a bad request must not kill the conn
            record_span(
                f"fleet.{op}", t0, time.perf_counter(), cat="fleet",
                trace=ctx, error=type(exc).__name__,
                key=str(msg.get("key", "")),
            )
            return {"id": msg_id, "ok": False, "message": str(exc)}
        record_span(
            f"fleet.{op}", t0, time.perf_counter(), cat="fleet",
            trace=ctx, key=str(msg.get("key", "")),
        )
        return {"id": msg_id, "ok": True, **payload}

    def _op_ping(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True}

    def _op_get(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        entry = self.cache.get_key(str(msg["key"]))
        return {"entry": entry_to_dict(entry) if entry else None}

    def _op_put(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        key = str(msg["key"])
        entry = entry_from_dict(msg["entry"])
        self.cache.put_key(key, entry)
        self.cache.save()
        token = msg.get("token")
        with self._cond:
            # Only the lease holder's own publish clears the lease: an
            # uncoordinated put (token=None, e.g. a tune_schedule
            # re-measure of a cached key) must not cancel an active
            # holder that is still measuring and will publish its own
            # result.  Waiters are notified either way — the entry is
            # in the cache and they can adopt it.
            held = self._leases.get(key)
            if held is not None and token is not None and held[0] == token:
                del self._leases[key]
            self._cond.notify_all()
        return {"stored": True}

    def _lease_active_locked(self, key: str) -> bool:
        held = self._leases.get(key)
        if held is None:
            return False
        if held[1] <= time.monotonic():
            del self._leases[key]
            return False
        return True

    def _op_lease(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        key = str(msg["key"])
        if self.cache.get_key(key) is not None:
            # Already tuned; nothing to measure.  The client fetches.
            return {"token": None, "reason": "cached"}
        with self._cond:
            if self._lease_active_locked(key):
                return {"token": None, "reason": "held"}
            token = uuid.uuid4().hex
            deadline = time.monotonic() + self.config.lease_timeout
            self._leases[key] = (token, deadline)
        return {"token": token}

    def _op_renew(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        """Extend a held lease's deadline (heartbeat from a measuring
        worker whose tuning run outlives ``lease_timeout``)."""
        key = str(msg["key"])
        token = str(msg.get("token", ""))
        with self._cond:
            held = self._leases.get(key)
            if held is not None and held[0] == token:
                deadline = time.monotonic() + self.config.lease_timeout
                self._leases[key] = (token, deadline)
                return {"renewed": True}
        return {"renewed": False}

    def _op_release(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        key = str(msg["key"])
        token = str(msg.get("token", ""))
        with self._cond:
            held = self._leases.get(key)
            if held is not None and held[0] == token:
                del self._leases[key]
            self._cond.notify_all()
        return {"released": True}

    def _op_wait(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        key = str(msg["key"])
        timeout = float(msg.get("timeout", self.config.wait_timeout))
        deadline = time.monotonic() + max(timeout, 0.0)
        with self._cond:
            while True:
                entry = self.cache.get_key(key)
                if entry is not None:
                    return {"entry": entry_to_dict(entry)}
                if not self._lease_active_locked(key):
                    # Holder released/expired without publishing; let the
                    # waiter fall back to the heuristic immediately.
                    return {"entry": None, "reason": "abandoned"}
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._stopping.is_set():
                    return {"entry": None, "reason": "timeout"}
                self._cond.wait(min(remaining, 0.5))

    def _op_stats(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        with self._cond:
            ops = dict(self._ops)
            leases = sum(
                1 for key in list(self._leases)
                if self._lease_active_locked(key)
            )
        return {
            "stats": {
                "entries": len(self.cache),
                "leases": leases,
                "ops": ops,
                "uptime": time.monotonic() - self._started_at,
                "cache_path": self.cache.path,
            }
        }
