"""Online drift detection: notice when a tuned division stopped being
the right one, and re-tune off the hot path.

The gateway feeds per-workload service latencies into a
:class:`DriftMonitor` (one ``observe`` call per completed request —
O(1), lock-held for microseconds, never blocking the launch path).  The
monitor keeps, per workload:

* a **baseline** — median and p95 of the first full sample window after
  (re-)tuning: "how fast is this workload when its division is right";
* a rolling window plus an **EWMA** of recent latencies.

Drift is declared when the EWMA exceeds ``drift_threshold`` × the
baseline median *or* the window p95 exceeds ``drift_threshold`` × the
baseline p95 — the EWMA test catches a sustained shift, the percentile
test catches a fattened tail that leaves the mean alone.  A verdict
triggers the re-tune callback on a **background thread** (budgeted, see
``drift_budget``), at most once per ``drift_cooldown`` per workload;
when it completes, the workload's statistics reset so the new division
earns a fresh baseline.  Plan hot-swap itself rides the tuning
generation counter — the monitor never touches live launches.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Callable, Dict, Optional

from . import metrics
from .config import FleetConfig

__all__ = ["DriftMonitor", "WorkloadStats"]


def _percentile(values, q: float) -> float:
    data = sorted(values)
    if not data:
        return math.nan
    idx = min(len(data) - 1, max(0, int(round(q * (len(data) - 1)))))
    return data[idx]


class WorkloadStats:
    """Rolling latency statistics for one workload key."""

    def __init__(self, window: int, alpha: float):
        self.window = deque(maxlen=window)
        self.alpha = alpha
        self.ewma: Optional[float] = None
        self.baseline_median: Optional[float] = None
        self.baseline_p95: Optional[float] = None
        self.samples = 0
        self.last_retune = -math.inf

    def observe(self, seconds: float) -> None:
        self.samples += 1
        self.window.append(seconds)
        if self.ewma is None:
            self.ewma = seconds
        else:
            self.ewma += self.alpha * (seconds - self.ewma)
        if (
            self.baseline_median is None
            and len(self.window) == self.window.maxlen
        ):
            self.baseline_median = _percentile(self.window, 0.5)
            self.baseline_p95 = _percentile(self.window, 0.95)

    def drifted(self, threshold: float) -> bool:
        """EWMA-vs-median or p95-vs-p95 exceeding ``threshold``×."""
        if self.baseline_median is None or len(self.window) < self.window.maxlen:
            return False
        if self.baseline_median > 0 and self.ewma is not None:
            if self.ewma > threshold * self.baseline_median:
                return True
        if self.baseline_p95 and self.baseline_p95 > 0:
            if _percentile(self.window, 0.95) > threshold * self.baseline_p95:
                return True
        return False

    def reset(self) -> None:
        """Forget everything but the cooldown clock (called after a
        re-tune: the new division earns a fresh baseline)."""
        self.window.clear()
        self.ewma = None
        self.baseline_median = None
        self.baseline_p95 = None


class DriftMonitor:
    """Watches per-workload latency and triggers budgeted re-tunes.

    ``retune`` is the policy hook: called as ``retune(workload)`` on a
    daemon thread when drift is confirmed; whatever it does (usually an
    ``autotune(force=True, budget=config.drift_budget)``) must bump the
    tuning generation — the existing plan-cache plumbing then hot-swaps
    AUTO launches without touching requests already in flight.
    """

    def __init__(
        self,
        retune: Callable[[str], None],
        config: Optional[FleetConfig] = None,
    ):
        self.config = config or FleetConfig()
        self._retune = retune
        self._stats: Dict[str, WorkloadStats] = {}
        self._inflight: Dict[str, threading.Thread] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- hot path ------------------------------------------------------

    def observe(self, workload: str, seconds: float) -> None:
        """Feed one completed-request service latency; may *schedule* a
        re-tune but never runs one inline."""
        fire = False
        with self._lock:
            if self._closed:
                return
            stats = self._stats.get(workload)
            if stats is None:
                stats = WorkloadStats(
                    self.config.drift_window, self.config.drift_ewma_alpha
                )
                self._stats[workload] = stats
            stats.observe(seconds)
            if stats.drifted(self.config.drift_threshold):
                metrics.record_drift(workload, "detected")
                now = time.monotonic()
                if workload in self._inflight:
                    pass  # a re-tune is already running
                elif now - stats.last_retune < self.config.drift_cooldown:
                    metrics.record_drift(workload, "cooldown")
                else:
                    stats.last_retune = now
                    fire = True
        if fire:
            self._spawn(workload)

    # -- background re-tune --------------------------------------------

    def _spawn(self, workload: str) -> None:
        thread = threading.Thread(
            target=self._run_retune,
            args=(workload,),
            name=f"drift-retune-{workload}",
            daemon=True,
        )
        with self._lock:
            if self._closed or workload in self._inflight:
                return
            self._inflight[workload] = thread
        thread.start()

    def _run_retune(self, workload: str) -> None:
        started = time.monotonic()
        try:
            self._retune(workload)
            metrics.record_drift(workload, "retuned")
        except Exception:
            metrics.record_drift(workload, "failed")
        finally:
            metrics.record_retune_seconds(time.monotonic() - started)
            with self._lock:
                self._inflight.pop(workload, None)
                stats = self._stats.get(workload)
                if stats is not None:
                    stats.reset()

    # -- introspection / life cycle ------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """Per-workload view for stats endpoints and tests."""
        with self._lock:
            return {
                key: {
                    "samples": s.samples,
                    "ewma": s.ewma,
                    "baseline_median": s.baseline_median,
                    "baseline_p95": s.baseline_p95,
                    "retuning": key in self._inflight,
                }
                for key, s in self._stats.items()
            }

    def wait_idle(self, timeout: float = 10.0) -> bool:
        """Block until no re-tune is in flight (tests and shutdown)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                threads = list(self._inflight.values())
            if not threads:
                return True
            threads[0].join(timeout=0.05)
        return False

    def close(self) -> None:
        with self._lock:
            self._closed = True
        self.wait_idle(timeout=2.0)
