"""repro.tuning — work-division autotuning with a persistent cache.

Matthes, Widera, Zenker et al. (arXiv:1706.10086) show that the best
work division for a kernel is a property of the *(kernel, architecture,
problem-shape)* triple, found empirically once and reused.  This
subsystem reproduces that workflow on the simulated back-ends:

* :func:`autotune` — search the valid division space of a kernel on an
  accelerator/device for a problem extent, measure candidates through
  the real Task→Plan→Execute runtime, persist the winner in a JSON
  cache keyed on kernel identity, back-end, device fingerprint and
  bucketed extent.
* ``divide_work(extent, props, MappingStrategy.AUTO, ...)`` — the
  transparent entry point: returns the cached tuned division when one
  exists, else the Table 2 heuristic preferred by the back-end.
* :class:`~repro.core.workdiv.AutoWorkDiv` — a deferred division that a
  :class:`~repro.core.kernel.KernelTask` may carry instead of concrete
  extents; the launch runtime resolves it against the cache at plan
  time (:func:`resolve_work_div`), so applications can opt into tuned
  divisions without restructuring their launch code.

Resolution never measures: plan-time lookups are cache-or-heuristic
only.  Measurement happens only inside an explicit :func:`autotune`
call, which is where the cost is paid once.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from ..core.errors import InvalidWorkDiv, TuningFleetError
from ..core.properties import AccDevProps
from ..core.vec import Vec, as_vec
from ..core.workdiv import (
    AutoWorkDiv,
    MappingStrategy,
    WorkDivMembers,
    divide_work,
    validate_work_div,
)
from .cache import (
    CachedResult,
    TuningCache,
    default_cache,
    default_cache_path,
    device_fingerprint,
    kernel_id,
    reset_default_cache,
    TUNING_CACHE_ENV,
)
from .measure import MeasuredTime, measure_division, measure_task
from .search import (
    SEARCH_STRATEGIES,
    SearchResult,
    Trial,
    run_search,
)
from .space import (
    MAX_TOTAL_ELEMS,
    candidate_divisions,
    default_division,
    seed_divisions,
)

__all__ = [
    "autotune",
    "auto_divide",
    "resolve_work_div",
    "tuned_schedule",
    "TuningResult",
    "AutoWorkDiv",
    # space
    "candidate_divisions",
    "default_division",
    "seed_divisions",
    "MAX_TOTAL_ELEMS",
    # search
    "run_search",
    "SEARCH_STRATEGIES",
    "SearchResult",
    "Trial",
    # measure
    "measure_division",
    "measure_task",
    "MeasuredTime",
    # cache
    "TuningCache",
    "CachedResult",
    "default_cache",
    "reset_default_cache",
    "default_cache_path",
    "device_fingerprint",
    "kernel_id",
    "TUNING_CACHE_ENV",
]


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one :func:`autotune` call."""

    work_div: WorkDivMembers
    seconds: float
    #: True when the result came from the cache (zero launches spent).
    from_cache: bool
    #: "modeled" or "wall" — which clock produced ``seconds``.
    source: str
    #: Search strategy used ("cache" for a hit).
    strategy: str
    #: How many candidate divisions were measured.
    measurements: int
    #: Total kernel launches the tuning run spent.
    launches: int
    #: Candidates skipped via performance-model pruning.
    pruned: int
    #: The cache key the result is stored under.
    cache_key: str
    #: Every measured (division, seconds) pair, in measurement order.
    trials: Tuple[Trial, ...] = field(default_factory=tuple)
    #: Winning block schedule when ``tune_schedule=True`` compared
    #: schedulers for the winning division; None otherwise.
    schedule: Optional[str] = None
    #: Wall seconds per compared schedule (empty unless tuned).
    schedule_trials: Dict[str, float] = field(default_factory=dict)


def _refit_for_extent(
    wd: WorkDivMembers, ext: Vec, props: AccDevProps
) -> Optional[WorkDivMembers]:
    """Rebuild a cached division's grid so it covers ``ext``.

    Cache keys bucket extents to the next power of two, so a hit may
    have been tuned at a *smaller* extent in the same bucket — its
    block-thread and thread-element extents transfer (they are what was
    tuned), but its grid was sized with ``ceil_div`` against the
    tuning-time extent and would under-cover the request.  Returns
    ``None`` when the refitted division violates ``props`` (caller falls
    back to the heuristic or re-measures).
    """
    if wd.dim != ext.dim:
        return None
    per_block = wd.block_thread_extent * wd.thread_elem_extent
    grid = ext.ceil_div(per_block).max(1)
    refit = WorkDivMembers(grid, wd.block_thread_extent, wd.thread_elem_extent)
    try:
        validate_work_div(refit, props.for_dim(ext.dim))
    except InvalidWorkDiv:
        return None
    return refit


def _fleet_down(fleet) -> None:
    """A fleet transport died mid-conversation (daemon gone, socket
    reset): record it, drop the process-wide coordinator so the next
    autotune re-probes, and degrade *this* call to standalone tuning.
    An unreachable fleet removes shared convergence, never the tuning
    itself — :exc:`TuningFleetError` must not escape :func:`autotune`.
    Returns ``None`` so callers can write ``fleet = _fleet_down(fleet)``.
    """
    from .fleet import metrics
    from .fleet.coordinator import reset_coordinator

    metrics.record_op(getattr(fleet, "mode", "?"), "transport", "lost")
    reset_coordinator()
    return None


@contextlib.contextmanager
def _lease_heartbeat(fleet, key: str, token):
    """Keep a held measurement lease alive while the search runs.

    A tuning run that outlasts the fleet's ``lease_timeout`` (plausible
    for exhaustive or evolve searches over large spaces) must not have
    its lease broken mid-measurement: siblings would duplicate the work
    and waiters would bail to the heuristic while the winner is still
    working.  Refreshes at a third of the timeout; a refresh failure
    (daemon died, lease file already broken) just ends the heartbeat —
    the measurement itself proceeds and publishes standalone.
    """
    if fleet is None or token is None:
        yield
        return
    timeout = getattr(getattr(fleet, "config", None), "lease_timeout", 120.0)
    interval = max(timeout / 3.0, 0.05)
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(interval):
            try:
                fleet.refresh(key, token)
            except Exception:
                return

    thread = threading.Thread(
        target=beat, name="tuning-lease-heartbeat", daemon=True
    )
    thread.start()
    try:
        yield
    finally:
        stop.set()
        thread.join(timeout=1.0)


def autotune(
    kernel,
    acc_type,
    extent: Union[int, Sequence[int], Vec],
    args: Tuple = (),
    *,
    device=None,
    strategy: str = "exhaustive",
    budget: Optional[int] = None,
    warmup: int = 1,
    repeat: int = 3,
    cache: Optional[TuningCache] = None,
    save: bool = True,
    force: bool = False,
    shared_mem_bytes: int = 0,
    max_total_elems: int = MAX_TOTAL_ELEMS,
    max_block_threads: Optional[int] = None,
    seed: int = 0,
    tune_schedule: bool = False,
) -> TuningResult:
    """Find (or recall) the fastest work division for ``kernel`` on
    ``acc_type`` covering ``extent``.

    A cache hit returns immediately with zero kernel launches (observe
    it via ``from_cache`` or the runtime's ``CountingObserver``); pass
    ``force=True`` to re-measure regardless.  Otherwise every strategy
    measures the Table 2 seed divisions plus its share of the candidate
    space, so the result can only tie or beat the default heuristic.

    ``budget`` caps the number of measured candidates (``strategy=
    "random"`` plus a small budget is the cheap CI configuration);
    ``max_block_threads`` shrinks the *generated* space — useful on the
    functionally simulated GPU where every modeled thread is a host
    thread — while the seeds stay exempt.  ``args`` must be the real
    kernel arguments: candidates are executed, not just validated.

    ``tune_schedule=True`` adds the block-scheduling strategy to the
    candidate space: after the division search, the winning division is
    wall-clock-measured under every strategy its back-end can run
    (sequential / thread pool, the process pool when the back-end
    declares ``supports_process_blocks``, and the trace-vectorized
    ``compiled`` replay), and the winner is persisted with the entry —
    AUTO launches then pick it up at plan time.  With
    ``strategy="evolve"`` the schedule is part of the genome instead:
    the joint (division, schedule) space evolves in one run and no
    post-search sweep happens.

    With the fleet enabled (``REPRO_TUNING_FLEET=lock|daemon``, see
    :mod:`repro.tuning.fleet`), the measurement itself is coordinated
    across worker processes: exactly one worker per (kernel, back-end,
    device, extent-bucket) wins the lease and measures; the others
    adopt its published result (``strategy="fleet"``) or — if the
    winner takes too long — return the Table 2 heuristic immediately
    (``strategy="fleet-heuristic"``, zero measurements) and pick the
    winner up on the next tuning-generation bump.  A fleet transport
    that dies mid-call degrades that call to standalone tuning —
    :exc:`~repro.core.errors.TuningFleetError` never escapes here — a
    held lease is heartbeat-refreshed while the search runs, and a
    ``tune_schedule=True`` caller whose fleet entry lacks a stored
    schedule measures locally rather than starving on the heuristic.
    """
    ext = as_vec(extent)
    if device is None:
        from ..dev.manager import get_dev_by_idx

        device = get_dev_by_idx(acc_type)
    if cache is None:
        cache = default_cache()

    props = acc_type.get_acc_dev_props(device).for_dim(ext.dim)
    key = TuningCache.key(kernel, acc_type, device, ext)

    fleet = None
    if not force:
        from .fleet.coordinator import maybe_coordinator

        fleet = maybe_coordinator(cache)
        if fleet is not None:
            try:
                # Freshen the local view: a sibling may have tuned this
                # key since our cache last touched disk / the daemon.
                fleet.fetch(key)
            except TuningFleetError:
                fleet = _fleet_down(fleet)

    if not force:
        hit = cache.get(kernel, acc_type, device, ext)
        # A hit without a stored schedule cannot answer a
        # tune_schedule request; fall through and measure.
        if hit is not None and tune_schedule and hit.schedule is None:
            hit = None
        refit = (
            _refit_for_extent(hit.work_div, ext, props)
            if hit is not None
            else None
        )
        if refit is not None:
            return TuningResult(
                work_div=refit,
                seconds=hit.seconds,
                from_cache=True,
                source=hit.source,
                strategy="cache",
                measurements=0,
                launches=0,
                pruned=0,
                cache_key=key,
                schedule=hit.schedule,
            )

    fleet_token = None
    adopted = None
    if fleet is not None:
        try:
            fleet_token = fleet.try_lease(key)
            if fleet_token is None:
                adopted = fleet.wait_for(key)
                if adopted is None:
                    # The holder released (or died) without publishing —
                    # the lease may be free now; contend once more.
                    fleet_token = fleet.try_lease(key)
        except TuningFleetError:
            fleet = _fleet_down(fleet)
            fleet_token = None
            adopted = None
    if fleet is not None and fleet_token is None:
        schedule_gap = (
            adopted is not None
            and tune_schedule
            and adopted.schedule is None
        )
        if not schedule_gap:
            refit = (
                _refit_for_extent(adopted.work_div, ext, props)
                if adopted is not None
                else None
            )
            if refit is not None:
                return TuningResult(
                    work_div=refit,
                    seconds=adopted.seconds,
                    from_cache=True,
                    source=adopted.source,
                    strategy="fleet",
                    measurements=0,
                    launches=0,
                    pruned=0,
                    cache_key=key,
                    schedule=adopted.schedule,
                )
            # Waited the winner out: answer *now* with the Table 2
            # heuristic (zero measurements) — the winner's result
            # arrives later through the tuning-generation bump.
            return TuningResult(
                work_div=divide_work(
                    ext, props, acc_type.mapping_strategy
                ),
                seconds=float("nan"),
                from_cache=False,
                source="heuristic",
                strategy="fleet-heuristic",
                measurements=0,
                launches=0,
                pruned=0,
                cache_key=key,
            )
        # schedule_gap: the fleet's entry has no stored schedule and a
        # lease on an already-cached key is never granted, so waiting
        # would starve this tune_schedule caller on the heuristic
        # forever.  Ignore the fleet's entry for this call and measure
        # locally (the scheduled entry is published back below).

    candidates = candidate_divisions(
        ext,
        props,
        max_total_elems=max_total_elems,
        max_block_threads=max_block_threads,
    )
    n_seeds = len(seed_divisions(ext, props))

    from ..perfmodel import predict_launch_seconds

    predicted: Dict[WorkDivMembers, float] = {}
    for wd in candidates:
        p = predict_launch_seconds(kernel, acc_type, device, wd, args)
        if p is not None:
            predicted[wd] = p

    measured: Dict[WorkDivMembers, MeasuredTime] = {}

    def objective(wd: WorkDivMembers) -> float:
        try:
            mt = measure_division(
                kernel,
                acc_type,
                device,
                wd,
                args,
                shared_mem_bytes=shared_mem_bytes,
                warmup=warmup,
                repeat=repeat,
            )
        except Exception:
            # A division the kernel itself rejects (shared memory
            # overflow, shape assumptions...) scores infinitely slow
            # rather than aborting the search.
            return float("inf")
        measured[wd] = mt
        return mt.seconds

    extra = {"hof_label": key} if strategy == "evolve" else {}
    if strategy == "evolve" and tune_schedule:
        # Evolve searches the joint (division, schedule) space in one
        # run: the compiled replay, the pools and sequential dispatch
        # compete as genome values instead of a post-search sweep.
        candidates_sched = _schedule_candidates(acc_type)
        if candidates_sched:

            def schedule_objective(wd: WorkDivMembers, sched: str) -> float:
                try:
                    mt = measure_division(
                        kernel,
                        acc_type,
                        device,
                        wd,
                        args,
                        shared_mem_bytes=shared_mem_bytes,
                        warmup=warmup,
                        repeat=repeat,
                        schedule=sched,
                        clock="wall",
                    )
                except Exception:
                    return float("inf")
                measured[wd] = mt
                return mt.seconds

            extra["schedules"] = candidates_sched
            extra["schedule_objective"] = schedule_objective

    with _lease_heartbeat(fleet, key, fleet_token):
        try:
            result = run_search(
                strategy,
                candidates,
                objective,
                seeds=n_seeds,
                budget=budget,
                seed=seed,
                predicted=predicted or None,
                **extra,
            )
        except BaseException:
            # A failed search must not leave the fleet-wide measurement
            # lease dangling until it times out.
            if fleet is not None and fleet_token is not None:
                with contextlib.suppress(TuningFleetError):
                    fleet.release(key, fleet_token)
            raise

        best = result.best
        best_mt = measured[best.work_div]

        best_schedule: Optional[str] = getattr(
            result, "best_schedule", None
        )
        schedule_trials: Dict[str, float] = dict(
            getattr(result, "schedule_trials", {}) or {}
        )
        schedule_launches = 0
        if tune_schedule and best_schedule is None:
            candidates_sched = _schedule_candidates(acc_type)
            for sched in candidates_sched:
                try:
                    mt = measure_division(
                        kernel,
                        acc_type,
                        device,
                        best.work_div,
                        args,
                        shared_mem_bytes=shared_mem_bytes,
                        warmup=warmup,
                        repeat=repeat,
                        schedule=sched,
                        clock="wall",
                    )
                except Exception:
                    continue  # a strategy the launch rejects never wins
                schedule_trials[sched] = mt.seconds
                schedule_launches += mt.launches
            if schedule_trials:
                best_schedule = min(
                    schedule_trials, key=schedule_trials.get
                )

    entry = CachedResult(
        work_div=best.work_div,
        seconds=best.seconds,
        strategy=result.strategy,
        source=best_mt.source,
        schedule=best_schedule,
        measured_at=time.time(),
    )
    if fleet is not None:
        try:
            # Publish fleet-wide: persists through the coordinator and
            # releases the lease; siblings parked in wait_for() unblock
            # on this and adopt the entry.  The token is None for a
            # schedule-gap re-measure of an already-cached key — the
            # daemon then stores and notifies without touching leases.
            fleet.publish(key, entry, token=fleet_token)
        except TuningFleetError:
            fleet = _fleet_down(fleet)
    if fleet is None:
        cache.put(kernel, acc_type, device, ext, entry)
        if save:
            cache.save()

    return TuningResult(
        work_div=best.work_div,
        seconds=best.seconds,
        from_cache=False,
        source=best_mt.source,
        strategy=result.strategy,
        measurements=result.measurements + len(schedule_trials),
        launches=sum(mt.launches for mt in measured.values())
        + schedule_launches,
        pruned=result.pruned,
        cache_key=key,
        trials=tuple(result.trials),
        schedule=best_schedule,
        schedule_trials=schedule_trials,
    )


def _schedule_candidates(acc_type) -> Tuple[str, ...]:
    """Block schedules ``acc_type`` can legally run.

    Sequential back-ends (serial, fibers, the thread-level CPU
    back-ends) offer no choice — their block order is semantic.  Pooled
    back-ends choose between the caller's thread, the thread pool,
    — when single-thread blocks make it safe — the process pool, and
    the trace-vectorized compiled replay (which self-measures its own
    fallback-to-interpretation cost when the kernel cannot compile).
    """
    if getattr(acc_type, "block_schedule", "sequential") != "pooled":
        return ()
    cands = ["sequential", "pooled"]
    if getattr(acc_type, "supports_process_blocks", False):
        cands.append("processes")
    cands.append("compiled")
    return tuple(cands)


def auto_divide(
    extent: Union[int, Sequence[int], Vec],
    props: AccDevProps,
    *,
    kernel=None,
    acc_type=None,
    device=None,
    block_threads=None,
    thread_elems=None,
    cache: Optional[TuningCache] = None,
) -> WorkDivMembers:
    """The division behind ``MappingStrategy.AUTO``: tuned when known,
    heuristic otherwise — never a measurement.

    When ``kernel`` and ``acc_type`` identify a cache entry for this
    device (default device of ``acc_type`` when omitted), its tuned
    block/element extents win, with the grid rebuilt to cover *this*
    extent (hits serve a whole power-of-two bucket, so the stored grid
    may have been sized for a smaller problem).  Otherwise the back-end's
    preferred Table 2 mapping is used (falling back to thread-level when
    the device supports multi-thread blocks, block-level when not), with
    explicit ``block_threads`` / ``thread_elems`` overrides honoured.
    """
    from ..runtime.instrument import notify_tuning_cache

    ext = as_vec(extent)
    if kernel is not None and acc_type is not None:
        if device is None:
            from ..dev.manager import get_dev_by_idx

            device = get_dev_by_idx(acc_type)
        store = cache if cache is not None else default_cache()
        hit = store.get(kernel, acc_type, device, ext)
        if hit is not None:
            refit = _refit_for_extent(hit.work_div, ext, props)
            if refit is not None:
                notify_tuning_cache(kernel, acc_type, True)
                return refit
        # A stored winner whose division cannot be refit to this
        # extent counts as a miss: the heuristic serves the launch.
        notify_tuning_cache(kernel, acc_type, False)

    if acc_type is not None:
        mapping = acc_type.mapping_strategy
    elif props.for_dim(ext.dim).block_thread_count_max > 1:
        mapping = MappingStrategy.THREAD_LEVEL
    else:
        mapping = MappingStrategy.BLOCK_LEVEL
    return divide_work(
        ext,
        props,
        mapping,
        block_threads=block_threads,
        thread_elems=thread_elems,
    )


def resolve_work_div(task, device) -> WorkDivMembers:
    """Resolve a task's :class:`~repro.core.workdiv.AutoWorkDiv` into a
    concrete division at plan time (cache-or-heuristic, never measuring).

    Called by :func:`repro.runtime.plan.build_plan`; tasks carrying a
    concrete :class:`~repro.core.workdiv.WorkDivMembers` pass through
    untouched.
    """
    wd = task.work_div
    if not isinstance(wd, AutoWorkDiv):
        return wd
    props = task.acc_type.get_acc_dev_props(device)
    return auto_divide(
        wd.extent,
        props,
        kernel=task.kernel,
        acc_type=task.acc_type,
        device=device,
    )


def tuned_schedule(
    kernel,
    acc_type,
    device,
    extent,
    cache: Optional[TuningCache] = None,
) -> Optional[str]:
    """The block schedule a tuning run stored for this configuration,
    or None (back-end default).  A cache-only lookup — the plan layer
    calls it when resolving AUTO launches, so it must never measure."""
    store = cache if cache is not None else default_cache()
    hit = store.get(kernel, acc_type, device, extent)
    return hit.schedule if hit is not None else None
