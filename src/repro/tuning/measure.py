"""Measuring one work division: warmup + repeated launches through the
Task→Plan→Execute runtime.

A measurement must cost what a *real* launch costs, so candidates are
executed through the same pipeline the application uses — the plan
cache, the schedulers, the :class:`~repro.runtime.ExecutionObserver`
hooks all fire (the bench's ``launch_stats`` counters therefore count
tuning launches too, which is how the warm-cache acceptance check
"zero measurement launches" observes the tuner).

Two clocks, chosen automatically per kernel:

* **modeled** — kernels that describe themselves (``characteristics``)
  advance the device's simulated clock deterministically on every
  launch; the per-launch modeled seconds are the measurement.  This is
  the clock the paper-figure kernels use, and it makes tuning results
  reproducible run to run.
* **wall** — kernels without a model fall back to the shared
  warmup/repeat wall-clock loop (:func:`repro.acc.timing.measure`),
  best-of-``repeat`` after ``warmup`` launches.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Tuple

from ..acc.timing import measure
from ..core.kernel import create_task_kernel
from ..core.workdiv import WorkDivMembers
from ..telemetry.spans import sim_interval, span

__all__ = ["MeasuredTime", "measure_division", "measure_task"]


@contextmanager
def _forced_schedule(schedule: Optional[str]):
    """Pin ``REPRO_SCHEDULER`` for the duration of one measurement.

    The launch-plan cache folds the override into its key, so plans
    measured under a forced schedule never collide with plans of the
    surrounding application.
    """
    if schedule is None:
        yield
        return
    from ..runtime.scheduler import SCHEDULER_ENV

    prev = os.environ.get(SCHEDULER_ENV)
    os.environ[SCHEDULER_ENV] = schedule
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop(SCHEDULER_ENV, None)
        else:
            os.environ[SCHEDULER_ENV] = prev


@dataclass(frozen=True)
class MeasuredTime:
    """Outcome of measuring one division."""

    seconds: float
    #: "modeled" (simulated clock) or "wall" (host clock).
    source: str
    #: How many kernel launches the measurement spent.
    launches: int


def measure_task(
    task,
    device,
    *,
    queue=None,
    warmup: int = 1,
    repeat: int = 3,
    clock: str = "auto",
) -> MeasuredTime:
    """Measure one bound task on ``device`` (see module docstring).

    ``queue`` defaults to a fresh blocking queue on ``device``; pass
    one to order measurements into existing device work.  ``clock``:
    ``"auto"`` prefers the modeled clock when the kernel advances it,
    ``"wall"`` forces the host clock — the modeled clock derives from
    the work division alone, so comparing *block schedulers* (whose
    difference is purely host parallelism) must measure wall time.
    """
    if warmup < 1:
        raise ValueError(f"warmup must be >= 1, got {warmup}")
    if clock not in ("auto", "wall"):
        raise ValueError(f"clock must be 'auto' or 'wall', got {clock!r}")
    if queue is None:
        from ..queue import QueueBlocking

        queue = QueueBlocking(device)

    with span("tuning.measure", cat="tuning", device=device):
        # Warmup: fills the plan cache and, for self-describing kernels,
        # reveals the modeled per-launch cost on the simulated clock.
        # The shared telemetry helper reads the exact femtosecond
        # counter: identical launches must measure identical seconds no
        # matter how large the device clock has grown.
        with sim_interval(device) as elapsed:
            for _ in range(warmup):
                queue.enqueue(task)
        modeled = elapsed[0] / warmup

        if modeled > 0.0 and clock == "auto":
            # Deterministic clock: the warmup launches already *are*
            # the measurement; repeating would add identical samples.
            return MeasuredTime(
                seconds=modeled, source="modeled", launches=warmup
            )

        seconds = measure(lambda: queue.enqueue(task), warmup=0, repeat=repeat)
        return MeasuredTime(
            seconds=seconds, source="wall", launches=warmup + repeat
        )


def measure_division(
    kernel,
    acc_type,
    device,
    work_div: WorkDivMembers,
    args: Tuple = (),
    *,
    shared_mem_bytes: int = 0,
    queue=None,
    warmup: int = 1,
    repeat: int = 3,
    schedule: Optional[str] = None,
    clock: str = "auto",
) -> MeasuredTime:
    """Bind ``kernel`` to ``work_div`` and measure it — the autotuner's
    objective function.

    ``schedule`` pins the block-scheduling strategy for this measurement
    (``"sequential"`` / ``"pooled"`` / ``"processes"`` /
    ``"compiled"``); the schedule leg of the autotuner sweeps it with
    ``clock="wall"``.
    """
    task = create_task_kernel(
        acc_type, work_div, kernel, *args, shared_mem_bytes=shared_mem_bytes
    )
    with _forced_schedule(schedule):
        return measure_task(
            task, device, queue=queue, warmup=warmup, repeat=repeat,
            clock=clock,
        )
