"""Measuring one work division: warmup + repeated launches through the
Task→Plan→Execute runtime.

A measurement must cost what a *real* launch costs, so candidates are
executed through the same pipeline the application uses — the plan
cache, the schedulers, the :class:`~repro.runtime.ExecutionObserver`
hooks all fire (the bench's ``launch_stats`` counters therefore count
tuning launches too, which is how the warm-cache acceptance check
"zero measurement launches" observes the tuner).

Two clocks, chosen automatically per kernel:

* **modeled** — kernels that describe themselves (``characteristics``)
  advance the device's simulated clock deterministically on every
  launch; the per-launch modeled seconds are the measurement.  This is
  the clock the paper-figure kernels use, and it makes tuning results
  reproducible run to run.
* **wall** — kernels without a model fall back to the shared
  warmup/repeat wall-clock loop (:func:`repro.acc.timing.measure`),
  best-of-``repeat`` after ``warmup`` launches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..acc.timing import measure
from ..core.kernel import create_task_kernel
from ..core.workdiv import WorkDivMembers
from ..telemetry.spans import sim_interval, span

__all__ = ["MeasuredTime", "measure_division", "measure_task"]


@dataclass(frozen=True)
class MeasuredTime:
    """Outcome of measuring one division."""

    seconds: float
    #: "modeled" (simulated clock) or "wall" (host clock).
    source: str
    #: How many kernel launches the measurement spent.
    launches: int


def measure_task(
    task,
    device,
    *,
    queue=None,
    warmup: int = 1,
    repeat: int = 3,
) -> MeasuredTime:
    """Measure one bound task on ``device`` (see module docstring).

    ``queue`` defaults to a fresh blocking queue on ``device``; pass
    one to order measurements into existing device work.
    """
    if warmup < 1:
        raise ValueError(f"warmup must be >= 1, got {warmup}")
    if queue is None:
        from ..queue import QueueBlocking

        queue = QueueBlocking(device)

    with span("tuning.measure", cat="tuning", device=device):
        # Warmup: fills the plan cache and, for self-describing kernels,
        # reveals the modeled per-launch cost on the simulated clock.
        # The shared telemetry helper reads the exact femtosecond
        # counter: identical launches must measure identical seconds no
        # matter how large the device clock has grown.
        with sim_interval(device) as elapsed:
            for _ in range(warmup):
                queue.enqueue(task)
        modeled = elapsed[0] / warmup

        if modeled > 0.0:
            # Deterministic clock: the warmup launches already *are*
            # the measurement; repeating would add identical samples.
            return MeasuredTime(
                seconds=modeled, source="modeled", launches=warmup
            )

        seconds = measure(lambda: queue.enqueue(task), warmup=0, repeat=repeat)
        return MeasuredTime(
            seconds=seconds, source="wall", launches=warmup + repeat
        )


def measure_division(
    kernel,
    acc_type,
    device,
    work_div: WorkDivMembers,
    args: Tuple = (),
    *,
    shared_mem_bytes: int = 0,
    queue=None,
    warmup: int = 1,
    repeat: int = 3,
) -> MeasuredTime:
    """Bind ``kernel`` to ``work_div`` and measure it — the autotuner's
    objective function."""
    task = create_task_kernel(
        acc_type, work_div, kernel, *args, shared_mem_bytes=shared_mem_bytes
    )
    return measure_task(
        task, device, queue=queue, warmup=warmup, repeat=repeat
    )
