"""Persistent autotuning results: tuned once, fast everywhere after.

The cache maps ``kernel id | accelerator | device fingerprint |
bucketed extent`` to the winning :class:`~repro.core.workdiv.WorkDivMembers`
and its measured seconds.  It is a small JSON file — human-readable,
diffable, shippable with an application — whose location defaults to
``.repro-tuning-cache.json`` in the working directory and is overridden
by the ``REPRO_TUNING_CACHE`` environment variable.

Keys are deliberately coarse on the extent axis: extents bucket to the
next power of two per dimension, because the best division is a
property of the *shape class* of a problem, not of each individual
size (Matthes et al. 2017 tune per architecture, then reuse).  Keys are
deliberately precise on the device axis: the fingerprint folds in the
machine model's identity, core geometry and clock, so a cache produced
on one modeled machine never misleads another.

Corrupt or unreadable cache files are treated as empty (a tuner must
never fail because a cache rotted); writes are atomic
(write-temp-then-rename) so a crash mid-save cannot destroy earlier
results.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

from ..core.vec import Vec, as_vec
from ..core.workdiv import WorkDivMembers

__all__ = [
    "TUNING_CACHE_ENV",
    "DEFAULT_CACHE_FILENAME",
    "CACHE_FORMAT_VERSION",
    "CachedResult",
    "TuningCache",
    "default_cache",
    "reset_default_cache",
    "default_cache_path",
    "device_fingerprint",
    "kernel_id",
    "bucket_extent",
    "tuning_generation",
]

#: Environment variable overriding where the tuning cache lives.
TUNING_CACHE_ENV = "REPRO_TUNING_CACHE"

#: Default cache file, created in the current working directory.
DEFAULT_CACHE_FILENAME = ".repro-tuning-cache.json"

#: Bumped when the on-disk schema changes; mismatching files are
#: treated as empty rather than misread.
CACHE_FORMAT_VERSION = 1


_generation = 0
_generation_lock = threading.Lock()


def tuning_generation() -> int:
    """Monotonic counter bumped whenever any :class:`TuningCache` stores
    or drops entries in this process.

    The launch-plan cache folds it into its key for AUTO tasks, so plans
    resolved before a tuning run cannot outlive the run and keep serving
    the pre-tuning heuristic division.
    """
    return _generation


def _bump_generation() -> None:
    global _generation
    with _generation_lock:
        _generation += 1


def default_cache_path() -> str:
    """The resolved cache location: ``$REPRO_TUNING_CACHE`` when set,
    else :data:`DEFAULT_CACHE_FILENAME` in the working directory."""
    env = os.environ.get(TUNING_CACHE_ENV)
    if env:
        return env
    return os.path.join(os.getcwd(), DEFAULT_CACHE_FILENAME)


def kernel_id(kernel) -> str:
    """A stable string identity for a kernel callable.

    Functions key by qualified name; kernel *instances* key by their
    class (two ``GemmTilingKernel()`` objects share tuning results —
    the division depends on the algorithm, not the instance).  Lambdas
    and nested functions all share qualnames like ``module.<lambda>`` /
    ``outer.<locals>.inner``, so they additionally key by definition
    site (file and first line) — distinct kernels must never serve each
    other's tuned divisions.
    """
    if not callable(kernel):
        raise TypeError(f"kernel must be callable, got {kernel!r}")
    target = kernel if hasattr(kernel, "__qualname__") else type(kernel)
    module = getattr(target, "__module__", "?")
    qualname = getattr(target, "__qualname__", target.__name__)
    ident = f"{module}.{qualname}"
    if "<lambda>" in qualname or "<locals>" in qualname:
        code = getattr(target, "__code__", None)
        if code is not None:
            ident += f"@{code.co_filename}:{code.co_firstlineno}"
    return ident


def device_fingerprint(device) -> str:
    """Identity of the hardware a measurement is valid for.

    Folds the machine model's key, geometry and clock — enough that a
    cache tuned against one modeled machine (or one host core count)
    never serves another.
    """
    spec = device.spec
    return (
        f"{spec.key}:{spec.kind}:{spec.device_count}x{spec.cores_per_device}"
        f"@{spec.clock_ghz:g}GHz"
    )


def bucket_extent(extent: Union[int, Sequence[int], Vec]) -> str:
    """Round each extent component up to the next power of two.

    The bucket is the cache's extent granularity: a division tuned for
    a 1000-wide problem serves the whole (512, 1024] class.
    """
    ext = as_vec(extent)
    comps = []
    for c in ext:
        p = 1
        while p < c:
            p *= 2
        comps.append(str(p))
    return "x".join(comps)


@dataclass(frozen=True)
class CachedResult:
    """One persisted tuning outcome."""

    work_div: WorkDivMembers
    seconds: float
    #: Search strategy that produced the entry ("exhaustive", ...).
    strategy: str
    #: "modeled" (simulated clock) or "wall" (host clock).
    source: str
    #: Winning block-scheduling strategy ("sequential" / "pooled" /
    #: "processes") when the tuning run compared schedulers
    #: (``autotune(tune_schedule=True)``); None means "back-end
    #: default" and keeps old cache files readable.
    schedule: Optional[str] = None


def _entry_to_dict(entry: CachedResult) -> dict:
    wd = entry.work_div
    data = {
        "grid": list(wd.grid_block_extent),
        "block": list(wd.block_thread_extent),
        "elems": list(wd.thread_elem_extent),
        "seconds": entry.seconds,
        "strategy": entry.strategy,
        "source": entry.source,
    }
    if entry.schedule is not None:
        data["schedule"] = entry.schedule
    return data


def _entry_from_dict(data: dict) -> CachedResult:
    wd = WorkDivMembers(
        Vec(*data["grid"]), Vec(*data["block"]), Vec(*data["elems"])
    )
    schedule = data.get("schedule")
    return CachedResult(
        work_div=wd,
        seconds=float(data["seconds"]),
        strategy=str(data.get("strategy", "?")),
        source=str(data.get("source", "?")),
        schedule=str(schedule) if schedule is not None else None,
    )


class TuningCache:
    """JSON-backed map from tuning keys to winning work divisions.

    Thread-safe; loads lazily on first access and tolerates a missing,
    empty or corrupt file.  ``path=None`` resolves through
    :func:`default_cache_path` *at each load/save*, so tests and users
    can retarget via ``REPRO_TUNING_CACHE`` without rebuilding the
    object.
    """

    def __init__(self, path: Optional[str] = None):
        self._path = path
        self._entries: Dict[str, CachedResult] = {}
        self._loaded = False
        self._lock = threading.Lock()

    @property
    def path(self) -> str:
        return self._path if self._path is not None else default_cache_path()

    # -- keys ----------------------------------------------------------

    @staticmethod
    def key(kernel, acc_type, device, extent) -> str:
        return "|".join(
            (
                kernel_id(kernel),
                acc_type.name,
                device_fingerprint(device),
                bucket_extent(extent),
            )
        )

    # -- persistence ---------------------------------------------------

    def _load_locked(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        try:
            with open(self.path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return
        if not isinstance(data, dict):
            return
        if data.get("version") != CACHE_FORMAT_VERSION:
            return
        entries = data.get("entries")
        if not isinstance(entries, dict):
            return
        for key, raw in entries.items():
            try:
                self._entries[key] = _entry_from_dict(raw)
            except (KeyError, TypeError, ValueError):
                continue  # skip individually rotten entries

    def save(self) -> str:
        """Write the cache atomically; returns the path written."""
        with self._lock:
            self._load_locked()
            payload = {
                "version": CACHE_FORMAT_VERSION,
                "entries": {
                    k: _entry_to_dict(v)
                    for k, v in sorted(self._entries.items())
                },
            }
            path = self.path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=".repro-tuning-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # -- access --------------------------------------------------------

    def get(self, kernel, acc_type, device, extent) -> Optional[CachedResult]:
        key = self.key(kernel, acc_type, device, extent)
        with self._lock:
            self._load_locked()
            return self._entries.get(key)

    def put(
        self,
        kernel,
        acc_type,
        device,
        extent,
        result: CachedResult,
    ) -> str:
        """Store ``result``; returns the key written (not yet saved —
        call :meth:`save` to persist)."""
        key = self.key(kernel, acc_type, device, extent)
        with self._lock:
            self._load_locked()
            self._entries[key] = result
        _bump_generation()
        return key

    def clear(self) -> None:
        """Drop the in-memory entries (the file is untouched until
        :meth:`save`)."""
        with self._lock:
            self._entries.clear()
            self._loaded = True
        _bump_generation()

    def __len__(self) -> int:
        with self._lock:
            self._load_locked()
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            self._load_locked()
            return key in self._entries


_default_cache: Optional[TuningCache] = None
_default_cache_lock = threading.Lock()


def default_cache() -> TuningCache:
    """The process-wide cache instance backed by the default path."""
    global _default_cache
    with _default_cache_lock:
        if _default_cache is None:
            _default_cache = TuningCache()
        return _default_cache


def reset_default_cache() -> None:
    """Forget the process-wide instance (tests switching
    ``REPRO_TUNING_CACHE`` call this to re-resolve the path)."""
    global _default_cache
    with _default_cache_lock:
        _default_cache = None
    _bump_generation()
