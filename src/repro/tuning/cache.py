"""Persistent autotuning results: tuned once, fast everywhere after.

The cache maps ``kernel id | accelerator | device fingerprint |
bucketed extent`` to the winning :class:`~repro.core.workdiv.WorkDivMembers`
and its measured seconds.  It is a small JSON file — human-readable,
diffable, shippable with an application — whose location defaults to
``.repro-tuning-cache.json`` in the working directory and is overridden
by the ``REPRO_TUNING_CACHE`` environment variable.

Keys are deliberately coarse on the extent axis: extents bucket to the
next power of two per dimension, because the best division is a
property of the *shape class* of a problem, not of each individual
size (Matthes et al. 2017 tune per architecture, then reuse).  Keys are
deliberately precise on the device axis: the fingerprint folds in the
machine model's identity, core geometry and clock, so a cache produced
on one modeled machine never misleads another.

Corrupt or unreadable cache files warn once and are treated as empty (a
tuner must never fail because a cache rotted); writes are atomic
(write-temp-then-rename) and **merge-on-write** under an advisory file
lock, so a crash mid-save cannot destroy earlier results and concurrent
writer processes storing different kernels cannot silently drop each
other's entries (the pre-fleet read-modify-write was last-writer-wins).
Conflicting keys resolve to the entry with the newest ``measured_at``
stamp, so a fresh re-tune is never reverted by a process still holding
the superseded result in memory.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
import warnings
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Union

try:  # advisory locking is POSIX-only; elsewhere saves stay best-effort
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts
    fcntl = None

from ..core.vec import Vec, as_vec
from ..core.workdiv import WorkDivMembers

__all__ = [
    "TUNING_CACHE_ENV",
    "DEFAULT_CACHE_FILENAME",
    "CACHE_FORMAT_VERSION",
    "CachedResult",
    "TuningCache",
    "default_cache",
    "reset_default_cache",
    "default_cache_path",
    "device_fingerprint",
    "kernel_id",
    "bucket_extent",
    "tuning_generation",
    "bump_tuning_generation",
    "entry_to_dict",
    "entry_from_dict",
    "file_lock",
]

#: Environment variable overriding where the tuning cache lives.
TUNING_CACHE_ENV = "REPRO_TUNING_CACHE"

#: Default cache file, created in the current working directory.
DEFAULT_CACHE_FILENAME = ".repro-tuning-cache.json"

#: Bumped when the on-disk schema changes; mismatching files are
#: treated as empty rather than misread.
CACHE_FORMAT_VERSION = 1


_generation = 0
_generation_lock = threading.Lock()


def tuning_generation() -> int:
    """Monotonic counter bumped whenever any :class:`TuningCache` stores
    or drops entries in this process.

    The launch-plan cache folds it into its key for AUTO tasks, so plans
    resolved before a tuning run cannot outlive the run and keep serving
    the pre-tuning heuristic division.
    """
    return _generation


def _bump_generation() -> None:
    global _generation
    with _generation_lock:
        _generation += 1


def bump_tuning_generation() -> None:
    """Invalidate every AUTO launch plan resolved so far.

    The fleet layer calls this when a *remote* tuning result is adopted
    (daemon push, file re-read): the local cache gained an entry without
    going through :meth:`TuningCache.put`, and plans resolved against
    the pre-adoption state must not survive it."""
    _bump_generation()


@contextlib.contextmanager
def file_lock(path: str, *, exclusive: bool = True) -> Iterator[None]:
    """Advisory inter-process lock on ``path`` (a sidecar ``.lock`` file).

    Serialises cache writers across *processes* — the merge-on-write in
    :meth:`TuningCache.save` and the fleet coordinator's lease bookkeeping
    both take it.  Reentrant use within one process is the caller's
    responsibility; on platforms without :mod:`fcntl` the lock degrades
    to a no-op (single-process semantics are still covered by the
    in-object mutex).
    """
    lock_path = path + ".lock"
    directory = os.path.dirname(os.path.abspath(lock_path))
    os.makedirs(directory, exist_ok=True)
    if fcntl is None:  # pragma: no cover - non-POSIX hosts
        yield
        return
    fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
        yield
    finally:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)


def default_cache_path() -> str:
    """The resolved cache location: ``$REPRO_TUNING_CACHE`` when set,
    else :data:`DEFAULT_CACHE_FILENAME` in the working directory."""
    env = os.environ.get(TUNING_CACHE_ENV)
    if env:
        return env
    return os.path.join(os.getcwd(), DEFAULT_CACHE_FILENAME)


def kernel_id(kernel) -> str:
    """A stable string identity for a kernel callable.

    Functions key by qualified name; kernel *instances* key by their
    class (two ``GemmTilingKernel()`` objects share tuning results —
    the division depends on the algorithm, not the instance).  Lambdas
    and nested functions all share qualnames like ``module.<lambda>`` /
    ``outer.<locals>.inner``, so they additionally key by definition
    site (file and first line) — distinct kernels must never serve each
    other's tuned divisions.
    """
    if not callable(kernel):
        raise TypeError(f"kernel must be callable, got {kernel!r}")
    target = kernel if hasattr(kernel, "__qualname__") else type(kernel)
    module = getattr(target, "__module__", "?")
    qualname = getattr(target, "__qualname__", target.__name__)
    ident = f"{module}.{qualname}"
    if "<lambda>" in qualname or "<locals>" in qualname:
        code = getattr(target, "__code__", None)
        if code is not None:
            ident += f"@{code.co_filename}:{code.co_firstlineno}"
    return ident


def device_fingerprint(device) -> str:
    """Identity of the hardware a measurement is valid for.

    Folds the machine model's key, geometry and clock — enough that a
    cache tuned against one modeled machine (or one host core count)
    never serves another.
    """
    spec = device.spec
    return (
        f"{spec.key}:{spec.kind}:{spec.device_count}x{spec.cores_per_device}"
        f"@{spec.clock_ghz:g}GHz"
    )


def bucket_extent(extent: Union[int, Sequence[int], Vec]) -> str:
    """Round each extent component up to the next power of two.

    The bucket is the cache's extent granularity: a division tuned for
    a 1000-wide problem serves the whole (512, 1024] class.
    """
    ext = as_vec(extent)
    comps = []
    for c in ext:
        p = 1
        while p < c:
            p *= 2
        comps.append(str(p))
    return "x".join(comps)


@dataclass(frozen=True)
class CachedResult:
    """One persisted tuning outcome."""

    work_div: WorkDivMembers
    seconds: float
    #: Search strategy that produced the entry ("exhaustive", ...).
    strategy: str
    #: "modeled" (simulated clock) or "wall" (host clock).
    source: str
    #: Winning block-scheduling strategy ("sequential" / "pooled" /
    #: "processes") when the tuning run compared schedulers
    #: (``autotune(tune_schedule=True)``); None means "back-end
    #: default" and keeps old cache files readable.
    schedule: Optional[str] = None
    #: Wall-clock ``time.time()`` when the measurement finished; 0.0 for
    #: entries from pre-timestamp cache files.  Arbitrates merge
    #: conflicts: the *newest* measurement wins on :meth:`TuningCache.save`
    #: and :meth:`TuningCache.reload`, so a drift-driven re-tune cannot
    #: be silently reverted by a sibling process whose in-memory cache
    #: still holds the superseded entry.
    measured_at: float = 0.0


def _entry_to_dict(entry: CachedResult) -> dict:
    wd = entry.work_div
    data = {
        "grid": list(wd.grid_block_extent),
        "block": list(wd.block_thread_extent),
        "elems": list(wd.thread_elem_extent),
        "seconds": entry.seconds,
        "strategy": entry.strategy,
        "source": entry.source,
    }
    if entry.schedule is not None:
        data["schedule"] = entry.schedule
    if entry.measured_at:
        data["measured_at"] = entry.measured_at
    return data


def _entry_from_dict(data: dict) -> CachedResult:
    wd = WorkDivMembers(
        Vec(*data["grid"]), Vec(*data["block"]), Vec(*data["elems"])
    )
    schedule = data.get("schedule")
    return CachedResult(
        work_div=wd,
        seconds=float(data["seconds"]),
        strategy=str(data.get("strategy", "?")),
        source=str(data.get("source", "?")),
        schedule=str(schedule) if schedule is not None else None,
        measured_at=float(data.get("measured_at", 0.0)),
    )


#: Public names for the wire/disk form of one entry — the fleet daemon
#: ships :class:`CachedResult` values over its JSON-lines protocol in
#: exactly the on-disk schema.
entry_to_dict = _entry_to_dict
entry_from_dict = _entry_from_dict


class TuningCache:
    """JSON-backed map from tuning keys to winning work divisions.

    Thread-safe; loads lazily on first access and tolerates a missing,
    empty or corrupt file.  ``path=None`` resolves through
    :func:`default_cache_path` *at each load/save*, so tests and users
    can retarget via ``REPRO_TUNING_CACHE`` without rebuilding the
    object.
    """

    def __init__(self, path: Optional[str] = None):
        self._path = path
        self._entries: Dict[str, CachedResult] = {}
        self._loaded = False
        self._lock = threading.Lock()
        # A clear() is an explicit drop: the next save must NOT merge the
        # dropped entries back in from disk.
        self._cleared = False

    @property
    def path(self) -> str:
        return self._path if self._path is not None else default_cache_path()

    # -- keys ----------------------------------------------------------

    @staticmethod
    def key(kernel, acc_type, device, extent) -> str:
        return "|".join(
            (
                kernel_id(kernel),
                acc_type.name,
                device_fingerprint(device),
                bucket_extent(extent),
            )
        )

    # -- persistence ---------------------------------------------------

    @staticmethod
    def _read_entries(path: str, *, warn: bool) -> Optional[Dict[str, CachedResult]]:
        """Parse the on-disk entry map, or ``None`` when nothing usable
        is there.  A *present but rotten* file warns (``warn=True``) —
        starting fresh silently hides operational problems like a disk
        filling up mid-write — while a missing file stays silent."""
        try:
            with open(path) as fh:
                raw = fh.read()
        except FileNotFoundError:
            return None
        except OSError as exc:
            if warn:
                warnings.warn(
                    f"tuning cache {path!r} is unreadable ({exc}); "
                    "starting fresh",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return None
        try:
            data = json.loads(raw)
        except ValueError as exc:
            if warn:
                warnings.warn(
                    f"tuning cache {path!r} is corrupt or truncated "
                    f"({exc}); starting fresh",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return None
        if (
            not isinstance(data, dict)
            or data.get("version") != CACHE_FORMAT_VERSION
            or not isinstance(data.get("entries"), dict)
        ):
            if warn and data != {} and raw.strip():
                warnings.warn(
                    f"tuning cache {path!r} has an unrecognised schema "
                    f"(expected version {CACHE_FORMAT_VERSION}); "
                    "starting fresh",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return None
        out: Dict[str, CachedResult] = {}
        for key, raw_entry in data["entries"].items():
            try:
                out[key] = _entry_from_dict(raw_entry)
            except (KeyError, TypeError, ValueError):
                continue  # skip individually rotten entries
        return out

    def _load_locked(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        entries = self._read_entries(self.path, warn=True)
        if entries:
            self._entries.update(entries)

    def save(self) -> str:
        """Write the cache atomically; returns the path written.

        The write **merges on-disk entries** it does not know about (and
        does so under an advisory file lock), so two processes that each
        tuned a different kernel both keep their results no matter the
        save order.  Conflicting keys are arbitrated by ``measured_at``:
        the newer measurement wins, ties keep the in-memory entry — so a
        sibling whose in-memory cache lags a fleet re-tune cannot write
        the superseded entry back over the fresh one.  After an explicit
        :meth:`clear` the next save skips the merge once: a clear must
        actually drop entries, not resurrect them from disk.
        """
        with self._lock:
            self._load_locked()
            path = self.path
            skip_merge = self._cleared
        adopted = 0
        with file_lock(path):
            with self._lock:
                if not skip_merge:
                    disk = self._read_entries(path, warn=False) or {}
                    for key, entry in disk.items():
                        mine = self._entries.get(key)
                        if mine is None or (
                            entry != mine
                            and entry.measured_at > mine.measured_at
                        ):
                            self._entries[key] = entry
                            adopted += 1
                self._cleared = False
                payload = {
                    "version": CACHE_FORMAT_VERSION,
                    "entries": {
                        k: _entry_to_dict(v)
                        for k, v in sorted(self._entries.items())
                    },
                }
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".repro-tuning-", suffix=".tmp", dir=directory
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(payload, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        if adopted:
            # Entries adopted from a sibling process change what AUTO
            # launches resolve to; invalidate pre-merge plans.
            _bump_generation()
        return path

    def reload(self) -> int:
        """Re-read the file and adopt entries this process has not seen,
        plus strictly *newer* measurements of keys it has (same
        ``measured_at`` arbitration as :meth:`save`); returns how many
        were adopted.  An in-memory entry at least as new as the disk's
        is never dropped — a concurrent writer's file may lag this
        process's put()s.

        The fleet coordinator polls this in file-lock mode so workers
        that lost a tuning race pick the winner up from disk."""
        with self._lock:
            self._loaded = True
            disk = self._read_entries(self.path, warn=False) or {}
            adopted = 0
            for key, entry in disk.items():
                mine = self._entries.get(key)
                if mine is None or (
                    entry != mine and entry.measured_at > mine.measured_at
                ):
                    self._entries[key] = entry
                    adopted += 1
        if adopted:
            _bump_generation()
        return adopted

    # -- access --------------------------------------------------------

    def get(self, kernel, acc_type, device, extent) -> Optional[CachedResult]:
        key = self.key(kernel, acc_type, device, extent)
        with self._lock:
            self._load_locked()
            return self._entries.get(key)

    def put(
        self,
        kernel,
        acc_type,
        device,
        extent,
        result: CachedResult,
    ) -> str:
        """Store ``result``; returns the key written (not yet saved —
        call :meth:`save` to persist)."""
        key = self.key(kernel, acc_type, device, extent)
        with self._lock:
            self._load_locked()
            self._entries[key] = result
        _bump_generation()
        return key

    def get_key(self, key: str) -> Optional[CachedResult]:
        """Entry under a pre-computed cache ``key`` (the fleet daemon
        and coordinator work with raw keys — they have no kernel
        object)."""
        with self._lock:
            self._load_locked()
            return self._entries.get(key)

    def put_key(self, key: str, result: CachedResult) -> str:
        """Store ``result`` under a pre-computed cache ``key`` (not yet
        saved — call :meth:`save` to persist)."""
        with self._lock:
            self._load_locked()
            self._entries[key] = result
        _bump_generation()
        return key

    def entries_snapshot(self) -> Dict[str, CachedResult]:
        """A point-in-time copy of every entry, keyed by cache key."""
        with self._lock:
            self._load_locked()
            return dict(self._entries)

    def clear(self) -> None:
        """Drop the in-memory entries (the file is untouched until
        :meth:`save`, which then drops them on disk too instead of
        merging them back)."""
        with self._lock:
            self._entries.clear()
            self._loaded = True
            self._cleared = True
        _bump_generation()

    def __len__(self) -> int:
        with self._lock:
            self._load_locked()
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            self._load_locked()
            return key in self._entries


_default_cache: Optional[TuningCache] = None
_default_cache_lock = threading.Lock()


def default_cache() -> TuningCache:
    """The process-wide cache instance backed by the default path."""
    global _default_cache
    with _default_cache_lock:
        if _default_cache is None:
            _default_cache = TuningCache()
        return _default_cache


def reset_default_cache() -> None:
    """Forget the process-wide instance (tests switching
    ``REPRO_TUNING_CACHE`` call this to re-resolve the path)."""
    global _default_cache
    with _default_cache_lock:
        _default_cache = None
    _bump_generation()
