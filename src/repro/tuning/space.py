"""Candidate work divisions: the search space of the autotuner.

The space of a problem extent on a device is the cross product of

* a **mapping** (paper Table 2: thread-level or block-level),
* a **block extent** — power-of-two thread counts factored over the two
  fastest axes (the axes the default divider fills), and
* an **element extent** — power-of-two per-thread boxes over the same
  axes, capped by ``max_total_elems``,

pre-filtered through :func:`~repro.core.workdiv.validate_work_div`
against the device's :class:`~repro.core.properties.AccDevProps`, so a
search strategy never spends a measurement on a division the device
would reject.  The library's own Table 2 heuristic divisions are always
seeded into the space first: whatever the search does, the tuned result
can only tie or beat the default (Matthes et al. 2017 make the same
guarantee by including the reference configuration in every sweep).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..core.errors import InvalidWorkDiv
from ..core.properties import AccDevProps
from ..core.vec import Vec, as_vec
from ..core.workdiv import (
    MappingStrategy,
    WorkDivMembers,
    divide_work,
    validate_work_div,
)

__all__ = [
    "candidate_divisions",
    "default_division",
    "seed_divisions",
    "MAX_TOTAL_ELEMS",
]

#: Default cap on the per-thread element count a candidate may use.
MAX_TOTAL_ELEMS = 256


def _pow2s_up_to(n: int) -> List[int]:
    """``[1, 2, 4, ...]`` up to and including the largest power <= n."""
    out = []
    p = 1
    while p <= n:
        out.append(p)
        p *= 2
    return out


def default_division(
    extent: Union[int, Sequence[int], Vec],
    props: AccDevProps,
    mapping: MappingStrategy,
) -> Optional[WorkDivMembers]:
    """The library's Table 2 heuristic division for ``mapping``, or
    ``None`` when the device cannot realise it (e.g. a thread-level
    mapping on a 1-thread-per-block back-end is the same division as the
    block-level one, never an error)."""
    try:
        return divide_work(extent, props, mapping)
    except InvalidWorkDiv:
        return None


def seed_divisions(
    extent: Union[int, Sequence[int], Vec], props: AccDevProps
) -> List[WorkDivMembers]:
    """The heuristic divisions every search measures first: the Table 2
    mapping of each strategy the device supports, deduplicated."""
    seeds: List[WorkDivMembers] = []
    for mapping in (MappingStrategy.THREAD_LEVEL, MappingStrategy.BLOCK_LEVEL):
        wd = default_division(extent, props, mapping)
        if wd is not None and wd not in seeds:
            seeds.append(wd)
    return seeds


def _block_shapes(
    dim: int, total: int, props: AccDevProps, work: Vec
) -> Iterator[Vec]:
    """Block extents with ``total`` threads factored over the two
    fastest axes (slower axes stay 1, matching the default divider)."""
    fast = dim - 1
    emitted = set()
    for fast_threads in _pow2s_up_to(total):
        rest = total // fast_threads
        if fast_threads * rest != total:
            continue
        b = Vec.ones(dim).with_component(fast, fast_threads)
        if dim >= 2:
            b = b.with_component(fast - 1, rest)
        elif rest != 1:
            continue  # 1-d: all threads must sit on the only axis
        if not all(
            b[a] <= props.block_thread_extent_max[a] for a in range(dim)
        ):
            continue
        # A block axis wider than the work along it only adds idle
        # threads; the clamped shape is already in the space.
        if not all(b[a] <= max(1, work[a]) for a in range(dim)):
            continue
        if b not in emitted:
            emitted.add(b)
            yield b


def _elem_shapes(
    dim: int,
    extent: Vec,
    props: AccDevProps,
    max_total: int,
) -> Iterator[Vec]:
    """Per-thread element boxes: powers of two over the two fastest
    axes, capped by the device limit, the extent and ``max_total``."""
    fast = dim - 1
    fast_cap = min(props.thread_elem_extent_max[fast], extent[fast], max_total)
    slow_caps: List[int] = []
    if dim >= 2:
        slow = fast - 1
        slow_caps = _pow2s_up_to(
            min(props.thread_elem_extent_max[slow], extent[slow], max_total)
        )
    else:
        slow_caps = [1]
    emitted = set()
    for fast_elems in _pow2s_up_to(fast_cap):
        for slow_elems in slow_caps:
            if fast_elems * slow_elems > max_total:
                continue
            v = Vec.ones(dim).with_component(fast, fast_elems)
            if dim >= 2:
                v = v.with_component(fast - 1, slow_elems)
            if v not in emitted:
                emitted.add(v)
                yield v


def candidate_divisions(
    extent: Union[int, Sequence[int], Vec],
    props: AccDevProps,
    *,
    mappings: Optional[Tuple[MappingStrategy, ...]] = None,
    max_total_elems: int = MAX_TOTAL_ELEMS,
    max_block_threads: Optional[int] = None,
) -> List[WorkDivMembers]:
    """Enumerate valid candidate divisions covering ``extent``.

    The list starts with the Table 2 seed divisions
    (:func:`seed_divisions`), followed by the enumerated space in
    deterministic order; every entry passed
    :func:`~repro.core.workdiv.validate_work_div` against ``props``.

    ``max_block_threads`` optionally tightens the device's thread-count
    limit — benchmarks on the functionally simulated GPU use it to keep
    host-side execution affordable; the seeds are exempt, so the
    default heuristic always stays in the space.
    """
    ext = as_vec(extent)
    if any(c <= 0 for c in ext):
        raise InvalidWorkDiv(
            f"cannot enumerate divisions for non-positive extent {ext!r}"
        )
    dim = ext.dim
    p = props.for_dim(dim)
    if mappings is None:
        mappings = (MappingStrategy.THREAD_LEVEL, MappingStrategy.BLOCK_LEVEL)

    out: List[WorkDivMembers] = list(seed_divisions(ext, p))
    seen = set(out)

    thread_cap = p.block_thread_count_max
    if max_block_threads is not None:
        thread_cap = min(thread_cap, max_block_threads)

    for mapping in mappings:
        if mapping is MappingStrategy.BLOCK_LEVEL:
            totals = [1]
        else:
            totals = _pow2s_up_to(thread_cap)
        for total in totals:
            for v in _elem_shapes(dim, ext, p, max_total_elems):
                work = ext.ceil_div(v)
                for b in _block_shapes(dim, total, p, work):
                    grid = ext.ceil_div(b * v).max(1)
                    try:
                        wd = WorkDivMembers(grid, b, v)
                        validate_work_div(wd, p)
                    except InvalidWorkDiv:
                        continue
                    if wd not in seen:
                        seen.add(wd)
                        out.append(wd)
    return out
