"""Search strategies over the candidate space.

Three strategies, one contract: given an ordered candidate list and an
``objective`` callable (division → seconds, ``inf`` for a division the
kernel cannot execute), return the fastest division found within an
optional measurement ``budget``.

* **exhaustive** — measure everything (after pruning); ground truth.
* **random** — measure the seeds plus a budgeted uniform sample of the
  rest; the cheap strategy CI smoke jobs use.
* **coordinate** — coordinate descent over the two knobs of a division
  (block-thread count, thread-element count): alternately hold one
  fixed and sweep the other, restarting from the best point, until a
  full cycle brings no improvement.  Matthes et al. 2017 observe the
  work-division landscape is close to separable in exactly these two
  axes, which is why descent converges in a handful of sweeps.

All strategies share **early pruning seeded by the performance model**:
when the caller supplies predicted seconds per candidate, candidates
predicted slower than ``prune_ratio`` x the best prediction are skipped
without measurement.  The ratio is deliberately generous — the model's
job is shape fidelity, not microseconds — and seeds are never pruned.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.workdiv import WorkDivMembers

__all__ = [
    "Trial",
    "SearchResult",
    "SEARCH_STRATEGIES",
    "run_search",
    "PRUNE_RATIO",
]

#: Candidates predicted slower than this multiple of the best predicted
#: time are skipped without measurement.
PRUNE_RATIO = 16.0

Objective = Callable[[WorkDivMembers], float]


@dataclass(frozen=True)
class Trial:
    """One measured candidate."""

    work_div: WorkDivMembers
    seconds: float


@dataclass
class SearchResult:
    """Outcome of one search run."""

    best: Trial
    trials: List[Trial] = field(default_factory=list)
    #: Candidates skipped on the strength of the performance model.
    pruned: int = 0
    strategy: str = "?"
    #: Winning block schedule when the strategy searched the joint
    #: (division, schedule) space (evolve with ``schedules=...``);
    #: ``None`` when the schedule axis was not part of the genome.
    best_schedule: Optional[str] = None
    #: Best seconds observed per schedule over the joint search.
    schedule_trials: Dict[str, float] = field(default_factory=dict)

    @property
    def measurements(self) -> int:
        return len(self.trials)


def _prune(
    candidates: Sequence[WorkDivMembers],
    seeds: int,
    predicted: Optional[Dict[WorkDivMembers, float]],
    prune_ratio: float,
) -> Tuple[List[WorkDivMembers], int]:
    """Drop candidates the model confidently rules out; never seeds.

    The surviving tail is ordered fastest-predicted-first so budgeted
    strategies spend their measurements where the model expects the
    winners to be.
    """
    head = list(candidates[:seeds])
    tail = list(candidates[seeds:])
    if not predicted:
        return head + tail, 0
    known = [predicted[wd] for wd in candidates if wd in predicted]
    if not known:
        return head + tail, 0
    cutoff = min(known) * prune_ratio
    kept = [wd for wd in tail if predicted.get(wd, 0.0) <= cutoff]
    pruned = len(tail) - len(kept)
    # Unpredicted candidates are never pruned, but sort after every
    # model-ranked one — budgeted strategies should spend measurements
    # where the model expects winners first.
    kept.sort(key=lambda wd: predicted.get(wd, float("inf")))
    return head + kept, pruned


def _measure_all(
    order: Sequence[WorkDivMembers], objective: Objective
) -> List[Trial]:
    trials = []
    for wd in order:
        trials.append(Trial(wd, objective(wd)))
    return trials


def _best(trials: Sequence[Trial]) -> Trial:
    finite = [t for t in trials if t.seconds != float("inf")]
    if not finite:
        raise RuntimeError(
            "every candidate division failed to execute; the kernel is "
            "incompatible with the enumerated space"
        )
    return min(finite, key=lambda t: t.seconds)


def exhaustive_search(
    candidates: Sequence[WorkDivMembers],
    objective: Objective,
    *,
    seeds: int = 0,
    budget: Optional[int] = None,
    seed: int = 0,
    predicted: Optional[Dict[WorkDivMembers, float]] = None,
    prune_ratio: float = PRUNE_RATIO,
) -> SearchResult:
    """Measure every unpruned candidate (``budget`` caps the count)."""
    order, pruned = _prune(candidates, seeds, predicted, prune_ratio)
    if budget is not None:
        order = order[: max(budget, min(seeds, len(order)))]
    trials = _measure_all(order, objective)
    return SearchResult(
        best=_best(trials), trials=trials, pruned=pruned,
        strategy="exhaustive",
    )


def random_search(
    candidates: Sequence[WorkDivMembers],
    objective: Objective,
    *,
    seeds: int = 0,
    budget: Optional[int] = None,
    seed: int = 0,
    predicted: Optional[Dict[WorkDivMembers, float]] = None,
    prune_ratio: float = PRUNE_RATIO,
) -> SearchResult:
    """Measure the seeds plus a uniform sample of the remaining space.

    Deterministic for a given ``seed``.  ``budget`` counts *total*
    measurements including the seeds; ``None`` degenerates to
    exhaustive order.
    """
    order, pruned = _prune(candidates, seeds, predicted, prune_ratio)
    head = order[:seeds]
    tail = order[seeds:]
    if budget is None:
        sample = tail
    else:
        n = max(0, budget - len(head))
        if n >= len(tail):
            sample = tail
        else:
            rng = _random.Random(seed)
            sample = rng.sample(tail, n)
    trials = _measure_all(head + list(sample), objective)
    return SearchResult(
        best=_best(trials), trials=trials, pruned=pruned, strategy="random"
    )


def coordinate_descent_search(
    candidates: Sequence[WorkDivMembers],
    objective: Objective,
    *,
    seeds: int = 0,
    budget: Optional[int] = None,
    seed: int = 0,
    predicted: Optional[Dict[WorkDivMembers, float]] = None,
    prune_ratio: float = PRUNE_RATIO,
    max_sweeps: int = 8,
) -> SearchResult:
    """Alternating one-knob sweeps from the best seed.

    The two coordinates of a division are its block-thread count and
    its thread-element count; a sweep measures every candidate sharing
    the current value of the *other* coordinate, then jumps to the best
    point found.  Stops when a full block+element cycle improves
    nothing, the ``budget`` is exhausted, or ``max_sweeps`` cycles ran.
    """
    order, pruned = _prune(candidates, seeds, predicted, prune_ratio)
    if not order:
        raise ValueError("empty candidate space")

    measured: Dict[WorkDivMembers, float] = {}
    trials: List[Trial] = []

    def spend(wd: WorkDivMembers) -> float:
        if wd not in measured:
            if budget is not None and len(trials) >= budget:
                return float("inf")
            measured[wd] = objective(wd)
            trials.append(Trial(wd, measured[wd]))
        return measured[wd]

    # Start at the best of the seeds (or the first candidate).
    start_pool = order[: max(seeds, 1)]
    current = min(start_pool, key=spend)

    def block_key(wd: WorkDivMembers):
        return wd.block_thread_extent

    def elem_key(wd: WorkDivMembers):
        return wd.thread_elem_extent

    for _ in range(max_sweeps):
        improved = False
        for fixed_key, swept in (
            (elem_key, "block"),
            (block_key, "elems"),
        ):
            anchor = fixed_key(current)
            line = [wd for wd in order if fixed_key(wd) == anchor]
            for wd in line:
                spend(wd)
            feasible = [wd for wd in line if measured.get(wd, float("inf")) != float("inf")]
            if not feasible:
                continue
            best_on_line = min(feasible, key=lambda wd: measured[wd])
            if measured[best_on_line] < measured.get(current, float("inf")):
                current = best_on_line
                improved = True
            if budget is not None and len(trials) >= budget:
                improved = False
                break
        if not improved:
            break

    return SearchResult(
        best=_best(trials), trials=trials, pruned=pruned,
        strategy="coordinate",
    )


SEARCH_STRATEGIES: Dict[str, Callable[..., SearchResult]] = {
    "exhaustive": exhaustive_search,
    "random": random_search,
    "coordinate": coordinate_descent_search,
}


def run_search(
    strategy: str,
    candidates: Sequence[WorkDivMembers],
    objective: Objective,
    **kwargs,
) -> SearchResult:
    """Dispatch to a named strategy (see :data:`SEARCH_STRATEGIES`)."""
    if strategy == "evolve" and strategy not in SEARCH_STRATEGIES:
        # The evolutionary strategy lives in the fleet package and
        # registers itself on import; load it on first demand so this
        # module stays import-light.
        from .fleet import evolve  # noqa: F401
    try:
        fn = SEARCH_STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown search strategy {strategy!r}; "
            f"known: {sorted(SEARCH_STRATEGIES)}"
        ) from None
    return fn(candidates, objective, **kwargs)
