"""Tiled matrix transpose — the coalescing textbook example.

A naive transpose reads rows and writes columns: one side of the
transfer is always strided.  The tiled version stages a square tile in
block shared memory and writes it back transposed, so *both* global
sides are contiguous — the canonical demonstration of why the paper's
Fig. 6 cares about data access patterns.  Both variants ship, with
characteristics that make the model price the difference.
"""

from __future__ import annotations

import numpy as np

from ..core.index import Block, Blocks, Grid, Threads, get_idx, get_work_div
from ..core.kernel import fn_acc
from ..core.workdiv import WorkDivMembers
from ..hardware.cache import AccessPattern
from ..perfmodel.kernel_model import KernelCharacteristics

__all__ = ["TransposeNaiveKernel", "TransposeTiledKernel", "transpose_workdiv"]


def transpose_workdiv(n: int, tile: int = 16) -> WorkDivMembers:
    """One single-thread block per (tile x tile) tile; the element level
    carries the tile (runs on every back-end)."""
    blocks = -(-n // tile)
    return WorkDivMembers.make((blocks, blocks), (1, 1), (tile, tile))


class TransposeNaiveKernel:
    """``out = inp.T`` with direct global reads and writes.

    Per block-tile: contiguous reads, strided writes — the pattern the
    model prices as STRIDED on one side.
    """

    @fn_acc
    def __call__(self, acc, n, inp, out):
        bi = get_idx(acc, Grid, Blocks)
        ve = get_work_div(acc, Block, Threads) * acc.work_div.thread_elem_extent
        r0, c0 = bi[0] * ve[0], bi[1] * ve[1]
        r1, c1 = min(r0 + ve[0], n), min(c0 + ve[1], n)
        if r1 > r0 and c1 > c0:
            out[c0:c1, r0:r1] = inp[r0:r1, c0:c1].T

    def characteristics(self, work_div, n, *args) -> KernelCharacteristics:
        return KernelCharacteristics(
            flops=0.0,
            global_read_bytes=8.0 * n * n,
            global_write_bytes=8.0 * n * n,
            working_set_bytes=1 << 34,  # no reuse structure
            # Each thread walks its own rows (contiguous per thread):
            # reads coalesce-hostile on GPUs through the device pattern
            # translation, which is exactly the half of the transfer
            # that breaks in a naive transpose.  (The model has no
            # "mixed" class; this choice prices the GPU side faithfully
            # and the CPU side optimistically.)
            thread_access_pattern=AccessPattern.CONTIGUOUS,
            vector_friendly=True,
        )


class TransposeTiledKernel:
    """``out = inp.T`` staged through a shared-memory tile.

    Both global transfers are contiguous; only the on-chip tile is
    accessed transposed.
    """

    @fn_acc
    def __call__(self, acc, n, inp, out):
        bi = get_idx(acc, Grid, Blocks)
        ve = get_work_div(acc, Block, Threads) * acc.work_div.thread_elem_extent
        tile = acc.shared_mem("tile", (ve[0], ve[1]))
        r0, c0 = bi[0] * ve[0], bi[1] * ve[1]
        r1, c1 = min(r0 + ve[0], n), min(c0 + ve[1], n)
        if r1 <= r0 or c1 <= c0:
            return
        tile[: r1 - r0, : c1 - c0] = inp[r0:r1, c0:c1]
        acc.sync_block_threads()
        out[c0:c1, r0:r1] = tile[: r1 - r0, : c1 - c0].T

    def characteristics(self, work_div, n, *args) -> KernelCharacteristics:
        ve = work_div.block_thread_extent * work_div.thread_elem_extent
        return KernelCharacteristics(
            flops=0.0,
            global_read_bytes=8.0 * n * n,
            global_write_bytes=8.0 * n * n,
            working_set_bytes=int(ve[0] * ve[1] * 8),
            thread_access_pattern=AccessPattern.TILED,
            vector_friendly=True,
            on_chip_read_bytes=16.0 * n * n,  # tile in + transposed out
            block_sync_generations=float(work_div.block_count),
        )
