"""Reduction kernels.

Not part of the paper's evaluation tables, but the idiom every real
alpaka application (HASEonGPU included) leans on: block-level tree
reduction in shared memory plus one grid-level atomic per block.
Exercises `sync_block_threads`, shared memory and atomics together,
which makes it the work-horse of the cross-back-end integration tests.
"""

from __future__ import annotations

import numpy as np

from ..core.element import element_slice, grid_strided_spans
from ..core.index import Block, Grid, Threads, get_idx, get_work_div
from ..core.kernel import fn_acc
from ..hardware.cache import AccessPattern
from ..perfmodel.kernel_model import KernelCharacteristics

__all__ = ["SumReduceKernel", "DotKernel", "sum_reference"]


class SumReduceKernel:
    """Grid sum of a 1-d array into ``out[0]``.

    Each thread accumulates its element spans (vector path), the block
    tree-reduces in shared memory, thread 0 atomically adds the block's
    partial sum to global memory.  ``out`` must be zeroed beforehand.
    """

    @fn_acc
    def __call__(self, acc, n, x, out):
        ti = get_idx(acc, Block, Threads)[0]
        bt = get_work_div(acc, Block, Threads)[0]

        partial = 0.0
        for span in grid_strided_spans(acc, n):
            partial += float(np.sum(x[span]))

        scratch = acc.shared_mem("reduce", (bt,))
        scratch[ti] = partial
        acc.sync_block_threads()

        # Tree reduction over the block.
        stride = 1
        while stride < bt:
            if ti % (2 * stride) == 0 and ti + stride < bt:
                scratch[ti] += scratch[ti + stride]
            stride *= 2
            acc.sync_block_threads()

        if ti == 0:
            acc.atomic_add(out, 0, float(scratch[0]))

    def characteristics(self, work_div, n, x, out) -> KernelCharacteristics:
        return KernelCharacteristics(
            flops=float(n),
            global_read_bytes=8.0 * n,
            global_write_bytes=8.0 * work_div.block_count,
            working_set_bytes=8 * work_div.block_thread_count,
            thread_access_pattern=AccessPattern.CONTIGUOUS,
            vector_friendly=True,
            block_sync_generations=float(
                work_div.block_count
                * (1 + max(1, work_div.block_thread_count - 1).bit_length())
            ),
        )


class DotKernel:
    """Dot product of two 1-d arrays into ``out[0]`` (zeroed beforehand).

    Single-level variant: per-thread vector multiply-accumulate plus a
    grid atomic — the no-shared-memory shape that runs on *every*
    back-end including the serial and OpenMP-block ones.
    """

    @fn_acc
    def __call__(self, acc, n, x, y, out):
        partial = 0.0
        for span in grid_strided_spans(acc, n):
            partial += float(np.dot(x[span], y[span]))
        acc.atomic_add(out, 0, partial)

    def characteristics(self, work_div, n, x, y, out) -> KernelCharacteristics:
        return KernelCharacteristics(
            flops=2.0 * n,
            global_read_bytes=16.0 * n,
            global_write_bytes=8.0 * work_div.grid_thread_extent.prod(),
            working_set_bytes=16 * int(n),
            thread_access_pattern=AccessPattern.CONTIGUOUS,
            vector_friendly=True,
        )


def sum_reference(x: np.ndarray) -> float:
    return float(np.sum(x))
