"""Exclusive prefix sum (scan) — the multi-launch composition idiom.

Scan cannot be computed in one grid pass without global synchronisation,
and alpaka's grids synchronise only *between* launches (paper Sec. 3.2.1
— "grids can be synchronized to each other via explicit synchronization
evoked in the code").  The canonical three-launch algorithm is therefore
the natural test of queue-ordered kernel composition:

1. each block scans its chunk and writes its total,
2. one block scans the block totals,
3. each block adds its offset.

``scan_exclusive`` drives the three launches through one in-order queue.
"""

from __future__ import annotations

import numpy as np

from .. import mem
from ..core.element import element_slice
from ..core.index import Block, Blocks, Elems, Grid, Thread, Threads, get_idx, get_work_div
from ..core.kernel import create_task_kernel, fn_acc
from ..core.workdiv import WorkDivMembers
from ..hardware.cache import AccessPattern
from ..perfmodel.kernel_model import KernelCharacteristics

__all__ = [
    "BlockScanKernel",
    "AddOffsetsKernel",
    "scan_exclusive",
    "scan_reference",
]


def scan_reference(x: np.ndarray) -> np.ndarray:
    """Host-side exclusive prefix sum."""
    out = np.zeros_like(x)
    np.cumsum(x[:-1], out=out[1:])
    return out


class BlockScanKernel:
    """Launch 1 (and 2): per-block exclusive scan over its chunk.

    Each (single-threaded) block owns ``chunk`` elements via the element
    level, scans them with one vectorised ``cumsum``, and writes the
    chunk total to ``totals[block]`` — which launch 2 scans again with a
    single block.
    """

    @fn_acc
    def __call__(self, acc, n, x, out, totals):
        bi = get_idx(acc, Grid, Blocks)[0]
        span = element_slice(acc, n)
        if span.start >= span.stop:
            if bi < totals.shape[0]:
                totals[bi] = 0.0
            return
        chunk = x[span]
        out[span] = np.concatenate(([0.0], np.cumsum(chunk[:-1])))
        totals[bi] = float(chunk.sum())

    def characteristics(self, work_div, n, *args) -> KernelCharacteristics:
        return KernelCharacteristics(
            flops=2.0 * n,
            global_read_bytes=8.0 * n,
            global_write_bytes=8.0 * (n + work_div.block_count),
            working_set_bytes=8 * work_div.thread_elem_count,
            thread_access_pattern=AccessPattern.CONTIGUOUS,
            vector_friendly=True,
        )


class AddOffsetsKernel:
    """Launch 3: add each block's scanned offset to its chunk."""

    @fn_acc
    def __call__(self, acc, n, out, offsets):
        bi = get_idx(acc, Grid, Blocks)[0]
        span = element_slice(acc, n)
        if span.start < span.stop:
            out[span] += offsets[bi]

    def characteristics(self, work_div, n, *args) -> KernelCharacteristics:
        return KernelCharacteristics(
            flops=float(n),
            global_read_bytes=8.0 * (n + work_div.block_count),
            global_write_bytes=8.0 * n,
            working_set_bytes=8 * work_div.thread_elem_count,
            thread_access_pattern=AccessPattern.CONTIGUOUS,
            vector_friendly=True,
        )


def scan_exclusive(acc_type, queue, x_buf, out_buf, n: int, chunk: int = 256):
    """Exclusive scan of ``x_buf`` into ``out_buf`` on ``acc_type``.

    Three queue-ordered launches; intermediate block totals live in a
    scratch buffer on the queue's device.  ``chunk`` elements per block
    (the single-block second launch requires ``ceil(n/chunk) <= chunk``,
    i.e. n <= chunk^2; raise otherwise rather than recurse).
    """
    blocks = max(1, -(-n // chunk))
    if blocks > chunk:
        raise ValueError(
            f"scan of {n} elements needs {blocks} blocks > chunk {chunk}; "
            "increase chunk so the block totals fit one block"
        )
    dev = queue.dev
    totals = mem.alloc(dev, blocks)
    offsets = mem.alloc(dev, blocks)
    dummy = mem.alloc(dev, 1)

    wd1 = WorkDivMembers.make(blocks, 1, chunk)
    queue.enqueue(
        create_task_kernel(
            acc_type, wd1, BlockScanKernel(), n, x_buf, out_buf, totals
        )
    )
    # Scan the block totals with a single block.
    wd2 = WorkDivMembers.make(1, 1, blocks)
    queue.enqueue(
        create_task_kernel(
            acc_type, wd2, BlockScanKernel(), blocks, totals, offsets, dummy
        )
    )
    wd3 = WorkDivMembers.make(blocks, 1, chunk)
    queue.enqueue(
        create_task_kernel(acc_type, wd3, AddOffsetsKernel(), n, out_buf, offsets)
    )
    queue.wait()
    for b in (totals, offsets, dummy):
        b.free()
