"""DGEMM kernels (paper Sec. 4.2, Figs. 5-9).

``C <- alpha*A*B + beta*C`` on square n x n matrices, in the three
renditions the paper evaluates:

* :class:`GemmCudaStyleKernel` — the shared-memory tiled kernel of the
  CUDA programming guide, translated one-to-one to alpaka: scalar
  per-thread work, a BxB thread block loads BxB tiles of A and B into
  shared memory, synchronises, accumulates.  Fast on the CUDA back-end,
  collapses on CPUs (Fig. 6): no vector work for the element level, and
  two block barriers per tile step that cost OS futexes instead of
  hardware sync.
* :class:`GemmOmpStyleKernel` — the standard nested-loop kernel,
  translated one-to-one from the native OpenMP implementation: one
  thread per block, each thread owns a span of C rows and updates them
  with vector (element-level) operations.  Fast on CPU back-ends,
  collapses on the GPU (Fig. 6): 1-thread blocks waste 31/32 of every
  warp and its per-thread contiguous walk uncoalesces.
* :class:`GemmTilingKernel` — the single-source hierarchically tiled
  kernel of Sec. 4.2.2/Fig. 7 that uses *all* levels: blocks own C
  tiles, threads own sub-tiles, the element level does register/vector
  blocking.  One source, competitive everywhere (Fig. 8), ~20 % of
  peak on all five machines (Fig. 9).

Each kernel carries a cost description (``characteristics``) for the
performance model; construct with ``native=True`` for the
native-implementation variant (no abstraction overhead) used as the
Fig. 5 baseline.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.element import grid_strided_spans
from ..core.errors import KernelError
from ..core.index import (
    Block,
    Blocks,
    Elems,
    Grid,
    Thread,
    Threads,
    get_idx,
    get_work_div,
)
from ..core.kernel import fn_acc
from ..core.workdiv import WorkDivMembers
from ..hardware.cache import AccessPattern
from ..perfmodel.kernel_model import KernelCharacteristics

__all__ = [
    "GemmCudaStyleKernel",
    "GemmOmpStyleKernel",
    "GemmTilingKernel",
    "gemm_workdiv_cuda",
    "gemm_workdiv_omp",
    "gemm_workdiv_tiling",
    "dgemm_reference",
    "dgemm_rows_host",
]

#: Residual abstraction cost of the alpaka layer under nvcc, as measured
#: by the paper (Sec. 4.2.1: "an overhead of 6% or less", from
#: move/forward operators in the grid index calculations).  Applied by
#: the model on the GPU back-end only; gcc elides the same abstractions
#: completely (the paper's OpenMP back-end measures 100 % relative
#: performance).
ALPAKA_GPU_OVERHEAD_FRACTION = 0.045

#: Extra CUDA runtime calls per launch issued by the alpaka back-end.
ALPAKA_EXTRA_API_CALLS = 3

#: Elements per axis a thread can truly keep in registers; element
#: extents beyond this still help cache blocking but no longer reduce
#: on-chip traffic per FMA.
REGISTER_BLOCK_CAP = 4


def dgemm_reference(alpha, A, B, beta, C):
    """Host-side reference result (BLAS via numpy)."""
    return alpha * (A @ B) + beta * C


def dgemm_rows_host(alpha, A, B, beta, C, rows_per_chunk: int = 64) -> None:
    """The *native* OpenMP-style implementation: a direct function the
    Fig. 5 wall-clock comparison baselines against (same row-chunked
    vector operations as :class:`GemmOmpStyleKernel`, zero library
    machinery).  Updates ``C`` in place."""
    n = C.shape[0]
    for r0 in range(0, n, rows_per_chunk):
        r1 = min(r0 + rows_per_chunk, n)
        C[r0:r1, :] = alpha * (A[r0:r1, :] @ B) + beta * C[r0:r1, :]


# ---------------------------------------------------------------------------
# Work divisions (Table 2 mappings specialised to DGEMM)
# ---------------------------------------------------------------------------


def gemm_workdiv_cuda(n: int, block_threads: int = 16) -> WorkDivMembers:
    """CUDA mapping: 2-d grid of (B, B) thread blocks, 1 element each."""
    blocks = -(-n // block_threads)
    return WorkDivMembers.make(
        (blocks, blocks), (block_threads, block_threads), (1, 1)
    )


def gemm_workdiv_omp(n: int, rows_per_thread: int = 64) -> WorkDivMembers:
    """OpenMP-block mapping: 1-d grid over row chunks, 1 thread per
    block, ``rows_per_thread`` elements."""
    blocks = -(-n // rows_per_thread)
    return WorkDivMembers.make((blocks,), (1,), (rows_per_thread,))


def gemm_workdiv_tiling(
    n: int, block_threads: int, elems_per_thread: int
) -> WorkDivMembers:
    """Hierarchical tiling mapping: square thread and element extents;
    a block owns a (B*V) x (B*V) tile of C."""
    tile = block_threads * elems_per_thread
    blocks = -(-n // tile)
    return WorkDivMembers.make(
        (blocks, blocks),
        (block_threads, block_threads),
        (elems_per_thread, elems_per_thread),
    )


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------


def _copy_window(dst, dst_rows, dst_cols, src, sr0, sc0, n):
    """dst[dst_rows, dst_cols] = zero-padded window of src at (sr0, sc0)."""
    h = dst_rows.stop - dst_rows.start
    w = dst_cols.stop - dst_cols.start
    rows_avail = max(0, min(h, n - sr0))
    cols_avail = max(0, min(w, n - sc0))
    target = dst[dst_rows, dst_cols]
    if rows_avail == h and cols_avail == w:
        target[...] = src[sr0 : sr0 + h, sc0 : sc0 + w]
        return
    target[...] = 0.0
    if rows_avail > 0 and cols_avail > 0:
        target[:rows_avail, :cols_avail] = src[
            sr0 : sr0 + rows_avail, sc0 : sc0 + cols_avail
        ]


class GemmCudaStyleKernel:
    """CUDA-programming-guide tiled DGEMM, one scalar element per thread.

    Requires a square 2-d thread block and a back-end with block
    synchronisation.  ``native=True`` marks the baseline variant
    (identical algorithm, no abstraction-layer cost in the model).
    """

    def __init__(self, native: bool = False):
        self.native = native

    @fn_acc
    def __call__(self, acc, n, alpha, A, B, beta, C):
        ti = get_idx(acc, Block, Threads)
        bi = get_idx(acc, Grid, Blocks)
        ts = get_work_div(acc, Block, Threads)
        if ts.dim != 2 or ts[0] != ts[1]:
            raise KernelError(
                f"GemmCudaStyleKernel needs a square 2-d thread block, got {ts!r}"
            )
        bt = ts[0]
        row = bi[0] * bt + ti[0]
        col = bi[1] * bt + ti[1]
        s_a = acc.shared_mem("tileA", (bt, bt))
        s_b = acc.shared_mem("tileB", (bt, bt))

        accum = 0.0
        for t in range(-(-n // bt)):
            a_col = t * bt + ti[1]
            b_row = t * bt + ti[0]
            s_a[ti[0], ti[1]] = A[row, a_col] if (row < n and a_col < n) else 0.0
            s_b[ti[0], ti[1]] = B[b_row, col] if (b_row < n and col < n) else 0.0
            acc.sync_block_threads()
            for k in range(bt):
                accum += s_a[ti[0], k] * s_b[k, ti[1]]
            acc.sync_block_threads()
        if row < n and col < n:
            C[row, col] = alpha * accum + beta * C[row, col]

    def characteristics(self, work_div, n, *args) -> KernelCharacteristics:
        bt = work_div.block_thread_extent[0]
        tiles = -(-n // bt)
        chars = KernelCharacteristics(
            flops=2.0 * n**3 + 3.0 * n**2,
            global_read_bytes=8.0 * (2.0 * n**3 / bt + n**2),
            global_write_bytes=8.0 * n**2,
            working_set_bytes=2 * bt * bt * 8,
            thread_access_pattern=AccessPattern.TILED,
            vector_friendly=False,
            on_chip_read_bytes=16.0 * n**3,  # two shared reads per FMA
            block_sync_generations=2.0 * tiles * work_div.block_count,
        )
        if not self.native:
            chars = chars.with_overhead(
                ALPAKA_GPU_OVERHEAD_FRACTION, ALPAKA_EXTRA_API_CALLS
            )
        return chars


class GemmOmpStyleKernel:
    """Standard nested-loop DGEMM over row chunks, one thread per block.

    The element level spans whole C rows, so the inner update is one
    vector operation per chunk — the shape an auto-vectoriser (or
    numpy) wants.
    """

    def __init__(self, native: bool = False):
        self.native = native

    @fn_acc
    def __call__(self, acc, n, alpha, A, B, beta, C):
        for rows in grid_strided_spans(acc, n):
            C[rows, :] = alpha * (A[rows, :] @ B) + beta * C[rows, :]

    def characteristics(self, work_div, n, *args) -> KernelCharacteristics:
        chars = KernelCharacteristics(
            flops=2.0 * n**3 + 3.0 * n**2,
            # B is reused across rows when it stays cached ...
            global_read_bytes=8.0 * (2.0 * n**2),
            # ... and re-streamed per C row when it does not (the reuse
            # across a thread's row chunk would itself require the
            # cache residency that is missing in the spill case).
            spill_read_bytes=8.0 * n**3,
            global_write_bytes=8.0 * n**2,
            working_set_bytes=int(n) * int(n) * 8,
            thread_access_pattern=AccessPattern.CONTIGUOUS,
            vector_friendly=True,
            on_chip_read_bytes=16.0 * n**3,  # stream B + accumulate C rows
        )
        # gcc elides the alpaka layer completely on this back-end
        # (paper: 100 % relative performance), so even the non-native
        # variant carries no overhead fraction.
        return chars


class GemmTilingKernel:
    """The single-source hierarchically tiled DGEMM (paper Fig. 7).

    A block computes a (T0 x T1) tile of C with T = threads * elements
    per axis; tiles of A and B are staged through block shared memory;
    each thread accumulates its (V0 x V1) sub-tile with element-level
    vector operations.  The same source runs on every back-end; the
    work division chooses the shape (paper: B=16, V=1..2 on GPUs;
    B=1, V=16..128 on CPUs).
    """

    def __init__(self, native: bool = False):
        self.native = native

    @fn_acc
    def __call__(self, acc, n, alpha, A, B, beta, C):
        bi = get_idx(acc, Grid, Blocks)
        ti = get_idx(acc, Block, Threads)
        ts = get_work_div(acc, Block, Threads)
        ve = get_work_div(acc, Thread, Elems)
        if ts.dim != 2:
            raise KernelError("GemmTilingKernel needs a 2-d work division")
        t_rows = ts[0] * ve[0]  # block tile rows
        t_cols = ts[1] * ve[1]  # block tile cols
        t_k = t_cols  # k-extent of staged tiles

        s_a = acc.shared_mem("tileA", (t_rows, t_k))
        s_b = acc.shared_mem("tileB", (t_k, t_cols))

        # This thread's sub-tile of C, and its slice of the loads.
        r0 = bi[0] * t_rows + ti[0] * ve[0]
        c0 = bi[1] * t_cols + ti[1] * ve[1]
        my_rows = slice(ti[0] * ve[0], (ti[0] + 1) * ve[0])
        my_cols = slice(ti[1] * ve[1], (ti[1] + 1) * ve[1])
        # Cooperative staging: split the k extent across the other axis.
        kw_a = -(-t_k // ts[1])
        a_cols = slice(ti[1] * kw_a, min(t_k, (ti[1] + 1) * kw_a))
        kw_b = -(-t_k // ts[0])
        b_rows = slice(ti[0] * kw_b, min(t_k, (ti[0] + 1) * kw_b))

        accum = np.zeros((ve[0], ve[1]))
        for t in range(-(-n // t_k)):
            k0 = t * t_k
            _copy_window(
                s_a, my_rows, a_cols, A, r0, k0 + a_cols.start, n
            )
            _copy_window(
                s_b, b_rows, my_cols, B, k0 + b_rows.start, c0, n
            )
            acc.sync_block_threads()
            accum += s_a[my_rows, :] @ s_b[:, my_cols]
            acc.sync_block_threads()

        r1 = min(r0 + ve[0], n)
        c1 = min(c0 + ve[1], n)
        if r1 > r0 and c1 > c0:
            C[r0:r1, c0:c1] = (
                alpha * accum[: r1 - r0, : c1 - c0] + beta * C[r0:r1, c0:c1]
            )

    def characteristics(self, work_div, n, *args) -> KernelCharacteristics:
        ts = work_div.block_thread_extent
        ve = work_div.thread_elem_extent
        t_rows = ts[0] * ve[0]
        t_cols = ts[1] * ve[1]
        t_k = t_cols
        tiles = -(-n // t_k)
        v0 = min(ve[0], REGISTER_BLOCK_CAP)
        v1 = min(ve[1], REGISTER_BLOCK_CAP)
        chars = KernelCharacteristics(
            flops=2.0 * n**3 + 3.0 * n**2,
            global_read_bytes=8.0 * (n**3 / t_rows + n**3 / t_cols + n**2),
            global_write_bytes=8.0 * n**2,
            working_set_bytes=(t_rows * t_k + t_k * t_cols) * 8,
            thread_access_pattern=AccessPattern.TILED,
            vector_friendly=ve.prod() >= 4,
            # Register blocking reads v0 + v1 operands per v0*v1 FMAs.
            on_chip_read_bytes=8.0 * n**3 * (v0 + v1) / (v0 * v1),
            block_sync_generations=2.0 * tiles * work_div.block_count,
        )
        if not self.native:
            chars = chars.with_overhead(
                ALPAKA_GPU_OVERHEAD_FRACTION, ALPAKA_EXTRA_API_CALLS
            )
        return chars
