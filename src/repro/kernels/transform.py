"""Elementwise utility kernels: fill, iota, scale, generic map.

The small change of pace every example and test needs; all use
grid-striding so any valid work division covers any extent.
"""

from __future__ import annotations

import numpy as np

from ..core.element import grid_strided_spans
from ..core.kernel import fn_acc
from ..hardware.cache import AccessPattern
from ..perfmodel.kernel_model import KernelCharacteristics

__all__ = ["FillKernel", "IotaKernel", "ScaleKernel", "MapKernel"]


def _elementwise_chars(n, reads, writes, flops_per_elem) -> KernelCharacteristics:
    return KernelCharacteristics(
        flops=flops_per_elem * n,
        global_read_bytes=8.0 * reads * n,
        global_write_bytes=8.0 * writes * n,
        working_set_bytes=8 * int(n) * (reads + writes),
        thread_access_pattern=AccessPattern.CONTIGUOUS,
        vector_friendly=True,
    )


class FillKernel:
    """``out[:] = value``."""

    @fn_acc
    def __call__(self, acc, n, value, out):
        for span in grid_strided_spans(acc, n):
            out[span] = value

    def characteristics(self, work_div, n, value, out):
        return _elementwise_chars(n, 0, 1, 0.0)


class IotaKernel:
    """``out[i] = start + i``."""

    @fn_acc
    def __call__(self, acc, n, start, out):
        for span in grid_strided_spans(acc, n):
            out[span] = start + np.arange(span.start, span.stop, dtype=out.dtype)

    def characteristics(self, work_div, n, start, out):
        return _elementwise_chars(n, 0, 1, 1.0)


class ScaleKernel:
    """``out[i] = factor * x[i]``."""

    @fn_acc
    def __call__(self, acc, n, factor, x, out):
        for span in grid_strided_spans(acc, n):
            out[span] = factor * x[span]

    def characteristics(self, work_div, n, factor, x, out):
        return _elementwise_chars(n, 1, 1, 1.0)


class MapKernel:
    """``out[i] = fn(x[i])`` for a host-supplied vectorisable ``fn``.

    Demonstrates that kernels are ordinary objects: the mapped function
    is captured state, exactly like a C++ functor member — while the
    *kernel arguments* stay data-structure agnostic.
    """

    def __init__(self, fn):
        self.fn = fn

    @fn_acc
    def __call__(self, acc, n, x, out):
        for span in grid_strided_spans(acc, n):
            out[span] = self.fn(x[span])

    def characteristics(self, work_div, n, x, out):
        return _elementwise_chars(n, 1, 1, 1.0)
