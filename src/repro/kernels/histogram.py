"""Histogram with block-private shared-memory bins.

The contended-atomics idiom: every thread classifies its element span,
accumulates into a *block-private* shared histogram (cheap, uncontended
within the block after vectorised ``bincount``), and only the per-block
result is merged into global memory with atomics — one atomic per bin
per block instead of one per element.
"""

from __future__ import annotations

import numpy as np

from ..core.element import grid_strided_spans
from ..core.index import Block, Threads, get_idx, get_work_div
from ..core.kernel import fn_acc
from ..hardware.cache import AccessPattern
from ..perfmodel.kernel_model import KernelCharacteristics

__all__ = ["HistogramKernel", "histogram_reference"]


def histogram_reference(x: np.ndarray, bins: int, lo: float, hi: float) -> np.ndarray:
    counts, _ = np.histogram(x, bins=bins, range=(lo, hi))
    return counts.astype(np.float64)


class HistogramKernel:
    """Count ``x`` values into ``bins`` equal-width bins over [lo, hi).

    Out-of-range values are clamped into the edge bins (saturating
    semantics, matching ``np.clip`` + the reference's closed last edge).
    ``hist`` must be zeroed beforehand.
    """

    @fn_acc
    def __call__(self, acc, n, lo, hi, bins, x, hist):
        ti = get_idx(acc, Block, Threads)[0]
        local = acc.shared_mem("hist", (int(bins),))
        # First thread's view is zeroed by construction; all threads
        # share it, so accumulate with block atomics... but since each
        # thread bincounts its own span, a plain add under the grid
        # atomic domain keeps it simple and correct.
        scale = bins / (hi - lo)
        partial = np.zeros(int(bins))
        for span in grid_strided_spans(acc, n):
            idx = ((x[span] - lo) * scale).astype(np.int64)
            np.clip(idx, 0, bins - 1, out=idx)
            partial += np.bincount(idx, minlength=int(bins))
        for b in range(int(bins)):
            if partial[b]:
                acc.atomic_add(local, b, partial[b])
        acc.sync_block_threads()
        if ti == get_work_div(acc, Block, Threads)[0] - 1:
            for b in range(int(bins)):
                if local[b]:
                    acc.atomic_add(hist, b, float(local[b]))

    def characteristics(self, work_div, n, lo, hi, bins, *args):
        return KernelCharacteristics(
            flops=3.0 * n,
            global_read_bytes=8.0 * n,
            global_write_bytes=8.0 * bins * work_div.block_count,
            working_set_bytes=8 * int(bins),
            thread_access_pattern=AccessPattern.CONTIGUOUS,
            vector_friendly=True,
        )
