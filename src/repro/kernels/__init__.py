"""Kernel library: the paper's workloads plus common idioms."""

from .axpy import AxpyElementsKernel, AxpyKernel, axpy_cuda_native, axpy_reference
from .batched import (
    DEFAULT_ROWS_PER_CHUNK,
    BatchedGemmKernel,
    batched_gemm_reference,
)
from .gemm import (
    ALPAKA_EXTRA_API_CALLS,
    ALPAKA_GPU_OVERHEAD_FRACTION,
    GemmCudaStyleKernel,
    GemmOmpStyleKernel,
    GemmTilingKernel,
    dgemm_reference,
    dgemm_rows_host,
    gemm_workdiv_cuda,
    gemm_workdiv_omp,
    gemm_workdiv_tiling,
)
from .histogram import HistogramKernel, histogram_reference
from .reduce import DotKernel, SumReduceKernel, sum_reference
from .scan import (
    AddOffsetsKernel,
    BlockScanKernel,
    scan_exclusive,
    scan_reference,
)
from .sort import BitonicSortKernel, sort_chunks
from .spmv import CsrSpmvKernel, csr_from_dense, spmv_reference
from .stencil import Jacobi2DKernel, jacobi_reference_step
from .stencil3d import Jacobi3DKernel, jacobi3d_reference_step
from .transform import FillKernel, IotaKernel, MapKernel, ScaleKernel
from .transpose import (
    TransposeNaiveKernel,
    TransposeTiledKernel,
    transpose_workdiv,
)

__all__ = [
    "AxpyKernel",
    "AxpyElementsKernel",
    "axpy_cuda_native",
    "axpy_reference",
    "BatchedGemmKernel",
    "batched_gemm_reference",
    "DEFAULT_ROWS_PER_CHUNK",
    "GemmCudaStyleKernel",
    "GemmOmpStyleKernel",
    "GemmTilingKernel",
    "gemm_workdiv_cuda",
    "gemm_workdiv_omp",
    "gemm_workdiv_tiling",
    "dgemm_reference",
    "dgemm_rows_host",
    "ALPAKA_GPU_OVERHEAD_FRACTION",
    "ALPAKA_EXTRA_API_CALLS",
    "SumReduceKernel",
    "DotKernel",
    "sum_reference",
    "BlockScanKernel",
    "AddOffsetsKernel",
    "scan_exclusive",
    "scan_reference",
    "HistogramKernel",
    "histogram_reference",
    "Jacobi2DKernel",
    "jacobi_reference_step",
    "Jacobi3DKernel",
    "jacobi3d_reference_step",
    "BitonicSortKernel",
    "sort_chunks",
    "CsrSpmvKernel",
    "csr_from_dense",
    "spmv_reference",
    "FillKernel",
    "IotaKernel",
    "ScaleKernel",
    "MapKernel",
    "TransposeNaiveKernel",
    "TransposeTiledKernel",
    "transpose_workdiv",
]
