"""DAXPY kernels (paper Sec. 4.1, Fig. 4).

``Y <- alpha * X + Y``.  Three single-source renditions:

* :class:`AxpyKernel` — the alpaka kernel of the paper's conceptual
  comparison: one element per thread, in-bounds guard, written so the
  traced instruction stream matches the native CUDA one.
* :func:`axpy_cuda_native` — the native CUDA kernel (written against the
  :mod:`repro.trace.native_cuda` surface, trace-only).
* :class:`AxpyElementsKernel` — the element-level version: each thread
  owns a span and updates it with one vector operation; the form the
  paper's Sec. 4.1 discusses for CPU SIMD (packed ``movupd``/``mulpd``
  vs scalar ``movsd``/``mulsd``).
"""

from __future__ import annotations

import numpy as np

from ..core.element import grid_strided_spans
from ..core.index import Grid, Threads, get_idx
from ..core.kernel import fn_acc
from ..hardware.cache import AccessPattern
from ..perfmodel.kernel_model import KernelCharacteristics

__all__ = [
    "AxpyKernel",
    "AxpyElementsKernel",
    "axpy_cuda_native",
    "axpy_reference",
]


class AxpyKernel:
    """One-element-per-thread DAXPY (the Fig. 4 kernel).

    The body is written exactly as the paper's comparison requires:
    compute the global thread index, guard, then ``y[i] = a*x[i] + y[i]``
    (the multiply-add order that contracts to one FMA).
    """

    @fn_acc
    def __call__(self, acc, n, alpha, x, y):
        i = get_idx(acc, Grid, Threads)[0]
        if i < n:
            y[i] = alpha * x[i] + y[i]

    def characteristics(self, work_div, n, alpha, x, y) -> KernelCharacteristics:
        return KernelCharacteristics(
            flops=2.0 * n,
            global_read_bytes=16.0 * n,
            global_write_bytes=8.0 * n,
            working_set_bytes=24 * int(n),
            # One element per thread, adjacent threads adjacent data:
            # interleaved-across-threads = "strided" per thread.
            thread_access_pattern=AccessPattern.STRIDED,
            vector_friendly=False,
        )


def axpy_cuda_native(cu, n, alpha, x, y):
    """The native CUDA DAXPY of the paper's Fig. 4, for tracing.

    Trace with ``("const_array", "x")`` to reproduce the
    ``ld.global.nc.f64`` the paper observes in the native PTX.
    """
    i = cu.global_thread_idx_x()
    if i < n:
        y[i] = alpha * x[i] + y[i]


class AxpyElementsKernel:
    """Element-level DAXPY: one vector operation per owned span.

    Uses grid-striding, so *any* work division covers any ``n``.  On the
    CPU back-ends the span update is a single numpy expression — the
    reproduction's analogue of the compiler vectorising the "primitive
    inner loop over a fixed number of elements" (paper Sec. 3.2.4).
    """

    @fn_acc
    def __call__(self, acc, n, alpha, x, y):
        for span in grid_strided_spans(acc, n):
            y[span] = alpha * x[span] + y[span]

    def characteristics(self, work_div, n, alpha, x, y) -> KernelCharacteristics:
        return KernelCharacteristics(
            flops=2.0 * n,
            global_read_bytes=16.0 * n,
            global_write_bytes=8.0 * n,
            working_set_bytes=24 * int(n),
            thread_access_pattern=AccessPattern.CONTIGUOUS,
            vector_friendly=True,
        )


def axpy_reference(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Host-side reference: the value DAXPY must produce."""
    return alpha * x + y
