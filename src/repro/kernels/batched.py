"""Batched kernels: many independent small problems in one grid.

The serving gateway (:mod:`repro.serve`) coalesces compatible small
launches arriving within a batching window into one launch.  For
elementwise kernels plain concatenation suffices; GEMM needs a kernel
that understands a *stack* of problems.  :class:`BatchedGemmKernel`
computes ``C[b] <- alpha*A[b]@B[b] + beta*C[b]`` for every problem
``b`` of a ``(batch, n, n)`` stack.

Bit-identity contract: the kernel processes each problem in
``rows_per_chunk``-row chunks with exactly the operand shapes of the
solo path (``(chunk, n) @ (n, n)``), so a request's result is bitwise
identical whether it ran alone (``batch == 1``) or merged into a
64-problem stack — the property ``benchmarks/bench_serving.py``
asserts against direct ``launch()``.
"""

from __future__ import annotations

import numpy as np

from ..core.element import grid_strided_spans
from ..core.kernel import fn_acc
from ..hardware.cache import AccessPattern
from ..perfmodel.kernel_model import KernelCharacteristics

__all__ = [
    "BatchedGemmKernel",
    "batched_gemm_reference",
    "DEFAULT_ROWS_PER_CHUNK",
]

#: Row-chunk granularity shared by the solo and batched serving paths.
DEFAULT_ROWS_PER_CHUNK = 64


def batched_gemm_reference(alpha, A, B, beta, C, rows_per_chunk=DEFAULT_ROWS_PER_CHUNK):
    """Host-side reference with the kernel's exact chunking."""
    batch, n, _ = C.shape
    out = C.copy()
    for b in range(batch):
        for r0 in range(0, n, rows_per_chunk):
            r1 = min(n, r0 + rows_per_chunk)
            out[b, r0:r1, :] = (
                alpha * (A[b, r0:r1, :] @ B[b, :, :]) + beta * C[b, r0:r1, :]
            )
    return out


class BatchedGemmKernel:
    """Stacked DGEMM: one grid over ``batch * ceil(n/rows_per_chunk)``
    row chunks.

    Work units are (problem, chunk) pairs flattened into a 1-d index
    space and grid-strided, so any work division covers any stack — the
    serving batcher only changes the grid extent, never the per-chunk
    arithmetic.
    """

    @fn_acc
    def __call__(self, acc, batch, n, rows_per_chunk, alpha, beta, A, B, C):
        chunks_per_problem = -(-n // rows_per_chunk)
        total = batch * chunks_per_problem
        for span in grid_strided_spans(acc, total):
            for c in range(span.start, span.stop):
                b, ci = divmod(c, chunks_per_problem)
                r0 = ci * rows_per_chunk
                r1 = min(n, r0 + rows_per_chunk)
                C[b, r0:r1, :] = (
                    alpha * (A[b, r0:r1, :] @ B[b, :, :])
                    + beta * C[b, r0:r1, :]
                )

    def characteristics(
        self, work_div, batch, n, rows_per_chunk, alpha, beta, A, B, C
    ) -> KernelCharacteristics:
        # The OMP-style GEMM cost model, scaled by the stack depth.
        return KernelCharacteristics(
            flops=batch * (2.0 * n**3 + 3.0 * n**2),
            global_read_bytes=batch * 8.0 * (2.0 * n**2),
            spill_read_bytes=batch * 8.0 * n**3,
            global_write_bytes=batch * 8.0 * n**2,
            working_set_bytes=int(n) * int(n) * 8,
            thread_access_pattern=AccessPattern.CONTIGUOUS,
            vector_friendly=True,
            on_chip_read_bytes=batch * 16.0 * n**3,
        )
