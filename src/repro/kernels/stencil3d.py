"""3-d Jacobi stencil — the "unrestricted dimensionality" claim.

Paper Sec. 3.1: *"Each level of the Alpaka parallelization hierarchy is
unrestricted in its dimensionality."*  The 2-d stencil exercises n=2;
this kernel exercises n=3 end to end: 3-d work divisions, 3-d element
boxes, 3-d buffers and copies.
"""

from __future__ import annotations

import numpy as np

from ..core.element import element_box
from ..core.kernel import fn_acc
from ..core.vec import Vec
from ..hardware.cache import AccessPattern
from ..perfmodel.kernel_model import KernelCharacteristics

__all__ = ["Jacobi3DKernel", "jacobi3d_reference_step"]


class Jacobi3DKernel:
    """One 3-d Jacobi sweep: 7-point Laplacian on the interior, faces
    copied through."""

    @fn_acc
    def __call__(self, acc, d, h, w, c, src, dst):
        box = element_box(acc, Vec(d, h, w))
        zs, ys, xs = box
        if zs.start >= zs.stop or ys.start >= ys.stop or xs.start >= xs.stop:
            return
        # Interior part of the owned box.
        iz = slice(max(zs.start, 1), min(zs.stop, d - 1))
        iy = slice(max(ys.start, 1), min(ys.stop, h - 1))
        ix = slice(max(xs.start, 1), min(xs.stop, w - 1))
        if iz.start < iz.stop and iy.start < iy.stop and ix.start < ix.stop:
            centre = src[iz, iy, ix]
            lap = (
                src[iz.start - 1 : iz.stop - 1, iy, ix]
                + src[iz.start + 1 : iz.stop + 1, iy, ix]
                + src[iz, iy.start - 1 : iy.stop - 1, ix]
                + src[iz, iy.start + 1 : iy.stop + 1, ix]
                + src[iz, iy, ix.start - 1 : ix.stop - 1]
                + src[iz, iy, ix.start + 1 : ix.stop + 1]
                - 6.0 * centre
            )
            dst[iz, iy, ix] = centre + c * lap
        # Boundary faces of the owned box pass through unchanged.
        for z in range(zs.start, zs.stop):
            if z in (0, d - 1):
                dst[z, ys, xs] = src[z, ys, xs]
        for y in range(ys.start, ys.stop):
            if y in (0, h - 1):
                dst[zs, y, xs] = src[zs, y, xs]
        if xs.start == 0:
            dst[zs, ys, 0] = src[zs, ys, 0]
        if xs.stop == w:
            dst[zs, ys, w - 1] = src[zs, ys, w - 1]

    def characteristics(self, work_div, d, h, w, c, src, dst):
        cells = float(d * h * w)
        return KernelCharacteristics(
            flops=8.0 * cells,
            global_read_bytes=8.0 * 7.0 * cells,
            global_write_bytes=8.0 * cells,
            working_set_bytes=int(
                3 * work_div.thread_elem_extent[1]
                * work_div.thread_elem_extent[2] * 8
            ),
            thread_access_pattern=AccessPattern.CONTIGUOUS,
            vector_friendly=work_div.thread_elem_count >= 4,
        )


def jacobi3d_reference_step(grid: np.ndarray, c: float) -> np.ndarray:
    out = grid.copy()
    out[1:-1, 1:-1, 1:-1] = grid[1:-1, 1:-1, 1:-1] + c * (
        grid[:-2, 1:-1, 1:-1]
        + grid[2:, 1:-1, 1:-1]
        + grid[1:-1, :-2, 1:-1]
        + grid[1:-1, 2:, 1:-1]
        + grid[1:-1, 1:-1, :-2]
        + grid[1:-1, 1:-1, 2:]
        - 6.0 * grid[1:-1, 1:-1, 1:-1]
    )
    return out
