"""Bitonic sort — the data-dependent-control classic.

A block-local bitonic sorting network: the block's threads cooperate
through shared memory with a barrier between network stages.  Bitonic
networks are *the* GPU textbook example of algorithms whose control
flow is data-independent (every thread executes the same
compare-exchange schedule), which is exactly what the lockstep warp
model wants — and the reason the kernel runs unchanged on the fiber
and thread back-ends too.

Each (single- or multi-thread) block sorts one independent ``chunk`` of
the input; the host-side :func:`sort_chunks` launches one grid and
returns per-chunk sorted output (a building block for merge sort or
top-k, and a strong stress test of barrier-heavy kernels).
"""

from __future__ import annotations

import numpy as np

from .. import mem
from ..core.index import Block, Blocks, Grid, Threads, get_idx, get_work_div
from ..core.kernel import create_task_kernel, fn_acc
from ..core.workdiv import WorkDivMembers
from ..hardware.cache import AccessPattern
from ..perfmodel.kernel_model import KernelCharacteristics

__all__ = ["BitonicSortKernel", "sort_chunks"]


class BitonicSortKernel:
    """Sort each block's ``chunk`` elements ascending (power of two).

    Stage pattern: for ``k = 2,4,...,chunk`` and ``j = k/2 ... 1`` every
    thread compare-exchanges the pairs it owns, with a block barrier
    between (k, j) stages.  Out-of-range data is padded with +inf so
    any tail length sorts correctly.
    """

    def __init__(self, chunk: int):
        if chunk < 1 or chunk & (chunk - 1):
            raise ValueError("chunk must be a power of two")
        self.chunk = chunk

    @fn_acc
    def __call__(self, acc, n, data):
        chunk = self.chunk
        bi = get_idx(acc, Grid, Blocks)[0]
        ti = get_idx(acc, Block, Threads)[0]
        bt = get_work_div(acc, Block, Threads)[0]
        base = bi * chunk
        if base >= n:
            return

        buf = acc.shared_mem("sort", (chunk,))
        # Cooperative load with +inf padding.
        for i in range(ti, chunk, bt):
            buf[i] = data[base + i] if base + i < n else np.inf
        acc.sync_block_threads()

        k = 2
        while k <= chunk:
            j = k // 2
            while j >= 1:
                # Each thread handles its strided share of indices.
                for i in range(ti, chunk, bt):
                    partner = i ^ j
                    if partner > i:
                        ascending = (i & k) == 0
                        a, b = buf[i], buf[partner]
                        if (a > b) == ascending:
                            buf[i], buf[partner] = b, a
                acc.sync_block_threads()
                j //= 2
            k *= 2

        for i in range(ti, chunk, bt):
            if base + i < n:
                data[base + i] = buf[i]

    def characteristics(self, work_div, n, data) -> KernelCharacteristics:
        import math

        chunk = self.chunk
        stages = sum(
            int(math.log2(k)) for k in (2**e for e in range(1, int(math.log2(chunk)) + 1))
        )
        return KernelCharacteristics(
            flops=float(n) * stages,  # compare-exchanges as flop proxies
            global_read_bytes=8.0 * n,
            global_write_bytes=8.0 * n,
            working_set_bytes=8 * chunk,
            thread_access_pattern=AccessPattern.STRIDED,
            vector_friendly=False,
            block_sync_generations=float((stages + 1) * work_div.block_count),
        )


def sort_chunks(acc_type, queue, data_buf, n: int, chunk: int = 64,
                block_threads: int | None = None) -> None:
    """Sort ``data_buf`` in independent ``chunk``-sized pieces in place."""
    blocks = max(1, -(-n // chunk))
    if block_threads is None:
        block_threads = 1 if not acc_type.supports_block_sync else min(
            8, acc_type.get_acc_dev_props(queue.dev).block_thread_count_max
        )
    wd = WorkDivMembers.make(blocks, block_threads, -(-chunk // block_threads))
    kernel = BitonicSortKernel(chunk)
    queue.enqueue(create_task_kernel(acc_type, wd, kernel, n, data_buf))
    queue.wait()
