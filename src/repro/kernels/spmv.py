"""Sparse matrix-vector product (CSR) — the irregular-access workload.

Dense DGEMM shows the model's tiled best case; SpMV is its opposite:
indirect, data-dependent gathers from ``x`` with no blocking to save
you.  One thread owns a span of rows (element level); each row is one
vector gather + dot product.  The characteristics declare a RANDOM
access pattern, which is how the cache model prices the indirection.
"""

from __future__ import annotations

import numpy as np

from ..core.element import grid_strided_spans
from ..core.kernel import fn_acc
from ..hardware.cache import AccessPattern
from ..perfmodel.kernel_model import KernelCharacteristics

__all__ = ["CsrSpmvKernel", "csr_from_dense", "spmv_reference"]


def csr_from_dense(dense: np.ndarray):
    """(values, col_idx, row_ptr) CSR triple of a dense matrix —
    minimal helper so examples/tests need no scipy dependency at the
    call site (scipy validates it in the tests)."""
    rows, cols = dense.shape
    values, col_idx, row_ptr = [], [], [0]
    for r in range(rows):
        nz = np.nonzero(dense[r])[0]
        values.extend(dense[r, nz])
        col_idx.extend(nz)
        row_ptr.append(len(values))
    return (
        np.asarray(values, dtype=np.float64),
        np.asarray(col_idx, dtype=np.int64),
        np.asarray(row_ptr, dtype=np.int64),
    )


def spmv_reference(dense: np.ndarray, x: np.ndarray) -> np.ndarray:
    return dense @ x


class CsrSpmvKernel:
    """``y = A x`` for CSR ``A``; one row span per thread."""

    @fn_acc
    def __call__(self, acc, n_rows, values, col_idx, row_ptr, x, y):
        for rows in grid_strided_spans(acc, n_rows):
            for r in range(rows.start, rows.stop):
                lo = int(row_ptr[r])
                hi = int(row_ptr[r + 1])
                if hi > lo:
                    y[r] = float(
                        np.dot(values[lo:hi], x[col_idx[lo:hi]])
                    )
                else:
                    y[r] = 0.0

    def characteristics(
        self, work_div, n_rows, values, col_idx, row_ptr, x, y
    ) -> KernelCharacteristics:
        # `values` arrives as whatever the host bound: a Buffer (use its
        # extent), a host array, or None (estimate ~8 nnz/row).
        if values is None:
            nnz = 8.0 * n_rows
        elif hasattr(values, "extent"):
            nnz = float(values.extent.prod())
        else:
            nnz = float(len(values))
        return KernelCharacteristics(
            flops=2.0 * nnz,
            # values+cols stream; x gathers are the random component.
            global_read_bytes=16.0 * nnz + 8.0 * nnz,
            global_write_bytes=8.0 * n_rows,
            working_set_bytes=int(8 * n_rows),  # x, if it fits
            thread_access_pattern=AccessPattern.RANDOM,
            vector_friendly=True,
            uses_vector_math_library=True,  # gather+dot via the library
        )
