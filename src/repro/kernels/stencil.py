"""2-d Jacobi stencil kernel.

The second domain-specific example workload (heat diffusion), showing
the n-dimensional side of the model: 2-d work divisions, 2-d element
boxes, and double buffering through explicit queue-ordered launches.
"""

from __future__ import annotations

import numpy as np

from ..core.element import element_box
from ..core.kernel import fn_acc
from ..core.vec import Vec
from ..hardware.cache import AccessPattern
from ..perfmodel.kernel_model import KernelCharacteristics

__all__ = ["Jacobi2DKernel", "jacobi_reference_step"]


class Jacobi2DKernel:
    """One Jacobi sweep: ``dst = src + c * laplacian(src)`` on the
    interior of an (h, w) grid; boundary rows/columns are copied.

    Each thread owns a 2-d element box and updates it with vector
    operations over shifted views — the element level in two dimensions.
    """

    @fn_acc
    def __call__(self, acc, h, w, c, src, dst):
        rows, cols = element_box(acc, Vec(h, w))
        if rows.start >= rows.stop or cols.start >= cols.stop:
            return
        # Clamp the owned box to the interior for the stencil part.
        ir = slice(max(rows.start, 1), min(rows.stop, h - 1))
        ic = slice(max(cols.start, 1), min(cols.stop, w - 1))
        if ir.start < ir.stop and ic.start < ic.stop:
            up = src[ir.start - 1 : ir.stop - 1, ic]
            down = src[ir.start + 1 : ir.stop + 1, ic]
            left = src[ir, ic.start - 1 : ic.stop - 1]
            right = src[ir, ic.start + 1 : ic.stop + 1]
            center = src[ir, ic]
            dst[ir, ic] = center + c * (up + down + left + right - 4.0 * center)
        # Pass boundary cells of the owned box through unchanged.
        for r in range(rows.start, rows.stop):
            if r in (0, h - 1):
                dst[r, cols] = src[r, cols]
        if cols.start == 0:
            dst[rows, 0] = src[rows, 0]
        if cols.stop == w:
            dst[rows, w - 1] = src[rows, w - 1]

    def characteristics(self, work_div, h, w, c, src, dst) -> KernelCharacteristics:
        cells = float(h * w)
        return KernelCharacteristics(
            flops=6.0 * cells,
            global_read_bytes=8.0 * 5.0 * cells,
            global_write_bytes=8.0 * cells,
            working_set_bytes=int(
                3 * work_div.thread_elem_extent[1] * 8
                * max(work_div.thread_elem_extent[0], 1)
            ),
            thread_access_pattern=AccessPattern.CONTIGUOUS,
            vector_friendly=work_div.thread_elem_count >= 4,
        )


def jacobi_reference_step(grid: np.ndarray, c: float) -> np.ndarray:
    """Host reference for one sweep (same boundary treatment)."""
    out = grid.copy()
    out[1:-1, 1:-1] = grid[1:-1, 1:-1] + c * (
        grid[:-2, 1:-1]
        + grid[2:, 1:-1]
        + grid[1:-1, :-2]
        + grid[1:-1, 2:]
        - 4.0 * grid[1:-1, 1:-1]
    )
    return out
