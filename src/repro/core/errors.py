"""Exception hierarchy for the pyalpaka reproduction.

Alpaka itself reports most contract violations at compile time through
template machinery; a Python port has to surface the same contracts at
runtime.  Every error raised by the library derives from
:class:`AlpakaError` so applications can catch the whole family with one
handler.
"""

from __future__ import annotations

__all__ = [
    "AlpakaError",
    "DimensionError",
    "InvalidWorkDiv",
    "MemorySpaceError",
    "ExtentError",
    "DeviceError",
    "QueueError",
    "GraphError",
    "KernelError",
    "BarrierDivergenceError",
    "SharedMemError",
    "TraceError",
    "ModelError",
    "SanitizerError",
    "ServeError",
    "TuningFleetError",
    "CompileCrossCheckError",
]


class AlpakaError(Exception):
    """Base class for all errors raised by the library."""


class DimensionError(AlpakaError, ValueError):
    """Operands of a :class:`~repro.core.vec.Vec` operation disagree in
    dimensionality, or a dimensionality is out of the supported range."""


class InvalidWorkDiv(AlpakaError, ValueError):
    """A work division violates the constraints of the accelerator it is
    mapped to (e.g. more than one thread per block on a serial
    accelerator, or a block larger than the device limit)."""


class MemorySpaceError(AlpakaError, RuntimeError):
    """Host code touched device-resident memory (or vice versa) without
    an explicit deep copy.

    The paper's memory model is *pointer based with explicit deep
    copies*; this error is how the reproduction enforces that model even
    though all bytes physically live in host RAM.
    """


class ExtentError(AlpakaError, ValueError):
    """A copy/set/view extent does not fit inside the source or
    destination buffer."""


class DeviceError(AlpakaError, RuntimeError):
    """Device enumeration or selection failed."""


class QueueError(AlpakaError, RuntimeError):
    """Illegal queue operation (e.g. enqueuing into a destroyed queue)."""


class GraphError(AlpakaError, RuntimeError):
    """Illegal dataflow-graph construction or submission: a dependency
    cycle, a kernel whose buffer arguments live on different devices, or
    a node added to an already-submitted graph mid-flight."""


class KernelError(AlpakaError, RuntimeError):
    """A kernel raised, or violated an execution contract.

    The original exception (if any) is preserved as ``__cause__``.
    """


class BarrierDivergenceError(KernelError):
    """Threads of one block diverged around ``sync_block_threads``: some
    reached the barrier while siblings already exited (or took a
    different number of barriers).  CUDA leaves this undefined; the
    reproduction detects it instead of deadlocking."""


class SharedMemError(AlpakaError, RuntimeError):
    """Block shared memory misuse: allocation outside a kernel, divergent
    allocation shapes between threads of one block, or exceeding the
    device's shared-memory capacity."""


class TraceError(AlpakaError, RuntimeError):
    """The symbolic kernel tracer met a construct it cannot represent."""


class ModelError(AlpakaError, ValueError):
    """The performance model was given inconsistent characteristics."""


class SanitizerError(AlpakaError, RuntimeError):
    """The kernel sanitizer (:mod:`repro.sanitize`) found defects and was
    asked to fail loudly (``SanitizerReport.raise_if_findings``)."""


class ServeError(AlpakaError, RuntimeError):
    """The serving gateway (:mod:`repro.serve`) rejected or failed a
    request for a reason other than the kernel itself failing."""


class CompileCrossCheckError(KernelError):
    """Compiled replay and interpreted execution disagreed bit-for-bit
    on a store target (``REPRO_COMPILE_CROSSCHECK=1`` or the
    ``python -m repro.sanitize crosscheck`` sweep).  Either the
    trace-vectorizer mis-compiled the kernel or the kernel's result
    depends on cross-thread execution order — both are findings."""


class TuningFleetError(AlpakaError, RuntimeError):
    """The shared tuning service (:mod:`repro.tuning.fleet`) failed:
    daemon unreachable mid-conversation, malformed protocol reply, or a
    lease/config contract violation.  Tuning itself degrades gracefully
    (Table 2 heuristic) rather than raising this on the launch path."""
