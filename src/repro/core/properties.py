"""Accelerator/device properties (alpaka ``AccDevProps``).

A work division is only valid with respect to the capabilities of the
device it will run on; those capabilities are described here.  Each
back-end computes an :class:`AccDevProps` for each of its devices
(:meth:`repro.acc.base.AcceleratorType.get_acc_dev_props`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .vec import Vec

__all__ = ["AccDevProps"]


@dataclass(frozen=True)
class AccDevProps:
    """Limits an accelerator imposes on work divisions and shared memory.

    Attributes
    ----------
    multi_processor_count:
        Number of independent processors (SMs on a GPU, cores on a CPU).
        Used by the automatic work divider to pick a block count that
        saturates the device.
    grid_block_extent_max:
        Elementwise maximum grid extent in blocks.
    block_thread_extent_max:
        Elementwise maximum block extent in threads.
    thread_elem_extent_max:
        Elementwise maximum element count per thread.
    block_thread_count_max:
        Maximum *total* threads per block (product bound; e.g. 1024 on
        CUDA devices, 1 on the serial back-end).
    shared_mem_size_bytes:
        Block shared memory capacity.
    warp_size:
        Lockstep width of the device (32 for the simulated CUDA device,
        1 for CPU back-ends; the element level models CPU SIMD instead).
    global_mem_size_bytes:
        Device global memory capacity; allocation beyond it fails.
    max_block_workers:
        Resolved host-side block-worker cap for pool-scheduling
        back-ends (``REPRO_MAX_BLOCK_WORKERS``); 1 on back-ends whose
        blocks run sequentially in the caller.
    """

    multi_processor_count: int
    grid_block_extent_max: Vec
    block_thread_extent_max: Vec
    thread_elem_extent_max: Vec
    block_thread_count_max: int
    shared_mem_size_bytes: int
    warp_size: int = 1
    global_mem_size_bytes: int = 1 << 34
    max_block_workers: int = 1

    def __post_init__(self):
        if self.multi_processor_count < 1:
            raise ValueError("multi_processor_count must be >= 1")
        if self.block_thread_count_max < 1:
            raise ValueError("block_thread_count_max must be >= 1")
        if self.warp_size < 1:
            raise ValueError("warp_size must be >= 1")
        if self.max_block_workers < 1:
            raise ValueError("max_block_workers must be >= 1")

    @property
    def dim(self) -> int:
        return self.grid_block_extent_max.dim

    def for_dim(self, dim: int) -> "AccDevProps":
        """Project the extent limits onto ``dim`` dimensions.

        Back-ends store their limits at maximum dimensionality; a kernel
        launched with a lower-dimensional work division is constrained
        by the *innermost* (fastest) components, matching CUDA's
        per-axis limits.
        """
        if dim == self.dim:
            return self

        def proj(v: Vec) -> Vec:
            return Vec(*v.as_tuple()[-dim:]) if dim <= v.dim else Vec(
                *((v[0],) * (dim - v.dim) + v.as_tuple())
            )

        return AccDevProps(
            multi_processor_count=self.multi_processor_count,
            grid_block_extent_max=proj(self.grid_block_extent_max),
            block_thread_extent_max=proj(self.block_thread_extent_max),
            thread_elem_extent_max=proj(self.thread_elem_extent_max),
            block_thread_count_max=self.block_thread_count_max,
            shared_mem_size_bytes=self.shared_mem_size_bytes,
            warp_size=self.warp_size,
            global_mem_size_bytes=self.global_mem_size_bytes,
            max_block_workers=self.max_block_workers,
        )
