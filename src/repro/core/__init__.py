"""Core abstractions: vectors, work division, index spaces, kernels.

This package is the Python rendering of Alpaka's abstract hierarchical
redundant parallelism model (paper Sec. 3.2): a grid of blocks of
threads of elements, each level n-dimensional, with explicit work
division and index retrieval.
"""

from .element import (
    element_box,
    element_slice,
    grid_strided_spans,
    independent_elements,
)
from .errors import (
    AlpakaError,
    DeviceError,
    DimensionError,
    ExtentError,
    GraphError,
    InvalidWorkDiv,
    KernelError,
    MemorySpaceError,
    ModelError,
    QueueError,
    SharedMemError,
    TraceError,
)
from .index import (
    Block,
    Blocks,
    Elems,
    Grid,
    Origin,
    Thread,
    Threads,
    Unit,
    delinearize,
    get_idx,
    get_work_div,
    linearize,
    map_idx,
)
from .kernel import (
    KernelTask,
    create_task_kernel,
    fn_acc,
    fn_host,
    fn_host_acc,
    is_acc_callable,
)
from .properties import AccDevProps
from .vec import Dim1, Dim2, Dim3, Dim4, Vec, as_vec, vec1, vec2, vec3
from .workdiv import (
    AutoWorkDiv,
    MappingStrategy,
    WorkDivMembers,
    divide_work,
    validate_work_div,
)

__all__ = [
    # vec
    "Vec", "as_vec", "vec1", "vec2", "vec3", "Dim1", "Dim2", "Dim3", "Dim4",
    # index
    "Origin", "Unit", "Grid", "Block", "Thread", "Blocks", "Threads", "Elems",
    "get_idx", "get_work_div", "map_idx", "linearize", "delinearize",
    # workdiv
    "WorkDivMembers", "AutoWorkDiv", "MappingStrategy", "divide_work",
    "validate_work_div",
    # kernel
    "KernelTask", "create_task_kernel", "fn_acc", "fn_host", "fn_host_acc",
    "is_acc_callable",
    # element
    "element_box", "element_slice", "independent_elements", "grid_strided_spans",
    # properties
    "AccDevProps",
    # errors
    "AlpakaError", "DimensionError", "InvalidWorkDiv", "MemorySpaceError",
    "ExtentError", "DeviceError", "QueueError", "GraphError", "KernelError",
    "SharedMemError", "TraceError", "ModelError",
]
