"""N-dimensional extent/index vectors.

Alpaka models every level of its parallelism hierarchy as an
*n*-dimensional box, so nearly every API in the library passes around
small integer vectors: grid extents, block extents, thread indices,
buffer extents, pitches.  This module provides the Python analogue of
``alpaka::Vec<Dim, Size>``.

Conventions
-----------
* A :class:`Vec` is immutable and behaves like a tuple of Python ints.
* Index ``0`` is the **slowest varying** (outermost) dimension, matching
  numpy shape order.  Linearisation (:func:`repro.core.index.map_idx`)
  is therefore C-order, exactly like CUDA's
  ``(z * dimY + y) * dimX + x`` with reversed naming.
* Dimensionalities 1..4 get the aliases ``Dim1`` .. ``Dim4``; any
  positive dimensionality works.
"""

from __future__ import annotations

import math
import operator
from typing import Callable, Iterable, Iterator, Sequence, Union

from .errors import DimensionError

__all__ = [
    "Vec",
    "Dim1",
    "Dim2",
    "Dim3",
    "Dim4",
    "vec1",
    "vec2",
    "vec3",
]

#: Maximum dimensionality accepted by the library.  Alpaka is unlimited in
#: principle; we bound it to catch accidental misuse (e.g. passing a whole
#: data array where an extent was meant).
MAX_DIM = 16

Dim1 = 1
Dim2 = 2
Dim3 = 3
Dim4 = 4

_IntLike = Union[int, "Vec"]


class Vec:
    """An immutable n-dimensional vector of non-negative-ish integers.

    ``Vec`` supports elementwise arithmetic with other ``Vec`` of the
    same dimensionality and with plain ints (broadcast)::

        >>> Vec(2, 3) * Vec(4, 5)
        Vec(8, 15)
        >>> Vec(2, 3) + 1
        Vec(3, 4)

    Components may be any Python ints (negative values are allowed so
    that index arithmetic like ``idx - 1`` works at domain borders); use
    :meth:`assert_non_negative` where the API requires extents.
    """

    __slots__ = ("_c",)

    def __init__(self, *components: int):
        if len(components) == 1 and isinstance(components[0], (tuple, list)):
            components = tuple(components[0])
        if not components:
            raise DimensionError("Vec needs at least one component")
        if len(components) > MAX_DIM:
            raise DimensionError(
                f"Vec dimensionality {len(components)} exceeds MAX_DIM={MAX_DIM}"
            )
        try:
            self._c = tuple(operator.index(c) for c in components)
        except TypeError as exc:
            raise DimensionError(
                f"Vec components must be integers, got {components!r}"
            ) from exc

    # -- constructors -------------------------------------------------

    @classmethod
    def all(cls, dim: int, value: int) -> "Vec":
        """A vector of ``dim`` copies of ``value`` (alpaka ``Vec::all``)."""
        if dim < 1 or dim > MAX_DIM:
            raise DimensionError(f"dimensionality must be in [1, {MAX_DIM}], got {dim}")
        return cls(*([value] * dim))

    @classmethod
    def zeros(cls, dim: int) -> "Vec":
        return cls.all(dim, 0)

    @classmethod
    def ones(cls, dim: int) -> "Vec":
        return cls.all(dim, 1)

    @classmethod
    def from_iterable(cls, it: Iterable[int]) -> "Vec":
        return cls(*tuple(it))

    # -- basic protocol ------------------------------------------------

    @property
    def dim(self) -> int:
        """Dimensionality of the vector."""
        return len(self._c)

    def __len__(self) -> int:
        return len(self._c)

    def __iter__(self) -> Iterator[int]:
        return iter(self._c)

    def __getitem__(self, i) -> int:
        return self._c[i]

    def __hash__(self) -> int:
        return hash(self._c)

    def __eq__(self, other) -> bool:
        if isinstance(other, Vec):
            return self._c == other._c
        if isinstance(other, (tuple, list)):
            return self._c == tuple(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"Vec({', '.join(map(str, self._c))})"

    def as_tuple(self) -> tuple:
        return self._c

    # -- elementwise arithmetic ---------------------------------------

    def _coerce(self, other: _IntLike) -> "Vec":
        if isinstance(other, Vec):
            if other.dim != self.dim:
                raise DimensionError(
                    f"dimensionality mismatch: {self.dim} vs {other.dim}"
                )
            return other
        if isinstance(other, int):
            return Vec.all(self.dim, other)
        raise DimensionError(f"cannot combine Vec with {type(other).__name__}")

    def _zip(self, other: _IntLike, op: Callable[[int, int], int]) -> "Vec":
        o = self._coerce(other)
        return Vec(*(op(a, b) for a, b in zip(self._c, o._c)))

    def __add__(self, other):
        return self._zip(other, operator.add)

    __radd__ = __add__

    def __sub__(self, other):
        return self._zip(other, operator.sub)

    def __rsub__(self, other):
        return self._coerce(other)._zip(self, operator.sub)

    def __mul__(self, other):
        return self._zip(other, operator.mul)

    __rmul__ = __mul__

    def __floordiv__(self, other):
        return self._zip(other, operator.floordiv)

    def __mod__(self, other):
        return self._zip(other, operator.mod)

    def ceil_div(self, other: _IntLike) -> "Vec":
        """Elementwise ceiling division — the work-division staple for
        computing how many blocks cover an extent."""
        o = self._coerce(other)
        return Vec(*(-(-a // b) for a, b in zip(self._c, o._c)))

    def min(self, other: _IntLike) -> "Vec":
        return self._zip(other, min)

    def max(self, other: _IntLike) -> "Vec":
        return self._zip(other, max)

    # -- reductions & predicates --------------------------------------

    def prod(self) -> int:
        """Product of all components, i.e. the element count of the box."""
        return math.prod(self._c)

    def sum(self) -> int:
        return sum(self._c)

    def all_components(self, pred: Callable[[int], bool]) -> bool:
        return all(pred(c) for c in self._c)

    def elementwise_lt(self, other: _IntLike) -> bool:
        """True when every component is strictly below ``other``'s.

        This is the in-bounds test a kernel performs before touching
        data, so it gets a named method instead of overloading ``<``
        (which would be ambiguous between lexicographic and elementwise
        semantics).
        """
        o = self._coerce(other)
        return all(a < b for a, b in zip(self._c, o._c))

    def elementwise_le(self, other: _IntLike) -> bool:
        o = self._coerce(other)
        return all(a <= b for a, b in zip(self._c, o._c))

    def assert_non_negative(self, what: str = "extent") -> "Vec":
        if any(c < 0 for c in self._c):
            raise DimensionError(f"{what} must be non-negative, got {self!r}")
        return self

    def assert_positive(self, what: str = "extent") -> "Vec":
        if any(c <= 0 for c in self._c):
            raise DimensionError(f"{what} must be positive, got {self!r}")
        return self

    # -- shape manipulation --------------------------------------------

    def with_component(self, i: int, value: int) -> "Vec":
        c = list(self._c)
        c[i] = operator.index(value)
        return Vec(*c)

    def prepend(self, value: int) -> "Vec":
        return Vec(value, *self._c)

    def drop_first(self) -> "Vec":
        if self.dim == 1:
            raise DimensionError("cannot drop the only component of a 1-d Vec")
        return Vec(*self._c[1:])

    def reversed(self) -> "Vec":
        return Vec(*reversed(self._c))


def _vec_ctor(dim: int) -> Callable[..., Vec]:
    def ctor(*components: int) -> Vec:
        if len(components) != dim:
            raise DimensionError(f"expected {dim} components, got {len(components)}")
        return Vec(*components)

    ctor.__name__ = f"vec{dim}"
    ctor.__doc__ = f"Construct a {dim}-dimensional :class:`Vec`."
    return ctor


vec1 = _vec_ctor(1)
vec2 = _vec_ctor(2)
vec3 = _vec_ctor(3)


def as_vec(value: Union[int, Sequence[int], Vec], dim: int | None = None) -> Vec:
    """Coerce ``value`` to a :class:`Vec`.

    ``int`` becomes a 1-d vector unless ``dim`` is given, in which case
    it broadcasts to all components.  Sequences convert directly;
    a dimensionality mismatch with an explicit ``dim`` raises.
    """
    if isinstance(value, Vec):
        v = value
    elif isinstance(value, int):
        v = Vec.all(dim, value) if dim is not None else Vec(value)
    else:
        v = Vec.from_iterable(value)
    if dim is not None and v.dim != dim:
        raise DimensionError(f"expected dimensionality {dim}, got {v.dim}")
    return v
