"""Kernel protocol and kernel execution tasks.

A kernel is the bridge between host and accelerator code (paper
Sec. 3.4.1): any callable whose first parameter is the accelerator::

    class AxpyKernel:
        @fn_acc
        def __call__(self, acc, n, alpha, x, y):
            i = get_idx(acc, Grid, Threads)[0]
            if i < n:
                y[i] += alpha * x[i]

Host code never calls a kernel directly.  It *binds* an accelerator
type, a work division, the kernel and its arguments into a
:class:`KernelTask` (paper Listing 5's ``exec::create``) and enqueues
the task into a device queue; the queue hands the task to the
accelerator's executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Tuple

from .errors import KernelError
from .workdiv import WorkDivMembers

__all__ = [
    "fn_acc",
    "fn_host",
    "fn_host_acc",
    "is_acc_callable",
    "KernelTask",
    "create_task_kernel",
]

_FN_KIND_ATTR = "__alpaka_fn_kind__"


def _mark(kind: str):
    def deco(fn: Callable) -> Callable:
        setattr(fn, _FN_KIND_ATTR, kind)
        return fn

    return deco


#: Marks a function as callable from accelerator code
#: (``ALPAKA_FN_ACC``).  Purely declarative in Python — there is no
#: separate device compiler — but the marker is honoured by the symbolic
#: tracer and checked by tests, preserving the source-level contract.
fn_acc = _mark("acc")

#: Marks a host-only function (``ALPAKA_FN_HOST``).
fn_host = _mark("host")

#: Marks a function callable from both sides (``ALPAKA_FN_HOST_ACC``).
fn_host_acc = _mark("host_acc")


def is_acc_callable(fn: Callable) -> bool:
    """True when ``fn`` (or its ``__call__``) is marked ``fn_acc`` or
    ``fn_host_acc``.  Unmarked callables are treated as accelerator
    callable for convenience, mirroring how alpaka only *requires* the
    macro when a device compiler is in play."""
    kind = getattr(fn, _FN_KIND_ATTR, None)
    if kind is None:
        call = getattr(type(fn), "__call__", None)
        if call is not None:
            kind = getattr(call, _FN_KIND_ATTR, None)
    return kind in (None, "acc", "host_acc")


@dataclass(frozen=True)
class KernelTask:
    """A kernel bound to an accelerator type, work division and arguments
    (the *executor* of paper Sec. 3.4.6).

    The task is inert until enqueued; enqueuing the same task twice
    re-runs the kernel, which is well defined because tasks hold no
    execution state.
    """

    acc_type: type
    work_div: WorkDivMembers
    kernel: Callable
    args: Tuple[Any, ...] = ()
    #: Dynamic block shared memory per block, in bytes (CUDA's third
    #: launch parameter / alpaka's BlockSharedMemDyn).  Retrieved inside
    #: the kernel with ``acc.shared_mem_dyn(dtype)``.
    shared_mem_bytes: int = 0

    def __post_init__(self):
        if self.shared_mem_bytes < 0:
            raise KernelError("shared_mem_bytes must be non-negative")
        if not callable(self.kernel):
            raise KernelError(f"kernel must be callable, got {self.kernel!r}")
        if not is_acc_callable(self.kernel):
            raise KernelError(
                f"kernel {self.kernel!r} is marked host-only (fn_host); "
                "mark it fn_acc or fn_host_acc"
            )

    def execute(self, device) -> None:
        """Run the bound kernel on ``device`` via the accelerator's
        executor.  Called by queues; user code should enqueue instead."""
        self.acc_type.execute(self, device)

    def __repr__(self) -> str:
        kname = getattr(
            self.kernel, "__name__", type(self.kernel).__name__
        )
        return (
            f"KernelTask({self.acc_type.__name__}, {self.work_div}, "
            f"kernel={kname}, {len(self.args)} args)"
        )


def create_task_kernel(
    acc_type: type,
    work_div: WorkDivMembers,
    kernel: Callable,
    *args: Any,
    shared_mem_bytes: int = 0,
) -> KernelTask:
    """Bind kernel + arguments + work division for an accelerator type
    (``alpaka::exec::create`` / ``createTaskKernel``).

    ``shared_mem_bytes`` reserves dynamic block shared memory, sized at
    launch time rather than in kernel source (CUDA ``<<<g, b, smem>>>``
    semantics).  The work division is validated lazily against the
    concrete device at enqueue time, because the same task may target
    any device of the accelerator's platform.
    """
    return KernelTask(
        acc_type=acc_type,
        work_div=work_div,
        kernel=kernel,
        args=args,
        shared_mem_bytes=shared_mem_bytes,
    )
