"""Element-level helpers (paper Sec. 3.2.4).

The element level is Alpaka's answer to SIMD: each thread owns a small
fixed-size box of elements, and the kernel author either loops over it
(scalar path) or applies one vector operation to the whole span
(vector path — compiler auto-vectorisation in C++, numpy array
operations in this reproduction).

The helpers here compute which elements the calling thread owns, clipped
to the real data extent, in both n-dimensional box form and flat slice
form.  The performance cliff between iterating :func:`independent_elements`
scalar-wise and operating on :func:`element_slice` with numpy is the
Python analogue of the vectorised-vs-scalar cliff the paper measures in
Fig. 4's SSE2 discussion and exploits in Figs. 8/9.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from .index import Elems, Grid, Thread, get_idx, get_work_div
from .vec import Vec

__all__ = [
    "element_box",
    "element_slice",
    "independent_elements",
    "grid_strided_spans",
]


def element_box(acc, extent) -> Tuple[slice, ...]:
    """Per-axis slices of the element box owned by the calling thread.

    The box is ``[first, first + elems_per_thread)`` per axis, clipped
    to ``extent``.  Empty slices result when the thread falls entirely
    outside the data (the overhang threads of a non-dividing work
    division).
    """
    ext = extent if isinstance(extent, Vec) else Vec.from_iterable(
        (extent,) if isinstance(extent, int) else extent
    )
    first = get_idx(acc, Grid, Elems)
    span = get_work_div(acc, Thread, Elems)
    return tuple(
        slice(min(f, e), min(f + s, e))
        for f, s, e in zip(first, span, ext)
    )


def element_slice(acc, extent: int) -> slice:
    """Flat slice of elements owned by the calling thread (1-d form).

    This is the fast path: ``data[element_slice(acc, n)] += ...``
    performs the whole per-thread workload as one numpy operation.
    """
    box = element_box(acc, Vec(extent) if isinstance(extent, int) else extent)
    if len(box) != 1:
        raise ValueError(
            "element_slice is one-dimensional; use element_box for n-d kernels"
        )
    return box[0]


def independent_elements(acc, extent) -> Iterator[Vec]:
    """Iterate the n-dim indices of the calling thread's elements.

    The scalar path: equivalent to looping ``element_box`` explicitly.
    Yields :class:`Vec` indices in C order; yields nothing for
    out-of-bounds threads, so kernels need no separate guard.
    """
    box = element_box(acc, extent)

    def rec(prefix, axes):
        if not axes:
            yield Vec(*prefix)
            return
        s, rest = axes[0], axes[1:]
        for i in range(s.start, s.stop):
            yield from rec(prefix + (i,), rest)

    yield from rec((), box)


def grid_strided_spans(acc, extent: int) -> Iterator[slice]:
    """Grid-strided loop over element spans (persistent-thread pattern).

    When the grid does not cover the data (fewer blocks than needed),
    each thread repeatedly strides by the whole grid's element extent::

        for span in grid_strided_spans(acc, n):
            y[span] += a * x[span]

    With a covering grid this degenerates to a single span identical to
    :func:`element_slice`.

    Like :func:`get_idx`, the loop is interceptable: a compile-tracing
    accelerator (:mod:`repro.compile`) provides ``trace_elem_spans``
    and receives the *whole* loop — across threads and stride
    iterations the clipped spans tile ``[0, extent)`` exactly once, so
    the tracer collapses it to a single symbolic span.
    """
    spans = getattr(acc, "trace_elem_spans", None)
    if spans is not None:
        yield from spans(extent)
        return
    span = get_work_div(acc, Thread, Elems)[0]
    stride = get_work_div(acc, Grid, Elems)[0]
    start = get_idx(acc, Grid, Elems)[0]
    while start < extent:
        yield slice(start, min(start + span, extent))
        start += stride
