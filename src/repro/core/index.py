"""Index origins, units, and index-space mapping.

Alpaka kernels never see built-in variables like ``threadIdx``; they ask
the accelerator for an index *relative to an origin and in a unit*::

    idx.get_idx(acc, Grid, Threads)     # global n-dim thread index
    workdiv.get_work_div(acc, Grid, Threads)  # total n-dim thread extent

This module defines the origin/unit vocabulary and the pure functions
that derive any origin/unit combination from the primitive triple the
back-end maintains (block index in grid, thread index in block, work
division), plus :func:`map_idx` which linearises / delinearises indices
between dimensionalities (paper Listing 3).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from .errors import DimensionError
from .vec import Vec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..acc.base import Accelerator

__all__ = [
    "Origin",
    "Unit",
    "Grid",
    "Block",
    "Thread",
    "Blocks",
    "Threads",
    "Elems",
    "get_idx",
    "get_work_div",
    "map_idx",
    "linearize",
    "delinearize",
]


class Origin(enum.Enum):
    """Where an index/extent query is anchored."""

    GRID = "grid"
    BLOCK = "block"
    THREAD = "thread"


class Unit(enum.Enum):
    """What an index/extent query counts."""

    BLOCKS = "blocks"
    THREADS = "threads"
    ELEMS = "elems"


# Short aliases used in kernel code, mirroring alpaka's tag types.
Grid = Origin.GRID
Block = Origin.BLOCK
Thread = Origin.THREAD
Blocks = Unit.BLOCKS
Threads = Unit.THREADS
Elems = Unit.ELEMS


def get_idx(acc: "Accelerator", origin: Origin, unit: Unit) -> Vec:
    """The current thread's index, in ``unit`` steps, relative to ``origin``.

    Supported combinations (matching alpaka):

    ===========  =========  ==========================================
    origin       unit       meaning
    ===========  =========  ==========================================
    ``Grid``     ``Blocks``   block index within the grid
    ``Grid``     ``Threads``  global thread index
    ``Grid``     ``Elems``    index of the thread's first element
    ``Block``    ``Threads``  thread index within its block
    ``Block``    ``Elems``    first element of this thread within block
    ===========  =========  ==========================================

    Tracing accelerators (:mod:`repro.trace`) intercept the query via a
    ``trace_get_idx`` hook, so the *same kernel source* can be executed
    and symbolically compiled.
    """
    hook = getattr(acc, "trace_get_idx", None)
    if hook is not None:
        return hook(origin, unit)
    wd = acc.work_div
    if origin is Origin.GRID:
        if unit is Unit.BLOCKS:
            return acc.grid_block_idx
        if unit is Unit.THREADS:
            return acc.grid_block_idx * wd.block_thread_extent + acc.block_thread_idx
        if unit is Unit.ELEMS:
            gt = acc.grid_block_idx * wd.block_thread_extent + acc.block_thread_idx
            return gt * wd.thread_elem_extent
    elif origin is Origin.BLOCK:
        if unit is Unit.THREADS:
            return acc.block_thread_idx
        if unit is Unit.ELEMS:
            return acc.block_thread_idx * wd.thread_elem_extent
    raise DimensionError(f"unsupported index query: origin={origin}, unit={unit}")


def get_work_div(acc_or_workdiv, origin: Origin, unit: Unit) -> Vec:
    """The extent of ``origin`` counted in ``unit`` steps.

    Accepts either an accelerator (inside a kernel) or a work division
    object (host side), since the answer depends only on the work
    division.

    ===========  =========  ==========================================
    origin       unit       meaning
    ===========  =========  ==========================================
    ``Grid``     ``Blocks``   blocks per grid
    ``Grid``     ``Threads``  threads per grid
    ``Grid``     ``Elems``    elements per grid (the problem extent)
    ``Block``    ``Threads``  threads per block
    ``Block``    ``Elems``    elements per block
    ``Thread``   ``Elems``    elements per thread
    ===========  =========  ==========================================
    """
    hook = getattr(acc_or_workdiv, "trace_get_work_div", None)
    if hook is not None:
        return hook(origin, unit)
    wd = getattr(acc_or_workdiv, "work_div", acc_or_workdiv)
    if origin is Origin.GRID:
        if unit is Unit.BLOCKS:
            return wd.grid_block_extent
        if unit is Unit.THREADS:
            return wd.grid_block_extent * wd.block_thread_extent
        if unit is Unit.ELEMS:
            return (
                wd.grid_block_extent
                * wd.block_thread_extent
                * wd.thread_elem_extent
            )
    elif origin is Origin.BLOCK:
        if unit is Unit.THREADS:
            return wd.block_thread_extent
        if unit is Unit.ELEMS:
            return wd.block_thread_extent * wd.thread_elem_extent
    elif origin is Origin.THREAD:
        if unit is Unit.ELEMS:
            return wd.thread_elem_extent
    raise DimensionError(f"unsupported extent query: origin={origin}, unit={unit}")


def linearize(idx: Vec, extent: Vec) -> int:
    """C-order linearisation of an n-dim index inside an n-dim extent.

    Component 0 is the slowest varying dimension (numpy shape order)::

        >>> linearize(Vec(1, 2), Vec(4, 8))
        10
    """
    if idx.dim != extent.dim:
        raise DimensionError(f"index dim {idx.dim} != extent dim {extent.dim}")
    lin = 0
    for i, e in zip(idx, extent):
        if not 0 <= i < e:
            raise DimensionError(f"index {idx!r} out of extent {extent!r}")
        lin = lin * e + i
    return lin


def delinearize(lin: int, extent: Vec) -> Vec:
    """Inverse of :func:`linearize`."""
    total = extent.prod()
    if not 0 <= lin < total:
        raise DimensionError(f"linear index {lin} out of extent {extent!r}")
    comps = []
    for e in reversed(extent.as_tuple()):
        comps.append(lin % e)
        lin //= e
    return Vec(*reversed(comps))


def map_idx(target_dim: int, idx: Vec, extent: Vec) -> Vec:
    """Map an index between dimensionalities (alpaka ``mapIdx<N>``).

    ``map_idx(1, idx, extent)`` linearises; ``map_idx(n, Vec(lin), extent)``
    with an n-dim ``extent`` delinearises; same-dimensionality mapping is
    the identity.  This is the function kernels use to turn an n-dim
    global thread index into a flat data offset (paper Listing 3).
    """
    if target_dim == idx.dim:
        return idx
    if target_dim == 1:
        return Vec(linearize(idx, extent))
    if idx.dim == 1:
        if extent.dim != target_dim:
            raise DimensionError(
                f"extent dim {extent.dim} must equal target dim {target_dim}"
            )
        return delinearize(idx[0], extent)
    raise DimensionError(
        f"map_idx supports n->1, 1->n and n->n mappings, not {idx.dim}->{target_dim}"
    )
