"""Work division: how a problem extent is split over the hierarchy.

A work division fixes the extents of the three nested levels below the
grid: blocks per grid, threads per block and elements per thread
(paper Listing 2).  The division is *the* tuning knob that the paper's
evaluation turns — the same kernel with a CUDA-shaped division
(many threads, few elements) or a CPU-shaped division (one thread per
block, many elements) differs by an order of magnitude in performance.

Besides the explicit :class:`WorkDivMembers`, this module implements the
automatic divider :func:`divide_work` realising the predefined mappings
of paper Table 2, and :func:`validate_work_div` which enforces device
limits (:class:`~repro.core.properties.AccDevProps`).

The third strategy, :attr:`MappingStrategy.AUTO`, defers the choice to
the work-division autotuner (:mod:`repro.tuning`): a previously measured
winner is served from the persistent tuning cache, and the Table 2
heuristic is the fallback when nothing has been tuned yet.
:class:`AutoWorkDiv` is the task-level spelling of the same deferral —
a placeholder the launch runtime resolves at plan time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence, Union

from .errors import InvalidWorkDiv
from .properties import AccDevProps
from .vec import Vec, as_vec

__all__ = [
    "WorkDivMembers",
    "AutoWorkDiv",
    "MappingStrategy",
    "divide_work",
    "validate_work_div",
]


@dataclass(frozen=True)
class WorkDivMembers:
    """Extents of the block, thread and element levels (paper Listing 2).

    All three extents must share one dimensionality.  The grid level
    itself always spans the whole device (paper Sec. 3.3), so it has no
    extent of its own.
    """

    grid_block_extent: Vec
    block_thread_extent: Vec
    thread_elem_extent: Vec

    def __post_init__(self):
        g, b, t = (
            self.grid_block_extent,
            self.block_thread_extent,
            self.thread_elem_extent,
        )
        if not (g.dim == b.dim == t.dim):
            raise InvalidWorkDiv(
                f"work division levels disagree in dimensionality: "
                f"{g.dim}/{b.dim}/{t.dim}"
            )
        for name, v in (
            ("grid block extent", g),
            ("block thread extent", b),
            ("thread element extent", t),
        ):
            if any(c <= 0 for c in v):
                raise InvalidWorkDiv(f"{name} must be positive, got {v!r}")

    @classmethod
    def make(
        cls,
        grid_blocks: Union[int, Sequence[int], Vec],
        block_threads: Union[int, Sequence[int], Vec],
        thread_elems: Union[int, Sequence[int], Vec],
        dim: int | None = None,
    ) -> "WorkDivMembers":
        """Convenience constructor accepting ints / sequences / Vecs.

        When ``dim`` is given, plain ints broadcast to that
        dimensionality; otherwise the dimensionality is inferred from
        the first non-int argument (defaulting to 1-d).
        """
        if dim is None:
            for v in (grid_blocks, block_threads, thread_elems):
                if isinstance(v, Vec):
                    dim = v.dim
                    break
                if isinstance(v, (tuple, list)):
                    dim = len(v)
                    break
            else:
                dim = 1
        return cls(
            as_vec(grid_blocks, dim),
            as_vec(block_threads, dim),
            as_vec(thread_elems, dim),
        )

    # -- derived quantities -------------------------------------------

    @property
    def dim(self) -> int:
        return self.grid_block_extent.dim

    @property
    def grid_thread_extent(self) -> Vec:
        return self.grid_block_extent * self.block_thread_extent

    @property
    def grid_elem_extent(self) -> Vec:
        """The total n-dim element extent the division covers — the
        problem extent a caller sized the division for (or slightly
        more, when the extents do not divide evenly)."""
        return (
            self.grid_block_extent
            * self.block_thread_extent
            * self.thread_elem_extent
        )

    @property
    def block_count(self) -> int:
        return self.grid_block_extent.prod()

    @property
    def block_thread_count(self) -> int:
        return self.block_thread_extent.prod()

    @property
    def thread_elem_count(self) -> int:
        return self.thread_elem_extent.prod()

    def __str__(self) -> str:
        return (
            f"WorkDiv(blocks={self.grid_block_extent!r}, "
            f"threads={self.block_thread_extent!r}, "
            f"elems={self.thread_elem_extent!r})"
        )


class MappingStrategy(enum.Enum):
    """How an accelerator prefers work to be divided (paper Table 2).

    * ``THREAD_LEVEL`` — the back-end has cheap hardware threads; fill
      blocks with threads (CUDA, OpenMP-thread, C++11-thread rows:
      grid = N/(B*V), block = B, element = V).
    * ``BLOCK_LEVEL`` — threads are expensive or absent; one thread per
      block, parallelism across blocks, data parallelism in the element
      level (OpenMP-block and Sequential rows: grid = N/V, block = 1,
      element = V).
    * ``AUTO`` — let the autotuner (:mod:`repro.tuning`) choose: serve a
      measured winner from the tuning cache when one exists, fall back
      to the back-end's Table 2 heuristic otherwise.  The search itself
      runs only through an explicit :func:`repro.tuning.autotune` call,
      never implicitly at launch time.
    """

    THREAD_LEVEL = "thread-level"
    BLOCK_LEVEL = "block-level"
    AUTO = "auto"


@dataclass(frozen=True)
class AutoWorkDiv:
    """A deferred work division: "cover ``extent``, choose the split later".

    Tasks created with an ``AutoWorkDiv`` instead of concrete
    :class:`WorkDivMembers` are resolved by the launch runtime at plan
    time (:func:`repro.tuning.resolve_work_div`): a tuned division from
    the persistent cache when available, the Table 2 heuristic
    otherwise.  The placeholder is hashable and carries the problem
    extent, so the launch-plan cache distinguishes deferred launches of
    different problem sizes.
    """

    extent: Vec

    def __post_init__(self):
        ext = self.extent
        if not isinstance(ext, Vec):
            object.__setattr__(self, "extent", as_vec(ext))
            ext = self.extent
        if any(c <= 0 for c in ext):
            raise InvalidWorkDiv(
                f"auto work division needs a positive extent, got {ext!r}"
            )

    @property
    def dim(self) -> int:
        return self.extent.dim

    def __str__(self) -> str:
        return f"AutoWorkDiv(extent={self.extent!r})"


def divide_work(
    extent: Union[int, Sequence[int], Vec],
    props: AccDevProps,
    strategy: MappingStrategy,
    *,
    block_threads: Union[int, Sequence[int], Vec, None] = None,
    thread_elems: Union[int, Sequence[int], Vec, None] = None,
    kernel=None,
    acc_type=None,
    device=None,
) -> WorkDivMembers:
    """Compute a valid work division covering ``extent`` elements.

    Implements the predefined mappings of paper Table 2 with problem
    size ``N = prod(extent)``, threads per block ``B`` and elements per
    thread ``V``:

    * thread-level:  grid = ceil(N / (B*V)), block = B, element = V
    * block-level:   grid = ceil(N / V),     block = 1, element = V
    * auto:          defer to :func:`repro.tuning.auto_divide` (tuned
      winner from the persistent cache, Table 2 heuristic fallback)

    ``B`` defaults to the largest block the device allows, filled from
    the fastest axis outward; ``V`` defaults to 1 but grows per axis
    when the resulting grid would exceed a per-axis device grid limit
    (degenerate shapes such as a 1-wide fast dimension push every block
    onto one slow axis).  The result is validated against ``props``; all
    divisions cover at least ``extent`` (they may overhang, kernels
    guard with an in-bounds test exactly as on CUDA).

    ``kernel`` / ``acc_type`` / ``device`` are only consulted by the
    ``AUTO`` strategy, which uses them to look up a previously tuned
    division; the Table 2 strategies ignore them.
    """
    if strategy is MappingStrategy.AUTO:
        from ..tuning import auto_divide

        return auto_divide(
            extent,
            props,
            kernel=kernel,
            acc_type=acc_type,
            device=device,
            block_threads=block_threads,
            thread_elems=thread_elems,
        )

    ext = as_vec(extent)
    if any(c <= 0 for c in ext):
        raise InvalidWorkDiv(
            f"problem extent must be positive, got {ext!r}; a zero-sized "
            "launch has no valid work division (skip the launch instead)"
        )
    dim = ext.dim
    p = props.for_dim(dim)

    v = as_vec(thread_elems, dim) if thread_elems is not None else Vec.ones(dim)
    v.assert_positive("thread element extent")

    if strategy is MappingStrategy.BLOCK_LEVEL:
        if block_threads is not None and as_vec(block_threads, dim).prod() != 1:
            raise InvalidWorkDiv(
                "block-level mapping fixes one thread per block; "
                f"got block_threads={block_threads!r}"
            )
        b = Vec.ones(dim)
    else:
        if block_threads is not None:
            b = as_vec(block_threads, dim)
            b.assert_positive("block thread extent")
        else:
            b = _default_block_extent(ext, v, p)

    if thread_elems is None:
        v = _grow_elems_to_fit_grid(ext, b, v, p)

    grid = ext.ceil_div(b * v).max(1)
    wd = WorkDivMembers(grid, b, v)
    validate_work_div(wd, p)
    return wd


def _default_block_extent(extent: Vec, elems: Vec, props: AccDevProps) -> Vec:
    """Pick a block extent: fill the device's thread budget starting at
    the fastest axis, spilling leftover capacity onto slower axes, each
    axis clamped to its device limit and to the per-thread-decimated
    problem.  Spilling is what keeps degenerate shapes (1-wide fast
    dimensions) from mapping the whole problem onto grid blocks alone.
    """
    dim = extent.dim
    work = extent.ceil_div(elems)
    b = Vec.ones(dim)
    budget = props.block_thread_count_max
    for axis in range(dim - 1, -1, -1):
        if budget <= 1:
            break
        take = max(1, min(props.block_thread_extent_max[axis], budget, work[axis]))
        b = b.with_component(axis, take)
        budget //= take
    return b


def _grow_elems_to_fit_grid(
    extent: Vec, block: Vec, elems: Vec, props: AccDevProps
) -> Vec:
    """Grow the element extent per axis until the implied grid respects
    the device's per-axis grid limits.

    Only called when the caller left ``thread_elems`` to the divider: a
    degenerate extent (e.g. ``(2**20, 1)`` against a 65535-block axis
    limit) would otherwise produce a grid that
    :func:`validate_work_div` must reject.
    """
    grid = extent.ceil_div(block * elems).max(1)
    gmax = props.grid_block_extent_max
    vmax = props.thread_elem_extent_max
    for axis in range(extent.dim):
        if grid[axis] > gmax[axis]:
            need = -(-extent[axis] // (block[axis] * gmax[axis]))
            elems = elems.with_component(
                axis, min(max(elems[axis], need), vmax[axis])
            )
    return elems


def validate_work_div(wd: WorkDivMembers, props: AccDevProps) -> None:
    """Raise :class:`InvalidWorkDiv` when ``wd`` violates ``props``."""
    p = props.for_dim(wd.dim)
    if not wd.grid_block_extent.elementwise_le(p.grid_block_extent_max):
        raise InvalidWorkDiv(
            f"grid extent {wd.grid_block_extent!r} exceeds device limit "
            f"{p.grid_block_extent_max!r}"
        )
    if not wd.block_thread_extent.elementwise_le(p.block_thread_extent_max):
        raise InvalidWorkDiv(
            f"block extent {wd.block_thread_extent!r} exceeds device limit "
            f"{p.block_thread_extent_max!r}"
        )
    if wd.block_thread_count > p.block_thread_count_max:
        raise InvalidWorkDiv(
            f"block thread count {wd.block_thread_count} exceeds device "
            f"limit {p.block_thread_count_max}"
        )
    if not wd.thread_elem_extent.elementwise_le(p.thread_elem_extent_max):
        raise InvalidWorkDiv(
            f"thread element extent {wd.thread_elem_extent!r} exceeds device "
            f"limit {p.thread_elem_extent_max!r}"
        )
