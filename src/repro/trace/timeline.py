"""Execution timeline tracing via the runtime's instrumentation hooks.

Where the rest of :mod:`repro.trace` captures *what code* a kernel
turns into (symbolic PTX-like streams), this module captures *what the
runtime did*: an ordered record of launches, blocks, copies and queue
drains, attributed to back-end and device.  It consumes the real
:class:`repro.runtime.instrument.ExecutionObserver` hooks — no user
callable is wrapped, so tracing changes nothing about how kernels run.

Typical use::

    with trace_execution() as tl:
        enqueue(queue, task)
        wait(queue)
    print(tl.render())
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from ..runtime.instrument import ExecutionObserver, observe

__all__ = ["TimelineEvent", "TimelineObserver", "trace_execution"]


@dataclass(frozen=True)
class TimelineEvent:
    """One runtime transition on the recorded timeline."""

    #: "launch_begin" | "launch_end" | "block" | "copy" | "queue_drain"
    #: | "sanitize"
    kind: str
    #: Host wall-clock seconds relative to the observer's creation.
    t: float
    #: Back-end name for launches/blocks, device/queue repr otherwise.
    what: str
    #: Optional detail (work-div for launches, block index for blocks).
    detail: str = ""
    #: The device's simulated clock (integer femtoseconds) at the
    #: event, where a device was at hand — correlates the modeled
    #: timeline with the wall one.  None for events without a device.
    sim_time_fs: Optional[int] = None


@dataclass
class TimelineObserver(ExecutionObserver):
    """Records runtime events with relative host timestamps.

    Block events can be torrential on large grids; ``record_blocks``
    keeps them opt-in.  With ``record_sim_time`` (the default) every
    event that has a device at hand also snapshots
    :attr:`~repro.dev.device.Device.sim_time_fs`, so the modeled
    timeline can be laid over the wall-clock one.
    """

    record_blocks: bool = False
    record_sim_time: bool = True
    events: List[TimelineEvent] = field(default_factory=list)
    _t0: float = field(default_factory=time.perf_counter)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def _emit(
        self, kind: str, what: str, detail: str = "", device=None
    ) -> None:
        sim = (
            device.sim_time_fs
            if self.record_sim_time and device is not None
            else None
        )
        ev = TimelineEvent(
            kind, time.perf_counter() - self._t0, what, detail, sim
        )
        with self._lock:
            self.events.append(ev)

    def on_launch_begin(self, plan, task, device) -> None:
        self._emit(
            "launch_begin",
            plan.acc_type.name,
            f"{plan.work_div} schedule={plan.schedule} dev={device.name}",
            device=device,
        )

    def on_launch_end(self, plan, task, device) -> None:
        self._emit("launch_end", plan.acc_type.name, device=device)

    def on_block(self, plan, block_idx) -> None:
        if self.record_blocks:
            self._emit("block", plan.acc_type.name, repr(block_idx))

    def on_copy(self, task, device) -> None:
        self._emit("copy", type(task).__name__, repr(task), device=device)

    def on_queue_drain(self, queue) -> None:
        self._emit("queue_drain", repr(queue), device=queue.dev)

    def on_sanitizer_report(self, plan, record) -> None:
        kinds = sorted({f.kind for f in record.findings})
        summary = f"findings={len(record.findings)}"
        if kinds:
            summary += f" ({', '.join(kinds)})"
        self._emit("sanitize", plan.acc_type.name, f"{record.kernel}: {summary}")

    # -- queries ---------------------------------------------------------

    def launches(self) -> List[TimelineEvent]:
        return [e for e in self.events if e.kind == "launch_begin"]

    def span(self, index: int = 0) -> Optional[float]:
        """Wall seconds between the ``index``-th launch_begin and its
        matching launch_end (None while still in flight)."""
        begins = [e for e in self.events if e.kind == "launch_begin"]
        ends = [e for e in self.events if e.kind == "launch_end"]
        if index >= len(begins) or index >= len(ends):
            return None
        return ends[index].t - begins[index].t

    def render(self) -> str:
        """Human-readable timeline, one event per line."""
        lines = [
            f"{e.t * 1e3:10.3f} ms  {e.kind:<12} {e.what}"
            + (f"  [{e.detail}]" if e.detail else "")
            for e in self.events
        ]
        return "\n".join(lines)


@contextmanager
def trace_execution(record_blocks: bool = False) -> Iterator[TimelineObserver]:
    """Record a runtime timeline for the duration of a ``with`` block."""
    with observe(TimelineObserver(record_blocks=record_blocks)) as tl:
        yield tl
