"""Tracing accelerator: compile an *alpaka* kernel symbolically.

The same kernel object that executes on any back-end is handed a
:class:`TraceAcc`; its index queries then emit PTX-like instructions
instead of returning numbers (the ``trace_get_idx`` hook in
:func:`repro.core.index.get_idx`), and its buffer arguments are
:class:`~repro.trace.symbolic.SymArray` parameters.  The result is the
reproduction's "generated code" for the kernel, comparable
instruction-by-instruction with a natively written CUDA kernel
(:mod:`repro.trace.native_cuda`) — paper Fig. 4.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from ..core.errors import TraceError
from ..core.index import Origin, Unit
from .ir import IRBuilder
from .symbolic import SymArray, SymFloat, SymInt, TraceContext

__all__ = ["TraceAcc", "ArgSpec", "trace_alpaka_kernel"]

#: ("int", name) | ("float", name) | ("array", name) | ("const_array", name),
#: each optionally with a third element: the element dtype of an array
#: parameter (default float64) — e.g. ("array", "counts", np.int32).
#: The dtype scales the byte-offset computation and selects the
#: ``ld.global``/``st.global`` type suffix.
ArgSpec = Union[Tuple[str, str], Tuple[str, str, object]]

_AXES = ("x", "y", "z")


class _TraceVec:
    """Minimal Vec look-alike over symbolic components."""

    def __init__(self, components: List[SymInt]):
        self._c = components

    def __getitem__(self, i: int) -> SymInt:
        return self._c[i]

    def __len__(self) -> int:
        return len(self._c)

    @property
    def dim(self) -> int:
        return len(self._c)


class SymSharedArray:
    """A block-shared array in a traced kernel.

    Loads/stores go through the ``.shared`` state space (no ``cvta``:
    shared addresses are generic-free in PTX kernels compiled for a
    known space).
    """

    def __init__(self, ctx: TraceContext, name: str, itemsize: int = 8):
        self.ctx = ctx
        self.name = name
        self.itemsize = itemsize
        self._base: str | None = None
        self._addr_cache: dict = {}

    def _address(self, idx: SymInt) -> str:
        if self._base is None:
            self._base = self.ctx.b.new_reg("rd")
            self.ctx.b.emit("mov.u64", self._base, f"%{self.name}")
        addr = self._addr_cache.get(idx.reg)
        if addr is None:
            off = self.ctx.b.new_reg("rd")
            self.ctx.b.emit("mul.wide.s32", off, idx.reg, str(self.itemsize))
            addr = self.ctx.b.new_reg("rd")
            self.ctx.b.emit("add.s64", addr, self._base, off)
            self._addr_cache[idx.reg] = addr
        return addr

    def __getitem__(self, idx) -> SymFloat:
        if not isinstance(idx, SymInt):
            raise TraceError("shared arrays trace only symbolic indices")
        dst = self.ctx.b.new_reg("fd")
        self.ctx.b.emit("ld.shared.f64", dst, self._address(idx))
        return SymFloat(self.ctx, dst)

    def __setitem__(self, idx, value) -> None:
        if not isinstance(idx, SymInt):
            raise TraceError("shared arrays trace only symbolic indices")
        if hasattr(value, "materialise"):
            value = value.materialise()
        if not isinstance(value, SymFloat):
            value = self.ctx.float_value(value)
        self.ctx.b.emit("st.shared.f64", None, self._address(idx), value.reg)


class TraceAcc:
    """The accelerator stand-in a kernel sees while being traced.

    Only 1-3 dimensional index queries are supported; component 0 is the
    slowest dimension (library convention), which maps to the *last*
    CUDA axis name, so a 1-d kernel's queries read ``%tid.x`` exactly as
    in the paper's figure.  Shared memory and block barriers trace too
    (``ld.shared``/``st.shared``/``bar.sync``), so tiled kernels can be
    inspected, not only elementwise ones.
    """

    def __init__(self, ctx: TraceContext, dim: int = 1):
        if not 1 <= dim <= 3:
            raise TraceError(f"TraceAcc supports 1..3 dimensions, got {dim}")
        self.ctx = ctx
        self.dim = dim
        self._idx_cache = {}
        self._shared: dict = {}

    # -- shared memory & synchronisation (traced) ----------------------

    def shared_mem(self, name: str, shape, dtype=None) -> SymSharedArray:
        if name not in self._shared:
            self._shared[name] = SymSharedArray(self.ctx, name)
        return self._shared[name]

    def sync_block_threads(self) -> None:
        self.ctx.b.emit("bar.sync", None, "0")

    # -- hooks consumed by repro.core.index ------------------------------

    def trace_get_idx(self, origin: Origin, unit: Unit) -> _TraceVec:
        key = ("idx", origin, unit)
        if key not in self._idx_cache:
            self._idx_cache[key] = self._compute_idx(origin, unit)
        return self._idx_cache[key]

    def trace_get_work_div(self, origin: Origin, unit: Unit) -> _TraceVec:
        key = ("ext", origin, unit)
        if key not in self._idx_cache:
            self._idx_cache[key] = self._compute_extent(origin, unit)
        return self._idx_cache[key]

    # -- special registers ---------------------------------------------------

    def _sreg(self, sreg: str, axis: int) -> SymInt:
        """Read a CUDA special register (%ctaid/%ntid/%tid/%nctaid)."""
        name = f"%{sreg}.{_AXES[self.dim - 1 - axis]}"
        key = ("sreg", name)
        if key not in self._idx_cache:
            dst = self.ctx.b.new_reg("r")
            self.ctx.b.emit("mov.u32", dst, name)
            self._idx_cache[key] = SymInt(self.ctx, dst)
        return self._idx_cache[key]

    def _compute_idx(self, origin: Origin, unit: Unit) -> _TraceVec:
        comps = []
        for axis in range(self.dim):
            if origin is Origin.GRID and unit is Unit.BLOCKS:
                comps.append(self._sreg("ctaid", axis))
            elif origin is Origin.BLOCK and unit is Unit.THREADS:
                comps.append(self._sreg("tid", axis))
            elif origin is Origin.GRID and unit is Unit.THREADS:
                ctaid = self._sreg("ctaid", axis)
                ntid = self._sreg("ntid", axis)
                tid = self._sreg("tid", axis)
                comps.append(ntid.mad(ctaid, tid))
            else:
                raise TraceError(
                    f"unsupported traced index query {origin}/{unit}"
                )
        return _TraceVec(comps)

    def _compute_extent(self, origin: Origin, unit: Unit) -> _TraceVec:
        comps = []
        for axis in range(self.dim):
            if origin is Origin.BLOCK and unit is Unit.THREADS:
                comps.append(self._sreg("ntid", axis))
            elif origin is Origin.GRID and unit is Unit.BLOCKS:
                comps.append(self._sreg("nctaid", axis))
            elif origin is Origin.GRID and unit is Unit.THREADS:
                comps.append(
                    self._sreg("nctaid", axis) * self._sreg("ntid", axis)
                )
            else:
                raise TraceError(
                    f"unsupported traced extent query {origin}/{unit}"
                )
        return _TraceVec(comps)


def _make_params(ctx: TraceContext, arg_specs: Sequence[ArgSpec]):
    args = []
    for spec in arg_specs:
        kind, name = spec[0], spec[1]
        dtype = spec[2] if len(spec) > 2 else np.float64
        if kind == "int":
            args.append(SymInt(ctx, ctx.b.new_param("r")))
        elif kind == "float":
            args.append(SymFloat(ctx, ctx.b.new_param("fd")))
        elif kind == "array":
            args.append(
                SymArray(ctx, ctx.b.new_param("rd"), name, dtype=dtype)
            )
        elif kind == "const_array":
            args.append(
                SymArray(
                    ctx, ctx.b.new_param("rd"), name, dtype=dtype, const=True
                )
            )
        else:
            raise TraceError(f"unknown arg spec kind {kind!r} for {name!r}")
    return args


def trace_alpaka_kernel(
    kernel,
    arg_specs: Sequence[ArgSpec],
    *,
    dim: int = 1,
    name: str = "alpaka_kernel",
) -> IRBuilder:
    """Symbolically compile an alpaka kernel.

    ``arg_specs`` describes the kernel parameters after the accelerator,
    in order.  Returns the finished instruction stream.
    """
    ctx = TraceContext(name)
    acc = TraceAcc(ctx, dim=dim)
    args = _make_params(ctx, arg_specs)
    kernel(acc, *args)
    return ctx.finish()
