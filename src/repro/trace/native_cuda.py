"""Native-CUDA tracing surface.

Paper Fig. 4 compares Alpaka-generated PTX with PTX from a *natively
written* CUDA kernel.  The reproduction needs both sides of that
comparison, so this module provides a miniature CUDA-C-like API —
``cu.block_idx_x()``, ``cu.block_dim_x()``, ``cu.thread_idx_x()`` —
whose use emits exactly the special-register reads nvcc would.  A
"native" kernel is a Python function written against this API, not
against the alpaka accelerator::

    def daxpy_cuda(cu, n, alpha, x, y):
        i = cu.block_dim_x().mad(cu.block_idx_x(), cu.thread_idx_x())
        if i < n:
            y[i] = alpha * x[i] + y[i]

``x`` is traced as ``const double* __restrict__`` (pass
``("const_array", "x")``), which produces the ``ld.global.nc.f64``
non-coherent load — the single difference the paper reports between the
two PTX listings.
"""

from __future__ import annotations

from typing import Sequence

from .acc import ArgSpec, _make_params
from .ir import IRBuilder
from .symbolic import SymInt, TraceContext

__all__ = ["CudaSurface", "trace_cuda_kernel"]

_AXES = ("x", "y", "z")


class CudaSurface:
    """The built-in variables of CUDA C, as tracing calls."""

    def __init__(self, ctx: TraceContext):
        self.ctx = ctx
        self._cache = {}

    def _sreg(self, name: str) -> SymInt:
        if name not in self._cache:
            dst = self.ctx.b.new_reg("r")
            self.ctx.b.emit("mov.u32", dst, name)
            self._cache[name] = SymInt(self.ctx, dst)
        return self._cache[name]

    # blockIdx / blockDim / threadIdx / gridDim, per axis ---------------

    def block_idx(self, axis: str = "x") -> SymInt:
        return self._sreg(f"%ctaid.{axis}")

    def block_dim(self, axis: str = "x") -> SymInt:
        return self._sreg(f"%ntid.{axis}")

    def thread_idx(self, axis: str = "x") -> SymInt:
        return self._sreg(f"%tid.{axis}")

    def grid_dim(self, axis: str = "x") -> SymInt:
        return self._sreg(f"%nctaid.{axis}")

    # convenience x-axis spellings ------------------------------------------

    def block_idx_x(self) -> SymInt:
        return self.block_idx("x")

    def block_dim_x(self) -> SymInt:
        return self.block_dim("x")

    def thread_idx_x(self) -> SymInt:
        return self.thread_idx("x")

    def global_thread_idx_x(self) -> SymInt:
        """``blockDim.x * blockIdx.x + threadIdx.x`` as nvcc emits it:
        the special registers are read in ``%ctaid``, ``%ntid``,
        ``%tid`` order and contracted into one ``mad.lo.s32`` — exactly
        the four-instruction prologue of both listings in paper
        Fig. 4."""
        ctaid = self.block_idx_x()
        ntid = self.block_dim_x()
        tid = self.thread_idx_x()
        return ntid.mad(ctaid, tid)


def trace_cuda_kernel(
    kernel,
    arg_specs: Sequence[ArgSpec],
    *,
    name: str = "cuda_kernel",
) -> IRBuilder:
    """Symbolically compile a native CUDA-style kernel."""
    ctx = TraceContext(name)
    cu = CudaSurface(ctx)
    args = _make_params(ctx, arg_specs)
    kernel(cu, *args)
    return ctx.finish()
