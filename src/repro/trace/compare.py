"""Instruction-stream comparison (the paper's Fig. 4 check).

The paper's finding: the Alpaka and the native CUDA DAXPY PTX are
*"identical up to ... different internal variable names and the use of
non coherent texture cache once"*.  The comparator reproduces that
statement mechanically:

* register names are canonicalised (renumbered per class in order of
  first appearance), removing the "internal variable names" difference;
* labels are canonicalised the same way;
* cache-modifier-only opcode differences (``ld.global.f64`` vs
  ``ld.global.nc.f64``) are, optionally, downgraded from differences to
  *notes* — they change the cache path, not the computation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .ir import Instruction, IRBuilder

__all__ = ["normalize", "compare_streams", "ComparisonResult"]

_REG_RE = re.compile(r"%(p|rd|fd|r)(\d+)")
_LABEL_RE = re.compile(r"^BB\d+$")

#: Opcode pairs that differ only in a cache modifier.
_CACHE_MODIFIER_PAIRS = {
    frozenset({"ld.global.f64", "ld.global.nc.f64"}),
    frozenset({"ld.global.f32", "ld.global.nc.f32"}),
}


def _canon_operand(
    operand: str, reg_map: Dict[str, str], counters: Dict[str, int],
    label_map: Dict[str, str],
) -> str:
    m = _REG_RE.fullmatch(operand)
    if m:
        if operand not in reg_map:
            cls = m.group(1)
            counters[cls] += 1
            reg_map[operand] = f"%{cls}{counters[cls]}"
        return reg_map[operand]
    if _LABEL_RE.fullmatch(operand):
        if operand not in label_map:
            label_map[operand] = f"L{len(label_map) + 1}"
        return label_map[operand]
    return operand


def normalize(builder: IRBuilder) -> List[Instruction]:
    """Canonicalise register and label names of a stream."""
    reg_map: Dict[str, str] = {}
    counters = {"r": 0, "rd": 0, "fd": 0, "p": 0}
    label_map: Dict[str, str] = {}
    out: List[Instruction] = []
    for ins in builder.instructions:
        dst = (
            _canon_operand(ins.dst, reg_map, counters, label_map)
            if ins.dst
            else None
        )
        srcs = tuple(
            _canon_operand(s, reg_map, counters, label_map) for s in ins.srcs
        )
        pred = (
            _canon_operand(ins.predicate, reg_map, counters, label_map)
            if ins.predicate
            else None
        )
        out.append(Instruction(ins.op, dst, srcs, pred, ""))
    return out


@dataclass
class ComparisonResult:
    """Outcome of comparing two normalised streams."""

    identical: bool
    #: Hard differences: (position, left rendering, right rendering).
    differences: List[Tuple[int, str, str]] = field(default_factory=list)
    #: Soft differences (cache modifiers) reported like the paper does.
    notes: List[str] = field(default_factory=list)

    @property
    def identical_up_to_cache_modifiers(self) -> bool:
        return not self.differences

    def summary(self) -> str:
        if self.identical:
            return "streams identical"
        if not self.differences:
            return (
                "streams identical up to cache modifiers: "
                + "; ".join(self.notes)
            )
        return f"{len(self.differences)} difference(s): " + "; ".join(
            f"@{pos}: {a!r} vs {b!r}" for pos, a, b in self.differences[:5]
        )


def _is_cache_modifier_pair(op_a: str, op_b: str) -> bool:
    return frozenset({op_a, op_b}) in _CACHE_MODIFIER_PAIRS


def compare_streams(
    a: IRBuilder,
    b: IRBuilder,
    *,
    allow_cache_modifiers: bool = True,
) -> ComparisonResult:
    """Compare two instruction streams after normalisation."""
    na, nb = normalize(a), normalize(b)
    diffs: List[Tuple[int, str, str]] = []
    notes: List[str] = []
    for pos, (ia, ib) in enumerate(zip(na, nb)):
        same_shape = (
            ia.dst == ib.dst and ia.srcs == ib.srcs and ia.predicate == ib.predicate
        )
        if ia.op == ib.op and same_shape:
            continue
        if (
            allow_cache_modifiers
            and same_shape
            and _is_cache_modifier_pair(ia.op, ib.op)
        ):
            notes.append(
                f"@{pos}: cache modifier only ({ia.op} vs {ib.op})"
            )
            continue
        diffs.append((pos, ia.to_text(), ib.to_text()))
    if len(na) != len(nb):
        longer, shorter = (na, nb) if len(na) > len(nb) else (nb, na)
        for pos in range(len(shorter), len(longer)):
            extra = longer[pos].to_text()
            if len(na) > len(nb):
                diffs.append((pos, extra, "<absent>"))
            else:
                diffs.append((pos, "<absent>", extra))
    return ComparisonResult(
        identical=not diffs and not notes,
        differences=diffs,
        notes=notes,
    )
