"""Symbolic values for kernel tracing.

Executing a kernel with these operands instead of numbers records a
PTX-like instruction stream (the reproduction's "generated code", see
:mod:`repro.trace.ir`).  The types implement just enough operator
overloading for the idioms real alpaka kernels use:

* integer index arithmetic (``bi * bdim + ti``) → ``mad``/``mul``/``add``,
* the in-bounds guard ``if i < n:`` → ``setp`` + predicated branch
  (the *taken* path is traced, like a compiler emitting the body),
* buffer loads/stores → address computation + ``ld.global``/``st.global``,
* ``a * x + y`` → ``fma.rn.f64`` (multiply-add contraction, which nvcc
  performs and the paper's Fig. 4 shows).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..core.errors import TraceError
from .ir import IRBuilder

__all__ = ["TraceContext", "SymInt", "SymFloat", "SymBool", "SymArray", "Product"]

_NEGATED = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt", "eq": "ne", "ne": "eq"}


class TraceContext:
    """Shared state of one kernel trace."""

    def __init__(self, name: str = "kernel"):
        self.b = IRBuilder(name)
        self.exit_label: Optional[str] = None
        #: (index register, itemsize) -> byte-offset register; shared
        #: between arrays exactly as nvcc shares the mul.wide result.
        self.offset_cache: Dict[Tuple[str, int], str] = {}

    def get_exit_label(self) -> str:
        if self.exit_label is None:
            self.exit_label = self.b.new_label()
        return self.exit_label

    def finish(self) -> IRBuilder:
        """Close the trace (emit the pending early-exit label)."""
        if self.exit_label is not None:
            self.b.emit_label(self.exit_label)
            self.exit_label = None
        return self.b

    # -- literal materialisation ---------------------------------------

    def int_value(self, v: Union[int, "SymInt"]) -> "SymInt":
        if isinstance(v, SymInt):
            return v
        reg = self.b.new_reg("r")
        self.b.emit("mov.u32", reg, str(int(v)))
        return SymInt(self, reg)

    def float_value(self, v: Union[float, "SymFloat"]) -> "SymFloat":
        if isinstance(v, SymFloat):
            return v
        reg = self.b.new_reg("fd")
        self.b.emit("mov.f64", reg, f"0d{np.float64(v).view(np.uint64):016X}")
        return SymFloat(self, reg)


class SymInt:
    """A 32-bit integer register value."""

    __slots__ = ("ctx", "reg")

    def __init__(self, ctx: TraceContext, reg: str):
        self.ctx = ctx
        self.reg = reg

    def _bin(self, op: str, other) -> "SymInt":
        o = self.ctx.int_value(other)
        dst = self.ctx.b.new_reg("r")
        self.ctx.b.emit(op, dst, self.reg, o.reg)
        return SymInt(self.ctx, dst)

    def __add__(self, other):
        return self._bin("add.s32", other)

    __radd__ = __add__

    def __sub__(self, other):
        return self._bin("sub.s32", other)

    def __mul__(self, other):
        return self._bin("mul.lo.s32", other)

    __rmul__ = __mul__

    def mad(self, mul_by: "SymInt", plus: "SymInt") -> "SymInt":
        """Fused multiply-add on integers (``mad.lo.s32``) — the global
        thread-index computation ``ntid * ctaid + tid``."""
        dst = self.ctx.b.new_reg("r")
        self.ctx.b.emit("mad.lo.s32", dst, self.reg, mul_by.reg, plus.reg)
        return SymInt(self.ctx, dst)

    def _cmp(self, cond: str, other) -> "SymBool":
        return SymBool(self.ctx, cond, self, self.ctx.int_value(other))

    def __lt__(self, other):
        return self._cmp("lt", other)

    def __le__(self, other):
        return self._cmp("le", other)

    def __gt__(self, other):
        return self._cmp("gt", other)

    def __ge__(self, other):
        return self._cmp("ge", other)

    def __repr__(self):
        return f"SymInt({self.reg})"


class SymBool:
    """A lazy predicate.

    Using it in ``if`` traces the *guard* idiom: the negated condition
    is tested and branches to the kernel exit; the body is then traced
    as the fall-through path.  This matches how nvcc compiles
    ``if (i < n) { body }`` in Fig. 4 (``setp.ge.s32`` + ``@%p1 bra``).
    """

    __slots__ = ("ctx", "cond", "lhs", "rhs")

    def __init__(self, ctx: TraceContext, cond: str, lhs: SymInt, rhs: SymInt):
        self.ctx = ctx
        self.cond = cond
        self.lhs = lhs
        self.rhs = rhs

    def __bool__(self) -> bool:
        neg = _NEGATED[self.cond]
        pred = self.ctx.b.new_reg("p")
        self.ctx.b.emit(f"setp.{neg}.s32", pred, self.lhs.reg, self.rhs.reg)
        target = self.ctx.get_exit_label()
        self.ctx.b.emit("bra", None, target, predicate=pred)
        return True


class Product:
    """An uncommitted ``a * b`` awaiting contraction.

    ``Product + SymFloat`` emits one ``fma.rn.f64``; any other use
    materialises a plain ``mul.f64`` first.
    """

    __slots__ = ("ctx", "a", "b", "_materialised")

    def __init__(self, ctx: TraceContext, a: "SymFloat", b: "SymFloat"):
        self.ctx = ctx
        self.a = a
        self.b = b
        self._materialised: Optional[SymFloat] = None

    def materialise(self) -> "SymFloat":
        if self._materialised is None:
            dst = self.ctx.b.new_reg("fd")
            self.ctx.b.emit("mul.f64", dst, self.a.reg, self.b.reg)
            self._materialised = SymFloat(self.ctx, dst)
        return self._materialised

    def _fma(self, addend) -> "SymFloat":
        c = self.ctx.float_value(addend)
        dst = self.ctx.b.new_reg("fd")
        self.ctx.b.emit("fma.rn.f64", dst, self.a.reg, self.b.reg, c.reg)
        return SymFloat(self.ctx, dst)

    def __add__(self, other):
        if isinstance(other, Product):
            return self._fma(other.materialise())
        return self._fma(other)

    __radd__ = __add__

    def __mul__(self, other):
        return self.materialise() * other

    __rmul__ = __mul__

    def __sub__(self, other):
        return self.materialise() - other

    def __truediv__(self, other):
        return self.materialise() / other

    def __repr__(self):
        return f"Product({self.a.reg} * {self.b.reg})"


class SymFloat:
    """A 64-bit float register value."""

    __slots__ = ("ctx", "reg")

    def __init__(self, ctx: TraceContext, reg: str):
        self.ctx = ctx
        self.reg = reg

    def _coerce(self, other) -> "SymFloat":
        if isinstance(other, Product):
            return other.materialise()
        return self.ctx.float_value(other)

    def __mul__(self, other):
        return Product(self.ctx, self, self._coerce(other))

    __rmul__ = __mul__

    def __add__(self, other):
        if isinstance(other, Product):
            return other + self  # contract to fma
        o = self._coerce(other)
        dst = self.ctx.b.new_reg("fd")
        self.ctx.b.emit("add.f64", dst, self.reg, o.reg)
        return SymFloat(self.ctx, dst)

    __radd__ = __add__

    def __sub__(self, other):
        o = self._coerce(other)
        dst = self.ctx.b.new_reg("fd")
        self.ctx.b.emit("sub.f64", dst, self.reg, o.reg)
        return SymFloat(self.ctx, dst)

    def __truediv__(self, other):
        o = self._coerce(other)
        dst = self.ctx.b.new_reg("fd")
        self.ctx.b.emit("div.rn.f64", dst, self.reg, o.reg)
        return SymFloat(self.ctx, dst)

    def __repr__(self):
        return f"SymFloat({self.reg})"


#: numpy (kind, itemsize) -> PTX type suffix for global loads/stores.
_PTX_SUFFIX = {
    ("f", 8): "f64",
    ("f", 4): "f32",
    ("i", 4): "s32",
    ("i", 8): "s64",
    ("u", 4): "u32",
    ("u", 8): "u64",
}

#: PTX type suffix -> virtual register class of the loaded value.
_REG_CLASS = {"f64": "fd", "f32": "f", "s32": "r", "u32": "r",
              "s64": "rd", "u64": "rd"}


class SymArray:
    """A global-memory array parameter.

    ``const=True`` marks a pointer the kernel only reads through
    ``const __restrict__`` — loads then use the non-coherent texture
    path (``ld.global.nc.f64``), the one-instruction difference the
    paper observes between the native CUDA and the Alpaka DAXPY PTX.

    The element ``dtype`` decides both the byte-offset scaling
    (``mul.wide.s32 idx, itemsize`` — shared *per itemsize* through
    ``TraceContext.offset_cache``, exactly as nvcc shares the widened
    product, but never across differing widths) and the load/store
    type suffix (``ld.global.f32`` for a float32 buffer, not ``.f64``).
    """

    def __init__(
        self,
        ctx: TraceContext,
        param_reg: str,
        name: str,
        dtype=np.float64,
        const: bool = False,
    ):
        self.ctx = ctx
        self.param_reg = param_reg
        self.name = name
        dt = np.dtype(dtype)
        self.itemsize = dt.itemsize
        try:
            self.suffix = _PTX_SUFFIX[(dt.kind, dt.itemsize)]
        except KeyError:
            raise TraceError(
                f"symbolic array {name!r}: no PTX mapping for dtype {dt}"
            ) from None
        self.const = const
        self._global_reg: Optional[str] = None
        self._addr_cache: Dict[str, str] = {}

    def _global_base(self) -> str:
        if self._global_reg is None:
            dst = self.ctx.b.new_reg("rd")
            self.ctx.b.emit("cvta.to.global.u64", dst, self.param_reg)
            self._global_reg = dst
        return self._global_reg

    def _offset(self, idx: SymInt) -> str:
        key = (idx.reg, self.itemsize)
        off = self.ctx.offset_cache.get(key)
        if off is None:
            off = self.ctx.b.new_reg("rd")
            self.ctx.b.emit("mul.wide.s32", off, idx.reg, str(self.itemsize))
            self.ctx.offset_cache[key] = off
        return off

    def _address(self, idx: SymInt) -> str:
        off = self._offset(idx)
        addr = self._addr_cache.get(off)
        if addr is None:
            base = self._global_base()
            addr = self.ctx.b.new_reg("rd")
            self.ctx.b.emit("add.s64", addr, base, off)
            self._addr_cache[off] = addr
        return addr

    def __getitem__(self, idx) -> SymFloat:
        if not isinstance(idx, SymInt):
            raise TraceError(
                f"symbolic array {self.name!r} indexed with non-symbolic "
                f"{idx!r}; trace kernels index with thread-derived values"
            )
        addr = self._address(idx)
        dst = self.ctx.b.new_reg(_REG_CLASS[self.suffix])
        op = (
            f"ld.global.nc.{self.suffix}"
            if self.const
            else f"ld.global.{self.suffix}"
        )
        self.ctx.b.emit(op, dst, addr)
        if self.suffix in ("s32", "u32"):
            return SymInt(self.ctx, dst)
        return SymFloat(self.ctx, dst)

    def __setitem__(self, idx, value) -> None:
        if not isinstance(idx, SymInt):
            raise TraceError(
                f"symbolic array {self.name!r} written with non-symbolic "
                f"index {idx!r}"
            )
        if isinstance(value, Product):
            value = value.materialise()
        if not isinstance(value, (SymFloat, SymInt)):
            value = self.ctx.float_value(value)
        addr = self._address(idx)
        self.ctx.b.emit(f"st.global.{self.suffix}", None, addr, value.reg)

    def __repr__(self):
        return f"SymArray({self.name})"
