"""CPU assembler tracing — the second half of paper Fig. 4.

Besides the PTX comparison, Sec. 4.1 inspects the *x86 assembler* of the
DAXPY kernels: the native C++ loop vectorises to packed SSE2
(``movupd``/``mulpd``/``addpd``) while a one-element-per-thread kernel
compiles to scalar instructions (``movsd``/``mulsd``/``addsd``); adding
the element level ("a primitive inner loop over a fixed number of
elements") lets the compiler emit the packed forms for the alpaka kernel
too.

This tracer reproduces that observation mechanically.  Two modes:

* **scalar** — :func:`trace_cpu_kernel_scalar` runs the
  one-element-per-thread kernel with a symbolic thread index; loads,
  multiplies and adds come out as ``movsd``/``mulsd``/``addsd``.
* **vector** — :func:`trace_cpu_kernel_spans` runs the element-span
  kernel over one concrete span; span operations come out as
  SSE2-packed ``movupd``/``mulpd``/``addpd``, two lanes per register,
  unrolled across the span — exactly what the auto-vectoriser produces
  for the "primitive inner loop".

The emitted dialect is deliberately small (AT&T-ish Intel mnemonics,
``%xmmN`` registers, ``%rdi/%rsi/...`` pointer registers): enough to
*count and classify* instructions, which is all the paper's argument
needs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..core.errors import TraceError
from ..core.index import Origin, Unit
from ..core.vec import Vec
from ..core.workdiv import WorkDivMembers

__all__ = [
    "CpuTraceContext",
    "CpuArray",
    "trace_cpu_kernel_scalar",
    "trace_cpu_kernel_spans",
    "classify_fp_instructions",
]

#: SSE2 register width in doubles.
SSE2_LANES = 2

_PTR_REGS = ("%rdi", "%rsi", "%rdx", "%rcx", "%r8", "%r9")


class CpuTraceContext:
    """Instruction list + register allocation for one CPU trace."""

    def __init__(self, name: str = "kernel"):
        self.name = name
        self.instructions: List[str] = []
        self._xmm = 0
        self._gp = 0
        self._ptrs = list(_PTR_REGS)
        self._labels = 0

    def new_xmm(self) -> str:
        reg = f"%xmm{self._xmm}"
        self._xmm = (self._xmm + 1) % 16
        return reg

    def new_gp(self) -> str:
        reg = f"%r1{self._gp}"
        self._gp = (self._gp + 1) % 6
        return reg

    def new_ptr(self) -> str:
        if not self._ptrs:
            raise TraceError("out of pointer argument registers")
        return self._ptrs.pop(0)

    def new_label(self) -> str:
        self._labels += 1
        return f".L{self._labels}"

    def emit(self, text: str) -> None:
        self.instructions.append(text)

    def to_text(self) -> str:
        return "\n".join(
            i if i.endswith(":") else "    " + i for i in self.instructions
        )

    def mnemonics(self) -> List[str]:
        return [
            i.split()[0] for i in self.instructions if not i.endswith(":")
        ]


class _XmmScalar:
    """One double in an xmm register (scalar SSE2 path)."""

    def __init__(self, ctx: CpuTraceContext, reg: str):
        self.ctx = ctx
        self.reg = reg

    def _bin(self, mnemonic: str, other):
        if isinstance(other, _XmmVector):
            # scalar op vector promotes to the packed path (broadcast);
            # NotImplemented routes Python to the vector's reflected op.
            return NotImplemented
        o = _coerce_scalar(self.ctx, other)
        dst = self.ctx.new_xmm()
        self.ctx.emit(f"movapd {self.reg}, {dst}")
        self.ctx.emit(f"{mnemonic} {o.reg}, {dst}")
        return _XmmScalar(self.ctx, dst)

    def __mul__(self, other):
        return self._bin("mulsd", other)

    __rmul__ = __mul__

    def __add__(self, other):
        return self._bin("addsd", other)

    __radd__ = __add__

    def __sub__(self, other):
        return self._bin("subsd", other)


class _XmmVector:
    """A span of doubles across packed xmm registers (2 lanes each)."""

    def __init__(self, ctx: CpuTraceContext, regs: Sequence[str], count: int):
        self.ctx = ctx
        self.regs = list(regs)
        self.count = count

    def _bin(self, mnemonic: str, other) -> "_XmmVector":
        out = []
        if isinstance(other, _XmmVector):
            if other.count != self.count:
                raise TraceError("span length mismatch in vector op")
            rhs = other.regs
        else:
            rhs = [_broadcast(self.ctx, other)] * len(self.regs)
        for a, b in zip(self.regs, rhs):
            dst = self.ctx.new_xmm()
            self.ctx.emit(f"movapd {a}, {dst}")
            self.ctx.emit(f"{mnemonic} {b}, {dst}")
            out.append(dst)
        return _XmmVector(self.ctx, out, self.count)

    def __mul__(self, other):
        return self._bin("mulpd", other)

    __rmul__ = __mul__

    def __add__(self, other):
        return self._bin("addpd", other)

    __radd__ = __add__

    def __sub__(self, other):
        return self._bin("subpd", other)


_BROADCAST_CACHE_ATTR = "_broadcast_reg"


def _broadcast(ctx: CpuTraceContext, scalar) -> str:
    """Broadcast a scalar operand across both lanes (``movddup``);
    cached so the constant is splatted once per trace, like a compiler
    hoisting it out of the loop."""
    if isinstance(scalar, _XmmScalar):
        cached = getattr(scalar, _BROADCAST_CACHE_ATTR, None)
        if cached:
            return cached
        dst = ctx.new_xmm()
        ctx.emit(f"movddup {scalar.reg}, {dst}")
        setattr(scalar, _BROADCAST_CACHE_ATTR, dst)
        return dst
    dst = ctx.new_xmm()
    ctx.emit(f"movddup ${float(scalar)}, {dst}")
    return dst


def _coerce_scalar(ctx: CpuTraceContext, value) -> _XmmScalar:
    if isinstance(value, _XmmScalar):
        return value
    if isinstance(value, (int, float)):
        dst = ctx.new_xmm()
        ctx.emit(f"movsd ${float(value)}, {dst}")
        return _XmmScalar(ctx, dst)
    raise TraceError(f"cannot use {value!r} as a CPU scalar operand")


class _CpuSymIndex:
    """A symbolic loop/thread index in a general-purpose register."""

    def __init__(self, ctx: CpuTraceContext, reg: str):
        self.ctx = ctx
        self.reg = reg

    def __lt__(self, bound) -> "_CpuGuard":
        return _CpuGuard(self.ctx, self.reg, bound)


class _CpuGuard:
    def __init__(self, ctx: CpuTraceContext, reg: str, bound):
        self.ctx = ctx
        self.reg = reg
        self.bound = bound

    def __bool__(self) -> bool:
        label = self.ctx.new_label()
        self.ctx.emit(f"cmp {self.bound}, {self.reg}")
        self.ctx.emit(f"jge {label}")
        self.ctx._exit_label = label
        return True


class CpuArray:
    """A pointer argument.

    Scalar (symbolic-index) access emits ``movsd``; slice access emits
    packed ``movupd`` pairs across the span.
    """

    def __init__(self, ctx: CpuTraceContext, name: str):
        self.ctx = ctx
        self.name = name
        self.base = ctx.new_ptr()

    # -- loads -----------------------------------------------------------

    def __getitem__(self, idx):
        if isinstance(idx, _CpuSymIndex):
            dst = self.ctx.new_xmm()
            self.ctx.emit(f"movsd ({self.base},{idx.reg},8), {dst}")
            return _XmmScalar(self.ctx, dst)
        if isinstance(idx, slice):
            count = idx.stop - idx.start
            if count <= 0 or count % SSE2_LANES:
                raise TraceError(
                    f"span of {count} doubles does not fill SSE2 lanes"
                )
            regs = []
            for lane0 in range(idx.start, idx.stop, SSE2_LANES):
                dst = self.ctx.new_xmm()
                self.ctx.emit(f"movupd {8 * lane0}({self.base}), {dst}")
                regs.append(dst)
            return _XmmVector(self.ctx, regs, count)
        raise TraceError(f"unsupported CPU-trace index {idx!r}")

    # -- stores -------------------------------------------------------------

    def __setitem__(self, idx, value) -> None:
        if isinstance(idx, _CpuSymIndex):
            v = _coerce_scalar(self.ctx, value)
            self.ctx.emit(f"movsd {v.reg}, ({self.base},{idx.reg},8)")
            return
        if isinstance(idx, slice):
            if not isinstance(value, _XmmVector):
                raise TraceError("span store needs a vector value")
            for k, reg in enumerate(value.regs):
                off = 8 * (idx.start + k * SSE2_LANES)
                self.ctx.emit(f"movupd {reg}, {off}({self.base})")
            return
        raise TraceError(f"unsupported CPU-trace index {idx!r}")


class _CpuScalarAcc:
    """Accelerator stand-in for the scalar (one element/thread) trace."""

    def __init__(self, ctx: CpuTraceContext):
        self.ctx = ctx
        self._idx: Optional[_CpuSymIndex] = None

    def trace_get_idx(self, origin: Origin, unit: Unit):
        if self._idx is None:
            reg = self.ctx.new_gp()
            self.ctx.emit(f"mov <thread_linear>, {reg}")
            self._idx = _CpuSymIndex(self.ctx, reg)
        return [self._idx]

    def trace_get_work_div(self, origin: Origin, unit: Unit):
        raise TraceError(
            "the scalar CPU trace models one thread body; span kernels "
            "trace through trace_cpu_kernel_spans"
        )


class _CpuSpanAcc:
    """Accelerator stand-in for the element-span trace.

    Carries a *concrete* work division of one thread owning ``span``
    elements, so ``grid_strided_spans`` and friends run normally and
    hand the kernel plain slices — which :class:`CpuArray` then turns
    into packed instructions.
    """

    def __init__(self, span: int):
        self.work_div = WorkDivMembers.make(1, 1, span)
        self.grid_block_idx = Vec(0)
        self.block_thread_idx = Vec(0)


def trace_cpu_kernel_scalar(kernel, array_names: Sequence[str], *scalars):
    """Trace a one-element-per-thread kernel body on the CPU.

    ``scalars`` are the leading non-array kernel arguments after the
    accelerator (e.g. ``n, alpha`` for DAXPY); ``n`` is traced as the
    symbolic bound register.
    """
    ctx = CpuTraceContext(getattr(kernel, "__name__", "kernel"))
    ctx._exit_label = None
    acc = _CpuScalarAcc(ctx)
    bound = ctx.new_gp()
    ctx.emit(f"mov <n>, {bound}")
    # n is the guard bound; remaining scalars become xmm constants.
    args: List[object] = [bound]
    for s in scalars[1:]:
        args.append(_coerce_scalar(ctx, s))
    arrays = [CpuArray(ctx, name) for name in array_names]
    kernel(acc, *args, *arrays)
    if ctx._exit_label:
        ctx.emit(f"{ctx._exit_label}:")
    return ctx


def trace_cpu_kernel_spans(kernel, array_names: Sequence[str], *scalars, span: int = 4):
    """Trace an element-span kernel over one concrete ``span``.

    The span plays the paper's "primitive inner loop over a fixed
    number of elements": operations on it emit packed SSE2.
    """
    ctx = CpuTraceContext(getattr(kernel, "__name__", "kernel"))
    ctx._exit_label = None
    acc = _CpuSpanAcc(span)
    args: List[object] = [scalars[0]]
    for s in scalars[1:]:
        args.append(_coerce_scalar(ctx, s))
    arrays = [CpuArray(ctx, name) for name in array_names]
    kernel(acc, *args, *arrays)
    return ctx


def classify_fp_instructions(ctx: CpuTraceContext) -> dict:
    """Count packed vs scalar floating-point instructions — the metric
    the paper's Fig. 4 discussion turns on."""
    packed = scalar = 0
    for m in ctx.mnemonics():
        # movapd is a register copy used by both paths; it classifies
        # neither way.
        if m in ("movupd", "mulpd", "addpd", "subpd", "movddup"):
            packed += 1
        elif m in ("movsd", "mulsd", "addsd", "subsd"):
            scalar += 1
    return {"packed": packed, "scalar": scalar}
