"""A PTX-flavoured SSA mini-IR.

Paper Fig. 4 compares the PTX that nvcc generates for the Alpaka and the
native CUDA DAXPY kernels and finds them identical up to register names
and one cache modifier.  This module provides the instruction stream the
reproduction's symbolic tracer emits, formatted like PTX so the
comparison in :mod:`repro.trace.compare` reads like the paper's figure.

Register classes follow PTX conventions: ``%r`` (32-bit int), ``%rd``
(64-bit int/address), ``%fd`` (64-bit float), ``%p`` (predicate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import TraceError

__all__ = ["Instruction", "IRBuilder", "RegisterClass"]

#: PTX register-class prefixes.
RegisterClass = str  # "r" | "rd" | "f" | "fd" | "p"

_VALID_CLASSES = ("r", "rd", "f", "fd", "p")


@dataclass(frozen=True)
class Instruction:
    """One IR instruction.

    ``op`` is the full dotted PTX opcode (``"fma.rn.f64"``), ``dst`` the
    destination register (or None for stores/branches), ``srcs`` the
    operand registers/immediates in order.  ``is_memory``/``label``
    cover the non-register forms (addressed loads/stores, branches).
    """

    op: str
    dst: Optional[str]
    srcs: Tuple[str, ...]
    predicate: Optional[str] = None  # e.g. "%p1" for "@%p1 bra ..."
    comment: str = ""

    def to_text(self) -> str:
        pred = f"@{self.predicate} " if self.predicate else ""
        if self.op.startswith("st.") and len(self.srcs) == 2:
            # st.global.f64 [%rd7], %fd4;
            body = f"{self.op} [{self.srcs[0]}], {self.srcs[1]};"
        elif self.op.startswith("ld.") and self.dst is not None:
            body = f"{self.op} {self.dst}, [{self.srcs[0]}];"
        elif self.op == "bra":
            body = f"bra {self.srcs[0]};"
        elif self.dst is None:
            body = f"{self.op} {', '.join(self.srcs)};"
        else:
            ops = ", ".join((self.dst,) + self.srcs)
            body = f"{self.op} {ops};"
        if self.comment:
            body += f"  // {self.comment}"
        return pred + body


class IRBuilder:
    """Accumulates instructions and allocates SSA registers."""

    def __init__(self, name: str = "kernel"):
        self.name = name
        self.instructions: List[Instruction] = []
        self._counters: Dict[str, int] = {c: 0 for c in _VALID_CLASSES}
        self._labels = 0
        self.param_registers: List[str] = []

    # -- registers -------------------------------------------------------

    def new_reg(self, cls: RegisterClass) -> str:
        if cls not in _VALID_CLASSES:
            raise TraceError(f"unknown register class {cls!r}")
        self._counters[cls] += 1
        return f"%{cls}{self._counters[cls]}"

    def new_param(self, cls: RegisterClass) -> str:
        reg = self.new_reg(cls)
        self.param_registers.append(reg)
        return reg

    def new_label(self) -> str:
        self._labels += 1
        return f"BB{self._labels}"

    # -- emission ------------------------------------------------------------

    def emit(
        self,
        op: str,
        dst: Optional[str],
        *srcs: str,
        predicate: Optional[str] = None,
        comment: str = "",
    ) -> Optional[str]:
        self.instructions.append(
            Instruction(op, dst, tuple(str(s) for s in srcs), predicate, comment)
        )
        return dst

    def emit_label(self, label: str) -> None:
        self.instructions.append(Instruction("label", None, (label,)))

    # -- output ---------------------------------------------------------------

    def to_text(self, *, comments: bool = False) -> str:
        lines = []
        for ins in self.instructions:
            if ins.op == "label":
                lines.append(f"{ins.srcs[0]}:")
                continue
            rendered = ins.to_text() if comments else Instruction(
                ins.op, ins.dst, ins.srcs, ins.predicate, ""
            ).to_text()
            lines.append("    " + rendered)
        return "\n".join(lines)

    def opcode_stream(self) -> List[str]:
        """Just the opcodes, labels excluded — the coarse signature."""
        return [i.op for i in self.instructions if i.op != "label"]

    def __len__(self) -> int:
        return len(self.instructions)
