"""Symbolic kernel tracing and the PTX-like mini-IR (paper Fig. 4)."""

from .acc import ArgSpec, TraceAcc, trace_alpaka_kernel
from .compare import ComparisonResult, compare_streams, normalize
from .cpu_asm import (
    CpuArray,
    CpuTraceContext,
    classify_fp_instructions,
    trace_cpu_kernel_scalar,
    trace_cpu_kernel_spans,
)
from .ir import Instruction, IRBuilder
from .native_cuda import CudaSurface, trace_cuda_kernel
from .symbolic import Product, SymArray, SymBool, SymFloat, SymInt, TraceContext
from .timeline import TimelineEvent, TimelineObserver, trace_execution

__all__ = [
    "IRBuilder",
    "Instruction",
    "TraceContext",
    "SymInt",
    "SymFloat",
    "SymBool",
    "SymArray",
    "Product",
    "TraceAcc",
    "ArgSpec",
    "trace_alpaka_kernel",
    "CudaSurface",
    "trace_cuda_kernel",
    "ComparisonResult",
    "compare_streams",
    "normalize",
    "CpuTraceContext",
    "CpuArray",
    "trace_cpu_kernel_scalar",
    "trace_cpu_kernel_spans",
    "classify_fp_instructions",
    "TimelineEvent",
    "TimelineObserver",
    "trace_execution",
]
