"""The ASE Monte-Carlo kernel — single source, every back-end.

One grid block owns one sample point; the block's threads split the
requested Monte-Carlo samples via the element level; each thread draws
its emission points from its own Philox stream (reproducible across
back-ends), ray-marches the gain integrals as vector operations, and
accumulates sum / sum-of-squares / count with grid atomics.  The shape
is exactly HASEonGPU's: an embarrassingly parallel outer loop over
sample points, a data-parallel inner loop over rays, random-access mesh
lookups in between.

The gain medium is captured kernel state (the analogue of CUDA constant
memory: read-only tables broadcast to every thread), while all
per-launch data flows through buffers.
"""

from __future__ import annotations

import numpy as np

from ...core.index import Block, Blocks, Elems, Grid, Thread, get_idx, get_work_div
from ...core.kernel import fn_acc
from ...hardware.cache import AccessPattern
from ...perfmodel.kernel_model import KernelCharacteristics
from .physics import GainMedium
from .raytrace import ase_contributions

__all__ = ["AseFluxKernel", "FLOPS_PER_RAY_STEP", "FLOPS_PER_RAY"]

#: Model accounting: flops per marching step (gain lookup accumulate,
#: position update) and per ray (exp, distance, division).
FLOPS_PER_RAY_STEP = 4.0
FLOPS_PER_RAY = 30.0


class AseFluxKernel:
    """Accumulate ASE Monte-Carlo sums for a batch of sample points.

    Kernel arguments (after the accelerator):

    ``seed``
        RNG seed of this adaptive round (vary per round).
    ``samples_per_point``
        MC samples each block adds to its sample point this round.
    ``points``
        (m, 3) buffer of sample-point coordinates.
    ``acc_sum, acc_sq, acc_cnt``
        (m,) accumulator buffers (flux sums, squared sums, counts);
        zeroed once by the host before the first round.
    """

    def __init__(self, medium: GainMedium, steps: int = 32):
        self.medium = medium
        self.steps = steps

    @fn_acc
    def __call__(self, acc, seed, samples_per_point, points, acc_sum, acc_sq, acc_cnt):
        point_idx = get_idx(acc, Grid, Blocks)[0]
        if point_idx >= points.shape[0]:
            return
        sample_point = points[point_idx]

        # This thread's share of the round's samples — split over the
        # *block's* element space (each block owns one sample point, so
        # the sample index space restarts per block).
        start = get_idx(acc, Block, Elems)[0]
        span = get_work_div(acc, Thread, Elems)[0]
        count = min(start + span, samples_per_point) - min(start, samples_per_point)
        if count <= 0:
            return

        rng = acc.rng(seed)
        uniforms = rng.uniform(3 * count).reshape(count, 3)
        starts = self.medium.mesh.sample_volume_points(uniforms)
        contrib = ase_contributions(
            self.medium, starts, sample_point, self.steps
        )
        contrib *= self.medium.mesh.total_volume  # uniform-sampling weight

        acc.atomic_add(acc_sum, point_idx, float(np.sum(contrib)))
        acc.atomic_add(acc_sq, point_idx, float(np.sum(contrib * contrib)))
        acc.atomic_add(acc_cnt, point_idx, float(count))

    def characteristics(
        self, work_div, seed, samples_per_point, points, acc_sum, acc_sq, acc_cnt
    ) -> KernelCharacteristics:
        n_points = work_div.block_count
        rays = float(n_points) * float(samples_per_point)
        mesh_bytes = self.medium.mesh.prism_count * 8 * 2  # gain + emission
        return KernelCharacteristics(
            flops=rays * (self.steps * FLOPS_PER_RAY_STEP + FLOPS_PER_RAY),
            global_read_bytes=float(mesh_bytes + 24 * n_points),
            global_write_bytes=24.0 * n_points,
            working_set_bytes=int(mesh_bytes),
            thread_access_pattern=AccessPattern.TILED,  # mesh stays on chip
            vector_friendly=True,
            # exp/div-heavy instruction mix; see KernelCharacteristics.
            issue_efficiency=0.5,
            # HASE's inner math runs through a vectorised math library.
            uses_vector_math_library=True,
        )
