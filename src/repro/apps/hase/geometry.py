"""Prism mesh of the laser gain medium.

HASEonGPU discretises a crystal slab into a triangular 2-d mesh extruded
in z into prisms.  The reproduction uses a structured triangulation of a
rectangular slab: ``nx x ny`` cells, each split into two triangles,
extruded into ``nz`` layers — which keeps point location O(1) and fully
vectorised, the property the ray-marching integrator needs.

Prism numbering: ``prism = layer * (2*nx*ny) + triangle``; triangle
numbering: ``2*(cell_y*nx + cell_x) + upper``, where ``upper`` selects
the half of the cell above the diagonal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PrismMesh"]


@dataclass(frozen=True)
class PrismMesh:
    """A structured triangular prism mesh of a rectangular slab.

    Parameters
    ----------
    nx, ny:
        Cells along x and y (triangles = 2*nx*ny).
    nz:
        Prism layers along z.
    width, height, depth:
        Physical slab extents (cm, in HASE convention).
    """

    nx: int
    ny: int
    nz: int
    width: float = 1.0
    height: float = 1.0
    depth: float = 0.2

    def __post_init__(self):
        if min(self.nx, self.ny, self.nz) < 1:
            raise ValueError("mesh needs at least one cell per axis")
        if min(self.width, self.height, self.depth) <= 0:
            raise ValueError("slab extents must be positive")

    # -- counts and measures ----------------------------------------------

    @property
    def triangle_count(self) -> int:
        return 2 * self.nx * self.ny

    @property
    def prism_count(self) -> int:
        return self.triangle_count * self.nz

    @property
    def cell_dx(self) -> float:
        return self.width / self.nx

    @property
    def cell_dy(self) -> float:
        return self.height / self.ny

    @property
    def layer_dz(self) -> float:
        return self.depth / self.nz

    @property
    def prism_volume(self) -> float:
        """All prisms share one volume in the structured mesh."""
        return 0.5 * self.cell_dx * self.cell_dy * self.layer_dz

    @property
    def total_volume(self) -> float:
        return self.width * self.height * self.depth

    # -- point location (vectorised) ------------------------------------------

    def locate_triangles(self, xy: np.ndarray) -> np.ndarray:
        """Triangle index for each (x, y) point; shape (m, 2) -> (m,).

        Points outside the slab are clamped to the border cell — rays in
        the integrator are constructed inside the slab, the clamp only
        guards float round-off at the boundary.
        """
        x = np.clip(xy[..., 0], 0.0, np.nextafter(self.width, 0.0))
        y = np.clip(xy[..., 1], 0.0, np.nextafter(self.height, 0.0))
        cx = np.minimum((x / self.cell_dx).astype(np.int64), self.nx - 1)
        cy = np.minimum((y / self.cell_dy).astype(np.int64), self.ny - 1)
        u = x / self.cell_dx - cx
        v = y / self.cell_dy - cy
        upper = (u + v > 1.0).astype(np.int64)
        return 2 * (cy * self.nx + cx) + upper

    def locate_prisms(self, points: np.ndarray) -> np.ndarray:
        """Prism index for each (x, y, z) point; shape (m, 3) -> (m,)."""
        tri = self.locate_triangles(points[..., :2])
        z = np.clip(points[..., 2], 0.0, np.nextafter(self.depth, 0.0))
        layer = np.minimum((z / self.layer_dz).astype(np.int64), self.nz - 1)
        return layer * self.triangle_count + tri

    # -- sampling ----------------------------------------------------------------

    def sample_volume_points(self, uniforms: np.ndarray) -> np.ndarray:
        """Map (m, 3) uniforms on [0,1) to points uniform in the slab.

        Sampling is deterministic in the input uniforms, so results are
        reproducible across back-ends given the same Philox stream.
        """
        u = np.asarray(uniforms, dtype=np.float64)
        if u.ndim != 2 or u.shape[1] != 3:
            raise ValueError(f"need (m, 3) uniforms, got {u.shape}")
        pts = np.empty_like(u)
        pts[:, 0] = u[:, 0] * self.width
        pts[:, 1] = u[:, 1] * self.height
        pts[:, 2] = u[:, 2] * self.depth
        return pts

    def prism_centroids(self) -> np.ndarray:
        """(prism_count, 3) array of prism centroids (used by the pump
        profile and by tests)."""
        cx = (np.arange(self.nx) + 0.5) * self.cell_dx
        cy = (np.arange(self.ny) + 0.5) * self.cell_dy
        gx, gy = np.meshgrid(cx, cy)  # (ny, nx)
        # Triangle centroids: lower triangle pulled toward the origin
        # corner, upper toward the far corner (exact for right
        # triangles: centroid at 1/3 from the right-angle vertex).
        lower_x = gx - self.cell_dx / 6.0
        lower_y = gy - self.cell_dy / 6.0
        upper_x = gx + self.cell_dx / 6.0
        upper_y = gy + self.cell_dy / 6.0
        tri_xy = np.empty((self.triangle_count, 2))
        tri_xy[0::2, 0] = lower_x.ravel()
        tri_xy[0::2, 1] = lower_y.ravel()
        tri_xy[1::2, 0] = upper_x.ravel()
        tri_xy[1::2, 1] = upper_y.ravel()
        zc = (np.arange(self.nz) + 0.5) * self.layer_dz
        out = np.empty((self.prism_count, 3))
        for layer in range(self.nz):
            s = layer * self.triangle_count
            out[s : s + self.triangle_count, :2] = tri_xy
            out[s : s + self.triangle_count, 2] = zc[layer]
        return out
