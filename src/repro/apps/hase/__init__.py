"""Mini-HASEonGPU: adaptive multi-device Monte-Carlo ASE integration
(the paper's real-world application, Sec. 4.3 / Fig. 10)."""

from .geometry import PrismMesh
from .kernel import AseFluxKernel
from .physics import GainMedium, gaussian_pump_profile
from .raytrace import ase_contributions, importance_sample_starts, path_gain
from .runner import AseResult, compute_ase_flux, default_sample_points

__all__ = [
    "PrismMesh",
    "GainMedium",
    "gaussian_pump_profile",
    "path_gain",
    "ase_contributions",
    "importance_sample_starts",
    "AseFluxKernel",
    "AseResult",
    "compute_ase_flux",
    "default_sample_points",
]
