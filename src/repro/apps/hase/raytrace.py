"""Ray-marching gain integration through the prism mesh.

The path integral ``Int_x->s g dl`` is evaluated with midpoint-rule ray
marching: the segment from emission point to sample point is split into
``steps`` equal pieces, each midpoint is located in the mesh (O(1),
vectorised) and contributes ``g(prism) * ds``.  Marching instead of
exact prism clipping trades a quadrature error (second order in the
step) for a fully vectorisable inner loop — the same structure the GPU
code wants, and the error is controlled by ``steps`` (tested against
analytic solutions).
"""

from __future__ import annotations

import numpy as np

from .physics import GainMedium

__all__ = ["path_gain", "ase_contributions", "importance_sample_starts"]


def path_gain(
    medium: GainMedium,
    starts: np.ndarray,
    end: np.ndarray,
    steps: int = 32,
) -> tuple[np.ndarray, np.ndarray]:
    """Amplification factor along each ray ``starts[j] -> end``.

    Returns ``(gain, distance)``: ``gain[j] = exp(Int g dl)`` and the
    ray length.  ``starts`` has shape (m, 3); ``end`` shape (3,).
    """
    starts = np.asarray(starts, dtype=np.float64)
    end = np.asarray(end, dtype=np.float64)
    if starts.ndim != 2 or starts.shape[1] != 3:
        raise ValueError(f"starts must be (m, 3), got {starts.shape}")
    if steps < 1:
        raise ValueError("steps must be >= 1")

    delta = end[None, :] - starts  # (m, 3)
    dist = np.linalg.norm(delta, axis=1)  # (m,)
    ds = dist / steps

    t_mid = (np.arange(steps, dtype=np.float64) + 0.5) / steps  # (steps,)
    # Midpoints: (m, steps, 3)
    pos = starts[:, None, :] + delta[:, None, :] * t_mid[None, :, None]
    prisms = medium.mesh.locate_prisms(pos.reshape(-1, 3)).reshape(
        starts.shape[0], steps
    )
    g = medium.gain_coefficients[prisms]  # (m, steps)
    optical_depth = g.sum(axis=1) * ds
    return np.exp(optical_depth), dist


def importance_sample_starts(
    medium: GainMedium, uniforms: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Emission points drawn proportional to the local emission density.

    HASEonGPU importance-samples the gain volume: prisms that emit more
    spontaneously receive proportionally more Monte-Carlo rays.  Given
    (m, 4) uniforms, returns ``(starts, weights)`` where ``weights`` is
    the likelihood ratio ``p_uniform / p_importance`` each contribution
    must be multiplied by (so estimators stay unbiased).

    For strongly peaked pump profiles this reduces the estimator
    variance substantially (asserted in the tests); for a flat profile
    it degenerates to uniform sampling with unit weights.
    """
    u = np.asarray(uniforms, dtype=np.float64)
    if u.ndim != 2 or u.shape[1] != 4:
        raise ValueError(f"need (m, 4) uniforms, got {u.shape}")
    mesh = medium.mesh
    density = medium.emission_density
    total = density.sum()
    if total <= 0.0:
        raise ValueError("importance sampling needs a pumped medium")
    probs = density / total
    cdf = np.cumsum(probs)
    prisms = np.searchsorted(cdf, u[:, 0], side="right")
    prisms = np.minimum(prisms, mesh.prism_count - 1)

    # Uniform location inside the chosen prism: z from the layer, (x, y)
    # from the prism's bounding cell rejected onto the triangle half by
    # folding (exact for the structured right-triangle mesh).
    tri = prisms % mesh.triangle_count
    layer = prisms // mesh.triangle_count
    cell = tri // 2
    upper = tri % 2
    cx = (cell % mesh.nx).astype(np.float64)
    cy = (cell // mesh.nx).astype(np.float64)
    a = u[:, 1]
    b = u[:, 2]
    # Fold points across the diagonal into the requested half.
    in_upper = a + b > 1.0
    need_fold = in_upper != (upper == 1)
    a = np.where(need_fold, 1.0 - a, a)
    b = np.where(need_fold, 1.0 - b, b)
    starts = np.empty((len(prisms), 3))
    starts[:, 0] = (cx + a) * mesh.cell_dx
    starts[:, 1] = (cy + b) * mesh.cell_dy
    starts[:, 2] = (layer + u[:, 3]) * mesh.layer_dz

    # Likelihood ratio vs uniform-in-volume sampling.
    p_uniform = 1.0 / mesh.prism_count
    weights = p_uniform / probs[prisms]
    return starts, weights


def ase_contributions(
    medium: GainMedium,
    starts: np.ndarray,
    sample_point: np.ndarray,
    steps: int = 32,
) -> np.ndarray:
    """Per-ray Monte-Carlo contributions to the ASE flux at one point.

    For emission points x_j uniform in the slab, the estimator of the
    physics integral is ``V_total * mean(contrib_j)`` with::

        contrib_j = S(x_j) * gain_j / (4 pi d_j^2)

    where ``S = N2/tau`` is the emission density.  A minimum distance of
    one marching step regularises the 1/d^2 singularity for emission
    points next to the sample point (standard MC practice; HASE excludes
    the sample prism similarly).
    """
    gain, dist = path_gain(medium, starts, sample_point, steps)
    src_prisms = medium.mesh.locate_prisms(starts)
    emission = medium.emission_density[src_prisms]
    d_min = max(
        medium.mesh.cell_dx, medium.mesh.cell_dy, medium.mesh.layer_dz
    ) / steps
    d2 = np.maximum(dist, d_min) ** 2
    return emission * gain / (4.0 * np.pi * d2)
