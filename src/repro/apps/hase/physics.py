"""ASE physics of the gain medium.

Amplified spontaneous emission in a pumped laser crystal: excited ions
(density ``N2``) emit spontaneously at rate ``N2/tau_spont``; a photon
travelling toward a sample point is amplified (or absorbed) along its
path with the local small-signal gain coefficient::

    g(x) = sigma_e * N2(x) - sigma_a * (N_tot - N2(x))

so the ASE flux at sample point ``s`` is the volume integral

    Phi(s) = Int_V  N2(x)/tau  *  exp(Int_x->s g dl)  /  (4 pi |x-s|^2)  dV

which HASEonGPU estimates by Monte Carlo.  Units follow the HASE
convention (cm, cm^2, cm^-3, s).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .geometry import PrismMesh

__all__ = ["GainMedium", "gaussian_pump_profile"]


def gaussian_pump_profile(
    mesh: PrismMesh,
    peak_inversion: float,
    waist_fraction: float = 0.35,
    absorption_depth_fraction: float = 0.8,
) -> np.ndarray:
    """Per-prism excited-state density from a Gaussian pump beam.

    The pump is Gaussian in (x, y) around the slab centre and decays
    exponentially in z (Beer-Lambert absorption of the pump light) —
    the generic shape of an end-pumped gain medium.
    """
    if peak_inversion < 0:
        raise ValueError("peak inversion must be non-negative")
    c = mesh.prism_centroids()
    x0, y0 = mesh.width / 2.0, mesh.height / 2.0
    waist = waist_fraction * min(mesh.width, mesh.height)
    r2 = (c[:, 0] - x0) ** 2 + (c[:, 1] - y0) ** 2
    radial = np.exp(-r2 / (2.0 * waist**2))
    axial = np.exp(-c[:, 2] / (absorption_depth_fraction * mesh.depth))
    return peak_inversion * radial * axial


@dataclass(frozen=True)
class GainMedium:
    """A pumped gain medium: mesh + spectroscopic constants + inversion.

    Parameters default to Yb:YAG-like values at the ASE wavelength
    (HASEonGPU's physical system).
    """

    mesh: PrismMesh
    n2: np.ndarray  # per-prism excited-state density [cm^-3]
    sigma_emission: float = 2.0e-20  # [cm^2]
    sigma_absorption: float = 1.0e-21  # [cm^2]
    n_total: float = 6.0e20  # doping density [cm^-3]
    tau_spont: float = 9.5e-4  # spontaneous lifetime [s]

    def __post_init__(self):
        n2 = np.asarray(self.n2, dtype=np.float64)
        if n2.shape != (self.mesh.prism_count,):
            raise ValueError(
                f"n2 must have one entry per prism "
                f"({self.mesh.prism_count}), got shape {n2.shape}"
            )
        if np.any(n2 < 0) or np.any(n2 > self.n_total):
            raise ValueError("n2 must lie in [0, n_total]")
        object.__setattr__(self, "n2", n2)
        object.__setattr__(self, "_gain_coeff", self._compute_gain())

    def _compute_gain(self) -> np.ndarray:
        return (
            self.sigma_emission * self.n2
            - self.sigma_absorption * (self.n_total - self.n2)
        )

    @property
    def gain_coefficients(self) -> np.ndarray:
        """Per-prism small-signal gain coefficient g(x) [cm^-1]."""
        return self._gain_coeff

    @property
    def emission_density(self) -> np.ndarray:
        """Per-prism spontaneous emission rate density N2/tau
        [photons / (cm^3 s)]."""
        return self.n2 / self.tau_spont

    def stored_energy_proxy(self) -> float:
        """Total inversion (integrated N2) — the quantity ASE depletes;
        used by examples to report pump efficiency."""
        return float(np.sum(self.n2) * self.mesh.prism_volume)
