"""Host orchestration: adaptive multi-device ASE computation.

HASEonGPU is an *adaptive* *multi-GPU* Monte-Carlo integrator; this
runner reproduces both properties on top of the library:

* **adaptive** — sample points start with a small MC budget; each round
  doubles the budget of the points whose standard error is still above
  the target, until all converge (or the per-point cap is hit);
* **multi-device** — sample points are partitioned round-robin across
  all devices of the chosen back-end's platform (a K80 exposes two),
  with one non-blocking queue per device so rounds overlap across
  devices exactly like the original's one-stream-per-GPU scheme.

The returned :class:`AseResult` carries fluxes, error estimates, sample
counts, and the accumulated simulated time per device (the Fig. 10
quantity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Type

import numpy as np

from ... import mem
from ...core.kernel import create_task_kernel
from ...core.workdiv import WorkDivMembers
from ...dev.manager import platform_of
from ...queue.queue import QueueNonBlocking
from .kernel import AseFluxKernel
from .physics import GainMedium

__all__ = ["AseResult", "compute_ase_flux", "default_sample_points"]


@dataclass
class AseResult:
    """Outcome of an adaptive ASE computation."""

    flux: np.ndarray  # mean flux estimate per sample point
    rel_error: np.ndarray  # relative standard error per point
    samples: np.ndarray  # MC samples spent per point
    rounds: int
    sim_time_s: float  # summed modeled device time (total device-seconds)
    wall_sim_time_s: float = 0.0  # max over devices: the modeled makespan
    device_names: List[str] = field(default_factory=list)

    @property
    def converged(self) -> np.ndarray:
        return self.rel_error <= self.target_rel_error

    target_rel_error: float = 0.05


def default_sample_points(medium: GainMedium, per_edge: int = 4) -> np.ndarray:
    """A grid of sample points on the top surface of the slab — where
    HASE evaluates the ASE load of the gain medium."""
    m = medium.mesh
    xs = np.linspace(0.15 * m.width, 0.85 * m.width, per_edge)
    ys = np.linspace(0.15 * m.height, 0.85 * m.height, per_edge)
    gx, gy = np.meshgrid(xs, ys)
    pts = np.column_stack(
        [gx.ravel(), gy.ravel(), np.full(gx.size, m.depth * 0.999)]
    )
    return pts


def _stats(s: np.ndarray, sq: np.ndarray, n: np.ndarray):
    """Mean and relative standard error from the accumulators."""
    n_safe = np.maximum(n, 1.0)
    mean = s / n_safe
    var = np.maximum(sq / n_safe - mean**2, 0.0)
    stderr = np.sqrt(var / n_safe)
    rel = np.where(mean > 0, stderr / np.maximum(mean, 1e-300), np.inf)
    return mean, rel


def compute_ase_flux(
    acc_type,
    medium: GainMedium,
    sample_points: np.ndarray,
    *,
    target_rel_error: float = 0.05,
    initial_samples: int = 128,
    max_samples_per_point: int = 16384,
    steps: int = 32,
    seed: int = 42,
    threads_per_point: int | None = None,
    use_all_devices: bool = True,
) -> AseResult:
    """Run the adaptive ASE integration on ``acc_type``'s devices."""
    pts = np.ascontiguousarray(sample_points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"sample points must be (m, 3), got {pts.shape}")
    m = pts.shape[0]

    platform = platform_of(acc_type)
    devices = platform.devices if use_all_devices else platform.devices[:1]
    sim_t0 = {d.uid: d.sim_time_s for d in devices}

    # Round-robin partition of sample points over devices.
    shard_idx = [np.arange(i, m, len(devices)) for i in range(len(devices))]
    kernel = AseFluxKernel(medium, steps=steps)

    shards = []
    for dev, idx in zip(devices, shard_idx):
        if len(idx) == 0:
            continue
        queue = QueueNonBlocking(dev)
        pbuf = mem.alloc(dev, (len(idx), 3))
        s = mem.alloc(dev, len(idx))
        sq = mem.alloc(dev, len(idx))
        cnt = mem.alloc(dev, len(idx))
        mem.copy(queue, pbuf, pts[idx])
        for b in (s, sq, cnt):
            mem.memset(queue, b, 0.0)
        shards.append(
            {"dev": dev, "idx": idx, "queue": queue, "pts": pbuf,
             "s": s, "sq": sq, "cnt": cnt}
        )

    props = acc_type.get_acc_dev_props(devices[0])
    if threads_per_point is None:
        threads_per_point = min(8, props.block_thread_count_max)

    flux = np.zeros(m)
    rel = np.full(m, np.inf)
    n_spent = np.zeros(m)
    budget = initial_samples
    rounds = 0

    while True:
        rounds += 1
        # Launch one round on every device (overlapping queues).
        for sh in shards:
            blocks = len(sh["idx"])
            elems = -(-budget // threads_per_point)
            wd = WorkDivMembers.make(
                (blocks,), (threads_per_point,), (elems,)
            )
            task = create_task_kernel(
                acc_type, wd, kernel,
                seed + rounds, budget, sh["pts"], sh["s"], sh["sq"], sh["cnt"],
            )
            sh["queue"].enqueue(task)
        for sh in shards:
            sh["queue"].wait()

        # Gather and test convergence.
        for sh in shards:
            k = len(sh["idx"])
            s_h = np.zeros(k)
            sq_h = np.zeros(k)
            n_h = np.zeros(k)
            mem.copy(sh["queue"], s_h, sh["s"])
            mem.copy(sh["queue"], sq_h, sh["sq"])
            mem.copy(sh["queue"], n_h, sh["cnt"])
            sh["queue"].wait()
            mean, r = _stats(s_h, sq_h, n_h)
            flux[sh["idx"]] = mean
            rel[sh["idx"]] = r
            n_spent[sh["idx"]] = n_h

        done = (rel <= target_rel_error) | (n_spent >= max_samples_per_point)
        if np.all(done):
            break
        budget = min(budget * 2, max_samples_per_point)

    for sh in shards:
        sh["queue"].destroy()
        for b in ("pts", "s", "sq", "cnt"):
            sh[b].free()

    per_device = [d.sim_time_s - sim_t0[d.uid] for d in devices]
    result = AseResult(
        flux=flux,
        rel_error=rel,
        samples=n_spent,
        rounds=rounds,
        sim_time_s=sum(per_device),
        wall_sim_time_s=max(per_device) if per_device else 0.0,
        device_names=[d.name for d in devices],
    )
    result.target_rel_error = target_rel_error
    return result
