"""PIC kernels: charge deposit, field integration, particle push.

Single-source like everything else: each kernel processes its particle
span with vector operations (element level) and merges shared state
with atomics — the exact structure PIConGPU scales to thousands of
GPUs, minus two dimensions.
"""

from __future__ import annotations

import numpy as np

from ...core.element import grid_strided_spans
from ...core.index import Grid, Blocks, get_idx
from ...core.kernel import fn_acc
from ...hardware.cache import AccessPattern
from ...perfmodel.kernel_model import KernelCharacteristics

__all__ = ["DepositChargeKernel", "IntegrateFieldKernel", "PushKernel"]


class DepositChargeKernel:
    """Cloud-in-cell charge deposition: ``rho`` gains each particle's
    charge, linearly weighted to its two nearest cells.

    Each thread bins its particle span vectorised into a private
    density array and merges it with one atomic per touched cell —
    the privatisation pattern that makes scatter-with-conflicts scale.
    ``rho`` must be pre-filled with the ion background.
    """

    def __init__(self, ng: int, dx: float, length: float, charge: float = -1.0):
        self.ng = ng
        self.dx = dx
        self.length = length
        self.charge = charge

    @fn_acc
    def __call__(self, acc, n, weight, x, rho):
        local = np.zeros(self.ng)
        for span in grid_strided_spans(acc, n):
            xs = x[span]
            cell_f = xs / self.dx - 0.5  # offset to cell centres
            left = np.floor(cell_f).astype(np.int64)
            frac = cell_f - left
            left_idx = np.mod(left, self.ng)
            right_idx = np.mod(left + 1, self.ng)
            amount = self.charge * weight / self.dx
            np.add.at(local, left_idx, amount * (1.0 - frac))
            np.add.at(local, right_idx, amount * frac)
        for j in np.nonzero(local)[0]:
            acc.atomic_add(rho, int(j), local[j])

    def characteristics(self, work_div, n, *args) -> KernelCharacteristics:
        return KernelCharacteristics(
            flops=10.0 * n,
            global_read_bytes=8.0 * n,
            global_write_bytes=8.0 * self.ng * work_div.block_count,
            working_set_bytes=8 * self.ng,
            thread_access_pattern=AccessPattern.CONTIGUOUS,
            vector_friendly=True,
        )


class IntegrateFieldKernel:
    """Periodic 1-d Gauss law: ``E`` at cell centres from ``rho``.

    ``dE/dx = rho`` integrates to a prefix sum; periodicity forces a
    zero-mean field.  One block does the (small) integration — the PIC
    step that inherently serialises, launched between the parallel
    deposit and push exactly as the grid-synchronisation model demands.
    """

    def __init__(self, ng: int, dx: float):
        self.ng = ng
        self.dx = dx

    @fn_acc
    def __call__(self, acc, rho, e_field):
        bi = get_idx(acc, Grid, Blocks)[0]
        if bi > 0:
            return
        # Midpoint-consistent prefix integral at cell centres.
        cum = np.cumsum(rho) * self.dx
        e = cum - 0.5 * rho * self.dx
        e_field[:] = e - e.mean()

    def characteristics(self, work_div, *args) -> KernelCharacteristics:
        return KernelCharacteristics(
            flops=4.0 * self.ng,
            global_read_bytes=8.0 * self.ng,
            global_write_bytes=8.0 * self.ng,
            working_set_bytes=8 * self.ng,
            thread_access_pattern=AccessPattern.CONTIGUOUS,
            vector_friendly=True,
        )


class PushKernel:
    """Leapfrog particle push with linear field gather.

    ``v += (q/m) E(x) dt`` then ``x += v dt`` (periodic wrap), all as
    span-wide vector operations.
    """

    def __init__(
        self,
        ng: int,
        dx: float,
        length: float,
        charge: float = -1.0,
        mass: float = 1.0,
    ):
        self.ng = ng
        self.dx = dx
        self.length = length
        self.qm = charge / mass

    @fn_acc
    def __call__(self, acc, n, dt, x, v, e_field):
        for span in grid_strided_spans(acc, n):
            xs = x[span]
            cell_f = xs / self.dx - 0.5
            left = np.floor(cell_f).astype(np.int64)
            frac = cell_f - left
            e_here = (1.0 - frac) * e_field[np.mod(left, self.ng)] + (
                frac * e_field[np.mod(left + 1, self.ng)]
            )
            v[span] += self.qm * e_here * dt
            x[span] = np.mod(xs + v[span] * dt, self.length)

    def characteristics(self, work_div, n, *args) -> KernelCharacteristics:
        return KernelCharacteristics(
            flops=14.0 * n,
            global_read_bytes=8.0 * (2.0 * n + self.ng),
            global_write_bytes=16.0 * n,
            working_set_bytes=8 * self.ng,
            thread_access_pattern=AccessPattern.CONTIGUOUS,
            vector_friendly=True,
        )
