"""PIC time-stepping driver.

Per step, three queue-ordered launches — deposit, field integration,
push — on the chosen back-end; diagnostics (field energy, mode
amplitude) are read back every step for the physics tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ... import mem
from ...core.kernel import create_task_kernel
from ...core.workdiv import WorkDivMembers
from ...dev.manager import get_dev_by_idx
from ...queue.queue import QueueBlocking
from .grid import PicGrid
from .kernels import DepositChargeKernel, IntegrateFieldKernel, PushKernel

__all__ = ["PicSimulation", "PicHistory"]


@dataclass
class PicHistory:
    """Per-step diagnostics of a PIC run."""

    times: List[float] = field(default_factory=list)
    field_energy: List[float] = field(default_factory=list)
    kinetic_energy: List[float] = field(default_factory=list)
    mode_amplitude: List[float] = field(default_factory=list)

    @property
    def total_energy(self) -> np.ndarray:
        return np.asarray(self.field_energy) + np.asarray(self.kinetic_energy)


class PicSimulation:
    """A 1-d electrostatic PIC run on one device of ``acc_type``.

    The ion background is the static ``+n0`` that neutralises the
    electrons; ``n0`` is computed from the particles so any loading is
    consistent.
    """

    def __init__(
        self,
        acc_type,
        grid: PicGrid,
        x: np.ndarray,
        v: np.ndarray,
        weight: float,
        *,
        particles_per_block: int = 4096,
    ):
        if x.shape != v.shape or x.ndim != 1:
            raise ValueError("x and v must be equal-length 1-d arrays")
        self.acc_type = acc_type
        self.grid = grid
        self.n = len(x)
        self.weight = weight
        self.n0 = self.n * weight / grid.length

        self.dev = get_dev_by_idx(acc_type, 0)
        self.queue = QueueBlocking(self.dev)
        self.x = mem.alloc(self.dev, self.n)
        self.v = mem.alloc(self.dev, self.n)
        self.rho = mem.alloc(self.dev, grid.ng)
        self.e_field = mem.alloc(self.dev, grid.ng)
        mem.copy(self.queue, self.x, np.ascontiguousarray(x, dtype=np.float64))
        mem.copy(self.queue, self.v, np.ascontiguousarray(v, dtype=np.float64))

        blocks = max(1, -(-self.n // particles_per_block))
        self._wd_particles = WorkDivMembers.make(blocks, 1, particles_per_block)
        self._wd_field = WorkDivMembers.make(1, 1, grid.ng)
        self._deposit = DepositChargeKernel(grid.ng, grid.dx, grid.length)
        self._integrate = IntegrateFieldKernel(grid.ng, grid.dx)
        self._push = PushKernel(grid.ng, grid.dx, grid.length)
        self.time = 0.0

    # -- one step -------------------------------------------------------

    def step(self, dt: float) -> None:
        q = self.queue
        mem.memset(q, self.rho, self.n0)  # ion background
        q.enqueue(
            create_task_kernel(
                self.acc_type, self._wd_particles, self._deposit,
                self.n, self.weight, self.x, self.rho,
            )
        )
        q.enqueue(
            create_task_kernel(
                self.acc_type, self._wd_field, self._integrate,
                self.rho, self.e_field,
            )
        )
        q.enqueue(
            create_task_kernel(
                self.acc_type, self._wd_particles, self._push,
                self.n, dt, self.x, self.v, self.e_field,
            )
        )
        self.time += dt

    # -- diagnostics -------------------------------------------------------

    def _host(self, buf) -> np.ndarray:
        out = np.empty(buf.extent[0])
        mem.copy(self.queue, out, buf)
        return out

    def diagnostics(self, mode: int = 1) -> dict:
        e = self._host(self.e_field)
        v = self._host(self.v)
        k = 2.0 * np.pi * mode / self.grid.length
        centers = self.grid.cell_centers
        return {
            "field_energy": 0.5 * float(np.sum(e * e)) * self.grid.dx,
            "kinetic_energy": 0.5 * self.weight * float(np.sum(v * v)),
            "mode_amplitude": abs(
                float(np.sum(e * np.exp(-1j * k * centers)).real)
            ) * self.grid.dx,
        }

    def run(self, steps: int, dt: float, history_mode: int = 1) -> PicHistory:
        hist = PicHistory()
        for _ in range(steps):
            self.step(dt)
            d = self.diagnostics(history_mode)
            hist.times.append(self.time)
            hist.field_energy.append(d["field_energy"])
            hist.kinetic_energy.append(d["kinetic_energy"])
            hist.mode_amplitude.append(d["mode_amplitude"])
        return hist

    def free(self) -> None:
        for b in (self.x, self.v, self.rho, self.e_field):
            b.free()
