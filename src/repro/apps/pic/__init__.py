"""Mini particle-in-cell: 1-d electrostatic plasma (PIConGPU's physics,
miniaturised) — the second real-world example application."""

from .grid import PicGrid, cold_plasma_particles
from .kernels import DepositChargeKernel, IntegrateFieldKernel, PushKernel
from .simulation import PicHistory, PicSimulation

__all__ = [
    "PicGrid",
    "cold_plasma_particles",
    "DepositChargeKernel",
    "IntegrateFieldKernel",
    "PushKernel",
    "PicSimulation",
    "PicHistory",
]
