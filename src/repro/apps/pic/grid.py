"""1-d periodic PIC grid and particle initialisation.

The second real-world workload (after HASE): the paper's authors build
PIConGPU, a particle-in-cell plasma code; this is its 1-d electrostatic
miniature.  Normalised units throughout: ``eps0 = 1``, electron mass
``m = 1``, electron charge ``q = -1``; a neutralising immobile ion
background carries ``+n0``.  With mean electron density ``n0 = 1`` the
plasma frequency is exactly ``omega_p = sqrt(n0 q^2 / (eps0 m)) = 1``,
which makes the physics tests parameter-free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...rand.philox import PhiloxRng

__all__ = ["PicGrid", "cold_plasma_particles"]


@dataclass(frozen=True)
class PicGrid:
    """Periodic 1-d domain with ``ng`` cells of width ``dx``."""

    ng: int
    length: float = 2.0 * np.pi

    def __post_init__(self):
        if self.ng < 2:
            raise ValueError("need at least two cells")
        if self.length <= 0:
            raise ValueError("domain length must be positive")

    @property
    def dx(self) -> float:
        return self.length / self.ng

    @property
    def cell_centers(self) -> np.ndarray:
        return (np.arange(self.ng) + 0.5) * self.dx

    def wrap(self, x: np.ndarray) -> np.ndarray:
        """Map positions into [0, length)."""
        return np.mod(x, self.length)


def cold_plasma_particles(
    grid: PicGrid,
    particles_per_cell: int,
    *,
    displacement: float = 0.0,
    mode: int = 1,
    thermal_velocity: float = 0.0,
    seed: int = 0,
):
    """Quiet-start electrons, optionally displaced sinusoidally.

    Returns ``(x, v, weight)``: positions, velocities, and the charge
    weight per macro-particle such that the mean density is ``n0 = 1``.
    A displacement ``A*sin(mode * 2*pi*x0/L)`` seeds a standing Langmuir
    oscillation at ``omega_p`` (the classic PIC validation problem).
    """
    if particles_per_cell < 1:
        raise ValueError("need at least one particle per cell")
    n = grid.ng * particles_per_cell
    x0 = (np.arange(n) + 0.5) * grid.length / n
    k = 2.0 * np.pi * mode / grid.length
    x = grid.wrap(x0 + displacement * np.sin(k * x0))
    v = np.zeros(n)
    if thermal_velocity > 0.0:
        v = thermal_velocity * PhiloxRng(seed).normal(n)
    weight = grid.length / n  # so that sum(w)/L = n0 = 1
    return x, v, weight
