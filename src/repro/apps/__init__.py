"""Applications built on the library (real-world example workloads)."""

from . import hase, pic

__all__ = ["hase", "pic"]
