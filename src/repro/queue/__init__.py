"""Queues (streams) and events."""

from .event import (
    Event,
    elapsed_sim_time,
    enqueue_after,
    record,
    wait_queue_for,
)
from .queue import Queue, QueueBlocking, QueueNonBlocking, enqueue, wait

__all__ = [
    "Queue",
    "QueueBlocking",
    "QueueNonBlocking",
    "enqueue",
    "wait",
    "Event",
    "record",
    "elapsed_sim_time",
    "wait_queue_for",
    "enqueue_after",
]
