"""Events: synchronisation markers between queues and with the host.

An event is enqueued into a queue; it *fires* when the queue reaches it.
The host blocks with ``wait(event)``; another queue can be made to wait
for it with :func:`wait_queue_for`, giving cross-queue dependencies —
the mechanism behind the paper's claim that multiple back-end instances
can run simultaneously and still be coordinated (Sec. 3.1).
"""

from __future__ import annotations

import threading
from typing import Optional

from ..core.errors import QueueError
from ..dev.device import Device
from .queue import Queue

__all__ = ["Event", "record", "wait_queue_for", "elapsed_sim_time"]


class Event:
    """A one-shot-per-record completion marker bound to a device.

    Re-recording re-arms the event (CUDA semantics): ``wait`` blocks
    until the *latest* record has fired.
    """

    def __init__(self, dev: Device):
        self.dev = dev
        self._cv = threading.Condition()
        self._record_count = 0
        self._fired_count = 0
        self._sim_time_at_fire: Optional[float] = None

    # -- task protocol: an Event can be enqueued directly ---------------

    def execute(self, device: Device) -> None:
        with self._cv:
            self._fired_count += 1
            self._sim_time_at_fire = device.sim_time_s
            self._cv.notify_all()

    # -- host-side API ----------------------------------------------------

    def record(self, queue: Queue) -> "Event":
        """Arm the event and enqueue its firing into ``queue``."""
        if queue.dev is not self.dev:
            raise QueueError(
                f"event of {self.dev!r} recorded into queue of {queue.dev!r}"
            )
        with self._cv:
            self._record_count += 1
            target = self._record_count
        queue.enqueue(self)
        self._last_target = target
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the latest record fired.  An event never recorded
        is complete by definition (CUDA semantics)."""
        with self._cv:
            target = self._record_count
            fired = self._cv.wait_for(
                lambda: self._fired_count >= target, timeout=timeout
            )
            return fired

    @property
    def is_complete(self) -> bool:
        with self._cv:
            return self._fired_count >= self._record_count

    @property
    def sim_time_at_fire(self) -> Optional[float]:
        """The device's simulated clock when the event last fired —
        the reproduction's analogue of ``cudaEventElapsedTime``
        (``elapsed_sim_time`` subtracts two of these)."""
        with self._cv:
            return self._sim_time_at_fire


def elapsed_sim_time(start: Event, stop: Event) -> float:
    """Modeled seconds between two fired events of one device."""
    if start.dev is not stop.dev:
        raise QueueError("elapsed_sim_time needs events of one device")
    a, b = start.sim_time_at_fire, stop.sim_time_at_fire
    if a is None or b is None:
        raise QueueError("both events must have fired")
    return b - a


def record(event: Event, queue: Queue) -> Event:
    """Free-function spelling of ``enqueue(queue, event)``."""
    return event.record(queue)


def wait_queue_for(queue: Queue, event: Event) -> None:
    """Make ``queue`` wait for ``event`` before running later tasks.

    Implemented by enqueuing a task that blocks the queue's worker on
    the event; on a blocking queue this blocks the host, which is the
    correct degenerate behaviour.
    """
    queue.enqueue(lambda: event.wait())
