"""Events: synchronisation markers between queues and with the host.

An event is enqueued into a queue; it *fires* when the queue reaches it.
The host blocks with ``wait(event)``; another queue can be made to wait
for it with :func:`wait_queue_for`, giving cross-queue dependencies —
the mechanism behind the paper's claim that multiple back-end instances
can run simultaneously and still be coordinated (Sec. 3.1).
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from ..core.errors import QueueError
from ..dev.device import Device
from .queue import Queue

__all__ = [
    "Event",
    "record",
    "wait_queue_for",
    "enqueue_after",
    "elapsed_sim_time",
]


class Event:
    """A one-shot-per-record completion marker bound to a device.

    Re-recording re-arms the event (CUDA semantics): ``wait`` blocks
    until the *latest* record has fired.
    """

    def __init__(self, dev: Device):
        self.dev = dev
        self._cv = threading.Condition()
        self._record_count = 0
        self._fired_count = 0
        self._sim_time_at_fire: Optional[float] = None
        self._fire_callbacks: List[Callable[[], None]] = []

    # -- task protocol: an Event can be enqueued directly ---------------

    def execute(self, device: Device) -> None:
        with self._cv:
            self._fired_count += 1
            self._sim_time_at_fire = device.sim_time_s
            callbacks, self._fire_callbacks = self._fire_callbacks, []
            self._cv.notify_all()
        # One-shot callbacks run outside the lock: a callback typically
        # grabs another queue's condition variable (the wait-gate wakeup
        # path), and nesting the two would invert lock order against
        # workers that query this event while holding their queue lock.
        for cb in callbacks:
            cb()

    # -- host-side API ----------------------------------------------------

    def record(self, queue: Queue) -> "Event":
        """Arm the event and enqueue its firing into ``queue``."""
        if queue.dev is not self.dev:
            raise QueueError(
                f"event of {self.dev!r} recorded into queue of {queue.dev!r}"
            )
        with self._cv:
            self._record_count += 1
        queue.enqueue(self)
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the latest record fired.  An event never recorded
        is complete by definition (CUDA semantics)."""
        with self._cv:
            target = self._record_count
            fired = self._cv.wait_for(
                lambda: self._fired_count >= target, timeout=timeout
            )
            return fired

    @property
    def is_complete(self) -> bool:
        with self._cv:
            return self._fired_count >= self._record_count

    @property
    def record_count(self) -> int:
        with self._cv:
            return self._record_count

    @property
    def fired_count(self) -> int:
        with self._cv:
            return self._fired_count

    def add_fire_callback(self, fn: Callable[[], None]) -> None:
        """Invoke ``fn`` (once) at the next fire.

        The wait-gate wakeup hook behind ``Queue.enqueue_after``.
        Duplicate registrations (by equality, covering re-created bound
        methods) collapse to one; callbacks are cleared at each fire.
        """
        with self._cv:
            if fn not in self._fire_callbacks:
                self._fire_callbacks.append(fn)

    @property
    def sim_time_at_fire(self) -> Optional[float]:
        """The device's simulated clock when the event last fired —
        the reproduction's analogue of ``cudaEventElapsedTime``
        (``elapsed_sim_time`` subtracts two of these)."""
        with self._cv:
            return self._sim_time_at_fire


def elapsed_sim_time(start: Event, stop: Event) -> float:
    """Modeled seconds between two fired events of one device."""
    if start.dev is not stop.dev:
        raise QueueError("elapsed_sim_time needs events of one device")
    a, b = start.sim_time_at_fire, stop.sim_time_at_fire
    if a is None or b is None:
        raise QueueError("both events must have fired")
    return b - a


def record(event: Event, queue: Queue) -> Event:
    """Free-function spelling of ``enqueue(queue, event)``."""
    return event.record(queue)


def enqueue_after(queue: Queue, event: Event) -> None:
    """The canonical free-function spelling of
    ``queue.enqueue_after(event)``: a cross-queue dependency without a
    host-side ``wait()`` barrier.  Non-blocking queues park no OS
    thread on the dependency; on a blocking queue this blocks the host,
    which is the correct degenerate behaviour."""
    queue.enqueue_after(event)


def wait_queue_for(queue: Queue, event: Event) -> None:
    """Paper-era alias of :func:`enqueue_after` (``alpaka::wait::
    wait(stream, event)``), kept for source compatibility.

    A thin shim: it delegates to :func:`enqueue_after` so the two
    spellings can never diverge (covered by
    ``tests/queue/test_event_reuse.py``)."""
    enqueue_after(queue, event)
