"""Work queues (paper Sec. 3.4.5, "Streams").

A queue is the in-order work list of one device: *"No operation in a
stream will begin before all previously issued operations in the stream
have completed."*  Two flavours exist, as in the paper:

* **blocking** (synchronous): enqueue executes the task in the calling
  thread and returns when it is done;
* **non-blocking** (asynchronous): enqueue hands the task to a worker
  thread and returns immediately; the host resumes computing while the
  device works.

Both preserve in-order semantics.  ``wait(queue)`` blocks the host until
the queue has drained; ``wait(event)`` until an event recorded into a
queue has fired.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Optional, Protocol, Union

from ..core.errors import KernelError, QueueError
from ..dev.device import Device
from ..runtime.instrument import notify_queue_drain
from ..telemetry.spans import span

__all__ = ["Queue", "QueueBlocking", "QueueNonBlocking", "enqueue", "wait"]


class _Task(Protocol):  # pragma: no cover - typing helper
    def execute(self, device: Device) -> None: ...


class Queue:
    """Base in-order queue bound to a device.

    Subclasses implement :meth:`_submit`.  Plain callables of zero
    arguments may be enqueued as well as task objects; they run on the
    queue like tasks (useful for callbacks and tests).
    """

    blocking: bool = True

    def __init__(self, dev: Device):
        self.dev = dev
        self._destroyed = False

    # -- public API -----------------------------------------------------

    def enqueue(self, task: Union[_Task, Callable[[], None]]) -> None:
        if self._destroyed:
            raise QueueError("enqueue on a destroyed queue")
        runnable = self._as_runnable(task)
        self._submit(runnable)

    def enqueue_after(self, event) -> None:
        """Defer all later-enqueued tasks until ``event`` has fired.

        The cross-queue dependency primitive: queue B continues only
        after queue A reaches the event, with no host-side ``wait()``
        barrier.  On a blocking queue this degenerates to blocking the
        host (the caller *is* the worker).
        """
        if self._destroyed:
            raise QueueError("enqueue_after on a destroyed queue")
        self._submit(lambda: event.wait())

    def enqueue_callback(self, fn: Callable[[], None]) -> None:
        """Run ``fn()`` on the queue, in stream order, once every
        previously enqueued task has completed.

        The completion-callback hook of the dataflow-graph executor
        (CUDA's ``cudaLaunchHostFunc``): the callback executes in the
        queue's worker context, so it must be short and must not block
        on the same queue.

        Robustness contract: a callback that raises must neither kill
        the drain thread nor poison the queue — later tasks (and later
        callbacks) still run, and the error is re-raised from the next
        :meth:`wait`.  Callbacks also run when the queue *is* poisoned
        by an earlier task failure: completion hooks observe outcomes,
        they do not depend on them, and skipping them would wedge any
        caller awaiting a completion (the serving gateway's device
        lanes rely on this).
        """
        if self._destroyed:
            raise QueueError("enqueue_callback on a destroyed queue")
        if not callable(fn):
            raise QueueError(f"enqueue_callback needs a callable, got {fn!r}")
        self._submit_callback(fn)

    def wait(self) -> None:
        """Block the host until all enqueued work has completed."""

    def destroy(self) -> None:
        """Drain and invalidate the queue (idempotent)."""
        if not self._destroyed:
            self.wait()
            self._destroyed = True

    def __enter__(self) -> "Queue":
        return self

    def __exit__(self, *exc) -> None:
        self.destroy()

    # -- helpers ----------------------------------------------------------

    def _as_runnable(self, task) -> Callable[[], None]:
        execute = getattr(task, "execute", None)
        if execute is not None:
            return lambda: execute(self.dev)
        if callable(task):
            return task
        raise QueueError(f"cannot enqueue {task!r}: no execute() and not callable")

    def _submit(self, runnable: Callable[[], None]) -> None:
        raise NotImplementedError

    def _submit_callback(self, fn: Callable[[], None]) -> None:
        # Blocking queues run the callback inline: the caller *is* the
        # worker context, so a raising callback surfaces right here and
        # there is no drain thread to protect.
        self._submit(fn)

    def __repr__(self) -> str:
        kind = "blocking" if self.blocking else "non-blocking"
        return f"<Queue {kind} on {self.dev.name}>"


class QueueBlocking(Queue):
    """Synchronous queue: enqueue = execute now, in the caller's thread."""

    blocking = True

    def _submit(self, runnable: Callable[[], None]) -> None:
        runnable()
        notify_queue_drain(self)  # a blocking queue drains at every task

    def wait(self) -> None:
        # Everything already ran at enqueue time.
        return


class _WaitGate:
    """An in-queue dependency marker: later tasks run only once the
    gated event's record (at gate creation time) has fired.

    The queue worker does not block an OS thread on the event — it goes
    back to sleeping on the queue's condition variable and is woken by
    the event's fire callback, so deep multi-queue pipelines cost no
    parked threads.
    """

    __slots__ = ("event", "target")

    def __init__(self, event):
        self.event = event
        # A never-recorded event is complete by definition (CUDA
        # semantics); otherwise wait for the record current at gate
        # creation, not any later re-record.
        self.target = event.record_count

    def is_open(self) -> bool:
        return self.event.fired_count >= self.target

    def arm(self, notify: Callable[[], None]) -> None:
        # Registration is deduplicated by the event; fire callbacks are
        # one-shot, so re-arming on every worker wakeup is cheap.
        self.event.add_fire_callback(notify)


class _Callback:
    """Marks an enqueued completion callback: runs even on a poisoned
    queue, and its own failure never poisons the queue (captured and
    re-raised from ``wait()`` instead)."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], None]):
        self.fn = fn


class QueueNonBlocking(Queue):
    """Asynchronous queue: a worker thread drains tasks in order.

    The first enqueued task that raises poisons the queue: the exception
    is re-raised (chained) from the next :meth:`wait` or
    :meth:`enqueue`, mirroring how CUDA reports asynchronous errors on
    the next API call.  Completion callbacks are exempt from both sides
    of that rule — see :meth:`Queue.enqueue_callback`.
    """

    blocking = False

    def __init__(self, dev: Device):
        super().__init__(dev)
        self._tasks: deque = deque()
        self._cv = threading.Condition()
        self._pending = 0
        self._error: Optional[BaseException] = None
        self._callback_errors: list = []
        self._shutdown = False
        self._worker = threading.Thread(
            target=self._run, name=f"queue-{dev.uid}", daemon=True
        )
        self._worker.start()

    def _next_runnable(self) -> Optional[Callable[[], None]]:
        """Worker-side: the next task to run, or None on shutdown.

        Blocks (on the condition variable) while the queue is empty or
        the head is a closed :class:`_WaitGate`.
        """
        with self._cv:
            while True:
                if self._tasks:
                    head = self._tasks[0]
                    if isinstance(head, _WaitGate):
                        if head.is_open():
                            self._tasks.popleft()
                            self._pending -= 1
                            if self._pending == 0:
                                self._cv.notify_all()
                            continue
                        head.arm(self._notify_worker)
                        # Re-check: the fire may have raced the arm —
                        # callbacks registered after a fire never run.
                        if head.is_open():
                            continue
                        self._cv.wait()
                        continue
                    return self._tasks.popleft()
                if self._shutdown:
                    return None
                self._cv.wait()

    def _notify_worker(self) -> None:
        with self._cv:
            self._cv.notify_all()

    def _run(self) -> None:
        while True:
            runnable = self._next_runnable()
            if runnable is None:
                return
            if isinstance(runnable, _Callback):
                # Callbacks run regardless of poison state, and their
                # failures are quarantined from it: captured here,
                # re-raised from wait(), never blocking the drain.
                try:
                    runnable.fn()
                except BaseException as exc:  # noqa: BLE001
                    with self._cv:
                        self._callback_errors.append(exc)
                with self._cv:
                    self._pending -= 1
                    drained = self._pending == 0
                    self._cv.notify_all()
                if drained:
                    notify_queue_drain(self)
                continue
            try:
                # Poison check under the lock: without it a task could
                # observe a stale None and start after a sibling already
                # failed, breaking the in-order error contract.
                with self._cv:
                    poisoned = self._error is not None
                if not poisoned:
                    runnable()
            except BaseException as exc:  # noqa: BLE001 - reported on wait
                with self._cv:
                    self._error = exc
                # Flight recorder: a poisoned queue is exactly the
                # failure whose prior-seconds context matters.  One
                # boolean read when off; never raises on this thread.
                from ..telemetry import flight

                if flight.active():
                    flight.on_queue_poisoned(self, exc)
            finally:
                with self._cv:
                    self._pending -= 1
                    drained = self._pending == 0
                    self._cv.notify_all()
                if drained:
                    notify_queue_drain(self)

    def _raise_pending_error(self) -> None:
        if self._error is not None:
            err, self._error = self._error, None
            raise KernelError(
                "an asynchronously enqueued task failed"
            ) from err

    def _raise_callback_errors(self) -> None:
        if self._callback_errors:
            errors, self._callback_errors = self._callback_errors, []
            raise QueueError(
                f"{len(errors)} enqueued callback(s) raised; first error "
                "chained below"
            ) from errors[0]

    def _submit(self, runnable: Callable[[], None]) -> None:
        with self._cv:
            self._raise_pending_error()
            self._pending += 1
            self._tasks.append(runnable)
            self._cv.notify_all()

    def _submit_callback(self, fn: Callable[[], None]) -> None:
        # No poison check: a completion callback must reach the worker
        # even after an earlier task failed, or its awaiter hangs.
        with self._cv:
            self._pending += 1
            self._tasks.append(_Callback(fn))
            self._cv.notify_all()

    def enqueue_after(self, event) -> None:
        """Non-blocking cross-queue dependency: tasks enqueued after
        this call wait for ``event`` without occupying the worker in a
        host-side ``wait()``."""
        if self._destroyed:
            raise QueueError("enqueue_after on a destroyed queue")
        self._submit_gate(_WaitGate(event))

    def _submit_gate(self, gate: _WaitGate) -> None:
        with self._cv:
            self._raise_pending_error()
            self._pending += 1
            self._tasks.append(gate)
            self._cv.notify_all()

    def wait(self) -> None:
        # The span captures host blocking time on device work — the
        # quantity a pipeline architect wants per queue.
        with span("queue.wait", cat="queue", device=self.dev):
            with self._cv:
                while self._pending > 0:
                    self._cv.wait()
                self._raise_pending_error()
                self._raise_callback_errors()

    def destroy(self) -> None:
        if self._destroyed:
            return
        try:
            self.wait()
        finally:
            with self._cv:
                self._shutdown = True
                self._cv.notify_all()
            self._worker.join(timeout=5)
            self._destroyed = True


def enqueue(queue: Queue, task) -> None:
    """Free-function spelling of paper Listing 5's
    ``stream::enqueue(stream, exec)``."""
    queue.enqueue(task)


def wait(waitable) -> None:
    """Block the host on a queue or an event (``alpaka::wait::wait``)."""
    waitable.wait()
