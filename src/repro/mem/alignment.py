"""Row alignment / pitch computation for multi-dimensional buffers.

The paper (Sec. 4.2): *"The matrices are mapped to 1D memory buffers
with Alpaka aligning rows to optimum memory boundaries."*  Alpaka pads
each row of a >=2-d allocation so rows start on an alignment boundary
(the pitch); copies and views must honour it.  We reproduce that with a
padded trailing dimension on the backing numpy array.
"""

from __future__ import annotations

import numpy as np

__all__ = ["OPTIMAL_ALIGNMENT_BYTES", "pitch_elements", "pitch_bytes"]

#: Boundary rows are padded to.  64 bytes = one x86 cache line = one
#: fully coalesced 16-thread float access on the simulated GPU.
OPTIMAL_ALIGNMENT_BYTES = 64


def pitch_elements(row_elements: int, dtype, alignment: int = OPTIMAL_ALIGNMENT_BYTES) -> int:
    """Number of elements per padded row.

    The smallest multiple of ``alignment`` bytes that holds
    ``row_elements`` items of ``dtype``, expressed in elements.  When
    the item size does not divide the alignment (e.g. 12-byte records),
    padding falls back to the unpadded row — alignment is then
    unattainable and alpaka would behave the same.
    """
    if row_elements < 0:
        raise ValueError("row_elements must be non-negative")
    itemsize = np.dtype(dtype).itemsize
    if alignment % itemsize != 0:
        return row_elements
    elems_per_boundary = alignment // itemsize
    if row_elements == 0:
        return 0
    return -(-row_elements // elems_per_boundary) * elems_per_boundary


def pitch_bytes(row_elements: int, dtype, alignment: int = OPTIMAL_ALIGNMENT_BYTES) -> int:
    """Pitch of a padded row in bytes (CUDA's ``pitch``)."""
    return pitch_elements(row_elements, dtype, alignment) * np.dtype(dtype).itemsize
