"""Shared-memory buffer backing: zero-copy device arrays across processes.

The process-pool block scheduler (:mod:`repro.runtime.procpool`) runs
blocks in spawned worker processes.  Shipping a buffer's numpy array to
a worker by pickle would copy the payload on every launch — the exact
overhead the paper's zero-overhead claim forbids — so a buffer may opt
into a ``multiprocessing.shared_memory`` backing instead: the parent
allocates one named segment per buffer, workers attach to the segment
*by name* and build their numpy view over the same physical pages.
Kernel writes in a worker are immediately visible to the host; nothing
is serialised but the segment's name and geometry
(:class:`ShmArraySpec`, a few dozen bytes).

Opt in per allocation (``mem.alloc(dev, n, shm=True)``) or process-wide
with ``REPRO_SHM_BUFFERS=1`` (how the kernel sweep runs under
``REPRO_SCHEDULER=processes`` without touching call sites).

Lifetime discipline: every live segment is tracked in a module registry;
``Buffer.free()`` closes *and unlinks* its segment, and an ``atexit``
hook unlinks anything still live so a crashed or lazy caller never
orphans ``/dev/shm`` entries (the CI leak check asserts the registry and
``/dev/shm`` are clean after the suite).
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "SHM_BUFFERS_ENV",
    "SHM_NAME_PREFIX",
    "ShmArraySpec",
    "ShmBacking",
    "shm_buffers_default",
    "active_segment_names",
    "attach_array",
    "release_worker_attachments",
    "cleanup_all_segments",
]

#: Any non-empty value makes :func:`repro.mem.alloc` back every buffer
#: with shared memory by default (per-call ``shm=`` still wins).
SHM_BUFFERS_ENV = "REPRO_SHM_BUFFERS"

#: Segment names start with this prefix + pid, so a leak check can tell
#: this process's segments apart from unrelated ``/dev/shm`` entries.
SHM_NAME_PREFIX = "repro_shm"

_seq = itertools.count()
_registry_lock = threading.Lock()
#: name -> ShmBacking, every segment this process created and not yet
#: released.  The atexit sweep drains it.
_live: Dict[str, "ShmBacking"] = {}


def shm_buffers_default() -> bool:
    """Whether buffers default to shared-memory backing
    (``REPRO_SHM_BUFFERS``)."""
    return bool(os.environ.get(SHM_BUFFERS_ENV))


@dataclass(frozen=True)
class ShmArraySpec:
    """Everything a worker process needs to rebuild a buffer's array.

    Picklable and tiny — this is the only thing the process scheduler
    ever serialises for an shm-backed kernel argument.  ``shape`` is the
    *padded* backing shape; ``logical_last`` is the unpadded extent of
    the last axis (workers slice exactly like
    :meth:`repro.mem.buf.Buffer._logical` does).
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str
    logical_last: int
    #: Sub-view window as ``(offset, extent)`` per dim, or None for the
    #: whole logical array.
    box: Optional[Tuple[Tuple[int, int], ...]] = None


class ShmBacking:
    """One owned shared-memory segment holding a buffer's padded array.

    Created by the parent process only; workers attach via
    :func:`attach_array` and never own segments.
    """

    def __init__(self, shape: Tuple[int, ...], dtype: np.dtype):
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        nbytes = int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize
        name = f"{SHM_NAME_PREFIX}_{os.getpid()}_{next(_seq)}"
        # SharedMemory rejects size 0; a degenerate (empty-extent) buffer
        # still needs a mappable segment.
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, nbytes), name=name
        )
        self.name = self._shm.name
        self._released = False
        arr = np.ndarray(self.shape, dtype=self.dtype, buffer=self._shm.buf)
        arr[...] = 0  # match np.zeros semantics of the private backing
        self.array = arr
        with _registry_lock:
            _live[self.name] = self

    def spec(self, logical_last: int) -> ShmArraySpec:
        return ShmArraySpec(
            name=self.name,
            shape=self.shape,
            dtype=self.dtype.str,
            logical_last=int(logical_last),
        )

    def release(self) -> None:
        """Close and unlink the segment (idempotent).

        The numpy view dies with it; callers must drop their references
        first (Buffer.free() swaps its array out before calling here).
        """
        if self._released:
            return
        self._released = True
        with _registry_lock:
            _live.pop(self.name, None)
        # The exported buffer must be released before close(); drop the
        # array view first.
        self.array = None
        try:
            self._shm.close()
        except (OSError, BufferError):
            # A surviving numpy view keeps the mapping alive; the unlink
            # below still removes the /dev/shm name, and the pages are
            # reclaimed when the last view is garbage collected.
            pass
        try:
            self._shm.unlink()
        except (OSError, FileNotFoundError):
            pass

    @property
    def released(self) -> bool:
        return self._released

    def __repr__(self) -> str:
        state = "released" if self._released else "live"
        return f"<ShmBacking {self.name} {self.dtype}{self.shape} {state}>"


def active_segment_names() -> List[str]:
    """Names of segments this process created and has not yet released —
    the quantity the leak check asserts is empty."""
    with _registry_lock:
        return sorted(_live)


def cleanup_all_segments() -> int:
    """Release every live segment; returns how many were swept.

    Runs automatically at interpreter exit so un-freed buffers cannot
    orphan ``/dev/shm`` entries (and cannot trigger the multiprocessing
    resource tracker's "leaked shared_memory" stderr noise).
    """
    with _registry_lock:
        leaked = list(_live.values())
    for backing in leaked:
        backing.release()
    return len(leaked)


atexit.register(cleanup_all_segments)


# ---------------------------------------------------------------------------
# Worker-side attachment
# ---------------------------------------------------------------------------

#: name -> (SharedMemory, padded ndarray); one attachment per segment
#: per worker process, reused across launches and chunks.
_attached: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray]] = {}
_attached_lock = threading.Lock()


def attach_array(spec: ShmArraySpec) -> np.ndarray:
    """The logical array behind ``spec``, mapped from shared memory.

    Used by process-pool workers; attachments are cached per segment so
    repeated launches over the same buffers map each segment once per
    worker.  The returned array aliases the parent's buffer memory.
    """
    with _attached_lock:
        entry = _attached.get(spec.name)
        if entry is None:
            seg = shared_memory.SharedMemory(name=spec.name)
            padded = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf
            )
            entry = (seg, padded)
            _attached[spec.name] = entry
    padded = entry[1]
    logical = (
        padded
        if (not spec.shape or spec.logical_last == spec.shape[-1])
        else padded[..., : spec.logical_last]
    )
    if spec.box is not None:
        logical = logical[tuple(slice(o, o + e) for o, e in spec.box)]
    return logical


def release_worker_attachments() -> int:
    """Drop every cached attachment (worker exit / tests); returns the
    count released.  Never unlinks — workers do not own segments."""
    with _attached_lock:
        entries = list(_attached.values())
        _attached.clear()
    count = len(entries)
    while entries:
        seg, arr = entries.pop()
        del arr  # the mapping cannot close while a view is exported
        try:
            seg.close()
        except (OSError, BufferError):
            pass
    return count
