"""Sub-views: rectangular windows into buffers (alpaka ``ViewSubView``).

A sub-view selects an offset box of a buffer without copying.  Views are
legal copy endpoints, which is what multi-device decompositions need:
halo exchange and tile scatter/gather become ``copy(queue, view_a,
view_b)`` between windows of larger buffers.

Views hold a reference to their buffer; residency and lifetime checks
delegate to it, so a view of a freed buffer fails exactly like the
buffer would.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from ..core.errors import ExtentError, MemorySpaceError
from ..core.vec import Vec, as_vec
from .buf import Buffer

__all__ = ["ViewSubView", "sub_view"]


class ViewSubView:
    """A rectangular window ``[offset, offset + extent)`` of a buffer."""

    def __init__(self, buf: Buffer, offset, extent):
        self.buf = buf
        self.offset = as_vec(offset, buf.dim)
        self.extent = as_vec(extent, buf.dim)
        self.offset.assert_non_negative("view offset")
        self.extent.assert_positive("view extent")
        end = self.offset + self.extent
        if not end.elementwise_le(buf.extent):
            raise ExtentError(
                f"sub-view [{self.offset!r}, {end!r}) exceeds buffer "
                f"extent {buf.extent!r}"
            )

    # -- identity / access metadata (dataflow-graph protocol) -----------

    @property
    def buf_id(self) -> int:
        """The base allocation's stable id (dependency inference treats
        a view as an access to a region of its base buffer)."""
        return self.buf.buf_id

    @property
    def base_buffer(self) -> Buffer:
        return self.buf

    def access_box(self) -> tuple:
        """The ``((offset, extent), ...)`` window this view touches
        within its base allocation; disjoint windows of one buffer do
        not conflict in the dataflow graph."""
        return tuple(
            (int(o), int(e)) for o, e in zip(self.offset, self.extent)
        )

    # -- geometry (copy-endpoint protocol) ------------------------------

    @property
    def dev(self):
        return self.buf.dev

    @property
    def dim(self) -> int:
        return self.buf.dim

    @property
    def dtype(self):
        return self.buf.dtype

    @property
    def _box(self) -> tuple:
        return tuple(
            slice(o, o + e) for o, e in zip(self.offset, self.extent)
        )

    # -- access -----------------------------------------------------------

    def as_numpy(self) -> np.ndarray:
        """Host view of the window (host-resident buffers only)."""
        return self.buf.as_numpy()[self._box]

    def kernel_array(self, device) -> np.ndarray:
        """The window a kernel on ``device`` works on (residency
        checked); kernels may therefore take sub-views as arguments.
        The window inherits the buffer's negative-index guard
        (:mod:`repro.mem.guard`): slicing a
        :class:`~repro.mem.guard.GuardedArray` stays guarded."""
        return self.buf.kernel_array(device)[self._box]

    def unsafe_backing(self) -> np.ndarray:
        """Window of the backing array (copy-engine privilege)."""
        arr = self.buf.unsafe_backing()
        if self.buf.pitch_elems != self.buf.extent[-1]:
            arr = arr[..., : self.buf.extent[-1]]
        return arr[self._box]

    def sub_view(self, offset, extent) -> "ViewSubView":
        """A view of a view: offsets compose."""
        off = as_vec(offset, self.dim)
        return ViewSubView(self.buf, self.offset + off, extent)

    def __repr__(self) -> str:
        return (
            f"<ViewSubView {self.offset!r}+{self.extent!r} of {self.buf!r}>"
        )


def sub_view(
    buf: Union[Buffer, ViewSubView],
    offset: Union[int, Sequence[int], Vec],
    extent: Union[int, Sequence[int], Vec],
) -> ViewSubView:
    """Create a sub-view of a buffer (or narrow an existing view)."""
    if isinstance(buf, ViewSubView):
        return buf.sub_view(offset, extent)
    return ViewSubView(buf, offset, extent)
