"""Pointer-based memory model: buffers, explicit deep copies, memset,
and opt-in shared-memory backing for multi-process block dispatch."""

from .alignment import OPTIMAL_ALIGNMENT_BYTES, pitch_bytes, pitch_elements
from .buf import Buffer, alloc, alloc_like
from .copy import PCIE_BANDWIDTH_GBS, TaskCopy, TaskMemset, copy, memset
from .guard import UNGUARDED_ENV, GuardedArray, guard
from .shm import (
    SHM_BUFFERS_ENV,
    ShmArraySpec,
    ShmBacking,
    active_segment_names,
    attach_array,
    cleanup_all_segments,
    shm_buffers_default,
)
from .view import ViewSubView, sub_view

__all__ = [
    "Buffer",
    "alloc",
    "alloc_like",
    "ShmArraySpec",
    "ShmBacking",
    "SHM_BUFFERS_ENV",
    "shm_buffers_default",
    "active_segment_names",
    "attach_array",
    "cleanup_all_segments",
    "copy",
    "memset",
    "TaskCopy",
    "TaskMemset",
    "ViewSubView",
    "GuardedArray",
    "guard",
    "UNGUARDED_ENV",
    "sub_view",
    "pitch_elements",
    "pitch_bytes",
    "OPTIMAL_ALIGNMENT_BYTES",
    "PCIE_BANDWIDTH_GBS",
]
