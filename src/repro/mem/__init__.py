"""Pointer-based memory model: buffers, explicit deep copies, memset."""

from .alignment import OPTIMAL_ALIGNMENT_BYTES, pitch_bytes, pitch_elements
from .buf import Buffer, alloc, alloc_like
from .copy import PCIE_BANDWIDTH_GBS, TaskCopy, TaskMemset, copy, memset
from .guard import UNGUARDED_ENV, GuardedArray, guard
from .view import ViewSubView, sub_view

__all__ = [
    "Buffer",
    "alloc",
    "alloc_like",
    "copy",
    "memset",
    "TaskCopy",
    "TaskMemset",
    "ViewSubView",
    "GuardedArray",
    "guard",
    "UNGUARDED_ENV",
    "sub_view",
    "pitch_elements",
    "pitch_bytes",
    "OPTIMAL_ALIGNMENT_BYTES",
    "PCIE_BANDWIDTH_GBS",
]
