"""Negative-index guarding for kernel-side array access.

numpy silently wraps negative indices (``a[-1]`` is the last element),
which turns a whole class of real kernel bugs — off-by-one stencils
reading ``src[i - 1]`` at ``i == 0`` — into silently wrong answers
instead of errors.  CUDA would read out of bounds; a correctness
reproduction should complain.

:func:`guard` wraps the array a :meth:`Buffer.kernel_array` /
:meth:`ViewSubView.kernel_array` hands to the engine in a
:class:`GuardedArray` view that rejects negative *integer* indices
(scalar or fancy) with :class:`~repro.core.errors.ExtentError` naming
the offending index.  Negative *slice* bounds stay legal — ``a[:-1]``
is idiomatic, unambiguous, and used by shipped kernels.

Host-side access (``as_numpy``) is untouched: wrap-around is a
well-defined numpy idiom there.  Set ``REPRO_UNGUARDED_KERNEL_ARRAYS=1``
to disable the guard (e.g. for micro-benchmarks of index-heavy
kernels).
"""

from __future__ import annotations

import os

import numpy as np

from ..core.errors import ExtentError

__all__ = ["GuardedArray", "guard", "check_index_key", "UNGUARDED_ENV"]

#: Set to a non-empty value to hand kernels raw (unguarded) arrays.
UNGUARDED_ENV = "REPRO_UNGUARDED_KERNEL_ARRAYS"


def _reject(index, key) -> None:
    raise ExtentError(
        f"negative index {index!r} in kernel-side array access "
        f"(key {key!r}): numpy would silently wrap to the other end of "
        "the array, hiding an out-of-bounds bug; index from the front "
        "instead (host-side as_numpy() views remain unguarded)"
    )


def _check_component(k, key) -> None:
    if type(k) is int:  # fast path: plain python int
        if k < 0:
            _reject(k, key)
    elif isinstance(k, (bool, np.bool_)):
        return  # boolean scalar mask component
    elif isinstance(k, (int, np.integer)):
        if int(k) < 0:
            _reject(int(k), key)
    elif isinstance(k, np.ndarray):
        if k.dtype.kind in "iu" and k.size and int(k.min()) < 0:
            _reject(int(k.min()), key)
    elif isinstance(k, (list, tuple)):
        arr = np.asarray(k)
        if arr.dtype.kind in "iu" and arr.size and int(arr.min()) < 0:
            _reject(int(arr.min()), key)
    # slices (negative bounds are idiomatic), None, Ellipsis pass


def check_index_key(key) -> None:
    """Raise :class:`ExtentError` if ``key`` contains a negative integer
    index component (scalar, array, or sequence); slices are exempt."""
    if type(key) is tuple:
        for k in key:
            _check_component(k, key)
    else:
        _check_component(key, key)


class GuardedArray(np.ndarray):
    """An ndarray view whose element access rejects negative integer
    indices with :class:`ExtentError` (see module docstring).

    Views derived by basic indexing stay guarded (subclass propagation),
    so sub-views and row slices a kernel takes keep the check.
    """

    __slots__ = ()

    def __getitem__(self, key):
        check_index_key(key)
        return super().__getitem__(key)

    def __setitem__(self, key, value) -> None:
        check_index_key(key)
        super().__setitem__(key, value)


def guard(arr: np.ndarray) -> np.ndarray:
    """``arr`` as a :class:`GuardedArray` view (same memory), unless
    ``REPRO_UNGUARDED_KERNEL_ARRAYS`` disables guarding."""
    if os.environ.get(UNGUARDED_ENV):
        return arr
    return arr.view(GuardedArray)
