"""Memory buffers (paper Sec. 3.4.4).

A buffer is *"the plain pointer to memory of the particular device plus
residing device, extent, pitch and dimension"*.  Buffers are uniform
across devices, which is what makes :func:`repro.mem.copy.copy` able to
move data between any two devices.

Residency is enforced: ``as_numpy()`` on a buffer of a non-host device
raises :class:`~repro.core.errors.MemorySpaceError`.  Kernels receive
the underlying array only after the executor has checked the buffer
lives on the device the kernel runs on — the reproduction's analogue of
"dereferencing a device pointer on the host segfaults".
"""

from __future__ import annotations

import itertools
import threading
from typing import Optional, Sequence, Union

import numpy as np

from ..core.errors import ExtentError, MemorySpaceError
from ..core.vec import Vec, as_vec
from ..dev.device import Device
from .alignment import OPTIMAL_ALIGNMENT_BYTES, pitch_elements
from .shm import ShmArraySpec, ShmBacking, shm_buffers_default

__all__ = ["Buffer", "alloc", "alloc_like"]

#: Monotonic allocation ids: the stable identity the dataflow-graph
#: dependency-inference pass keys buffer accesses on.  Ids are never
#: reused, so a freed-and-reallocated buffer can never alias a cached
#: graph's dependency structure.
_buf_ids = itertools.count(1)
_buf_ids_lock = threading.Lock()


def _next_buf_id() -> int:
    with _buf_ids_lock:
        return next(_buf_ids)


class Buffer:
    """Device memory with extent, pitch and residency.

    Do not construct directly; use :func:`alloc`.
    """

    def __init__(
        self,
        dev: Device,
        extent: Vec,
        dtype,
        pitched: bool,
        shm: Optional[bool] = None,
    ):
        extent.assert_non_negative("buffer extent")
        self.dev = dev
        self.extent = extent
        self.dtype = np.dtype(dtype)
        if pitched and extent.dim >= 2:
            self.pitch_elems = pitch_elements(extent[-1], self.dtype)
        else:
            self.pitch_elems = extent[-1]
        padded_shape = extent.as_tuple()[:-1] + (self.pitch_elems,)
        nbytes = int(np.prod(padded_shape, dtype=np.int64)) * self.dtype.itemsize
        dev.mem.reserve(nbytes)
        self._nbytes = nbytes
        if shm is None:
            shm = shm_buffers_default()
        if shm:
            # Shared-memory backing: the padded array lives in a named
            # segment worker processes map zero-copy (repro.mem.shm).
            self._shm = ShmBacking(padded_shape, self.dtype)
            self._padded = self._shm.array
        else:
            self._shm = None
            self._padded = np.zeros(padded_shape, dtype=self.dtype)
        self._freed = False
        self._buf_id = _next_buf_id()

    # -- identity / access metadata (dataflow-graph protocol) -----------

    @property
    def buf_id(self) -> int:
        """Process-stable allocation id (monotonic, never reused).

        The dataflow graph's dependency inference keys accesses on this
        id rather than object identity, so views and their base buffer
        resolve to the same memory."""
        return self._buf_id

    @property
    def base_buffer(self) -> "Buffer":
        """The owning allocation (a buffer is its own base; views
        delegate to theirs)."""
        return self

    def access_box(self) -> tuple:
        """The ``((offset, extent), ...)`` region this endpoint touches
        within its base allocation — the whole buffer."""
        return tuple((0, int(e)) for e in self.extent)

    # -- geometry -------------------------------------------------------

    @property
    def dim(self) -> int:
        return self.extent.dim

    @property
    def pitch_bytes(self) -> int:
        return self.pitch_elems * self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        """Allocated size including row padding."""
        return self._nbytes

    @property
    def logical_nbytes(self) -> int:
        """Payload size excluding padding."""
        return self.extent.prod() * self.dtype.itemsize

    # -- access ----------------------------------------------------------

    def _logical(self) -> np.ndarray:
        if self._freed:
            raise MemorySpaceError("buffer used after free")
        if self.pitch_elems == self.extent[-1]:
            return self._padded
        return self._padded[..., : self.extent[-1]]

    def as_numpy(self) -> np.ndarray:
        """Host view of the buffer's logical contents.

        Only legal for buffers on host-accessible devices; the simulated
        GPU's memory must be copied to a host buffer first (explicit
        deep copies, paper Sec. 1.1 / 3.1).
        """
        if not self.dev.accessible_from_host:
            raise MemorySpaceError(
                f"host access to memory of {self.dev!r}; "
                "copy to a host buffer first (mem.copy)"
            )
        return self._logical()

    def kernel_array(self, device: Device) -> np.ndarray:
        """The array a kernel executing on ``device`` works on.

        Executors call this while unwrapping kernel arguments; it is the
        residency check of the offloading model.
        """
        device.require_resident(self)
        from .guard import guard

        return guard(self._logical())

    @property
    def is_shared(self) -> bool:
        """True when the buffer is backed by a named shared-memory
        segment (mappable zero-copy by process-pool workers)."""
        return self._shm is not None and not self._shm.released

    def shm_spec(self) -> Optional["ShmArraySpec"]:
        """The picklable segment descriptor a worker rebuilds this
        buffer's logical array from, or ``None`` for private backing."""
        if self._freed or self._shm is None or self._shm.released:
            return None
        return self._shm.spec(self.extent[-1] if self.dim else 0)

    def unsafe_backing(self) -> np.ndarray:
        """The padded backing array regardless of residency.

        Exists for the copy engine and for tests that need to inspect
        device memory without modeling a transfer; never use it in
        application code.
        """
        if self._freed:
            raise MemorySpaceError("buffer used after free")
        return self._padded

    # -- lifetime ---------------------------------------------------------

    def free(self) -> None:
        """Release the allocation (idempotent).  Further access raises.

        A shared-memory backing is closed *and unlinked* here — freeing
        the buffer removes its ``/dev/shm`` entry.
        """
        if not self._freed:
            self._freed = True
            self.dev.mem.release(self._nbytes)
            self._padded = np.empty(0, dtype=self.dtype)
            if self._shm is not None:
                self._shm.release()

    @property
    def freed(self) -> bool:
        return self._freed

    def __enter__(self) -> "Buffer":
        return self

    def __exit__(self, *exc) -> None:
        self.free()

    def __repr__(self) -> str:
        state = "freed" if self._freed else f"pitch={self.pitch_elems}"
        if self.is_shared:
            state += ", shm"
        return (
            f"<Buffer {self.dtype} {self.extent!r} on {self.dev.name}, {state}>"
        )

    # -- in/out of bounds helpers -----------------------------------------

    def check_extent_fits(self, extent: Vec, what: str) -> None:
        if extent.dim != self.dim:
            raise ExtentError(
                f"{what}: extent dim {extent.dim} != buffer dim {self.dim}"
            )
        if not extent.elementwise_le(self.extent):
            raise ExtentError(
                f"{what}: extent {extent!r} exceeds buffer extent {self.extent!r}"
            )


def alloc(
    dev: Device,
    extent: Union[int, Sequence[int], Vec],
    dtype=np.float64,
    *,
    pitched: bool = True,
    shm: Optional[bool] = None,
) -> Buffer:
    """Allocate a buffer on ``dev`` (paper Listing 4's
    ``mem::buf::alloc<Data, Size>(dev, extents)``).

    ``pitched`` pads rows of >=2-d buffers to
    :data:`~repro.mem.alignment.OPTIMAL_ALIGNMENT_BYTES`.

    ``shm=True`` backs the buffer with a named shared-memory segment so
    the process-pool block scheduler can map it into workers zero-copy
    (:mod:`repro.mem.shm`); ``None`` defers to ``REPRO_SHM_BUFFERS``.
    Kernels and host code see no difference — residency, pitch and the
    negative-index guard behave identically.
    """
    return Buffer(dev, as_vec(extent), dtype, pitched, shm=shm)


def alloc_like(dev: Device, other: Buffer) -> Buffer:
    """Allocate a buffer with the extent/dtype of ``other`` on ``dev`` —
    the idiom for staging a device copy of a host buffer.  The
    shared-memory backing choice is inherited from ``other``."""
    return Buffer(dev, other.extent, other.dtype, pitched=True,
                  shm=other.is_shared)
