"""Explicit deep copies and memset between memory spaces.

``mem::view::copy(stream, devBuf, hostBuf, extents)`` (paper Listing 4)
is the *only* way data crosses a memory-space boundary — there is no
implicit migration anywhere in the library.  Copies are *tasks*: they
are enqueued into a queue and execute in stream order.

Host numpy arrays are accepted as copy endpoints and treated as memory
of the host device, which is how applications stage initial data.
Cross-space copies advance the simulated clock of the GPU device by a
modeled PCIe transfer time (the paper excludes transfers from its
timings; benches that follow the paper call ``reset_sim_time`` after
staging).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..core.errors import ExtentError, MemorySpaceError
from ..core.vec import Vec, as_vec
from ..runtime.instrument import notify_copy
from ..telemetry.spans import span
from .buf import Buffer
from .view import ViewSubView

__all__ = ["copy", "memset", "TaskCopy", "TaskMemset", "PCIE_BANDWIDTH_GBS"]

#: Modeled host<->device interconnect bandwidth (PCIe 3.0 x16 effective).
PCIE_BANDWIDTH_GBS = 8.0

_Endpoint = Union[Buffer, ViewSubView, np.ndarray]


def _endpoint_extent(ep: _Endpoint) -> Vec:
    if isinstance(ep, (Buffer, ViewSubView)):
        return ep.extent
    return Vec.from_iterable(ep.shape)


def _endpoint_dtype(ep: _Endpoint):
    return ep.dtype


def _endpoint_array(ep: _Endpoint) -> np.ndarray:
    """Backing array of a copy endpoint.

    The copy engine is the privileged component that may touch any
    memory space — it *is* the DMA engine.
    """
    if isinstance(ep, ViewSubView):
        return ep.unsafe_backing()
    if isinstance(ep, Buffer):
        logical = ep.unsafe_backing()
        if ep.pitch_elems != ep.extent[-1]:
            logical = logical[..., : ep.extent[-1]]
        return logical
    return ep


def _endpoint_device(ep: _Endpoint):
    return ep.dev if isinstance(ep, (Buffer, ViewSubView)) else None


def _box(extent: Vec) -> tuple:
    return tuple(slice(0, e) for e in extent)


@dataclass(frozen=True)
class TaskCopy:
    """An enqueued deep copy of ``extent`` elements from ``src`` to
    ``dst`` (leading corner to leading corner)."""

    dst: _Endpoint
    src: _Endpoint
    extent: Vec

    def execute(self, device) -> None:
        with span("mem.copy", cat="mem", device=device):
            dst_arr = _endpoint_array(self.dst)
            src_arr = _endpoint_array(self.src)
            box = _box(self.extent)
            dst_arr[box] = src_arr[box]
            self._advance_sim_clocks()
            notify_copy(self, device)

    def _advance_sim_clocks(self) -> None:
        nbytes = self.extent.prod() * np.dtype(_endpoint_dtype(self.src)).itemsize
        d_dst, d_src = _endpoint_device(self.dst), _endpoint_device(self.src)
        spaces = {
            d.accessible_from_host for d in (d_dst, d_src) if d is not None
        }
        crosses = (None in (d_dst, d_src) and False in spaces) or spaces == {
            True,
            False,
        }
        if not crosses:
            return
        seconds = nbytes / (PCIE_BANDWIDTH_GBS * 1e9)
        for d in (d_dst, d_src):
            if d is not None and not d.accessible_from_host:
                d.advance_sim_time(seconds)

    def __repr__(self) -> str:
        return f"TaskCopy(extent={self.extent!r})"


@dataclass(frozen=True)
class TaskMemset:
    """Fill ``extent`` elements of ``dst`` with a scalar."""

    dst: Buffer
    value: float
    extent: Vec

    def execute(self, device) -> None:
        with span("mem.memset", cat="mem", device=device):
            arr = _endpoint_array(self.dst)
            arr[_box(self.extent)] = self.value
            notify_copy(self, device)


def _validate(dst: _Endpoint, src: _Endpoint, extent: Optional[Vec]) -> Vec:
    de, se = _endpoint_extent(dst), _endpoint_extent(src)
    if de.dim != se.dim:
        raise ExtentError(f"copy endpoints disagree in dim: {de.dim} vs {se.dim}")
    ext = as_vec(extent, de.dim) if extent is not None else de.min(se)
    for name, ep_ext in (("dst", de), ("src", se)):
        if not ext.elementwise_le(ep_ext):
            raise ExtentError(
                f"copy extent {ext!r} exceeds {name} extent {ep_ext!r}"
            )
    ddt, sdt = np.dtype(_endpoint_dtype(dst)), np.dtype(_endpoint_dtype(src))
    if ddt != sdt:
        raise ExtentError(f"copy dtype mismatch: dst {ddt} vs src {sdt}")
    if not isinstance(dst, (Buffer, ViewSubView)) and not isinstance(
        src, (Buffer, ViewSubView)
    ):
        raise MemorySpaceError(
            "at least one copy endpoint must be a Buffer or view; use "
            "numpy directly for host-to-host array copies"
        )
    return ext


def copy(
    queue,
    dst: _Endpoint,
    src: _Endpoint,
    extent: Union[int, tuple, Vec, None] = None,
) -> TaskCopy:
    """Enqueue a deep copy (paper Listing 4 line 14).

    ``extent`` defaults to the overlap of both endpoints' extents.
    Returns the task (useful for re-enqueuing in tests).
    """
    ext = _validate(dst, src, as_vec(extent) if extent is not None else None)
    task = TaskCopy(dst=dst, src=src, extent=ext)
    queue.enqueue(task)
    return task


def memset(
    queue,
    dst: Buffer,
    value: float,
    extent: Union[int, tuple, Vec, None] = None,
) -> TaskMemset:
    """Enqueue a scalar fill of ``dst``."""
    ext = as_vec(extent, dst.dim) if extent is not None else dst.extent
    dst.check_extent_fits(ext, "memset")
    task = TaskMemset(dst=dst, value=value, extent=ext)
    queue.enqueue(task)
    return task
