"""The batching coalescer: merge compatible small launches.

Admitted launch requests park here for up to ``batch_window`` seconds.
Requests whose workload reports the same batch key (same kernel, same
scalars, same dtype — and, via the router, the same back-end) coalesce
into one :class:`Batch`, launched as a single merged grid with
per-request result slicing.  A batch flushes when its window expires or
it reaches ``batch_max`` members; graph requests and unbatchable
workloads pass through as singleton batches immediately.

The batcher is pure bookkeeping — no threads, no clocks of its own.
The gateway pump drives it with explicit timestamps, which keeps the
flush logic deterministic and directly testable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .types import GraphRequest
from .workloads import get_workload

__all__ = ["Batch", "Batcher"]


class Batch:
    """One unit of device work: 1..batch_max requests sharing a key."""

    __slots__ = ("key", "requests", "workload", "deadline", "backend")

    def __init__(self, key, workload, backend: str, deadline: float):
        self.key = key
        self.workload = workload
        self.backend = backend
        self.deadline = deadline
        self.requests: List = []

    @property
    def size(self) -> int:
        return len(self.requests)

    def __repr__(self) -> str:
        return (
            f"<Batch {self.workload.name} x{self.size} "
            f"backend={self.backend or 'auto'}>"
        )


class Batcher:
    """Window-based coalescing of admitted requests."""

    def __init__(self, window: float, batch_max: int, enabled: bool = True):
        self.window = float(window)
        self.batch_max = int(batch_max)
        self.enabled = bool(enabled)
        #: Open batches by (batch_key, backend).
        self._open: Dict[Tuple, Batch] = {}
        #: Batches ready to launch (full, expired, or unbatchable).
        self._ready: List[Batch] = []

    # -- intake -----------------------------------------------------------

    def add(self, request, now: float) -> None:
        """Park ``request`` in an open batch or emit it as ready."""
        workload = get_workload(request.workload)
        key = None
        if self.enabled and not isinstance(request, GraphRequest):
            key = workload.batch_key(request)
        if key is None:
            batch = Batch(None, workload, request.backend, now)
            batch.requests.append(request)
            self._ready.append(batch)
            return
        slot = (key, request.backend)
        batch = self._open.get(slot)
        if batch is None:
            batch = Batch(key, workload, request.backend, now + self.window)
            self._open[slot] = batch
        batch.requests.append(request)
        if batch.size >= self.batch_max:
            del self._open[slot]
            self._ready.append(batch)

    # -- flush ------------------------------------------------------------

    def pop_ready(self, now: float) -> List[Batch]:
        """Every batch due at ``now``: full/unbatchable ones plus open
        batches whose window expired."""
        due = [s for s, b in self._open.items() if b.deadline <= now]
        for slot in due:
            self._ready.append(self._open.pop(slot))
        ready, self._ready = self._ready, []
        return ready

    def flush_all(self) -> List[Batch]:
        """Drain everything regardless of deadlines (shutdown path)."""
        self._ready.extend(self._open.values())
        self._open.clear()
        ready, self._ready = self._ready, []
        return ready

    def next_deadline(self) -> Optional[float]:
        """Earliest open-batch deadline, or ``None`` when nothing is
        parked — the pump's sleep bound."""
        if not self._open:
            return None
        return min(b.deadline for b in self._open.values())

    @property
    def parked(self) -> int:
        return sum(b.size for b in self._open.values()) + sum(
            b.size for b in self._ready
        )
