"""CLI entry point: ``python -m repro.serve``.

Flags override ``REPRO_SERVE_*`` environment variables, which override
the built-in defaults (see :mod:`repro.serve.config`).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib

from .config import config_from_env, parse_lanes, parse_tenant_weights
from .server import serve_forever


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Async kernel-launch gateway (TCP, JSON lines).",
    )
    parser.add_argument("--host", help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, help="TCP port (default 7411)")
    parser.add_argument(
        "--batch-window",
        type=float,
        help="coalescing window in seconds (default 0.002)",
    )
    parser.add_argument(
        "--batch-max", type=int, help="max requests per merged batch"
    )
    parser.add_argument(
        "--no-batching",
        action="store_true",
        help="disable coalescing; every request launches alone",
    )
    parser.add_argument(
        "--queue-bound",
        type=int,
        help="per-tenant queue depth before RetryAfter",
    )
    parser.add_argument(
        "--inflight", type=int, help="per-tenant in-flight request cap"
    )
    parser.add_argument(
        "--weights",
        help='tenant weights, e.g. "gold:4,free:1" (default weight 1)',
    )
    parser.add_argument(
        "--lanes",
        help='device lanes, e.g. "AccCpuSerial:0,AccCpuOmp2Blocks:0"',
    )
    parser.add_argument(
        "--online-tuning",
        action="store_true",
        help="re-tune drifted workloads in the background "
        "(REPRO_TUNING_DRIFT_* set the thresholds)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    overrides = {}
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    if args.batch_window is not None:
        overrides["batch_window"] = args.batch_window
    if args.batch_max is not None:
        overrides["batch_max"] = args.batch_max
    if args.no_batching:
        overrides["enable_batching"] = False
    if args.queue_bound is not None:
        overrides["queue_bound"] = args.queue_bound
    if args.inflight is not None:
        overrides["tenant_inflight"] = args.inflight
    if args.weights is not None:
        overrides["tenant_weights"] = parse_tenant_weights(args.weights)
    if args.lanes is not None:
        overrides["lanes"] = parse_lanes(args.lanes)
    if args.online_tuning:
        overrides["online_tuning"] = True
    config = config_from_env().with_overrides(**overrides)
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(serve_forever(config))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
