"""Online tuning for the serving gateway.

:class:`OnlineTuner` closes the loop the tuning paper leaves open: the
division tuned offline may stop being right while the service runs (a
noisy neighbour, a shifted request-size mix, a changed machine model).
The gateway feeds every completed request's **service latency** (time
since admission — queueing excluded, so fair-share backlog cannot
masquerade as kernel drift) into a fleet
:class:`~repro.tuning.fleet.DriftMonitor`; when a workload drifts, the
monitor calls back here, and the tuner re-runs that workload's
:meth:`~repro.serve.workloads.Workload.retune` probe on a background
thread at the **most recently observed problem size** on the lane that
served it.

The hot-swap itself is not this module's code: the forced re-tune bumps
the tuning generation, the plan cache keys AUTO plans on it, and the
next plan resolution serves the new division.  Requests in flight keep
their already-resolved plan — results stay bit-identical because only
the work division changes, never the arithmetic.

Enable with ``REPRO_SERVE_ONLINE_TUNING=1`` (or
``Gateway(online_tuning=True)``); drift thresholds and budgets come
from the ``REPRO_TUNING_DRIFT_*`` family.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from ..tuning.fleet.config import FleetConfig, fleet_config_from_env
from ..tuning.fleet.drift import DriftMonitor
from .workloads import get_workload

__all__ = ["OnlineTuner"]

#: Arrays whose size is "the problem size" for drift re-tuning, probed
#: in order (axpy/scale carry ``x``; gemm carries ``A``).
_SIZE_ARRAYS = ("x", "A", "plate")


class OnlineTuner:
    """Per-gateway drift watcher + background re-tuner."""

    def __init__(self, config: Optional[FleetConfig] = None):
        self.config = config or fleet_config_from_env()
        self.monitor = DriftMonitor(self._retune, self.config)
        # workload -> (problem size, acc_type, device) of the latest
        # completed request; what a re-tune re-measures.
        self._targets: Dict[str, Tuple[int, object, object]] = {}
        self._lock = threading.Lock()
        self._retunes = 0

    # -- gateway-facing ------------------------------------------------

    def observe(self, request, service: float, lane) -> None:
        """Feed one completed request (gateway completion callback)."""
        size = self._problem_size(request)
        if size is not None:
            with self._lock:
                self._targets[request.workload] = (
                    size, lane.acc_type, lane.device
                )
        self.monitor.observe(request.workload, service)

    def stats(self) -> dict:
        with self._lock:
            retunes = self._retunes
        return {"retunes": retunes, "workloads": self.monitor.snapshot()}

    def wait_idle(self, timeout: float = 10.0) -> bool:
        return self.monitor.wait_idle(timeout)

    def close(self) -> None:
        self.monitor.close()

    # -- internals -----------------------------------------------------

    @staticmethod
    def _problem_size(request) -> Optional[int]:
        for name in _SIZE_ARRAYS:
            arr = request.arrays.get(name)
            if arr is not None:
                return int(arr.size)
        return None

    def _retune(self, workload: str) -> None:
        """DriftMonitor callback — runs on the monitor's background
        thread, never on a request path."""
        with self._lock:
            target = self._targets.get(workload)
        if target is None:
            return
        size, acc_type, device = target
        if get_workload(workload).retune(
            acc_type, device, size, self.config.drift_budget
        ):
            with self._lock:
                self._retunes += 1
