"""Online tuning for the serving gateway.

:class:`OnlineTuner` closes the loop the tuning paper leaves open: the
division tuned offline may stop being right while the service runs (a
noisy neighbour, a shifted request-size mix, a changed machine model).
The gateway feeds every completed request's **service latency** (time
since admission — queueing excluded, so fair-share backlog cannot
masquerade as kernel drift) into a fleet
:class:`~repro.tuning.fleet.DriftMonitor`; when a workload drifts, the
monitor calls back here, and the tuner re-runs that workload's
:meth:`~repro.serve.workloads.Workload.retune` probe on a background
thread at the **most recently observed problem size** on the lane that
served it.

The hot-swap itself is not this module's code: the forced re-tune bumps
the tuning generation, the plan cache keys AUTO plans on it, and the
next plan resolution serves the new division.  Requests in flight keep
their already-resolved plan — results stay bit-identical because only
the work division changes, never the arithmetic.

Enable with ``REPRO_SERVE_ONLINE_TUNING=1`` (or
``Gateway(online_tuning=True)``); drift thresholds and budgets come
from the ``REPRO_TUNING_DRIFT_*`` family.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

from ..telemetry import flight, tracing
from ..telemetry.spans import record_span
from ..tuning.fleet.config import FleetConfig, fleet_config_from_env
from ..tuning.fleet.drift import DriftMonitor
from ..tuning.fleet.metrics import record_retune_outcome
from .workloads import get_workload

__all__ = ["OnlineTuner"]

#: Arrays whose size is "the problem size" for drift re-tuning, probed
#: in order (axpy/scale carry ``x``; gemm carries ``A``).
_SIZE_ARRAYS = ("x", "A", "plate")


class OnlineTuner:
    """Per-gateway drift watcher + background re-tuner."""

    def __init__(self, config: Optional[FleetConfig] = None):
        self.config = config or fleet_config_from_env()
        self.monitor = DriftMonitor(self._retune, self.config)
        # workload -> (problem size, acc_type, device, trace) of the
        # latest completed request; what a re-tune re-measures — and
        # the trace a triggered re-tune becomes a child span of.
        self._targets: Dict[str, Tuple[int, object, object, object]] = {}
        self._lock = threading.Lock()
        self._retunes = 0

    # -- gateway-facing ------------------------------------------------

    def observe(self, request, service: float, lane) -> None:
        """Feed one completed request (gateway completion callback)."""
        size = self._problem_size(request)
        if size is not None:
            with self._lock:
                self._targets[request.workload] = (
                    size,
                    lane.acc_type,
                    lane.device,
                    getattr(request, "trace", None),
                )
        self.monitor.observe(request.workload, service)

    def stats(self) -> dict:
        with self._lock:
            retunes = self._retunes
        return {"retunes": retunes, "workloads": self.monitor.snapshot()}

    def wait_idle(self, timeout: float = 10.0) -> bool:
        return self.monitor.wait_idle(timeout)

    def close(self) -> None:
        self.monitor.close()

    # -- internals -----------------------------------------------------

    @staticmethod
    def _problem_size(request) -> Optional[int]:
        for name in _SIZE_ARRAYS:
            arr = request.arrays.get(name)
            if arr is not None:
                return int(arr.size)
        return None

    def _retune(self, workload: str) -> None:
        """DriftMonitor callback — runs on the monitor's background
        thread, never on a request path.

        The re-tune executes under a *child* of the triggering
        request's trace context, so in the stitched distributed trace
        the background re-tune (and the fleet lease/publish traffic it
        causes) hangs off the gateway request that tipped the drift
        detector.  Outcomes land in
        ``repro_tuning_drift_retunes_total``:

        * ``no_target`` — drift fired before any completed request left
          a measurable problem size;
        * ``completed`` — fresh division measured and adopted;
        * ``reverted`` — the fresh measurement predicts no improvement
          over the superseded entry (the hot-swap is a no-op);
        * a raised re-tune propagates (the monitor records ``failed``).
        """
        record_retune_outcome(workload, "triggered")
        with self._lock:
            target = self._targets.get(workload)
        if target is None:
            record_retune_outcome(workload, "no_target")
            return
        size, acc_type, device, trace = target
        ctx = trace.child() if trace is not None else None
        flight.maybe_record(
            "drift_retune",
            workload=workload,
            size=size,
            **(ctx.ids() if ctx is not None else {}),
        )
        t0 = time.perf_counter()
        with tracing.use(ctx):
            outcome = get_workload(workload).retune(
                acc_type, device, size, self.config.drift_budget
            )
        if outcome:
            info = outcome if isinstance(outcome, dict) else {}
            old = info.get("old_seconds")
            new = info.get("new_seconds")
            reverted = (
                old is not None and new is not None and new >= old
            )
            record_retune_outcome(
                workload,
                "reverted" if reverted else "completed",
                old_seconds=old,
                new_seconds=new,
            )
            record_span(
                "drift.retune",
                t0,
                time.perf_counter(),
                cat="tuning",
                trace=ctx,
                workload=workload,
                size=size,
                old_seconds=old,
                new_seconds=new,
            )
            with self._lock:
                self._retunes += 1
