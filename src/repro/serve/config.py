"""Gateway configuration and its ``REPRO_SERVE_*`` environment surface.

Every knob of the serving gateway is settable three ways, in priority
order: explicit :class:`ServeConfig` field < environment variable <
keyword override.  The environment names mirror the rest of the
project's ``REPRO_*`` family so an operator configures the whole stack
in one place::

    REPRO_SERVE_PORT=7411 REPRO_SERVE_BATCH_WINDOW=0.002 \
        REPRO_SERVE_TENANT_WEIGHTS=gold:4,free:1 python -m repro.serve
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..core.errors import ServeError

__all__ = [
    "ServeConfig",
    "ServeConfigError",
    "config_from_env",
    "parse_tenant_weights",
    "parse_lanes",
    "HOST_ENV",
    "PORT_ENV",
    "BATCH_WINDOW_ENV",
    "BATCH_MAX_ENV",
    "QUEUE_BOUND_ENV",
    "INFLIGHT_ENV",
    "TENANT_WEIGHTS_ENV",
    "LANES_ENV",
    "ONLINE_TUNING_ENV",
    "DEFAULT_BACKEND",
]

HOST_ENV = "REPRO_SERVE_HOST"
PORT_ENV = "REPRO_SERVE_PORT"
BATCH_WINDOW_ENV = "REPRO_SERVE_BATCH_WINDOW"
BATCH_MAX_ENV = "REPRO_SERVE_BATCH_MAX"
QUEUE_BOUND_ENV = "REPRO_SERVE_QUEUE_BOUND"
INFLIGHT_ENV = "REPRO_SERVE_INFLIGHT"
TENANT_WEIGHTS_ENV = "REPRO_SERVE_TENANT_WEIGHTS"
LANES_ENV = "REPRO_SERVE_LANES"
ONLINE_TUNING_ENV = "REPRO_SERVE_ONLINE_TUNING"

#: Back-end a request (and the default lane set) falls back to when it
#: does not name one.  Serial keeps the smallest per-launch footprint,
#: which is what a gateway multiplexing many tiny launches wants.
DEFAULT_BACKEND = "AccCpuSerial"


class ServeConfigError(ServeError, ValueError):
    """A gateway configuration value is malformed."""


def parse_tenant_weights(spec: str) -> Dict[str, float]:
    """``"gold:4,free:1"`` → ``{"gold": 4.0, "free": 1.0}``.

    Weights are relative fair-share ratios; unknown tenants default to
    weight 1.0 at admission time, so the map only needs the exceptions.
    """
    weights: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition(":")
        if not sep or not name.strip():
            raise ServeConfigError(
                f"tenant weight entry {part!r} is not 'name:weight'"
            )
        try:
            w = float(value)
        except ValueError:
            raise ServeConfigError(
                f"tenant weight for {name.strip()!r} is not a number: {value!r}"
            ) from None
        if w <= 0:
            raise ServeConfigError(
                f"tenant weight for {name.strip()!r} must be positive, got {w}"
            )
        weights[name.strip()] = w
    return weights


def parse_lanes(spec: str) -> List[Tuple[str, int]]:
    """``"AccCpuSerial:0,AccGpuCudaSim:1"`` → ``[(backend, device_idx)...]``.

    A bare back-end name means device 0.
    """
    lanes: List[Tuple[str, int]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, idx = part.partition(":")
        if not name:
            raise ServeConfigError(f"lane entry {part!r} has no back-end name")
        if sep and idx:
            try:
                lanes.append((name, int(idx)))
            except ValueError:
                raise ServeConfigError(
                    f"lane device index for {name!r} is not an integer: {idx!r}"
                ) from None
        else:
            lanes.append((name, 0))
    return lanes


@dataclass(frozen=True)
class ServeConfig:
    """Everything the gateway needs to know, in one immutable record."""

    #: TCP bind address of ``python -m repro.serve`` (in-process
    #: gateways ignore it).
    host: str = "127.0.0.1"
    port: int = 7411

    #: Batching coalescer window in seconds: a compatible launch that
    #: arrives within this window of the first member joins its batch.
    #: ``0`` keeps admission order but still merges whatever is ready at
    #: the same pump step; batching is disabled with ``enable_batching``.
    batch_window: float = 0.002
    #: Hard cap on requests merged into one batched grid.
    batch_max: int = 64
    enable_batching: bool = True

    #: Per-tenant admission queue bound — beyond it the gateway pushes
    #: back with :class:`~repro.serve.types.RetryAfter` instead of
    #: buffering unboundedly.
    queue_bound: int = 256
    #: Per-tenant in-flight cap (requests admitted to a device lane but
    #: not yet completed).  Stops one tenant occupying every lane.
    tenant_inflight: int = 8
    #: Fair-share weights (deficit round-robin quanta) by tenant name;
    #: tenants not listed weigh 1.0.
    tenant_weights: Dict[str, float] = field(default_factory=dict)

    #: Device lanes as ``(backend_name, device_idx)`` pairs.  Empty
    #: means: every device of :data:`DEFAULT_BACKEND`'s platform.
    lanes: Tuple[Tuple[str, int], ...] = ()

    #: Pump idle tick in seconds (upper bound on added latency when no
    #: batch deadline is pending).
    pump_tick: float = 0.001

    #: Seconds a graceful shutdown waits for in-flight work to drain
    #: before abandoning (and failing) the stragglers.
    drain_timeout: float = 30.0

    #: Feed completed-request latencies into a
    #: :class:`repro.tuning.fleet.DriftMonitor` and re-tune drifted
    #: workloads in the background (``REPRO_SERVE_ONLINE_TUNING=1``;
    #: drift thresholds come from ``REPRO_TUNING_DRIFT_*``).
    online_tuning: bool = False

    def __post_init__(self):
        if self.port < 0 or self.port > 65535:
            raise ServeConfigError(f"port out of range: {self.port}")
        if self.batch_window < 0:
            raise ServeConfigError(
                f"batch_window must be >= 0, got {self.batch_window}"
            )
        if self.batch_max < 1:
            raise ServeConfigError(
                f"batch_max must be >= 1, got {self.batch_max}"
            )
        if self.queue_bound < 1:
            raise ServeConfigError(
                f"queue_bound must be >= 1, got {self.queue_bound}"
            )
        if self.tenant_inflight < 1:
            raise ServeConfigError(
                f"tenant_inflight must be >= 1, got {self.tenant_inflight}"
            )
        for name, w in self.tenant_weights.items():
            if w <= 0:
                raise ServeConfigError(
                    f"tenant weight for {name!r} must be positive, got {w}"
                )

    def weight_of(self, tenant: str) -> float:
        return self.tenant_weights.get(tenant, 1.0)

    def with_overrides(self, **kwargs) -> "ServeConfig":
        try:
            return replace(self, **kwargs)
        except TypeError as exc:
            raise ServeConfigError(str(exc)) from None


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        raise ServeConfigError(f"{name} is not a number: {raw!r}") from None


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw)
    except ValueError:
        raise ServeConfigError(f"{name} is not an integer: {raw!r}") from None


def _env_bool(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    value = raw.strip().lower()
    if value in ("1", "yes", "true", "on"):
        return True
    if value in ("0", "no", "false", "off"):
        return False
    raise ServeConfigError(f"{name} is not a boolean: {raw!r}")


def config_from_env(base: Optional[ServeConfig] = None) -> ServeConfig:
    """A :class:`ServeConfig` with every ``REPRO_SERVE_*`` variable
    applied on top of ``base`` (default-constructed when omitted)."""
    cfg = base or ServeConfig()
    weights = cfg.tenant_weights
    raw_weights = os.environ.get(TENANT_WEIGHTS_ENV)
    if raw_weights is not None and raw_weights.strip():
        weights = parse_tenant_weights(raw_weights)
    lanes = cfg.lanes
    raw_lanes = os.environ.get(LANES_ENV)
    if raw_lanes is not None and raw_lanes.strip():
        lanes = tuple(parse_lanes(raw_lanes))
    return cfg.with_overrides(
        host=os.environ.get(HOST_ENV, cfg.host),
        port=_env_int(PORT_ENV, cfg.port),
        batch_window=_env_float(BATCH_WINDOW_ENV, cfg.batch_window),
        batch_max=_env_int(BATCH_MAX_ENV, cfg.batch_max),
        queue_bound=_env_int(QUEUE_BOUND_ENV, cfg.queue_bound),
        tenant_inflight=_env_int(INFLIGHT_ENV, cfg.tenant_inflight),
        tenant_weights=weights,
        lanes=lanes,
        online_tuning=_env_bool(ONLINE_TUNING_ENV, cfg.online_tuning),
    )
