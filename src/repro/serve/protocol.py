"""Wire protocol for ``python -m repro.serve``: JSON lines over TCP.

Every message is one JSON object terminated by ``\\n``.  Arrays travel
as base64 of their C-contiguous bytes plus dtype and shape — crude but
dependency-free and loss-free (the bytes are the bytes; bit-identity
with in-process launches survives the wire).

Client → server::

    {"op": "launch", "id": 7, "workload": "axpy", "tenant": "alice",
     "backend": "", "params": {"alpha": 2.0},
     "trace": "00-<32 hex>-<16 hex>-01",
     "arrays": {"x": {"dtype": "float64", "shape": [1024],
                      "data": "<base64>"}, ...}}

``trace`` is an optional W3C ``traceparent``
(:mod:`repro.telemetry.tracing`): the server parses it into the
request's trace context, so the gateway's spans — and everything they
cascade into, kernel launches and pool-worker chunks included — join
the caller's distributed trace.  Responses echo the request's trace
ids back.
    {"op": "graph", ...}            # same fields, graph admission
    {"op": "stats", "id": 8}
    {"op": "ping", "id": 9}

Server → client::

    {"id": 7, "ok": true, "arrays": {...}, "latency": 0.0031,
     "batch_size": 8, "lane": "AccCpuSerial/0"}
    {"id": 7, "ok": false, "error": "RetryAfter", "message": "...",
     "retry_after": 0.25}
    {"id": 8, "ok": true, "stats": {...}}

``id`` is a client-chosen correlation token echoed verbatim; responses
may arrive out of submission order (that is the point of the gateway).
"""

from __future__ import annotations

import base64
import json
from typing import Any, Dict

import numpy as np

from ..core.errors import ServeError

__all__ = [
    "encode_array",
    "decode_array",
    "encode_arrays",
    "decode_arrays",
    "encode_message",
    "decode_message",
    "result_payload",
    "error_payload",
    "MAX_LINE_BYTES",
]

#: Upper bound on one protocol line; a 64 MiB line is a client bug, not
#: a workload.
MAX_LINE_BYTES = 64 * 1024 * 1024


def encode_array(arr: np.ndarray) -> Dict[str, Any]:
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_array(payload: Dict[str, Any]) -> np.ndarray:
    try:
        dtype = np.dtype(payload["dtype"])
        shape = tuple(int(s) for s in payload["shape"])
        raw = base64.b64decode(payload["data"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError(f"malformed array payload: {exc}") from exc
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if len(raw) != expected:
        raise ServeError(
            f"array payload size mismatch: got {len(raw)} bytes, "
            f"shape {shape} of {dtype} needs {expected}"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def encode_arrays(arrays: Dict[str, np.ndarray]) -> Dict[str, Any]:
    return {name: encode_array(arr) for name, arr in arrays.items()}


def decode_arrays(payload: Dict[str, Any]) -> Dict[str, np.ndarray]:
    if not isinstance(payload, dict):
        raise ServeError("'arrays' must be an object of named arrays")
    return {name: decode_array(spec) for name, spec in payload.items()}


def encode_message(message: Dict[str, Any]) -> bytes:
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    if len(line) > MAX_LINE_BYTES:
        raise ServeError(f"protocol line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServeError(f"malformed JSON line: {exc}") from exc
    if not isinstance(message, dict):
        raise ServeError("protocol message must be a JSON object")
    return message


def result_payload(msg_id, result, trace=None) -> Dict[str, Any]:
    """Wire form of a :class:`~repro.serve.types.ServeResult`;
    ``trace`` (a :class:`~repro.telemetry.tracing.TraceContext`) echoes
    the request's trace ids back to the caller."""
    payload = {
        "id": msg_id,
        "ok": True,
        "arrays": encode_arrays(result.arrays),
        "latency": result.latency,
        "batch_size": result.batch_size,
        "lane": result.lane,
    }
    if trace is not None:
        payload["trace"] = trace.to_traceparent()
    return payload


def error_payload(msg_id, exc: BaseException, trace=None) -> Dict[str, Any]:
    """Wire form of a failure; RetryAfter carries its delay hint."""
    payload = {
        "id": msg_id,
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
    }
    delay = getattr(exc, "delay", None)
    if delay is not None:
        payload["retry_after"] = delay
    if trace is not None:
        payload["trace"] = trace.to_traceparent()
    return payload
