"""Multi-tenant fair-share admission: weighted deficit round-robin.

The gateway's front door.  Each tenant owns a bounded FIFO; the pump
drains them with **deficit round-robin** (Shreedhar & Varghese): every
round a tenant's deficit grows by ``quantum * weight``, and it may
release one queued request per unit of deficit.  Over any window the
released share converges to the weight ratio regardless of how fast any
single tenant submits — a flooding tenant fills its own queue and gets
:class:`~repro.serve.types.RetryAfter`, it cannot starve the others.

Two more brakes sit behind the queues:

* a **per-tenant in-flight cap** — a tenant at its cap is skipped by
  the round-robin until a completion frees a slot, so one tenant cannot
  occupy every device lane even with a deep queue;
* **backpressure at offer time** — a full tenant queue raises
  :class:`RetryAfter` with a delay derived from the tenant's observed
  service rate (clients back off instead of the gateway buffering).

The scheduler is synchronous and thread-safe; the asyncio layers wrap
it without needing any event-loop affinity.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

from .config import ServeConfig
from .types import RetryAfter

__all__ = ["FairShareAdmission", "TenantState"]

#: Deficit added per round per unit weight.  1.0 = "one request per
#: round per weight unit"; only the *ratio* between tenants matters.
QUANTUM = 1.0

#: RetryAfter delay clamp (seconds).
MIN_RETRY_DELAY = 0.001
MAX_RETRY_DELAY = 5.0

#: Fallback per-request service estimate before any completion has been
#: observed for a tenant.
DEFAULT_SERVICE_SECONDS = 0.002


class TenantState:
    """One tenant's queue, deficit counter and live accounting."""

    __slots__ = (
        "name", "weight", "queue", "deficit", "inflight",
        "admitted", "rejected", "completed", "failed",
        "service_ewma",
    )

    def __init__(self, name: str, weight: float):
        self.name = name
        self.weight = weight
        self.queue: deque = deque()
        self.deficit = 0.0
        self.inflight = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        #: Exponentially weighted per-request service time (seconds),
        #: feeding the RetryAfter estimate.
        self.service_ewma = DEFAULT_SERVICE_SECONDS

    def observe_service(self, seconds: float) -> None:
        self.service_ewma += 0.2 * (max(0.0, seconds) - self.service_ewma)

    def retry_delay(self) -> float:
        # Time to drain the backlog at the observed service rate,
        # discounted by fair-share weight, clamped to a sane range.
        est = len(self.queue) * self.service_ewma / max(self.weight, 1e-9)
        return min(MAX_RETRY_DELAY, max(MIN_RETRY_DELAY, est))


class FairShareAdmission:
    """Weighted-DRR admission over per-tenant bounded queues."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantState] = {}
        #: Round-robin order; rebuilt when a tenant first appears.
        self._order: List[str] = []
        self._cursor = 0
        #: True once the tenant under the cursor received this visit's
        #: deficit top-up (a visit spans several next_ready calls when a
        #: weighted tenant releases a burst).
        self._visit_topped = False
        self._closed = False
        #: Signalled whenever work may have become releasable (an offer
        #: or a completion freeing an in-flight slot).
        self.ready = threading.Event()

    # -- tenant bookkeeping ----------------------------------------------

    def _tenant(self, name: str) -> TenantState:
        st = self._tenants.get(name)
        if st is None:
            st = TenantState(name, self.config.weight_of(name))
            self._tenants[name] = st
            self._order.append(name)
        return st

    def tenants(self) -> List[TenantState]:
        with self._lock:
            return list(self._tenants.values())

    def depth(self, tenant: str) -> int:
        with self._lock:
            st = self._tenants.get(tenant)
            return len(st.queue) if st else 0

    def queued(self) -> int:
        with self._lock:
            return sum(len(st.queue) for st in self._tenants.values())

    def inflight(self) -> int:
        with self._lock:
            return sum(st.inflight for st in self._tenants.values())

    # -- offer (client side) ----------------------------------------------

    def offer(self, request) -> None:
        """Queue ``request`` for its tenant or raise :class:`RetryAfter`.

        Never blocks: backpressure is the caller's problem by design
        (bounded memory at the gateway, the client owns the retry).
        """
        from .metrics import record_admission

        with self._lock:
            if self._closed:
                from .types import GatewayClosed

                raise GatewayClosed("gateway is shutting down")
            st = self._tenant(request.tenant)
            if len(st.queue) >= self.config.queue_bound:
                st.rejected += 1
                delay = st.retry_delay()
                record_admission(request.tenant, "rejected", len(st.queue))
                raise RetryAfter(request.tenant, delay, len(st.queue))
            request.submitted_at = time.perf_counter()
            st.queue.append(request)
            st.admitted += 1
            depth = len(st.queue)
        record_admission(request.tenant, "queued", depth)
        self.ready.set()

    # -- release (pump side) ----------------------------------------------

    def next_ready(self):
        """The next request under weighted DRR, or ``None``.

        ``None`` means: every queue is empty, or every tenant with
        queued work is at its in-flight cap.
        """
        with self._lock:
            n = len(self._order)
            if n == 0:
                return None
            # A tenant's deficit tops up once per *visit* (cursor
            # arrival); it then releases one request per unit of
            # deficit before the cursor moves on — the burst size is
            # what realises the weight ratio.  Fractional weights
            # accumulate credit across visits.  Bound: enough visits
            # for the smallest practical weight to accumulate a unit.
            for _ in range(8 * n + 1):
                if self._cursor >= n:
                    self._cursor = 0
                name = self._order[self._cursor]
                st = self._tenants[name]
                if not st.queue or st.inflight >= self.config.tenant_inflight:
                    # DRR rule: a flow with nothing releasable keeps no
                    # credit — an idle tenant must not burst later.
                    st.deficit = 0.0
                    self._advance(n)
                    continue
                if not self._visit_topped:
                    st.deficit += QUANTUM * st.weight
                    self._visit_topped = True
                if st.deficit >= 1.0:
                    st.deficit -= 1.0
                    req = st.queue.popleft()
                    st.inflight += 1
                    req.admitted_at = time.perf_counter()
                    # Cursor stays: the visit continues until the
                    # deficit is spent or the queue empties.
                    return req
                self._advance(n)
            return None

    def _advance(self, n: int) -> None:
        self._cursor = (self._cursor + 1) % max(1, n)
        self._visit_topped = False

    def task_finished(self, tenant: str, seconds: float, ok: bool) -> None:
        """A released request completed; frees the in-flight slot."""
        with self._lock:
            st = self._tenants.get(tenant)
            if st is None:
                return
            st.inflight = max(0, st.inflight - 1)
            if ok:
                st.completed += 1
            else:
                st.failed += 1
            st.observe_service(seconds)
        self.ready.set()

    # -- shutdown ---------------------------------------------------------

    def close(self, drain: bool = True) -> List:
        """Reject new offers.

        ``drain=True`` (graceful): already-queued requests stay and keep
        being released — the caller waits for them to finish.
        ``drain=False`` (abort): queues are emptied and the stranded
        requests returned so the gateway can fail them explicitly.
        """
        with self._lock:
            self._closed = True
            stranded: List = []
            if not drain:
                for st in self._tenants.values():
                    stranded.extend(st.queue)
                    st.queue.clear()
        self.ready.set()
        return stranded

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def stats(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {
                st.name: {
                    "weight": st.weight,
                    "queued": len(st.queue),
                    "inflight": st.inflight,
                    "admitted": st.admitted,
                    "rejected": st.rejected,
                    "completed": st.completed,
                    "failed": st.failed,
                    "service_ewma": st.service_ewma,
                }
                for st in self._tenants.values()
            }
