"""repro.serve: async kernel-launch gateway over the repro runtime.

The serving layer turns the library's synchronous ``launch()`` world
into a multi-tenant service:

* :class:`Gateway` — the in-process engine: weighted fair-share
  admission, window-based batching of compatible small launches, and
  sharding across device lanes, with graceful draining shutdown.
* :class:`ServeHandle` — the awaitable per-request handle (sync
  ``result()`` and ``await handle`` both work).
* ``python -m repro.serve`` — a TCP/JSON-lines server exposing the
  gateway to remote clients; :class:`ServeClient` is the matching
  asyncio client.
* Workloads are named server-side recipes (:func:`register_workload`)
  so clients ship arrays and parameters, never code.

Quick start::

    from repro.serve import Gateway

    with Gateway(batch_window=0.002) as gw:
        h = gw.launch("axpy", params={"alpha": 2.0},
                      arrays={"x": x, "y": y}, tenant="alice")
        result = h.result()          # or: await h.async_result()
        y_out = result.arrays["y"]
"""

from .admission import FairShareAdmission, TenantState
from .batcher import Batch, Batcher
from .config import (
    DEFAULT_BACKEND,
    ServeConfig,
    ServeConfigError,
    config_from_env,
    parse_lanes,
    parse_tenant_weights,
)
from .gateway import Gateway
from .router import DeviceLane, ShardRouter
from .types import (
    DEFAULT_TENANT,
    GatewayClosed,
    GraphRequest,
    LaunchRequest,
    RetryAfter,
    ServeHandle,
    ServeResult,
)
from .workloads import (
    Workload,
    get_workload,
    register_workload,
    workload_names,
)

__all__ = [
    "Gateway",
    "ServeConfig",
    "ServeConfigError",
    "config_from_env",
    "parse_tenant_weights",
    "parse_lanes",
    "DEFAULT_BACKEND",
    "DEFAULT_TENANT",
    "LaunchRequest",
    "GraphRequest",
    "ServeHandle",
    "ServeResult",
    "RetryAfter",
    "GatewayClosed",
    "FairShareAdmission",
    "TenantState",
    "Batch",
    "Batcher",
    "DeviceLane",
    "ShardRouter",
    "Workload",
    "register_workload",
    "get_workload",
    "workload_names",
    "OnlineTuner",
]


def __getattr__(name):
    # The network layer imports lazily: plain in-process Gateway use
    # must not pull asyncio/server modules in.
    if name == "ServeClient":
        from .client import ServeClient

        return ServeClient
    if name == "OnlineTuner":
        # Lazy: pulls the tuning fleet in only when online tuning is used.
        from .online import OnlineTuner

        return OnlineTuner
    if name in ("serve_forever", "ServeServer"):
        from . import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
