"""Request, result and handle types the gateway trades in.

A client submits a :class:`LaunchRequest` (one named-workload kernel
launch) or a :class:`GraphRequest` (a named multi-node dataflow graph —
graphs are a first-class unit of admission: the whole graph is admitted,
scheduled and completed as one request).  Both come back as a
:class:`ServeHandle`, a future the caller can block on synchronously
(``handle.result()``) or await from asyncio code
(``await handle.async_result()``).

Backpressure is an exception, not a queue: when a tenant's admission
queue is full the gateway raises :class:`RetryAfter` *at submit time*
with a suggested delay, instead of buffering unboundedly.  The TCP
protocol maps it to a ``retry_after`` response; the bundled client
retries with backoff.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..core.errors import ServeError

__all__ = [
    "LaunchRequest",
    "GraphRequest",
    "ServeResult",
    "ServeHandle",
    "RetryAfter",
    "GatewayClosed",
    "DEFAULT_TENANT",
]

#: Tenant requests fall under when they do not name one.
DEFAULT_TENANT = "default"

_request_ids = itertools.count(1)
_id_lock = threading.Lock()


def _next_request_id() -> int:
    with _id_lock:
        return next(_request_ids)


class RetryAfter(ServeError):
    """Admission backpressure: the tenant's queue is full.

    ``delay`` is the gateway's estimate (seconds) of when capacity will
    be available — derived from the queue depth and the tenant's recent
    service rate, clamped to a sane range.
    """

    def __init__(self, tenant: str, delay: float, depth: int):
        self.tenant = tenant
        self.delay = float(delay)
        self.depth = int(depth)
        super().__init__(
            f"tenant {tenant!r} admission queue full "
            f"({depth} queued); retry after {self.delay:.3f}s"
        )


class GatewayClosed(ServeError):
    """Submit after shutdown began: new admissions are rejected while
    in-flight work drains."""


@dataclass
class LaunchRequest:
    """One kernel launch, described by workload name + payload.

    ``workload`` names a server-side :class:`~repro.serve.workloads.Workload`
    (``"axpy"``, ``"scale"``, ``"gemm"``, ...); ``params`` are its scalar
    arguments, ``arrays`` its input arrays.  ``backend`` pins a back-end
    (empty string = the gateway default); requests for different
    back-ends never share a batch.
    """

    workload: str
    tenant: str = DEFAULT_TENANT
    backend: str = ""
    params: Dict[str, Any] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Filled at admission: monotonic timestamps for the latency report.
    request_id: int = field(default_factory=_next_request_id)
    submitted_at: float = 0.0
    admitted_at: float = 0.0
    #: Distributed-tracing identity
    #: (:class:`repro.telemetry.tracing.TraceContext`): set by the TCP
    #: server from the wire's ``trace`` field, or captured from the
    #: ambient context at submit; None = untraced.
    trace: Optional[Any] = None

    kind = "launch"

    def __post_init__(self):
        if not self.workload:
            raise ServeError("LaunchRequest needs a workload name")
        self.arrays = {
            k: np.asarray(v) for k, v in self.arrays.items()
        }


@dataclass
class GraphRequest:
    """A whole dataflow graph as one unit of admission.

    ``workload`` names a registered graph builder (``"heat_equation"``);
    the gateway records the graph against the lane's device at execution
    time and submits it through :class:`repro.graph.Graph` — node
    dependencies, copy/compute overlap and replay caching all apply.
    Graphs never join launch batches.
    """

    workload: str
    tenant: str = DEFAULT_TENANT
    backend: str = ""
    params: Dict[str, Any] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    request_id: int = field(default_factory=_next_request_id)
    submitted_at: float = 0.0
    admitted_at: float = 0.0
    #: See :attr:`LaunchRequest.trace`.
    trace: Optional[Any] = None

    kind = "graph"

    def __post_init__(self):
        if not self.workload:
            raise ServeError("GraphRequest needs a workload name")
        self.arrays = {
            k: np.asarray(v) for k, v in self.arrays.items()
        }


@dataclass(frozen=True)
class ServeResult:
    """What a completed request resolves to."""

    request_id: int
    tenant: str
    workload: str
    #: Output arrays by name (already sliced back to this request's
    #: extent when the launch was batched).
    arrays: Dict[str, np.ndarray]
    #: Wall seconds from submit to completion.
    latency: float
    #: Size of the merged launch this request rode in (1 = unbatched).
    batch_size: int = 1
    #: Lane that executed it, as ``"backend/device_idx"``.
    lane: str = ""


class ServeHandle:
    """Awaitable completion handle for one admitted request.

    Wraps a :class:`concurrent.futures.Future` so the same handle works
    from threads (``result(timeout)``) and from asyncio
    (``await handle.async_result()`` or ``await handle`` directly).
    """

    __slots__ = ("request", "future")

    def __init__(self, request):
        self.request = request
        self.future: Future = Future()

    # -- completion (gateway side) ---------------------------------------

    def _resolve(self, result: ServeResult) -> None:
        if not self.future.done():
            self.future.set_result(result)

    def _fail(self, exc: BaseException) -> None:
        if not self.future.done():
            self.future.set_exception(exc)

    # -- consumption (client side) ---------------------------------------

    def result(self, timeout: Optional[float] = None) -> ServeResult:
        return self.future.result(timeout)

    def done(self) -> bool:
        return self.future.done()

    async def async_result(self) -> ServeResult:
        return await asyncio.wrap_future(self.future)

    def __await__(self):
        return self.async_result().__await__()

    def __repr__(self) -> str:
        state = "done" if self.future.done() else "pending"
        return (
            f"<ServeHandle #{self.request.request_id} "
            f"{self.request.workload} ({state})>"
        )
