"""Async client for ``python -m repro.serve``.

:class:`ServeClient` multiplexes any number of concurrent requests over
one TCP connection: a background reader task routes each response line
to the matching awaiter by correlation id.  :class:`RetryAfter`
backpressure from the server is honoured transparently by
:meth:`launch`/:meth:`submit_graph` (sleep for the server's hint, then
resubmit) up to ``max_retries``; pass ``max_retries=0`` to surface
:class:`RetryAfter` to the caller instead.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, Optional

import numpy as np

from ..core.errors import ServeError
from .protocol import (
    MAX_LINE_BYTES,
    decode_arrays,
    decode_message,
    encode_arrays,
    encode_message,
)
from .types import DEFAULT_TENANT, GatewayClosed, RetryAfter, ServeResult

__all__ = ["ServeClient"]

#: Default cap on transparent RetryAfter resubmissions.
DEFAULT_MAX_RETRIES = 50


class ServeClient:
    """JSON-lines gateway client.  Use as ``async with ServeClient(...)``."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7411,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ):
        self.host = host
        self.port = port
        self.max_retries = max_retries
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._waiters: Dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._write_lock: Optional[asyncio.Lock] = None
        self._closed = False

    # -- connection -------------------------------------------------------

    async def connect(self) -> "ServeClient":
        # Match the protocol frame bound — the asyncio default stream
        # limit (64 KiB) would reject large array responses.
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES
        )
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    async def close(self) -> None:
        self._closed = True
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        self._fail_waiters(GatewayClosed("client connection closed"))

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- reader -----------------------------------------------------------

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                message = decode_message(line)
                waiter = self._waiters.pop(message.get("id"), None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(message)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail_waiters(exc)
            return
        self._fail_waiters(GatewayClosed("server closed the connection"))

    def _fail_waiters(self, exc: BaseException) -> None:
        waiters, self._waiters = self._waiters, {}
        for waiter in waiters.values():
            if not waiter.done():
                waiter.set_exception(exc)

    # -- request plumbing -------------------------------------------------

    async def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self._writer is None or self._closed:
            raise GatewayClosed("client is not connected")
        msg_id = next(self._ids)
        message["id"] = msg_id
        waiter = asyncio.get_running_loop().create_future()
        self._waiters[msg_id] = waiter
        try:
            async with self._write_lock:
                self._writer.write(encode_message(message))
                await self._writer.drain()
            return await waiter
        finally:
            self._waiters.pop(msg_id, None)

    @staticmethod
    def _raise_remote(response: Dict[str, Any]) -> None:
        name = response.get("error", "ServeError")
        msg = response.get("message", "remote failure")
        if name == "RetryAfter":
            raise RetryAfter(
                tenant="",
                delay=float(response.get("retry_after", 0.05)),
                depth=0,
            )
        if name == "GatewayClosed":
            raise GatewayClosed(msg)
        raise ServeError(f"{name}: {msg}")

    async def _submit(self, op: str, workload, tenant, backend, params, arrays):
        message = {
            "op": op,
            "workload": workload,
            "tenant": tenant,
            "backend": backend,
            "params": params or {},
            "arrays": encode_arrays(
                {k: np.asarray(v) for k, v in (arrays or {}).items()}
            ),
        }
        # Distributed tracing: propagate the caller's ambient context
        # (or the REPRO_TRACEPARENT seed) so the server-side request
        # joins this trace.  Untraced callers add nothing to the frame.
        from ..telemetry import tracing

        ctx = tracing.current() or tracing.from_env()
        if ctx is not None:
            message["trace"] = ctx.child().to_traceparent()
        retries = 0
        while True:
            response = await self._roundtrip(dict(message))
            if response.get("ok"):
                return ServeResult(
                    request_id=response.get("id", -1),
                    tenant=tenant,
                    workload=workload,
                    arrays=decode_arrays(response.get("arrays") or {}),
                    latency=float(response.get("latency", 0.0)),
                    batch_size=int(response.get("batch_size", 1)),
                    lane=response.get("lane", ""),
                )
            try:
                self._raise_remote(response)
            except RetryAfter as exc:
                if retries >= self.max_retries:
                    raise
                retries += 1
                await asyncio.sleep(exc.delay)

    # -- public API -------------------------------------------------------

    async def launch(
        self,
        workload: str,
        *,
        tenant: str = DEFAULT_TENANT,
        backend: str = "",
        params: Optional[dict] = None,
        arrays: Optional[dict] = None,
    ) -> ServeResult:
        """Submit one kernel launch; resolves when the result arrives."""
        return await self._submit("launch", workload, tenant, backend, params, arrays)

    async def submit_graph(
        self,
        workload: str,
        *,
        tenant: str = DEFAULT_TENANT,
        backend: str = "",
        params: Optional[dict] = None,
        arrays: Optional[dict] = None,
    ) -> ServeResult:
        """Submit one dataflow graph as a single unit of admission."""
        return await self._submit("graph", workload, tenant, backend, params, arrays)

    async def stats(self) -> Dict[str, Any]:
        response = await self._roundtrip({"op": "stats"})
        if not response.get("ok"):
            self._raise_remote(response)
        return response["stats"]

    async def ping(self) -> bool:
        response = await self._roundtrip({"op": "ping"})
        return bool(response.get("pong"))
