"""Device sharding: spread admitted batches across device lanes.

A **lane** is one (back-end, device) pair wearing a non-blocking
:class:`~repro.queue.queue.QueueNonBlocking` — the same in-order queue
primitive every other part of the library uses.  The router enqueues a
batch's execution closure on the least-loaded compatible lane and
chains the completion bookkeeping with ``Queue.enqueue_callback``, so
result delivery rides the queue's ordering guarantees instead of a
bespoke thread handoff.  Graphs submitted through a lane use the graph
executor's own ``enqueue_after`` event gating internally — the router
treats them as opaque units.

Execution failures resolve the affected requests' futures with the
error and never propagate into the lane's drain thread (a poisoned lane
would wedge every later tenant — see the enqueue_callback robustness
contract in :mod:`repro.queue.queue`).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from ..acc.registry import accelerator
from ..core.errors import ServeError
from ..dev.manager import get_dev_by_idx, get_dev_count
from ..queue.queue import QueueNonBlocking
from ..telemetry import tracing
from .batcher import Batch
from .config import DEFAULT_BACKEND, ServeConfig
from .metrics import record_batch, record_inflight

__all__ = ["DeviceLane", "ShardRouter"]


class DeviceLane:
    """One (back-end, device) execution lane with its own queue."""

    def __init__(self, backend: str, device_idx: int):
        self.backend = backend
        self.device_idx = device_idx
        self.acc_type = accelerator(backend)
        self.device = get_dev_by_idx(self.acc_type, device_idx)
        self.queue = QueueNonBlocking(self.device)
        self._lock = threading.Lock()
        self._inflight = 0
        self.launched_batches = 0
        self.launched_requests = 0

    @property
    def label(self) -> str:
        return f"{self.backend}/{self.device_idx}"

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def _note_start(self, n: int) -> None:
        with self._lock:
            self._inflight += n
        record_inflight(self.label, n)

    def _note_done(self, n: int) -> None:
        with self._lock:
            self._inflight -= n
            self.launched_batches += 1
            self.launched_requests += n
        record_inflight(self.label, -n)

    def drain(self) -> None:
        self.queue.wait()

    def close(self) -> None:
        self.queue.destroy()

    def __repr__(self) -> str:
        return f"<DeviceLane {self.label} inflight={self.inflight}>"


class ShardRouter:
    """Least-loaded dispatch of batches over the configured lanes."""

    def __init__(self, config: ServeConfig):
        lanes = config.lanes
        if not lanes:
            acc = accelerator(DEFAULT_BACKEND)
            lanes = tuple(
                (DEFAULT_BACKEND, i) for i in range(get_dev_count(acc))
            )
        self.lanes: List[DeviceLane] = [
            DeviceLane(backend, idx) for backend, idx in lanes
        ]
        if not self.lanes:
            raise ServeError("router needs at least one device lane")
        self._by_backend: Dict[str, List[DeviceLane]] = {}
        for lane in self.lanes:
            self._by_backend.setdefault(lane.backend, []).append(lane)

    # -- placement --------------------------------------------------------

    def _candidates(self, backend: str) -> List[DeviceLane]:
        if not backend:
            return self.lanes
        lanes = self._by_backend.get(backend)
        if not lanes:
            raise ServeError(
                f"no lane serves back-end {backend!r}; configured: "
                f"{sorted(self._by_backend)}"
            )
        return lanes

    def pick_lane(self, backend: str) -> DeviceLane:
        """The least-loaded lane compatible with ``backend`` (empty
        string = any)."""
        lanes = self._candidates(backend)
        return min(lanes, key=lambda lane: lane.inflight)

    # -- dispatch ---------------------------------------------------------

    def submit(
        self,
        batch: Batch,
        on_request_done: Callable,
    ) -> DeviceLane:
        """Enqueue ``batch`` on a lane; completion (or failure) of each
        member request is reported through ``on_request_done(request,
        result_dict_or_None, error_or_None, lane, batch_size)``.

        The closure runs in the lane queue's worker; errors are caught
        there and delivered per request, so one failing batch neither
        poisons the lane nor starves sibling tenants.
        """
        lane = self.pick_lane(batch.backend)
        requests = list(batch.requests)
        workload = batch.workload
        lane._note_start(len(requests))

        state: Dict[str, Optional[object]] = {"outputs": None, "error": None}
        # The merged launch executes under the batch leader's trace
        # context (a coalesced batch is one launch; its kernel spans
        # parent to the request that opened the batch).
        trace = getattr(requests[0], "trace", None)

        def _run() -> None:
            try:
                with tracing.use(trace):
                    state["outputs"] = workload.execute(
                        requests, lane.acc_type, lane.device
                    )
            except BaseException as exc:  # delivered per request below
                state["error"] = exc

        def _complete() -> None:
            outputs, error = state["outputs"], state["error"]
            record_batch(len(requests), lane.label)
            lane._note_done(len(requests))
            if error is None and (
                outputs is None or len(outputs) != len(requests)
            ):
                error = ServeError(
                    f"workload {workload.name!r} returned "
                    f"{0 if outputs is None else len(outputs)} results "
                    f"for {len(requests)} requests"
                )
            for i, req in enumerate(requests):
                out = outputs[i] if error is None else None
                on_request_done(req, out, error, lane, len(requests))

        lane.queue.enqueue(_run)
        lane.queue.enqueue_callback(_complete)
        return lane

    # -- lifecycle --------------------------------------------------------

    def inflight(self) -> int:
        return sum(lane.inflight for lane in self.lanes)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every lane to go idle; returns False on timeout."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        for lane in self.lanes:
            if deadline is not None and time.perf_counter() > deadline:
                return False
            lane.drain()
        return all(lane.inflight == 0 for lane in self.lanes)

    def close(self) -> None:
        for lane in self.lanes:
            lane.close()

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {
            lane.label: {
                "inflight": lane.inflight,
                "batches": lane.launched_batches,
                "requests": lane.launched_requests,
            }
            for lane in self.lanes
        }
