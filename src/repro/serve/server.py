"""asyncio TCP front-end for the gateway.

One :class:`ServeServer` wraps one :class:`~repro.serve.gateway.Gateway`
and speaks the JSON-lines protocol of :mod:`repro.serve.protocol`.
Each client connection is an independent reader task; responses are
written as the underlying handles resolve, so a connection can have any
number of requests in flight and receives completions out of order.

The gateway core is thread-based (``concurrent.futures.Future``); the
server bridges with :func:`asyncio.wrap_future`, keeping the event loop
free while kernels run on device-lane threads.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Optional

from .config import ServeConfig, config_from_env
from .gateway import Gateway
from .protocol import (
    MAX_LINE_BYTES,
    decode_arrays,
    decode_message,
    encode_message,
    error_payload,
    result_payload,
)
from .types import DEFAULT_TENANT, GraphRequest, LaunchRequest

__all__ = ["ServeServer", "serve_forever"]


class ServeServer:
    """TCP server bound to a gateway; ``async with`` manages both."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        gateway: Optional[Gateway] = None,
        **overrides,
    ):
        if config is None:
            config = config_from_env()
        if overrides:
            config = config.with_overrides(**overrides)
        self.config = config
        self.gateway = gateway if gateway is not None else Gateway(config)
        self._owns_gateway = gateway is None
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers = set()

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        # The stream limit must match the protocol's frame bound — the
        # asyncio default (64 KiB) would sever any connection sending a
        # modestly sized array payload.
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def stop(self, drain: bool = True) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        if self._owns_gateway:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, lambda: self.gateway.shutdown(drain=drain)
            )

    async def __aenter__(self) -> "ServeServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- per-connection ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        pending = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                except ValueError:
                    # Line exceeds the stream limit: the framing is
                    # unrecoverable, so drop the connection rather than
                    # crash the callback.
                    break
                if not line:
                    break
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, write_lock)
                )
                pending.add(task)
                task.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    async def _handle_line(self, line: bytes, writer, write_lock) -> None:
        msg_id = None
        try:
            message = decode_message(line)
            msg_id = message.get("id")
            response = await self._dispatch(message)
        except BaseException as exc:  # every failure becomes a reply
            response = error_payload(msg_id, exc)
        async with write_lock:
            try:
                writer.write(encode_message(response))
                await writer.drain()
            except (ConnectionResetError, RuntimeError):
                pass  # client went away; the work already ran

    async def _dispatch(self, message: dict) -> dict:
        op = message.get("op")
        msg_id = message.get("id")
        if op == "ping":
            return {"id": msg_id, "ok": True, "pong": True}
        if op == "stats":
            return {"id": msg_id, "ok": True, "stats": self.gateway.stats()}
        if op in ("launch", "graph"):
            from ..telemetry import tracing

            cls = LaunchRequest if op == "launch" else GraphRequest
            request = cls(
                workload=message.get("workload", ""),
                tenant=message.get("tenant", DEFAULT_TENANT),
                backend=message.get("backend", ""),
                params=message.get("params") or {},
                arrays=decode_arrays(message.get("arrays") or {}),
                # A malformed traceparent degrades to untraced — the
                # gateway then applies its own capture rules.
                trace=tracing.from_traceparent(message.get("trace")),
            )
            handle = self.gateway.submit(request)
            result = await asyncio.wrap_future(handle.future)
            return result_payload(msg_id, result, trace=request.trace)
        from ..core.errors import ServeError

        raise ServeError(f"unknown op {op!r}")


async def serve_forever(config: Optional[ServeConfig] = None, **overrides):
    """Run the server until cancelled (the ``__main__`` entry point)."""
    server = ServeServer(config, **overrides)
    await server.start()
    print(
        f"repro.serve listening on {server.config.host}:{server.port} "
        f"(lanes: {[l.label for l in server.gateway.router.lanes]})",
        flush=True,
    )
    try:
        await asyncio.Event().wait()
    finally:
        await server.stop()
