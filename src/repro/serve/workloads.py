"""Named server-side workloads: what a gateway request can run.

A remote client cannot ship arbitrary Python callables, so the gateway
executes **registered workloads** — named adapters that validate a
request's payload, build the kernel task (or dataflow graph) against
the executing lane's device, and slice batched results back per
request.  The built-ins cover the serving benchmark's traffic mix:

* ``axpy``  — ``y <- alpha*x + y``; batches by concatenation;
* ``scale`` — ``out <- factor*x``; batches by concatenation;
* ``gemm``  — ``C <- alpha*A@B + beta*C``; batches by stacking into a
  ``(batch, n, n)`` grid run by
  :class:`~repro.kernels.batched.BatchedGemmKernel`;
* ``heat_equation`` — a ``steps``-deep Jacobi pipeline recorded and
  submitted as one :class:`repro.graph.Graph` (graphs are a unit of
  admission, never merged into launch batches).

**Bit-identity contract**: every batchable workload merges so that the
per-request arithmetic is exactly the solo path's — elementwise kernels
by construction, GEMM by fixed row-chunk shapes — so a client cannot
tell (bitwise) whether its launch was coalesced.

Register custom workloads with :func:`register_workload`; the protocol
layer exposes whatever the registry holds.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import ServeError
from ..core.kernel import create_task_kernel
from ..core.vec import Vec
from ..core.workdiv import WorkDivMembers, divide_work
from ..kernels import (
    DEFAULT_ROWS_PER_CHUNK,
    AxpyElementsKernel,
    BatchedGemmKernel,
    Jacobi2DKernel,
    ScaleKernel,
)
from ..queue.queue import QueueBlocking

__all__ = [
    "Workload",
    "AxpyWorkload",
    "ScaleWorkload",
    "GemmWorkload",
    "HeatEquationWorkload",
    "register_workload",
    "get_workload",
    "workload_names",
]


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ServeError(msg)


def _array(req, name: str, ndim: int) -> np.ndarray:
    arr = req.arrays.get(name)
    _require(arr is not None, f"{req.workload}: missing array {name!r}")
    _require(
        arr.ndim == ndim,
        f"{req.workload}: array {name!r} must be {ndim}-d, got {arr.ndim}-d",
    )
    return arr


class Workload:
    """Adapter protocol between wire requests and the runtime."""

    #: Registry key and the ``workload`` field requests use.
    name: str = ""
    #: ``"launch"`` workloads may batch; ``"graph"`` workloads are
    #: admitted whole.
    kind: str = "launch"

    def validate(self, req) -> None:
        """Raise :class:`ServeError` when the payload is malformed.
        Runs at submit time, before admission — a bad request must not
        consume fair-share credit."""
        raise NotImplementedError

    def batch_key(self, req) -> Optional[Tuple]:
        """Requests with equal keys may merge into one launch; ``None``
        means this request never batches.  The gateway adds the lane
        back-end to the key — kernels never batch across back-ends."""
        return None

    def execute(self, requests: List, acc_type, device) -> List[Dict[str, np.ndarray]]:
        """Run ``requests`` (length 1 = solo) merged on ``device``;
        returns one output-array dict per request, in order."""
        raise NotImplementedError

    def retune(self, acc_type, device, n: int, budget: int) -> bool:
        """Re-measure this workload's kernel at problem size ``n`` with
        at most ``budget`` measurements, replacing the cached division
        (the online :class:`~repro.tuning.fleet.DriftMonitor` calls this
        off the hot path).  Returns False when the workload has nothing
        tunable — the default."""
        return False


# ---------------------------------------------------------------------------
# Elementwise family: batch by concatenation
# ---------------------------------------------------------------------------


def _stage(queue, device, host: np.ndarray):
    from .. import mem

    buf = mem.alloc(device, host.shape, dtype=host.dtype, pitched=False)
    mem.copy(queue, buf, np.ascontiguousarray(host))
    return buf


def _fetch(queue, buf, shape, dtype) -> np.ndarray:
    from .. import mem

    out = np.empty(shape, dtype=dtype)
    mem.copy(queue, out, buf)
    return out


def _elementwise_workdiv(
    acc_type, device, n: int, kernel=None
) -> WorkDivMembers:
    """Division for an n-element elementwise launch: the *tuned* one
    when the tuning cache knows this (kernel, back-end, device,
    extent-bucket), else the same Table 2 heuristic as before.  Routing
    through :func:`auto_divide` is what lets a background re-tune
    hot-swap serving launches — the next plan resolution after a
    tuning-generation bump picks the new winner up."""
    from ..tuning import auto_divide

    props = acc_type.get_acc_dev_props(device)
    if kernel is None:
        return divide_work(
            n, props, acc_type.mapping_strategy, thread_elems=min(n, 256)
        )
    return auto_divide(
        n,
        props,
        kernel=kernel,
        acc_type=acc_type,
        device=device,
        thread_elems=min(n, 256),
    )


def _retune_elementwise(kernel, make_args, acc_type, device, n: int, budget: int):
    """Budgeted forced re-tune of one elementwise kernel at size ``n``.

    ``make_args(buf)`` builds the kernel argument tuple around a staged
    n-element buffer.  The fresh measurement overwrites the cache entry
    and bumps the tuning generation, so in-flight plans finish on the
    old division and the next plan resolution serves the new one.

    Returns a truthy dict with the superseded entry's predicted seconds
    (``old_seconds``, None on a cold cache) and the fresh winner's
    (``new_seconds``) — what the drift metrics report as the re-tune's
    old-vs-new outcome.
    """
    from .. import mem
    from ..mem import memset
    from ..tuning import autotune, default_cache

    queue = QueueBlocking(device)
    a = mem.alloc(device, n, pitched=False)
    b = mem.alloc(device, n, pitched=False)
    memset(queue, a, 0)
    memset(queue, b, 0)
    old = default_cache().get(kernel, acc_type, device, n)
    try:
        result = autotune(
            kernel,
            acc_type,
            n,
            make_args(n, a, b),
            device=device,
            strategy="coordinate",
            budget=budget,
            force=True,
        )
    finally:
        a.free()
        b.free()
    return {
        "old_seconds": old.seconds if old is not None else None,
        "new_seconds": result.seconds,
    }


class AxpyWorkload(Workload):
    """``y <- alpha * x + y`` (params: ``alpha``; arrays: ``x``, ``y``)."""

    name = "axpy"

    def validate(self, req) -> None:
        x = _array(req, "x", 1)
        y = _array(req, "y", 1)
        _require(x.shape == y.shape, "axpy: x and y extents differ")
        _require(x.size > 0, "axpy: empty extent")
        _require(x.dtype == y.dtype, "axpy: x and y dtypes differ")
        float(req.params.get("alpha", 1.0))

    def batch_key(self, req) -> Tuple:
        return (
            "axpy",
            float(req.params.get("alpha", 1.0)),
            str(req.arrays["x"].dtype),
        )

    def execute(self, requests, acc_type, device):
        alpha = float(requests[0].params.get("alpha", 1.0))
        xs = [r.arrays["x"] for r in requests]
        ys = [r.arrays["y"] for r in requests]
        x_host = np.concatenate(xs) if len(xs) > 1 else xs[0]
        y_host = np.concatenate(ys) if len(ys) > 1 else ys[0]
        n = x_host.size
        queue = QueueBlocking(device)
        x = _stage(queue, device, x_host)
        y = _stage(queue, device, y_host)
        try:
            kernel = AxpyElementsKernel()
            task = create_task_kernel(
                acc_type,
                _elementwise_workdiv(acc_type, device, n, kernel),
                kernel, n, alpha, x, y,
            )
            queue.enqueue(task)
            merged = _fetch(queue, y, y_host.shape, y_host.dtype)
        finally:
            x.free()
            y.free()
        out, offset = [], 0
        for r in requests:
            size = r.arrays["y"].size
            out.append({"y": merged[offset : offset + size].copy()})
            offset += size
        return out

    def retune(self, acc_type, device, n: int, budget: int) -> bool:
        return _retune_elementwise(
            AxpyElementsKernel(),
            lambda n_, x, y: (n_, 1.0, x, y),
            acc_type, device, n, budget,
        )


class ScaleWorkload(Workload):
    """``out <- factor * x`` (params: ``factor``; arrays: ``x``)."""

    name = "scale"

    def validate(self, req) -> None:
        x = _array(req, "x", 1)
        _require(x.size > 0, "scale: empty extent")
        float(req.params.get("factor", 1.0))

    def batch_key(self, req) -> Tuple:
        return (
            "scale",
            float(req.params.get("factor", 1.0)),
            str(req.arrays["x"].dtype),
        )

    def execute(self, requests, acc_type, device):
        factor = float(requests[0].params.get("factor", 1.0))
        xs = [r.arrays["x"] for r in requests]
        x_host = np.concatenate(xs) if len(xs) > 1 else xs[0]
        n = x_host.size
        queue = QueueBlocking(device)
        x = _stage(queue, device, x_host)
        result = _stage(queue, device, np.zeros_like(x_host))
        try:
            kernel = ScaleKernel()
            task = create_task_kernel(
                acc_type,
                _elementwise_workdiv(acc_type, device, n, kernel),
                kernel, n, factor, x, result,
            )
            queue.enqueue(task)
            merged = _fetch(queue, result, x_host.shape, x_host.dtype)
        finally:
            x.free()
            result.free()
        out, offset = [], 0
        for r in requests:
            size = r.arrays["x"].size
            out.append({"out": merged[offset : offset + size].copy()})
            offset += size
        return out

    def retune(self, acc_type, device, n: int, budget: int) -> bool:
        return _retune_elementwise(
            ScaleKernel(),
            lambda n_, x, out: (n_, 1.0, x, out),
            acc_type, device, n, budget,
        )


# ---------------------------------------------------------------------------
# GEMM: batch by stacking
# ---------------------------------------------------------------------------


class GemmWorkload(Workload):
    """``C <- alpha*A@B + beta*C`` on square matrices.

    Params: ``alpha`` (default 1), ``beta`` (default 0); arrays: ``A``,
    ``B`` and optionally ``C`` (defaults to zeros).  Compatible requests
    (same ``n``, scalars and dtype) stack into one
    :class:`BatchedGemmKernel` grid; the fixed
    :data:`DEFAULT_ROWS_PER_CHUNK` chunking keeps solo and batched
    results bit-identical.
    """

    name = "gemm"

    def validate(self, req) -> None:
        A = _array(req, "A", 2)
        B = _array(req, "B", 2)
        _require(
            A.shape == B.shape and A.shape[0] == A.shape[1],
            f"gemm: A and B must be equal square matrices, got "
            f"{A.shape} and {B.shape}",
        )
        C = req.arrays.get("C")
        if C is not None:
            _require(C.shape == A.shape, "gemm: C extent differs from A")
        float(req.params.get("alpha", 1.0))
        float(req.params.get("beta", 0.0))

    def batch_key(self, req) -> Tuple:
        return (
            "gemm",
            req.arrays["A"].shape[0],
            float(req.params.get("alpha", 1.0)),
            float(req.params.get("beta", 0.0)),
            str(req.arrays["A"].dtype),
        )

    def execute(self, requests, acc_type, device):
        alpha = float(requests[0].params.get("alpha", 1.0))
        beta = float(requests[0].params.get("beta", 0.0))
        n = requests[0].arrays["A"].shape[0]
        batch = len(requests)
        A_host = np.ascontiguousarray(
            np.stack([r.arrays["A"] for r in requests])
        )
        B_host = np.ascontiguousarray(
            np.stack([r.arrays["B"] for r in requests])
        )
        C_host = np.ascontiguousarray(
            np.stack(
                [
                    r.arrays.get("C", np.zeros((n, n), dtype=A_host.dtype))
                    for r in requests
                ]
            )
        )
        queue = QueueBlocking(device)
        A = _stage(queue, device, A_host)
        B = _stage(queue, device, B_host)
        C = _stage(queue, device, C_host)
        try:
            chunks = batch * -(-n // DEFAULT_ROWS_PER_CHUNK)
            task = create_task_kernel(
                acc_type,
                WorkDivMembers.make(chunks, 1, 1),
                BatchedGemmKernel(),
                batch, n, DEFAULT_ROWS_PER_CHUNK, alpha, beta, A, B, C,
            )
            queue.enqueue(task)
            merged = _fetch(queue, C, C_host.shape, C_host.dtype)
        finally:
            A.free()
            B.free()
            C.free()
        return [{"C": merged[i].copy()} for i in range(batch)]


# ---------------------------------------------------------------------------
# Heat equation: a dataflow graph as the unit of admission
# ---------------------------------------------------------------------------


class HeatEquationWorkload(Workload):
    """``steps`` Jacobi sweeps over a 2-d plate, as one dataflow graph.

    Params: ``steps`` (default 10), ``c`` (default 0.2); arrays:
    ``plate`` (2-d).  Records staging copy, double-buffered sweeps and
    the gather copy into a :class:`repro.graph.Graph` and submits it —
    dependency inference, overlap and whole-graph replay caching all
    come from the graph layer for free.
    """

    name = "heat_equation"
    kind = "graph"

    def validate(self, req) -> None:
        plate = _array(req, "plate", 2)
        _require(
            plate.shape[0] >= 3 and plate.shape[1] >= 3,
            "heat_equation: plate must be at least 3x3",
        )
        steps = int(req.params.get("steps", 10))
        _require(steps >= 1, "heat_equation: steps must be >= 1")
        float(req.params.get("c", 0.2))

    def execute(self, requests, acc_type, device):
        from .. import mem
        from ..graph import Graph

        out = []
        for req in requests:
            plate = np.ascontiguousarray(
                req.arrays["plate"], dtype=np.float64
            )
            h, w = plate.shape
            steps = int(req.params.get("steps", 10))
            c = float(req.params.get("c", 0.2))

            src = mem.alloc(device, (h, w))
            dst = mem.alloc(device, (h, w))
            elems = Vec(min(h, 8), min(w, 16))
            blocks = Vec(h, w).ceil_div(elems)
            work_div = WorkDivMembers.make(blocks, Vec(1, 1), elems)
            kernel = Jacobi2DKernel()
            result = np.empty((h, w))
            try:
                g = Graph()
                g.copy(src, plate, label="stage")
                for step in range(steps):
                    g.launch(
                        acc_type, work_div, kernel, h, w, c, src, dst,
                        reads=[src], writes=[dst], label=f"sweep{step}",
                    )
                    src, dst = dst, src
                g.copy(result, src, label="gather")
                g.submit()
            finally:
                src.free()
                dst.free()
            out.append({"plate": result})
        return out


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_registry: Dict[str, Workload] = {}
_registry_lock = threading.Lock()


def register_workload(workload: Workload) -> Workload:
    """Add ``workload`` to the registry (name collisions raise)."""
    _require(bool(workload.name), "workload has no name")
    with _registry_lock:
        if workload.name in _registry:
            raise ServeError(
                f"workload {workload.name!r} is already registered"
            )
        _registry[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    with _registry_lock:
        wl = _registry.get(name)
    if wl is None:
        raise ServeError(
            f"unknown workload {name!r}; registered: {workload_names()}"
        )
    return wl


def workload_names() -> List[str]:
    with _registry_lock:
        return sorted(_registry)


for _wl in (
    AxpyWorkload(),
    ScaleWorkload(),
    GemmWorkload(),
    HeatEquationWorkload(),
):
    register_workload(_wl)
