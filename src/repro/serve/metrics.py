"""Per-tenant serving metrics, recorded into the telemetry registry.

The gateway reports through the same
:class:`repro.telemetry.metrics.MetricsRegistry` the runtime uses, so
one Prometheus scrape (or one telemetry report) covers both the kernel
runtime and the serving layer.  The label axes extend the canonical
``kernel x backend x device`` set with **tenant** — the dimension the
fair-share scheduler is accountable for.

Metric families:

* ``repro_serve_requests_total{tenant, outcome}`` — queued / rejected /
  completed / failed / cancelled admission outcomes;
* ``repro_serve_queue_depth{tenant}`` — current admission queue depth;
* ``repro_serve_inflight{lane}`` — requests executing per device lane;
* ``repro_serve_batch_size`` — merged-launch occupancy distribution;
* ``repro_serve_latency_seconds{tenant}`` — submit-to-result wall
  latency;
* ``repro_serve_retry_delay_seconds`` — backpressure delays suggested
  to clients.
"""

from __future__ import annotations

from typing import Optional

from ..telemetry.metrics import MetricsRegistry, registry

__all__ = [
    "record_admission",
    "record_completion",
    "record_batch",
    "record_inflight",
    "record_retry_delay",
    "serve_registry",
]

#: Batch occupancy buckets: 1..batch_max in powers of two.
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def serve_registry() -> MetricsRegistry:
    """The registry serve metrics land in (the process-wide one)."""
    return registry()


def record_admission(tenant: str, outcome: str, depth: Optional[int] = None) -> None:
    reg = registry()
    reg.counter(
        "repro_serve_requests_total",
        "Serving requests by admission outcome",
        tenant=tenant,
        outcome=outcome,
    ).inc()
    if depth is not None:
        reg.gauge(
            "repro_serve_queue_depth",
            "Admission queue depth per tenant",
            tenant=tenant,
        ).set(depth)


def record_completion(tenant: str, latency: float, ok: bool) -> None:
    reg = registry()
    reg.counter(
        "repro_serve_requests_total",
        "Serving requests by admission outcome",
        tenant=tenant,
        outcome="completed" if ok else "failed",
    ).inc()
    reg.histogram(
        "repro_serve_latency_seconds",
        "Submit-to-result latency per tenant",
        tenant=tenant,
    ).observe(latency)


def record_batch(size: int, lane: str) -> None:
    registry().histogram(
        "repro_serve_batch_size",
        "Requests merged per launched batch",
        buckets=BATCH_BUCKETS,
        lane=lane,
    ).observe(float(size))


def record_inflight(lane: str, delta: int) -> None:
    registry().gauge(
        "repro_serve_inflight",
        "Requests executing per device lane",
        lane=lane,
    ).inc(delta)


def record_retry_delay(delay: float) -> None:
    registry().histogram(
        "repro_serve_retry_delay_seconds",
        "Backpressure delays suggested to clients",
    ).observe(delay)
