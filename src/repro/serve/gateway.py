"""The gateway: admission → batching → device sharding, one object.

:class:`Gateway` is the in-process serving engine.  Clients (threads,
the asyncio TCP server, the benchmark's simulated fleet) call
:meth:`submit` and get a :class:`~repro.serve.types.ServeHandle` back;
a single **pump** thread drives the pipeline::

    submit() ──> FairShareAdmission ──> Batcher ──> ShardRouter ──> lanes
      (offer;        (weighted DRR        (window      (least-loaded
       RetryAfter     + in-flight cap)     coalesce)    QueueNonBlocking)
       when full)

Completion flows back through each lane queue's ``enqueue_callback``
into the request's future.  Shutdown is graceful by default: new
admissions are rejected, queued and parked work drains, lanes close,
and (on request) the per-device worker pools are released.
"""

from __future__ import annotations

import atexit
import threading
import time
from typing import Dict, Optional

from ..runtime.instrument import observers
from ..telemetry import flight, tracing
from ..telemetry import http as ops_http
from ..telemetry.spans import record_span
from ..telemetry.tracing import trace_store
from .admission import FairShareAdmission
from .batcher import Batcher
from .config import ServeConfig, config_from_env
from .metrics import record_completion, record_retry_delay
from .router import ShardRouter
from .types import (
    GatewayClosed,
    GraphRequest,
    LaunchRequest,
    RetryAfter,
    ServeHandle,
    ServeResult,
)
from .workloads import get_workload

__all__ = ["Gateway"]


class Gateway:
    """Async kernel-launch gateway over the repro runtime.

    ``config`` defaults to :func:`config_from_env`; keyword overrides
    win over both (``Gateway(batch_window=0.0)``).  The gateway starts
    its pump immediately and is ready for :meth:`submit` on return.
    """

    def __init__(self, config: Optional[ServeConfig] = None, **overrides):
        if config is None:
            config = config_from_env()
        if overrides:
            config = config.with_overrides(**overrides)
        self.config = config
        # Online drift-driven re-tuning (see repro.serve.online): fed
        # from the completion callback, re-tunes off the hot path.
        self.online = None
        if config.online_tuning:
            from .online import OnlineTuner

            self.online = OnlineTuner()
        self.admission = FairShareAdmission(config)
        self.batcher = Batcher(
            config.batch_window, config.batch_max, config.enable_batching
        )
        self.router = ShardRouter(config)
        self._handles: Dict[int, ServeHandle] = {}
        self._handles_lock = threading.Lock()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._idle = threading.Condition()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._pump = threading.Thread(
            target=self._pump_loop, name="serve-pump", daemon=True
        )
        self._pump.start()
        self._atexit = atexit.register(self._atexit_shutdown)
        # Live ops endpoints (REPRO_TELEMETRY_HTTP=host:port): the
        # gateway publishes its readiness; the listener is shared with
        # any co-resident fleet daemon.
        ops_http.maybe_start_from_env()
        ops_http.register_health("gateway", self._health)

    def _health(self):
        """Readiness probe for ``/healthz``: up = accepting submissions
        with a live pump."""
        ok = not self.closed and self._pump.is_alive()
        return ok, {
            "pending": self.pending(),
            "lanes": len(self.router.lanes),
            "pump_alive": self._pump.is_alive(),
            "draining": self._draining.is_set(),
        }

    # -- submission -------------------------------------------------------

    def submit(self, request) -> ServeHandle:
        """Admit ``request`` (a :class:`LaunchRequest` or
        :class:`GraphRequest`); returns its handle.

        Raises :class:`RetryAfter` when the tenant's queue is full and
        :class:`GatewayClosed` after shutdown began — both *before* any
        state is kept, so a rejected request costs nothing.
        """
        if self._stopped.is_set() or self._draining.is_set():
            raise GatewayClosed("gateway is shutting down")
        # Validate before admission: malformed payloads must not burn
        # fair-share credit or surface as opaque lane errors.
        get_workload(request.workload).validate(request)
        if request.backend:
            self.router._candidates(request.backend)  # raises if unknown
        # Trace identity: a wire-provided context wins; otherwise adopt
        # the submitting thread's ambient one; otherwise mint a root —
        # but only while something observes (untraced, unobserved
        # submission stays allocation-free).
        if request.trace is None:
            ctx = tracing.current()
            if ctx is None and observers():
                ctx = tracing.new_trace()
            request.trace = ctx
        flight.maybe_record(
            "serve_submit",
            request_id=request.request_id,
            workload=request.workload,
            tenant=request.tenant,
            **(request.trace.ids() if request.trace is not None else {}),
        )
        handle = ServeHandle(request)
        with self._handles_lock:
            self._handles[request.request_id] = handle
        try:
            self.admission.offer(request)
        except RetryAfter as exc:
            record_retry_delay(exc.delay)
            with self._handles_lock:
                self._handles.pop(request.request_id, None)
            raise
        except BaseException:
            with self._handles_lock:
                self._handles.pop(request.request_id, None)
            raise
        with self._handles_lock:
            self._submitted += 1
        return handle

    def launch(
        self,
        workload: str,
        *,
        tenant: str = "default",
        backend: str = "",
        params: Optional[dict] = None,
        arrays: Optional[dict] = None,
    ) -> ServeHandle:
        """Convenience: build and submit a :class:`LaunchRequest`."""
        return self.submit(
            LaunchRequest(
                workload=workload,
                tenant=tenant,
                backend=backend,
                params=params or {},
                arrays=arrays or {},
            )
        )

    def submit_graph(
        self,
        workload: str,
        *,
        tenant: str = "default",
        backend: str = "",
        params: Optional[dict] = None,
        arrays: Optional[dict] = None,
    ) -> ServeHandle:
        """Convenience: build and submit a :class:`GraphRequest` — the
        whole graph is one unit of admission and fair-share accounting."""
        return self.submit(
            GraphRequest(
                workload=workload,
                tenant=tenant,
                backend=backend,
                params=params or {},
                arrays=arrays or {},
            )
        )

    # -- pump -------------------------------------------------------------

    def _pump_loop(self) -> None:
        tick = self.config.pump_tick
        while not self._stopped.is_set():
            self.admission.ready.clear()
            moved = self._pump_step()
            if self._draining.is_set() and self._quiescent():
                with self._idle:
                    self._idle.notify_all()
            if moved:
                continue
            deadline = self.batcher.next_deadline()
            timeout = tick
            if deadline is not None:
                timeout = max(0.0, min(tick, deadline - time.perf_counter()))
            self.admission.ready.wait(timeout)

    def _pump_step(self) -> bool:
        """One pump iteration; True when any request moved a stage."""
        moved = False
        while True:
            req = self.admission.next_ready()
            if req is None:
                break
            self.batcher.add(req, time.perf_counter())
            moved = True
        if self._draining.is_set():
            ready = self.batcher.flush_all()
        else:
            ready = self.batcher.pop_ready(time.perf_counter())
        for batch in ready:
            self.router.submit(batch, self._on_request_done)
            moved = True
        return moved

    def _on_request_done(self, request, outputs, error, lane, batch_size) -> None:
        """Lane completion callback (runs in the lane queue's worker)."""
        now = time.perf_counter()
        latency = max(0.0, now - request.submitted_at)
        service = max(0.0, now - request.admitted_at)
        ok = error is None
        self.admission.task_finished(request.tenant, service, ok)
        record_completion(request.tenant, latency, ok)
        trace = request.trace
        # The request's own span, announced after the fact (the gateway
        # only learns the endpoints here) — free when unobserved.
        record_span(
            "serve.request",
            now - latency,
            now,
            cat="serve",
            trace=trace,
            error=type(error).__name__ if error is not None else None,
            workload=request.workload,
            tenant=request.tenant,
            lane=lane.label,
            batch_size=batch_size,
        )
        if trace is not None or error is not None:
            trace_store().add(
                {
                    "trace_id": trace.trace_id if trace is not None else "",
                    "request_id": request.request_id,
                    "workload": request.workload,
                    "tenant": request.tenant,
                    "lane": lane.label,
                    "batch_size": batch_size,
                    "latency_s": round(latency, 6),
                    "error": (
                        f"{type(error).__name__}: {error}"
                        if error is not None
                        else None
                    ),
                    "ts": time.time(),
                }
            )
        if ok and self.online is not None:
            self.online.observe(request, service, lane)
        with self._handles_lock:
            handle = self._handles.pop(request.request_id, None)
            if ok:
                self._completed += 1
            else:
                self._failed += 1
        if handle is None:
            return
        if ok:
            handle._resolve(
                ServeResult(
                    request_id=request.request_id,
                    tenant=request.tenant,
                    workload=request.workload,
                    arrays=outputs,
                    latency=latency,
                    batch_size=batch_size,
                    lane=lane.label,
                )
            )
        else:
            handle._fail(error)
        with self._idle:
            self._idle.notify_all()

    # -- introspection ----------------------------------------------------

    def _quiescent(self) -> bool:
        with self._handles_lock:
            return not self._handles

    def pending(self) -> int:
        with self._handles_lock:
            return len(self._handles)

    def stats(self) -> dict:
        with self._handles_lock:
            counts = {
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "pending": len(self._handles),
            }
        stats = {
            "requests": counts,
            "tenants": self.admission.stats(),
            "lanes": self.router.stats(),
            "queued": self.admission.queued(),
            "inflight": self.router.inflight(),
            "closed": self.closed,
        }
        if self.online is not None:
            stats["online_tuning"] = self.online.stats()
        return stats

    @property
    def closed(self) -> bool:
        return self._draining.is_set() or self._stopped.is_set()

    # -- shutdown ---------------------------------------------------------

    def shutdown(
        self,
        drain: bool = True,
        timeout: Optional[float] = None,
        release_pools: bool = True,
    ) -> bool:
        """Stop the gateway.

        ``drain=True``: reject new admissions, let queued/parked/running
        work finish (bounded by ``timeout``, default
        ``config.drain_timeout``), then close the lanes.  ``drain=False``
        fails queued work immediately and only waits for what is already
        on a lane.  Returns True when everything completed in time;
        stragglers' handles are failed with :class:`ServeError` either
        way.  Idempotent.
        """
        if self._stopped.is_set():
            return True
        ops_http.unregister_health("gateway")
        if timeout is None:
            timeout = self.config.drain_timeout
        self._draining.set()
        stranded = self.admission.close(drain=drain)
        self.admission.ready.set()

        drained = True
        deadline = time.perf_counter() + timeout
        with self._idle:
            while not self._quiescent():
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    drained = False
                    break
                self._idle.wait(min(0.05, remaining))

        self._stopped.set()
        self.admission.ready.set()
        self._pump.join(timeout=5)
        if self.online is not None:
            self.online.close()

        # Lanes: wait for whatever already reached a queue, then close.
        self.router.drain(timeout=max(0.0, deadline - time.perf_counter()))
        self.router.close()

        # Anything still unresolved (stranded queue entries on abort,
        # stragglers on timeout) fails explicitly — a drained gateway
        # leaves no dangling futures.
        with self._handles_lock:
            leftovers = list(self._handles.values())
            self._handles.clear()
        if stranded:
            drained = False
        for handle in leftovers:
            handle._fail(
                GatewayClosed(
                    "gateway shut down before this request completed"
                )
            )
        if release_pools:
            from ..dev.manager import shutdown_device_workers

            shutdown_device_workers()
        atexit.unregister(self._atexit_shutdown)
        return drained

    def _atexit_shutdown(self) -> None:
        # Interpreter exit: drain briefly, never hang the process.
        try:
            self.shutdown(drain=True, timeout=5.0)
        except Exception:
            pass

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"<Gateway {state} lanes={len(self.router.lanes)} "
            f"pending={self.pending()}>"
        )
