"""Differential testing across back-ends — testability as a public API.

The paper's *testability* property (Sec. 1.1): an algorithm can be
tested on one hardware and gives, in a loose sense, the same results on
another.  This module makes that property directly executable for any
user kernel::

    report = run_on_all_backends(
        MyKernel(), args=(n, 2.0), arrays={"x": x_host, "y": y_host},
        thread_elems=64,
    )
    report.assert_consistent()        # all back-ends agree bitwise
    out = report.results["AccCpuSerial"]["y"]

Buffers are allocated and staged per back-end, the work division is
derived from each back-end's Table 2 mapping, and outputs are gathered
back — the full offloading lifecycle, once per registered accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:
    from .sanitize.report import SanitizerReport

from . import mem
from .acc.registry import accelerator, accelerator_names
from .core.kernel import create_task_kernel
from .core.workdiv import divide_work
from .dev.manager import get_dev_by_idx
from .queue.queue import QueueBlocking

__all__ = ["BackendReport", "run_on_all_backends"]


@dataclass
class BackendReport:
    """Per-back-end outputs of one kernel, plus consistency checks."""

    results: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)
    reference_backend: str = "AccCpuSerial"
    #: Per-back-end sanitizer reports (only when ``sanitize=True``).
    sanitizer: Dict[str, "SanitizerReport"] = field(default_factory=dict)

    def assert_sanitized(self) -> None:
        """Raise unless ``sanitize=True`` ran and found nothing."""
        if not self.sanitizer:
            raise AssertionError(
                "no sanitizer reports; pass sanitize=True to "
                "run_on_all_backends"
            )
        for name, rep in sorted(self.sanitizer.items()):
            rep.raise_if_findings()

    def assert_consistent(
        self, rtol: float = 0.0, atol: float = 0.0
    ) -> None:
        """Raise unless every back-end matches the reference.

        Defaults to bitwise equality — deterministic kernels through
        identical span decompositions reproduce exactly; pass
        tolerances for kernels whose atomics reorder float sums.
        """
        if self.reference_backend not in self.results:
            raise AssertionError(
                f"reference back-end {self.reference_backend!r} missing "
                f"from results {sorted(self.results)}"
            )
        ref = self.results[self.reference_backend]
        for name, arrays in self.results.items():
            for key, value in arrays.items():
                if rtol == 0.0 and atol == 0.0:
                    np.testing.assert_array_equal(
                        value, ref[key], err_msg=f"{name}:{key}"
                    )
                else:
                    np.testing.assert_allclose(
                        value, ref[key], rtol=rtol, atol=atol,
                        err_msg=f"{name}:{key}",
                    )

    @property
    def backends(self) -> Sequence[str]:
        return sorted(self.results)


def run_on_all_backends(
    kernel,
    *,
    args: Tuple = (),
    arrays: Optional[Dict[str, np.ndarray]] = None,
    extent: Optional[int] = None,
    thread_elems: int = 16,
    backends: Optional[Iterable[str]] = None,
    sanitize: bool = False,
) -> BackendReport:
    """Execute ``kernel`` on every (or the given) back-ends.

    ``args`` are scalar kernel arguments (passed first); ``arrays`` are
    staged as buffers in declaration order after them.  The work
    division covers ``extent`` (default: the first array's length)
    using each back-end's preferred Table 2 mapping with
    ``thread_elems`` elements per thread.

    With ``sanitize=True`` every launch runs under the kernel sanitizer
    (:mod:`repro.sanitize`); the per-back-end reports land in
    :attr:`BackendReport.sanitizer` and
    :meth:`BackendReport.assert_sanitized` asserts they are clean —
    differential testing and race/bounds checking in one sweep.
    """
    arrays = arrays or {}
    if extent is None:
        if not arrays:
            raise ValueError("need arrays or an explicit extent")
        extent = int(np.asarray(next(iter(arrays.values()))).shape[0])

    report = BackendReport()
    for name in backends if backends is not None else accelerator_names():
        acc = accelerator(name)
        dev = get_dev_by_idx(acc, 0)
        queue = QueueBlocking(dev)
        bufs = {}
        for key, host in arrays.items():
            host = np.ascontiguousarray(host)
            buf = mem.alloc(dev, host.shape, dtype=host.dtype)
            mem.copy(queue, buf, host)
            bufs[key] = buf
        props = acc.get_acc_dev_props(dev)
        wd = divide_work(
            extent, props, acc.mapping_strategy, thread_elems=thread_elems
        )
        task = create_task_kernel(acc, wd, kernel, *args, *bufs.values())
        if sanitize:
            from .sanitize import enabled as _sanitize_enabled

            with _sanitize_enabled(label=name) as san:
                queue.enqueue(task)
            report.sanitizer[name] = san
        else:
            queue.enqueue(task)
        gathered = {}
        for key, buf in bufs.items():
            out = np.empty_like(np.ascontiguousarray(arrays[key]))
            mem.copy(queue, out, buf)
            gathered[key] = out
            buf.free()
        report.results[name] = gathered
    return report
