"""Execution instrumentation: observer hooks threaded through the runtime.

Every interesting runtime transition — a launch starting or finishing, a
block being dispatched, a copy executing, a queue draining, a launch
plan hitting or missing the cache — is announced to the registered
:class:`ExecutionObserver` instances.  The bench harness and the trace
layer consume these hooks instead of wrapping user callables, so
instrumentation costs nothing when nothing is registered (each notify
helper returns immediately on the empty-observer fast path).

Observers are process-global and thread-safe to register from any
thread; notifications may arrive from scheduler worker threads, so
observer implementations must be thread-safe themselves
(:class:`CountingObserver` is).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

__all__ = [
    "ExecutionObserver",
    "CountingObserver",
    "register_observer",
    "unregister_observer",
    "observers",
    "observe",
    "notify_launch_begin",
    "notify_launch_end",
    "notify_block",
    "notify_block_end",
    "notify_copy",
    "notify_queue_drain",
    "notify_plan_cache",
    "notify_tuning_cache",
    "notify_sanitizer_report",
    "notify_span_begin",
    "notify_span_end",
    "notify_graph_end",
    "notify_worker_span",
]


class ExecutionObserver:
    """Protocol for runtime instrumentation (all hooks optional no-ops).

    Subclass and override the hooks of interest; exceptions raised by an
    observer propagate to the launch/copy/wait that triggered them, so
    observers should only raise when they *mean* to fail the run (e.g. a
    test asserting an invariant at every block).
    """

    def on_launch_begin(self, plan, task, device) -> None:
        """A kernel launch is about to dispatch its blocks."""

    def on_launch_end(self, plan, task, device) -> None:
        """All blocks of a launch have completed (or one failed)."""

    def on_block(self, plan, block_idx) -> None:
        """One block is about to execute (called from worker threads)."""

    def on_block_end(self, plan, block_idx, seconds: float) -> None:
        """One block finished; ``seconds`` is its wall duration.

        Timed only while observers are registered — the unobserved
        dispatch path never reads the clock."""

    def on_copy(self, task, device) -> None:
        """A memory copy/memset task executed on ``device``."""

    def on_queue_drain(self, queue) -> None:
        """A queue's pending work count reached zero."""

    def on_plan_cache(self, plan, hit: bool) -> None:
        """A launch plan was resolved: ``hit`` tells cached vs built."""

    def on_tuning_cache(self, kernel, acc_type, hit: bool) -> None:
        """An ``AutoWorkDiv`` consulted the tuning cache (tuned division
        served vs heuristic fallback)."""

    def on_span_begin(self, span) -> None:
        """A telemetry span opened (see :mod:`repro.telemetry.spans`)."""

    def on_span_end(self, span) -> None:
        """A telemetry span closed; ``span`` carries wall and modeled
        durations plus its attributes."""

    def on_sanitizer_report(self, plan, record) -> None:
        """A sanitized launch finished; ``record`` is its
        :class:`repro.sanitize.report.LaunchRecord` (findings included,
        possibly empty)."""

    def on_graph_end(self, graph_exec, stats) -> None:
        """A dataflow graph finished one submission; ``stats`` is a
        :class:`repro.graph.executor.GraphRunStats` with per-node
        timings, critical-path length and overlap accounting."""

    def on_worker_span(self, info: Dict[str, object]) -> None:
        """A process-pool worker's timed region, replayed parent-side.

        ``info`` carries ``name``, ``pid``, ``t0``/``t1`` (the worker's
        ``perf_counter`` readings — CLOCK_MONOTONIC, so directly
        comparable with the parent's on Linux), optional ``trace_id`` /
        ``span_id`` / ``parent_id`` and free-form attributes."""


_lock = threading.Lock()
_observers: Tuple[ExecutionObserver, ...] = ()


def register_observer(obs: ExecutionObserver) -> ExecutionObserver:
    """Attach ``obs`` to the global hook chain; returns it for chaining."""
    global _observers
    with _lock:
        if obs not in _observers:
            _observers = _observers + (obs,)
    return obs


def unregister_observer(obs: ExecutionObserver) -> None:
    """Detach ``obs`` (idempotent)."""
    global _observers
    with _lock:
        _observers = tuple(o for o in _observers if o is not obs)


def observers() -> Tuple[ExecutionObserver, ...]:
    """Snapshot of the currently registered observers."""
    return _observers


@contextmanager
def observe(obs: ExecutionObserver) -> Iterator[ExecutionObserver]:
    """Register ``obs`` for the duration of a ``with`` block::

        with observe(CountingObserver()) as stats:
            enqueue(queue, task)
        assert stats.launches == 1
    """
    register_observer(obs)
    try:
        yield obs
    finally:
        unregister_observer(obs)


# ---------------------------------------------------------------------------
# Notification fan-out (hot path: first line bails when unobserved)
# ---------------------------------------------------------------------------


def notify_launch_begin(plan, task, device) -> None:
    obs = _observers
    if not obs:
        return
    for o in obs:
        o.on_launch_begin(plan, task, device)


def notify_launch_end(plan, task, device) -> None:
    obs = _observers
    if not obs:
        return
    for o in obs:
        o.on_launch_end(plan, task, device)


def notify_block(plan, block_idx) -> None:
    obs = _observers
    if not obs:
        return
    for o in obs:
        o.on_block(plan, block_idx)


def notify_block_end(plan, block_idx, seconds: float) -> None:
    obs = _observers
    if not obs:
        return
    for o in obs:
        o.on_block_end(plan, block_idx, seconds)


def notify_copy(task, device) -> None:
    obs = _observers
    if not obs:
        return
    for o in obs:
        o.on_copy(task, device)


def notify_queue_drain(queue) -> None:
    obs = _observers
    if not obs:
        return
    for o in obs:
        o.on_queue_drain(queue)


def notify_plan_cache(plan, hit: bool) -> None:
    obs = _observers
    if not obs:
        return
    for o in obs:
        o.on_plan_cache(plan, hit)


def notify_tuning_cache(kernel, acc_type, hit: bool) -> None:
    obs = _observers
    if not obs:
        return
    for o in obs:
        o.on_tuning_cache(kernel, acc_type, hit)


def notify_sanitizer_report(plan, record) -> None:
    obs = _observers
    if not obs:
        return
    for o in obs:
        o.on_sanitizer_report(plan, record)


def notify_graph_end(graph_exec, stats) -> None:
    obs = _observers
    if not obs:
        return
    for o in obs:
        o.on_graph_end(graph_exec, stats)


def notify_worker_span(info: Dict[str, object]) -> None:
    obs = _observers
    if not obs:
        return
    for o in obs:
        o.on_worker_span(info)


def notify_span_begin(span) -> None:
    obs = _observers
    if not obs:
        return
    for o in obs:
        o.on_span_begin(span)


def notify_span_end(span) -> None:
    obs = _observers
    if not obs:
        return
    for o in obs:
        o.on_span_end(span)


class CountingObserver(ExecutionObserver):
    """Thread-safe event counters — the bench harness's workhorse.

    ``plan_cache_hit_rate`` is the fraction of launches whose plan came
    out of the LRU cache, the quantity the launch-overhead bench
    reports.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.launches = 0
        self.blocks = 0
        self.copies = 0
        self.queue_drains = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.tuning_cache_hits = 0
        self.tuning_cache_misses = 0
        self.per_backend: Dict[str, int] = {}

    def on_launch_begin(self, plan, task, device) -> None:
        with self._lock:
            self.launches += 1
            name = plan.acc_type.name
            self.per_backend[name] = self.per_backend.get(name, 0) + 1

    def on_block(self, plan, block_idx) -> None:
        with self._lock:
            self.blocks += 1

    def on_copy(self, task, device) -> None:
        with self._lock:
            self.copies += 1

    def on_queue_drain(self, queue) -> None:
        with self._lock:
            self.queue_drains += 1

    def on_plan_cache(self, plan, hit: bool) -> None:
        with self._lock:
            if hit:
                self.plan_cache_hits += 1
            else:
                self.plan_cache_misses += 1

    def on_tuning_cache(self, kernel, acc_type, hit: bool) -> None:
        with self._lock:
            if hit:
                self.tuning_cache_hits += 1
            else:
                self.tuning_cache_misses += 1

    @property
    def plan_cache_hit_rate(self) -> float:
        with self._lock:
            total = self.plan_cache_hits + self.plan_cache_misses
            return self.plan_cache_hits / total if total else 0.0

    @property
    def tuning_cache_hit_rate(self) -> float:
        with self._lock:
            total = self.tuning_cache_hits + self.tuning_cache_misses
            return self.tuning_cache_hits / total if total else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "launches": self.launches,
                "blocks": self.blocks,
                "copies": self.copies,
                "queue_drains": self.queue_drains,
                "plan_cache_hits": self.plan_cache_hits,
                "plan_cache_misses": self.plan_cache_misses,
                "tuning_cache_hits": self.tuning_cache_hits,
                "tuning_cache_misses": self.tuning_cache_misses,
                # A copy: mutating the snapshot must not touch the live
                # counters.
                "per_backend": dict(self.per_backend),
            }

    def __repr__(self) -> str:
        return f"CountingObserver({self.snapshot()!r})"
