"""Process-pool block dispatch: spawn-safe workers + launch marshaling.

This module is the other half of
:class:`repro.runtime.scheduler.ProcessPoolScheduler`.  Everything that
crosses the process boundary lives here, at module top level, so the
``spawn`` start method can re-import it in workers:

* :func:`marshal_launch` — the parent-side classification.  Run once per
  (plan, args) pair and memoised on the plan, it decides whether a
  launch may run multi-process and, if so, serialises the *launch
  payload*: the kernel (by pickle), the work division, the projected
  device properties, and an argument spec in which shared-memory buffers
  are :class:`~repro.mem.shm.ShmArraySpec` descriptors instead of data.
  Ineligible launches (multi-thread blocks, private-memory buffers,
  unpicklable kernels) carry a human-readable reason; the scheduler logs
  it and falls back to the thread pool — never a silent wrong answer.
* :func:`run_chunk` — the worker-side entry point.  Rebuilds the grid
  context (cached per payload digest, so warm launches skip unpickling
  and re-attachment), maps shm arguments zero-copy, and runs its span of
  blocks with the same single-thread block runner the in-process
  schedulers use.
* :class:`ProcessSharedAtomicDomain` — global-memory atomics for
  multi-process grids.  The scheduler creates one table of
  ``multiprocessing.Lock`` stripes per pool and hands it to workers at
  spawn; atomics hash the *element index* onto a stripe (array identity
  is not stable across processes), serialising read-modify-write on the
  shared pages exactly like the striped in-process
  :class:`~repro.atomic.ops.AtomicDomain` does for threads.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..atomic.ops import AtomicDomain
from ..core.errors import KernelError

__all__ = [
    "ATOMIC_STRIPES",
    "ProcessLaunchState",
    "ProcessSharedAtomicDomain",
    "marshal_launch",
    "process_launch_state",
    "run_chunk",
    "worker_init",
    "reset_worker_state",
]

#: Stripe count of the process-shared atomic lock table (one
#: ``multiprocessing.Lock`` each, created per pool).
ATOMIC_STRIPES = 64


# ---------------------------------------------------------------------------
# Parent side: capability classification + payload marshaling
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProcessLaunchState:
    """The memoised outcome of classifying one (plan, args) launch."""

    eligible: bool
    #: Why the launch cannot run multi-process ("" when eligible).
    reason: str
    #: Pickled launch payload (kernel, work-div, props, shared-mem
    #: bytes, args spec); None when ineligible.
    blob: Optional[bytes] = None
    #: Digest of ``blob`` — the workers' payload-cache key.
    digest: str = ""


def _ineligible(reason: str) -> ProcessLaunchState:
    return ProcessLaunchState(eligible=False, reason=reason)


def marshal_launch(plan, task) -> ProcessLaunchState:
    """Classify ``task`` under ``plan`` for multi-process dispatch.

    The capability rules (each names its reason when violated):

    * blocks must be single-thread — preemptive/cooperative in-block
      barriers cannot span processes;
    * every ``Buffer`` / ``ViewSubView`` argument must be shm-backed —
      private numpy memory would have to be pickled per launch and
      written results would be lost;
    * the kernel and its scalar arguments must pickle under ``spawn``.

    Residency checks run here, parent-side, exactly once per launch
    configuration — workers trust the marshalled spec.
    """
    from ..acc.engine import run_block_single_thread
    from ..mem.buf import Buffer
    from ..mem.view import ViewSubView

    if (
        plan.block_runner is not run_block_single_thread
        and plan.work_div.block_thread_count != 1
    ):
        return _ineligible(
            "multi-thread blocks need in-process barriers "
            f"(thread_execute={getattr(plan.acc_type, 'thread_execute', '?')!r})"
        )

    spec: List[Tuple[str, object]] = []
    for i, a in enumerate(task.args):
        if isinstance(a, Buffer):
            s = a.shm_spec()
            if s is None:
                return _ineligible(
                    f"argument {i} is a private-memory Buffer; allocate it "
                    "with mem.alloc(..., shm=True) (or REPRO_SHM_BUFFERS=1) "
                    "for zero-copy process dispatch"
                )
            plan.device.require_resident(a)
            spec.append(("shm", s))
        elif isinstance(a, ViewSubView):
            s = a.buf.shm_spec()
            if s is None:
                return _ineligible(
                    f"argument {i} is a view of a private-memory Buffer; "
                    "allocate the base buffer with shm=True"
                )
            plan.device.require_resident(a.buf)
            box = tuple(
                (int(o), int(e)) for o, e in zip(a.offset, a.extent)
            )
            spec.append(("shm", replace(s, box=box)))
        else:
            spec.append(("val", a))

    payload = (
        task.kernel,
        plan.work_div,
        plan.props,
        plan.shared_mem_bytes,
        tuple(spec),
    )
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # noqa: BLE001 - any pickling failure falls back
        kname = getattr(task.kernel, "__name__", type(task.kernel).__name__)
        return _ineligible(
            f"kernel {kname!r} (or an argument) does not pickle under the "
            f"spawn start method: {exc!r}"
        )
    return ProcessLaunchState(
        eligible=True,
        reason="",
        blob=blob,
        digest=hashlib.sha1(blob).hexdigest(),
    )


def process_launch_state(plan, task) -> ProcessLaunchState:
    """``marshal_launch`` memoised on the plan per args-tuple identity —
    re-enqueueing the same frozen task re-uses the marshalled payload,
    so warm launches pay zero classification or pickling cost."""
    cached = getattr(plan, "_proc_state", None)
    if cached is not None and cached[0] is task.args:
        return cached[1]
    state = marshal_launch(plan, task)
    plan._proc_state = (task.args, state)
    return state


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class ProcessSharedAtomicDomain(AtomicDomain):
    """Striped atomics over a table of process-shared locks.

    ``id(arr)`` differs across processes for the *same* shared-memory
    array, so stripes hash the element index alone — two distinct
    arrays hitting the same stripe merely contend, they never corrupt.
    """

    def __init__(self, locks):
        if not locks:
            raise ValueError("need a non-empty process lock table")
        self._locks = tuple(locks)

    def _lock_for(self, arr, idx):
        if isinstance(idx, (tuple, list)):
            key = hash(tuple(int(i) for i in idx))
        else:
            key = hash(int(idx))
        return self._locks[key % len(self._locks)]


class _WorkerDevice:
    """Stand-in for :class:`repro.dev.device.Device` inside workers.

    Carries just enough identity for ``acc.device`` introspection;
    memory accounting and the simulated clock stay with the parent's
    real device (modeled time is advanced parent-side after dispatch).
    """

    __slots__ = ("name", "uid", "accessible_from_host")

    def __init__(self, name: str, uid: int):
        self.name = name
        self.uid = uid
        self.accessible_from_host = True

    def __repr__(self) -> str:
        return f"<WorkerDevice {self.name} (pid {os.getpid()})>"


#: Process-shared atomic lock table, installed once per worker at spawn.
_locks: Optional[tuple] = None
#: payload digest -> (kernel, GridContext, block index tuple); bounded.
_payloads: "Dict[str, tuple]" = {}
_payloads_lock = threading.Lock()
_PAYLOAD_CACHE_MAX = 32


def worker_init(locks, env: Optional[Dict[str, str]] = None) -> None:
    """Pool initializer: install the shared lock table and mirror the
    parent's repro-relevant environment (guard mode etc.)."""
    global _locks
    _locks = tuple(locks)
    if env:
        os.environ.update(env)


def reset_worker_state() -> None:
    """Drop worker caches (tests; also safe in the parent)."""
    from ..mem.shm import release_worker_attachments

    with _payloads_lock:
        _payloads.clear()
    release_worker_attachments()


def _materialize(digest: str, blob: bytes, device_name: str, device_uid: int):
    """Payload -> (kernel, grid, block_indices), cached per digest."""
    with _payloads_lock:
        state = _payloads.get(digest)
    if state is not None:
        return state

    from ..acc.base import GridContext
    from ..acc.engine import iter_indices
    from ..mem.guard import guard
    from ..mem.shm import ShmArraySpec, attach_array

    kernel, wd, props, shared_mem_bytes, spec = pickle.loads(blob)
    args = tuple(
        guard(attach_array(payload))
        if tag == "shm" and isinstance(payload, ShmArraySpec)
        else payload
        for tag, payload in spec
    )
    grid = GridContext(
        _WorkerDevice(device_name, device_uid),
        wd,
        props,
        args,
        shared_mem_bytes=shared_mem_bytes,
    )
    if _locks is not None:
        grid.atomics = ProcessSharedAtomicDomain(_locks)
    state = (kernel, grid, tuple(iter_indices(wd.grid_block_extent)))
    with _payloads_lock:
        if len(_payloads) >= _PAYLOAD_CACHE_MAX:
            # Drop the oldest entry (insertion order); launches cycling
            # through more than _PAYLOAD_CACHE_MAX live configurations
            # merely re-unpickle, they never grow without bound.
            _payloads.pop(next(iter(_payloads)))
        _payloads[digest] = state
    return state


def run_chunk(
    digest: str,
    blob: bytes,
    start: int,
    stop: int,
    timed: bool,
    device_name: str = "device",
    device_uid: int = -1,
    trace: Optional[Dict[str, str]] = None,
):
    """Execute blocks ``start:stop`` (C order) of the payload's grid.

    Returns ``(pid, timings)`` where ``timings`` is a list of
    ``(block_linear_index, seconds)`` pairs when ``timed`` (observers
    registered parent-side) and None otherwise.  Errors are re-raised as
    plain-message :class:`~repro.core.errors.KernelError` — exception
    *causes* may hold unpicklable state and must not cross the process
    boundary.

    ``trace`` (a dict with a W3C ``"traceparent"``, sent only when the
    parent has an ambient :mod:`repro.telemetry.tracing` context)
    switches the return to ``(pid, timings, spans)``: the worker times
    the whole chunk as its own child span and ships it back as a plain
    dict — ``t0``/``t1`` are the worker's ``perf_counter`` readings,
    directly comparable with the parent's (one CLOCK_MONOTONIC
    machine-wide), which the parent replays via the ``on_worker_span``
    observer hook.  The 2-tuple shape without ``trace`` is the stable
    contract older callers rely on.
    """
    from ..acc.engine import run_block_single_thread

    ctx = None
    if trace is not None:
        from ..telemetry import tracing

        ctx = tracing.from_traceparent(trace.get("traceparent"))
        if ctx is not None:
            tracing.set_current(ctx)
    chunk_t0 = time.perf_counter() if ctx is not None else 0.0

    kernel, grid, block_indices = _materialize(
        digest, blob, device_name, device_uid
    )
    timings: Optional[List[Tuple[int, float]]] = [] if timed else None
    try:
        for k in range(start, stop):
            bidx = block_indices[k]
            t0 = time.perf_counter() if timed else 0.0
            try:
                run_block_single_thread(grid, bidx, kernel, grid.args)
            except BaseException as exc:  # noqa: BLE001 - crosses the pipe
                if isinstance(exc, KernelError):
                    msg = str(exc)
                else:
                    kname = getattr(
                        kernel, "__name__", type(kernel).__name__
                    )
                    msg = f"kernel {kname!r} failed in block {bidx!r}: {exc!r}"
                # Flight recorder: workers arm themselves from the
                # mirrored REPRO_* env at import, so a worker-side crash
                # leaves a worker-side dump (trace ids included via the
                # ambient context installed above).
                from ..telemetry import flight

                if flight.active():
                    rec = flight.recorder()
                    if rec is not None:
                        rec.record("worker_block_crash", error=msg, block=k)
                        rec.dump("worker_block_crash", error=msg)
                raise KernelError(
                    f"{msg} [process worker pid {os.getpid()}]"
                ) from None
            if timed:
                timings.append((k, time.perf_counter() - t0))
    finally:
        if ctx is not None:
            from ..telemetry import tracing

            tracing.set_current(None)
    if ctx is None:
        return os.getpid(), timings
    span = dict(ctx.ids())
    span.update(
        name="chunk",
        pid=os.getpid(),
        t0=chunk_t0,
        t1=time.perf_counter(),
        blocks=stop - start,
        start=start,
        stop=stop,
    )
    return os.getpid(), timings, [span]
